package repro

import (
	"repro/internal/index"
	"repro/internal/textproc"
)

// LocalDatabase is an in-memory SearchableDatabase backed by the
// library's own inverted index — handy for testing, for examples, and
// for metasearching over local corpora. It plays the role Jakarta
// Lucene plays in the paper's testbed.
type LocalDatabase struct {
	name string
	ix   *index.Index
}

// NewLocalDatabase indexes raw text documents under the metasearcher's
// text pipeline (so queries and summaries share one term space).
func (m *Metasearcher) NewLocalDatabase(name string, docs []string) *LocalDatabase {
	b := index.NewBuilder(len(docs))
	for _, d := range docs {
		b.Add(m.analyze(d))
	}
	return &LocalDatabase{name: name, ix: b.Build()}
}

// NewLocalDatabaseFromTerms indexes pre-analyzed term slices directly.
func NewLocalDatabaseFromTerms(name string, docs [][]string) *LocalDatabase {
	b := index.NewBuilder(len(docs))
	for _, d := range docs {
		b.Add(d)
	}
	return &LocalDatabase{name: name, ix: b.Build()}
}

// Name implements SearchableDatabase.
func (d *LocalDatabase) Name() string { return d.name }

// Query implements SearchableDatabase.
func (d *LocalDatabase) Query(terms []string, limit int) (int, []int) {
	matches, top := d.ix.Search(terms, limit)
	ids := make([]int, len(top))
	for i, r := range top {
		ids[i] = int(r.Doc)
	}
	return matches, ids
}

// Fetch implements SearchableDatabase.
func (d *LocalDatabase) Fetch(id int) []string { return d.ix.Doc(index.DocID(id)) }

// NumDocs returns the database's true size (not visible to the
// metasearcher, which must estimate it by sample–resample).
func (d *LocalDatabase) NumDocs() int { return d.ix.NumDocs() }

// defaultLexicon is a compact list of common English content words for
// bootstrapping query-based sampling when the caller provides none.
func defaultLexicon() []string {
	words := []string{
		"time", "year", "people", "way", "day", "man", "thing", "woman",
		"life", "child", "world", "school", "state", "family", "student",
		"group", "country", "problem", "hand", "part", "place", "case",
		"week", "company", "system", "program", "question", "work",
		"government", "number", "night", "point", "home", "water", "room",
		"mother", "area", "money", "story", "fact", "month", "lot",
		"right", "study", "book", "eye", "job", "word", "business",
		"issue", "side", "kind", "head", "house", "service", "friend",
		"father", "power", "hour", "game", "line", "end", "member", "law",
		"car", "city", "community", "name", "president", "team", "minute",
		"idea", "kid", "body", "information", "back", "parent", "face",
		"others", "level", "office", "door", "health", "person", "art",
		"war", "history", "party", "result", "change", "morning",
		"reason", "research", "girl", "guy", "moment", "air", "teacher",
		"force", "education",
	}
	// Stem the lexicon so it matches the analyzed term space, deduping
	// afterwards (distinct words can share a stem, and duplicates would
	// bias QBS's uniform bootstrap draw towards them).
	out := make([]string, 0, len(words))
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		s := textproc.Stem(w)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
