package repro

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestForEachConcurrentlySequentialStopsAtError(t *testing.T) {
	reg := telemetry.NewRegistry()
	boom := errors.New("boom")
	var calls int
	err := forEachConcurrently(10, 1, reg, func(i int) error {
		calls++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 4 {
		t.Errorf("ran %d tasks after error at index 3, want 4", calls)
	}
	snap := reg.Snapshot()
	if snap.Counters["concurrency_tasks_started_total"] != 4 {
		t.Errorf("tasks_started = %d, want 4", snap.Counters["concurrency_tasks_started_total"])
	}
	if snap.Counters["concurrency_tasks_failed_total"] != 1 {
		t.Errorf("tasks_failed = %d, want 1", snap.Counters["concurrency_tasks_failed_total"])
	}
}

func TestForEachConcurrentlyStopsDispatchAfterError(t *testing.T) {
	const n = 10000
	reg := telemetry.NewRegistry()
	boom := errors.New("boom")
	var started atomic.Int64
	err := forEachConcurrently(n, 4, reg, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Workers already mid-task when the error hits may finish, and each
	// may claim at most a handful more before observing the stop flag;
	// the point is that dispatch does not run through all n indices.
	if got := started.Load(); got >= n/2 {
		t.Errorf("%d of %d tasks dispatched after an index-0 error", got, n)
	}
	snap := reg.Snapshot()
	if snap.Counters["concurrency_tasks_started_total"] != started.Load() {
		t.Errorf("tasks_started counter %d != observed %d",
			snap.Counters["concurrency_tasks_started_total"], started.Load())
	}
	if snap.Counters["concurrency_tasks_failed_total"] != 1 {
		t.Errorf("tasks_failed = %d, want 1", snap.Counters["concurrency_tasks_failed_total"])
	}
}

func TestForEachConcurrentlyCompletesAll(t *testing.T) {
	var done atomic.Int64
	if err := forEachConcurrently(100, 8, nil, func(i int) error {
		done.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 100 {
		t.Errorf("completed %d of 100 tasks", done.Load())
	}
}
