package repro

import (
	"bytes"
	"testing"
)

func TestSearchEndToEnd(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 60})
	results, err := m.Search("blood pressure hypertension", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no merged results")
	}
	// The top document must come from the top-selected database.
	if results[0].Database != "cardio" {
		t.Errorf("top result from %s, want cardio", results[0].Database)
	}
	// Scores are sorted and positive.
	for i, r := range results {
		if r.Score <= 0 {
			t.Errorf("result %d has score %v", i, r.Score)
		}
		if i > 0 && r.Score > results[i-1].Score {
			t.Errorf("results not sorted at %d", i)
		}
	}
	// Rank-1 documents of the top database score highest within it.
	var cardioDocs int
	for _, r := range results {
		if r.Database == "cardio" {
			cardioDocs++
		}
	}
	if cardioDocs == 0 || cardioDocs > 5 {
		t.Errorf("cardio contributed %d docs, want 1..5", cardioDocs)
	}
}

func TestSearchNoSelection(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 61, Scorer: "bgloss"})
	results, err := m.Search("completelyunknownword", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results for an unknown word: %v", results)
	}
}

func TestSearchLoadedStateFails(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 62})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{})
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	// Selection works from summaries alone, but document retrieval needs
	// live connections.
	if _, err := m2.Search("blood pressure", 2, 5); err == nil {
		t.Error("Search on loaded state without live databases accepted")
	}
}

func TestSearchDefaultPerDB(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 63})
	if _, err := m.Search("goal penalty", 1, 0); err != nil {
		t.Errorf("perDB=0 should default: %v", err)
	}
}
