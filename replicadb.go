package repro

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ReplicatedDatabaseOptions configures a ReplicatedDatabase.
type ReplicatedDatabaseOptions struct {
	// Preferred is the index of the replica this process tries first
	// under equal health (a shard's affinity replica from the topology,
	// rotated per owner so R owning shards spread over R replicas).
	// Out of range is treated as 0.
	Preferred int
	// Breakers, when non-nil, tracks one circuit breaker per replica
	// under the key "name@addr" — pass the metasearcher's set
	// (Metasearcher.Breakers) so replica states show on /debug/breakers
	// next to the database-level breakers the fan-out keeps. Nil
	// disables replica breakers (every replica is always eligible).
	Breakers *resilience.Set
	// Metrics receives replica_failover_total and
	// replica_exhausted_total, plus the wire client series of every
	// replica (may be nil).
	Metrics *telemetry.Registry
	// Client configures each replica's wire client.
	Client RemoteDatabaseOptions
}

// replicaSet is one immutable routing view of the replicas. Calls load
// the current set once at entry and use it throughout, so a concurrent
// UpdateReplicas never changes the ground under an in-flight call: the
// old set's replicas stay alive until every call that loaded it has
// finished (drain), then the removed ones are closed.
type replicaSet struct {
	preferred int
	replicas  []*RemoteDatabase
	addrs     []string
	keys      []string        // breaker keys, "name@addr"
	inflight  []*atomic.Int64 // shared with successor sets for surviving replicas
}

// ReplicatedDatabase is one logical text database served by several
// dbnode processes with identical content. It implements
// ContextSearchableDatabase over the replica set with replica-aware
// routing:
//
//   - Replicas are tried in health order: breaker state first (closed
//     before half-open before open), in-flight count second, affinity
//     third — so a hedged duplicate of an in-flight call (the search
//     fan-out's Hedged machinery calls QueryContext twice) naturally
//     races a *different* replica, and first success wins.
//   - A failed replica feeds its own breaker and the call fails over
//     to the next; the call errors only when every replica failed.
//   - Each replica is a probe target (ProbeTargets), so an open
//     replica breaker closes as soon as its process recovers.
//   - The replica set is live-reconfigurable (UpdateReplicas): in-flight
//     calls finish on the set they started with, surviving replicas
//     keep their breaker state and in-flight counts, removed replicas
//     are drained and closed, added replicas are dialed lazily with
//     breakers seeded half-open (their first call is the trial).
//
// Safe for concurrent use.
type ReplicatedDatabase struct {
	name     string
	category string
	numDocs  int

	set  atomic.Pointer[replicaSet]
	opts ReplicatedDatabaseOptions // for dialing swap-added replicas

	updateMu sync.Mutex // serializes UpdateReplicas

	breakers  *resilience.Set
	failovers *telemetry.Counter
	exhausted *telemetry.Counter
}

var _ ContextSearchableDatabase = (*ReplicatedDatabase)(nil)

// DialReplicatedDatabase dials every replica address and verifies they
// advertise the same database (same name). All replicas must be
// reachable at dial time; afterwards the database stays usable while
// any one replica is.
func DialReplicatedDatabase(ctx context.Context, addrs []string, opts ReplicatedDatabaseOptions) (*ReplicatedDatabase, error) {
	if len(addrs) == 0 {
		return nil, errors.New("repro: DialReplicatedDatabase needs at least one replica address")
	}
	opts.Client.Metrics = opts.Metrics
	d := &ReplicatedDatabase{
		opts:      opts,
		breakers:  opts.Breakers,
		failovers: opts.Metrics.Counter("replica_failover_total"),
		exhausted: opts.Metrics.Counter("replica_exhausted_total"),
	}
	set := &replicaSet{}
	for i, addr := range addrs {
		r, err := DialRemoteDatabase(ctx, addr, opts.Client)
		if err != nil {
			return nil, fmt.Errorf("repro: replica %d of %d: %w", i+1, len(addrs), err)
		}
		if i == 0 {
			d.name, d.category, d.numDocs = r.Name(), r.Category(), r.NumDocs()
		} else if r.Name() != d.name {
			return nil, fmt.Errorf("repro: replica %s serves database %q, replica %s serves %q — a replica set must serve one database",
				addrs[i], r.Name(), addrs[0], d.name)
		}
		set.replicas = append(set.replicas, r)
		set.addrs = append(set.addrs, addr)
		set.keys = append(set.keys, d.name+"@"+addr)
		set.inflight = append(set.inflight, new(atomic.Int64))
	}
	if opts.Preferred >= 0 && opts.Preferred < len(addrs) {
		set.preferred = opts.Preferred
	}
	d.set.Store(set)
	return d, nil
}

// NewReplicatedDatabase builds a replica set without touching the
// network: every replica is a lazy handle (identity verified on first
// contact) with its breaker seeded half-open, so the first call or
// probe to each replica is its trial. This is the handle a topology
// swap attaches to a database that just entered this shard's scope —
// the swap cannot block on dialing nodes that may still be booting.
func NewReplicatedDatabase(name, category string, numDocs int, addrs []string, opts ReplicatedDatabaseOptions) (*ReplicatedDatabase, error) {
	if len(addrs) == 0 {
		return nil, errors.New("repro: NewReplicatedDatabase needs at least one replica address")
	}
	if name == "" {
		return nil, errors.New("repro: NewReplicatedDatabase needs the database name (lazy handles adopt it)")
	}
	opts.Client.Metrics = opts.Metrics
	d := &ReplicatedDatabase{
		name:      name,
		category:  category,
		numDocs:   numDocs,
		opts:      opts,
		breakers:  opts.Breakers,
		failovers: opts.Metrics.Counter("replica_failover_total"),
		exhausted: opts.Metrics.Counter("replica_exhausted_total"),
	}
	set := &replicaSet{}
	for _, addr := range addrs {
		set.replicas = append(set.replicas, NewLazyRemoteDatabase(addr, name, category, numDocs, opts.Client))
		set.addrs = append(set.addrs, addr)
		set.keys = append(set.keys, name+"@"+addr)
		set.inflight = append(set.inflight, new(atomic.Int64))
		d.breakers.Seed(name+"@"+addr, resilience.HalfOpen)
	}
	if opts.Preferred >= 0 && opts.Preferred < len(addrs) {
		set.preferred = opts.Preferred
	}
	d.set.Store(set)
	return d, nil
}

// Close drains and closes every replica in the background — the path a
// topology swap takes when this whole database leaves the process's
// scope. In-flight calls finish first (they hold the old set), then
// clients close and breakers leave the set.
func (d *ReplicatedDatabase) Close() {
	set := d.set.Load()
	for i := range set.replicas {
		go d.drainReplica(set.replicas[i], set.inflight[i], set.keys[i])
	}
}

// Name implements SearchableDatabase.
func (d *ReplicatedDatabase) Name() string { return d.name }

// Category returns the category the replicas advertise.
func (d *ReplicatedDatabase) Category() string { return d.category }

// NumDocs returns the document count advertised at dial time.
func (d *ReplicatedDatabase) NumDocs() int { return d.numDocs }

// Replicas returns the current replica count.
func (d *ReplicatedDatabase) Replicas() int { return len(d.set.Load().replicas) }

// ReplicaAddrs returns the current replica addresses, in routing-table
// order.
func (d *ReplicatedDatabase) ReplicaAddrs() []string {
	return append([]string(nil), d.set.Load().addrs...)
}

// Preferred returns this process's current affinity replica index.
func (d *ReplicatedDatabase) Preferred() int { return d.set.Load().preferred }

// ProbeTargets returns one health-probe target per current replica,
// keyed like the per-replica breakers ("name@addr"), for a
// resilience.Prober. Recompute after UpdateReplicas (the metasearcher's
// swap path retargets its prober with the result).
func (d *ReplicatedDatabase) ProbeTargets() []resilience.ProbeTarget {
	set := d.set.Load()
	out := make([]resilience.ProbeTarget, len(set.replicas))
	for i, r := range set.replicas {
		out[i] = resilience.ProbeTarget{Name: set.keys[i], Ping: r.Ping}
	}
	return out
}

// UpdateReplicas swaps the replica set to addrs — the live-topology
// reconfiguration path. The swap is atomic for callers: a call in
// flight finishes on the set it loaded at entry; calls entering after
// the swap route over the new set. Per-replica state carries over by
// address: a surviving replica keeps its client (and connection pool),
// its breaker state, and its in-flight count. An added replica gets a
// lazy client (no network I/O here — the swap must not block on a slow
// joiner) and a breaker seeded half-open, so its first call or probe is
// the trial that earns it traffic. Removed replicas are drained in the
// background: once their in-flight count reaches zero (or drainTimeout
// passes), their clients are closed and their breakers leave the set.
//
// Returns the added and removed addresses (the swap audit record).
func (d *ReplicatedDatabase) UpdateReplicas(addrs []string, preferred int) (added, removed []string, err error) {
	if len(addrs) == 0 {
		return nil, nil, fmt.Errorf("repro: replica set of %s cannot become empty (remove the database instead)", d.name)
	}
	d.updateMu.Lock()
	defer d.updateMu.Unlock()

	old := d.set.Load()
	oldAt := make(map[string]int, len(old.addrs))
	for i, addr := range old.addrs {
		oldAt[addr] = i
	}
	next := &replicaSet{}
	if preferred >= 0 && preferred < len(addrs) {
		next.preferred = preferred
	}
	kept := make(map[string]bool, len(addrs))
	for _, addr := range addrs {
		if i, ok := oldAt[addr]; ok {
			kept[addr] = true
			next.replicas = append(next.replicas, old.replicas[i])
			next.inflight = append(next.inflight, old.inflight[i])
		} else {
			added = append(added, addr)
			next.replicas = append(next.replicas, NewLazyRemoteDatabase(addr, d.name, d.category, d.numDocs, d.opts.Client))
			next.inflight = append(next.inflight, new(atomic.Int64))
			d.breakers.Seed(d.name+"@"+addr, resilience.HalfOpen)
		}
		next.addrs = append(next.addrs, addr)
		next.keys = append(next.keys, d.name+"@"+addr)
	}
	d.set.Store(next)

	for i, addr := range old.addrs {
		if kept[addr] {
			continue
		}
		removed = append(removed, addr)
		go d.drainReplica(old.replicas[i], old.inflight[i], old.keys[i])
	}
	return added, removed, nil
}

// drainTimeout bounds how long a removed replica's drain waits for its
// in-flight calls; anything still running afterwards is a straggler on
// a detached breaker, which is harmless.
const drainTimeout = 10 * time.Second

// drainReplica waits for a removed replica's in-flight calls to finish,
// then closes its client and removes its breaker. Order matters: the
// breaker must outlive the last in-flight call so that call's Record
// lands on a real breaker (detached from the gauges by Remove), and the
// client must not close under a call still using it.
func (d *ReplicatedDatabase) drainReplica(r *RemoteDatabase, inflight *atomic.Int64, key string) {
	deadline := time.Now().Add(drainTimeout)
	for inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	d.breakers.Remove(key)
	r.Close()
}

// Ping succeeds while any replica answers its health endpoint — the
// database-level health used by the fan-out's per-database breaker.
func (d *ReplicatedDatabase) Ping(ctx context.Context) error {
	set := d.set.Load()
	var last error
	for _, i := range d.order(set) {
		if last = set.replicas[i].Ping(ctx); last == nil {
			return nil
		}
	}
	return last
}

// stateRank orders breaker states healthiest-first.
func stateRank(s resilience.State) int {
	switch s {
	case resilience.Closed:
		return 0
	case resilience.HalfOpen:
		return 1
	default:
		return 2
	}
}

// order returns set's replica indices in routing order: healthiest
// breaker state first, fewest in-flight calls second (this is what
// steers a hedge away from the replica its primary attempt is
// occupying), then rotation distance from the preferred replica. The
// sort is stable on the rotated order, so equal-health equal-load
// replicas keep affinity.
func (d *ReplicatedDatabase) order(set *replicaSet) []int {
	n := len(set.replicas)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (set.preferred + i) % n
	}
	if n == 1 {
		return idx
	}
	rank := make([]int, n)
	load := make([]int64, n)
	for _, i := range idx {
		load[i] = set.inflight[i].Load()
		if d.breakers != nil {
			rank[i] = stateRank(d.breakers.Get(set.keys[i]).State())
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		return load[ia] < load[ib]
	})
	return idx
}

// call runs fn against replicas in routing order with failover,
// feeding each replica's breaker. It returns the first success; when
// every replica fails it returns the last error (with every replica's
// error joined in). The whole call uses the replica set loaded at
// entry: a topology swap mid-call does not change which replicas this
// call may try.
func (d *ReplicatedDatabase) call(ctx context.Context, fn func(r *RemoteDatabase) error) error {
	set := d.set.Load()
	var errs []error
	tried := 0
	for _, i := range d.order(set) {
		b := d.breakers.Get(set.keys[i])
		if !b.Allow() {
			continue // short-circuited; another replica can serve
		}
		if err := ctx.Err(); err != nil {
			// The caller gave up (deadline, or a hedge lost its race):
			// not this replica's fault.
			b.RecordNeutral()
			return err
		}
		if tried > 0 {
			d.failovers.Inc()
		}
		tried++
		set.inflight[i].Add(1)
		err := fn(set.replicas[i])
		set.inflight[i].Add(-1)
		if err == nil {
			b.Record(true)
			return nil
		}
		switch {
		case ctx.Err() != nil:
			// Cancellation surfacing as a transport error.
			b.RecordNeutral()
			return err
		case wire.IsShed(err):
			// Backpressure, not failure: do not trip the breaker, but do
			// try the next replica — it may have capacity.
			b.RecordNeutral()
		default:
			b.Record(false)
		}
		errs = append(errs, fmt.Errorf("%s: %w", set.keys[i], err))
	}
	d.exhausted.Inc()
	if len(errs) == 0 {
		return fmt.Errorf("repro: every replica of %s is short-circuited", d.name)
	}
	return fmt.Errorf("repro: every replica of %s failed: %w", d.name, errors.Join(errs...))
}

// QueryContext implements ContextSearchableDatabase with replica
// failover.
func (d *ReplicatedDatabase) QueryContext(ctx context.Context, terms []string, limit int) (int, []int, error) {
	var matches int
	var ids []int
	err := d.call(ctx, func(r *RemoteDatabase) error {
		var err error
		matches, ids, err = r.QueryContext(ctx, terms, limit)
		return err
	})
	if err != nil {
		return 0, nil, err
	}
	return matches, ids, nil
}

// FetchContext implements ContextSearchableDatabase with replica
// failover.
func (d *ReplicatedDatabase) FetchContext(ctx context.Context, id int) ([]string, error) {
	var terms []string
	err := d.call(ctx, func(r *RemoteDatabase) error {
		var err error
		terms, err = r.FetchContext(ctx, id)
		return err
	})
	if err != nil {
		return nil, err
	}
	return terms, nil
}

// Query implements SearchableDatabase (the infallible compatibility
// shape): a failed call reports zero matches.
func (d *ReplicatedDatabase) Query(terms []string, limit int) (int, []int) {
	matches, ids, err := d.QueryContext(context.Background(), terms, limit)
	if err != nil {
		return 0, nil
	}
	return matches, ids
}

// Fetch implements SearchableDatabase: a failed call reports an empty
// document.
func (d *ReplicatedDatabase) Fetch(id int) []string {
	terms, err := d.FetchContext(context.Background(), id)
	if err != nil {
		return nil
	}
	return terms
}
