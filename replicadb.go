package repro

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ReplicatedDatabaseOptions configures a ReplicatedDatabase.
type ReplicatedDatabaseOptions struct {
	// Preferred is the index of the replica this process tries first
	// under equal health (a shard's affinity replica from the topology,
	// rotated per owner so R owning shards spread over R replicas).
	// Out of range is treated as 0.
	Preferred int
	// Breakers, when non-nil, tracks one circuit breaker per replica
	// under the key "name@addr" — pass the metasearcher's set
	// (Metasearcher.Breakers) so replica states show on /debug/breakers
	// next to the database-level breakers the fan-out keeps. Nil
	// disables replica breakers (every replica is always eligible).
	Breakers *resilience.Set
	// Metrics receives replica_failover_total and
	// replica_exhausted_total, plus the wire client series of every
	// replica (may be nil).
	Metrics *telemetry.Registry
	// Client configures each replica's wire client.
	Client RemoteDatabaseOptions
}

// ReplicatedDatabase is one logical text database served by several
// dbnode processes with identical content. It implements
// ContextSearchableDatabase over the replica set with replica-aware
// routing:
//
//   - Replicas are tried in health order: breaker state first (closed
//     before half-open before open), in-flight count second, affinity
//     third — so a hedged duplicate of an in-flight call (the search
//     fan-out's Hedged machinery calls QueryContext twice) naturally
//     races a *different* replica, and first success wins.
//   - A failed replica feeds its own breaker and the call fails over
//     to the next; the call errors only when every replica failed.
//   - Each replica is a probe target (ProbeTargets), so an open
//     replica breaker closes as soon as its process recovers.
//
// Safe for concurrent use.
type ReplicatedDatabase struct {
	name     string
	category string
	numDocs  int

	preferred int
	replicas  []*RemoteDatabase
	keys      []string // breaker keys, "name@addr"
	inflight  []atomic.Int64

	breakers  *resilience.Set
	failovers *telemetry.Counter
	exhausted *telemetry.Counter
}

var _ ContextSearchableDatabase = (*ReplicatedDatabase)(nil)

// DialReplicatedDatabase dials every replica address and verifies they
// advertise the same database (same name). All replicas must be
// reachable at dial time; afterwards the database stays usable while
// any one replica is.
func DialReplicatedDatabase(ctx context.Context, addrs []string, opts ReplicatedDatabaseOptions) (*ReplicatedDatabase, error) {
	if len(addrs) == 0 {
		return nil, errors.New("repro: DialReplicatedDatabase needs at least one replica address")
	}
	d := &ReplicatedDatabase{
		breakers:  opts.Breakers,
		inflight:  make([]atomic.Int64, len(addrs)),
		failovers: opts.Metrics.Counter("replica_failover_total"),
		exhausted: opts.Metrics.Counter("replica_exhausted_total"),
	}
	opts.Client.Metrics = opts.Metrics
	for i, addr := range addrs {
		r, err := DialRemoteDatabase(ctx, addr, opts.Client)
		if err != nil {
			return nil, fmt.Errorf("repro: replica %d of %d: %w", i+1, len(addrs), err)
		}
		if i == 0 {
			d.name, d.category, d.numDocs = r.Name(), r.Category(), r.NumDocs()
		} else if r.Name() != d.name {
			return nil, fmt.Errorf("repro: replica %s serves database %q, replica %s serves %q — a replica set must serve one database",
				addrs[i], r.Name(), addrs[0], d.name)
		}
		d.replicas = append(d.replicas, r)
		d.keys = append(d.keys, d.name+"@"+addr)
	}
	if opts.Preferred >= 0 && opts.Preferred < len(addrs) {
		d.preferred = opts.Preferred
	}
	return d, nil
}

// Name implements SearchableDatabase.
func (d *ReplicatedDatabase) Name() string { return d.name }

// Category returns the category the replicas advertise.
func (d *ReplicatedDatabase) Category() string { return d.category }

// NumDocs returns the document count advertised at dial time.
func (d *ReplicatedDatabase) NumDocs() int { return d.numDocs }

// Replicas returns the replica count.
func (d *ReplicatedDatabase) Replicas() int { return len(d.replicas) }

// Preferred returns this process's affinity replica index.
func (d *ReplicatedDatabase) Preferred() int { return d.preferred }

// ProbeTargets returns one health-probe target per replica, keyed like
// the per-replica breakers ("name@addr"), for a resilience.Prober.
func (d *ReplicatedDatabase) ProbeTargets() []resilience.ProbeTarget {
	out := make([]resilience.ProbeTarget, len(d.replicas))
	for i, r := range d.replicas {
		out[i] = resilience.ProbeTarget{Name: d.keys[i], Ping: r.Ping}
	}
	return out
}

// Ping succeeds while any replica answers its health endpoint — the
// database-level health used by the fan-out's per-database breaker.
func (d *ReplicatedDatabase) Ping(ctx context.Context) error {
	var last error
	for _, i := range d.order() {
		if last = d.replicas[i].Ping(ctx); last == nil {
			return nil
		}
	}
	return last
}

// stateRank orders breaker states healthiest-first.
func stateRank(s resilience.State) int {
	switch s {
	case resilience.Closed:
		return 0
	case resilience.HalfOpen:
		return 1
	default:
		return 2
	}
}

// order returns replica indices in routing order: healthiest breaker
// state first, fewest in-flight calls second (this is what steers a
// hedge away from the replica its primary attempt is occupying), then
// rotation distance from the preferred replica. The sort is stable on
// the rotated order, so equal-health equal-load replicas keep affinity.
func (d *ReplicatedDatabase) order() []int {
	n := len(d.replicas)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (d.preferred + i) % n
	}
	if n == 1 {
		return idx
	}
	rank := make([]int, n)
	load := make([]int64, n)
	for _, i := range idx {
		load[i] = d.inflight[i].Load()
		if d.breakers != nil {
			rank[i] = stateRank(d.breakers.Get(d.keys[i]).State())
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		return load[ia] < load[ib]
	})
	return idx
}

// call runs fn against replicas in routing order with failover,
// feeding each replica's breaker. It returns the first success; when
// every replica fails it returns the last error (with every replica's
// error joined in).
func (d *ReplicatedDatabase) call(ctx context.Context, fn func(r *RemoteDatabase) error) error {
	var errs []error
	tried := 0
	for _, i := range d.order() {
		b := d.breakers.Get(d.keys[i])
		if !b.Allow() {
			continue // short-circuited; another replica can serve
		}
		if err := ctx.Err(); err != nil {
			// The caller gave up (deadline, or a hedge lost its race):
			// not this replica's fault.
			b.RecordNeutral()
			return err
		}
		if tried > 0 {
			d.failovers.Inc()
		}
		tried++
		d.inflight[i].Add(1)
		err := fn(d.replicas[i])
		d.inflight[i].Add(-1)
		if err == nil {
			b.Record(true)
			return nil
		}
		switch {
		case ctx.Err() != nil:
			// Cancellation surfacing as a transport error.
			b.RecordNeutral()
			return err
		case wire.IsShed(err):
			// Backpressure, not failure: do not trip the breaker, but do
			// try the next replica — it may have capacity.
			b.RecordNeutral()
		default:
			b.Record(false)
		}
		errs = append(errs, fmt.Errorf("%s: %w", d.keys[i], err))
	}
	d.exhausted.Inc()
	if len(errs) == 0 {
		return fmt.Errorf("repro: every replica of %s is short-circuited", d.name)
	}
	return fmt.Errorf("repro: every replica of %s failed: %w", d.name, errors.Join(errs...))
}

// QueryContext implements ContextSearchableDatabase with replica
// failover.
func (d *ReplicatedDatabase) QueryContext(ctx context.Context, terms []string, limit int) (int, []int, error) {
	var matches int
	var ids []int
	err := d.call(ctx, func(r *RemoteDatabase) error {
		var err error
		matches, ids, err = r.QueryContext(ctx, terms, limit)
		return err
	})
	if err != nil {
		return 0, nil, err
	}
	return matches, ids, nil
}

// FetchContext implements ContextSearchableDatabase with replica
// failover.
func (d *ReplicatedDatabase) FetchContext(ctx context.Context, id int) ([]string, error) {
	var terms []string
	err := d.call(ctx, func(r *RemoteDatabase) error {
		var err error
		terms, err = r.FetchContext(ctx, id)
		return err
	})
	if err != nil {
		return nil, err
	}
	return terms, nil
}

// Query implements SearchableDatabase (the infallible compatibility
// shape): a failed call reports zero matches.
func (d *ReplicatedDatabase) Query(terms []string, limit int) (int, []int) {
	matches, ids, err := d.QueryContext(context.Background(), terms, limit)
	if err != nil {
		return 0, nil
	}
	return matches, ids
}

// Fetch implements SearchableDatabase: a failed call reports an empty
// document.
func (d *ReplicatedDatabase) Fetch(id int) []string {
	terms, err := d.FetchContext(context.Background(), id)
	if err != nil {
		return nil
	}
	return terms
}
