package repro

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestPipelineSurvivesFlakyNodes drives the full pipeline through nodes
// that reject 25% of all requests with injected 503s. The build and the
// search must both succeed (the client's retries plus the samplers'
// tolerance absorb the faults), and the client retry telemetry must
// reconcile exactly with the injected-fault ground truth: every
// injected failure is a failed attempt the client either retried
// (wire_client_retries_total) or gave up on (wire_request_errors_total).
func TestPipelineSurvivesFlakyNodes(t *testing.T) {
	shards, lexicon := testbedShards(t, 3)
	query := strings.Join([]string{shards[0].docs[0][0], shards[0].docs[0][1]}, " ")

	opts := testbedOptions(lexicon)
	// This test repeats the same query across a node death and asserts
	// the fan-out degrades; the result cache would answer from memory.
	opts.Cache.Disable = true
	m := New(opts)
	reg := m.Metrics()
	var flakies []*wire.Flaky
	var servers []*httptest.Server
	for i, s := range shards {
		flaky := wire.NewFlaky(
			wire.NewServer(NewLocalDatabaseFromTerms(s.name, s.docs),
				wire.ServerOptions{Category: s.category, Metrics: reg}),
			wire.FlakyOptions{FailureRate: 0.25, Seed: int64(1000 + i)})
		srv := httptest.NewServer(flaky)
		t.Cleanup(srv.Close)
		flakies = append(flakies, flaky)
		servers = append(servers, srv)
		rdb, err := DialRemoteDatabase(context.Background(), srv.URL, RemoteDatabaseOptions{
			MaxRetries:  6,
			BackoffBase: time.Millisecond,
			BackoffMax:  4 * time.Millisecond,
			Metrics:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
	}

	if err := m.BuildSummaries(); err != nil {
		t.Fatalf("build over flaky nodes: %v", err)
	}
	results, err := m.Search(query, 3, 5)
	if err != nil {
		t.Fatalf("search over flaky nodes: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("search over flaky nodes returned no results")
	}

	// Reconcile client telemetry against the injected ground truth.
	var injected int64
	for _, f := range flakies {
		injected += f.Injected()
	}
	retries := reg.Counter("wire_client_retries_total").Value()
	errors := reg.Counter("wire_request_errors_total").Value()
	if injected == 0 {
		t.Fatal("fault injection never fired; the test is not exercising retries")
	}
	if retries+errors != injected {
		t.Errorf("retry accounting does not reconcile: %d injected != %d retries + %d terminal errors",
			injected, retries, errors)
	}
	if retries == 0 {
		t.Error("wire_client_retries_total is zero despite injected faults")
	}
	if lat := reg.Histogram("wire_request_latency", nil).Count(); lat == 0 {
		t.Error("wire_request_latency recorded no observations")
	}

	// The wire series must be visible on the exposition endpoint.
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"wire_requests_total",
		"wire_client_retries_total",
		"wire_request_errors_total",
		"wire_request_latency",
		"wire_server_requests_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}

	// Kill one node outright: Search must degrade to the remaining two,
	// counting the dead database as unavailable rather than failing.
	unavailableBefore := reg.Counter("search_db_unavailable_total").Value()
	servers[0].Close()
	results, err = m.Search(query, 3, 5)
	if err != nil {
		t.Fatalf("search with a dead node: %v", err)
	}
	for _, r := range results {
		if r.Database == shards[0].name {
			t.Fatalf("dead node %s contributed result %+v", shards[0].name, r)
		}
	}
	if got := reg.Counter("search_db_unavailable_total").Value(); got <= unavailableBefore {
		t.Errorf("search_db_unavailable_total did not grow past %d when a node died", unavailableBefore)
	}
}
