package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 31})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh metasearcher with no live databases can answer queries
	// from the loaded summaries alone.
	m2 := New(Options{})
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	want, err := m.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(want) == 0 || got[0].Database != want[0].Database {
		t.Errorf("loaded selection %v, original %v", got, want)
	}
	// Info still works after loading.
	info, err := m2.Info("cardio")
	if err != nil {
		t.Fatal(err)
	}
	if info.EstimatedSize == 0 || info.SummaryWords == 0 {
		t.Errorf("loaded info incomplete: %+v", info)
	}
}

func TestSaveLoadBuildTelemetry(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 34})
	orig, err := m.Info("cardio")
	if err != nil {
		t.Fatal(err)
	}
	if orig.SampleQueries == 0 || orig.EMIterations == 0 {
		t.Fatalf("build telemetry missing before save: %+v", orig)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{})
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Info("cardio")
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleQueries != orig.SampleQueries || got.EMIterations != orig.EMIterations {
		t.Errorf("provenance after round trip = %d queries / %d EM iters, want %d / %d",
			got.SampleQueries, got.EMIterations, orig.SampleQueries, orig.EMIterations)
	}
	if len(got.MixtureWeights) != len(orig.MixtureWeights) {
		t.Fatalf("λ vector length %d, want %d", len(got.MixtureWeights), len(orig.MixtureWeights))
	}
	for i := range got.MixtureWeights {
		if got.MixtureWeights[i] != orig.MixtureWeights[i] {
			t.Errorf("λ[%d] = %+v, want %+v", i, got.MixtureWeights[i], orig.MixtureWeights[i])
		}
	}
	// A save file from before telemetry persistence (no telemetry key)
	// still loads, with zero provenance.
	legacy := `{"version": 1, "databases": [{"name": "x", "category": "Heart",
		"size_estimate": 10, "sample_size": 5,
		"summary": {"version":1,"num_docs":10,"words":[{"w":"blood","p":0.5}]}}]}`
	m3 := New(Options{})
	if err := m3.Load(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	info, err := m3.Info("x")
	if err != nil {
		t.Fatal(err)
	}
	if info.SampleQueries != 0 {
		t.Errorf("legacy save produced provenance %+v", info)
	}
}

func TestSaveRequiresBuild(t *testing.T) {
	m := New(Options{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("Save before BuildSummaries accepted")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	m := New(Options{})
	cases := map[string]string{
		"garbage":          "not json at all",
		"wrong version":    `{"version": 9, "databases": [{"name": "x"}]}`,
		"empty":            `{"version": 1, "databases": []}`,
		"unknown category": `{"version": 1, "databases": [{"name": "x", "category": "Bogus", "summary": {"version":1,"num_docs":1,"words":[]}}]}`,
		"dup name":         `{"version": 1, "databases": [{"name": "x", "category": "Heart", "summary": {"version":1,"num_docs":1,"words":[]}}, {"name": "x", "category": "Heart", "summary": {"version":1,"num_docs":1,"words":[]}}]}`,
		"bad summary":      `{"version": 1, "databases": [{"name": "x", "category": "Heart", "summary": {"version":7}}]}`,
	}
	for name, in := range cases {
		if err := m.Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 35})
	path := filepath.Join(t.TempDir(), "state.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"checksum":"sha256:`) {
		t.Error("save file carries no content checksum")
	}
	m2 := New(Options{})
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	want, err := m.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(want) == 0 || got[0].Database != want[0].Database {
		t.Errorf("loaded selection %v, original %v", got, want)
	}
}

func TestLoadRejectsCorruptedFile(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 36})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the content without breaking the JSON: the kind of damage
	// a torn write or bit flip leaves that version checks cannot catch.
	corrupt := bytes.Replace(buf.Bytes(), []byte(`"name":"cardio"`), []byte(`"name":"cardiX"`), 1)
	if bytes.Equal(corrupt, buf.Bytes()) {
		t.Fatal("corruption did not change the save bytes")
	}
	m2 := New(Options{})
	err := m2.Load(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupted save file loaded without error")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("corruption error = %v, want a checksum mismatch", err)
	}
}

func TestLoadAcceptsChecksumlessFile(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 37})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A save from before the checksum field existed: same content, no
	// checksum key. It must still load.
	var env map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if _, ok := env["checksum"]; !ok {
		t.Fatal("save output carries no checksum to strip")
	}
	delete(env, "checksum")
	legacy, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{})
	if err := m2.Load(bytes.NewReader(legacy)); err != nil {
		t.Fatalf("checksum-less save rejected: %v", err)
	}
	if _, err := m2.Select("blood pressure hypertension", 2); err != nil {
		t.Fatal(err)
	}
}

// TestLoadKeepsLiveHandles covers the -load + -remote deployment: dial
// the nodes first, load offline-built summaries second, and Search
// works immediately because the registered handles survive the load.
func TestLoadKeepsLiveHandles(t *testing.T) {
	shards, lexicon := testbedShards(t, 2)
	query := strings.Join([]string{shards[0].docs[0][0], shards[0].docs[0][1]}, " ")

	m := New(testbedOptions(lexicon))
	for _, s := range shards {
		if err := m.AddDatabase(NewLocalDatabaseFromTerms(s.name, s.docs), s.category); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	want, err := m.Search(query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("search before persistence returned no results")
	}

	// Without live handles a loaded metasearcher can Select but not
	// Search — the error must say so.
	bare := New(testbedOptions(lexicon))
	if err := bare.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Search(query, 2, 5); err == nil {
		t.Error("search without live handles reported success")
	}

	// With the same databases dialed before the load, the handles are
	// kept and the search matches the original.
	live := New(testbedOptions(lexicon))
	for _, s := range shards {
		srv := httptest.NewServer(wire.NewServer(
			NewLocalDatabaseFromTerms(s.name, s.docs),
			wire.ServerOptions{Category: s.category}))
		t.Cleanup(srv.Close)
		rdb, err := DialRemoteDatabase(context.Background(), srv.URL, RemoteDatabaseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := live.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := live.Search(query, 2, 5)
	if err != nil {
		t.Fatalf("search after load with live handles: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("search after load diverges:\n got: %+v\nwant: %+v", got, want)
	}
}

func TestLoadReplacesState(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 32})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := buildTestMetasearcher(t, Options{Seed: 33})
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The loaded state must mirror the saved metasearcher, not the old one.
	i1, err := m.Info("onco")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := m2.Info("onco")
	if err != nil {
		t.Fatal(err)
	}
	if i1.EstimatedSize != i2.EstimatedSize || i1.SummaryWords != i2.SummaryWords {
		t.Errorf("loaded info %+v differs from saved %+v", i2, i1)
	}
}
