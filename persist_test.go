package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 31})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh metasearcher with no live databases can answer queries
	// from the loaded summaries alone.
	m2 := New(Options{})
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	want, err := m.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(want) == 0 || got[0].Database != want[0].Database {
		t.Errorf("loaded selection %v, original %v", got, want)
	}
	// Info still works after loading.
	info, err := m2.Info("cardio")
	if err != nil {
		t.Fatal(err)
	}
	if info.EstimatedSize == 0 || info.SummaryWords == 0 {
		t.Errorf("loaded info incomplete: %+v", info)
	}
}

func TestSaveLoadBuildTelemetry(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 34})
	orig, err := m.Info("cardio")
	if err != nil {
		t.Fatal(err)
	}
	if orig.SampleQueries == 0 || orig.EMIterations == 0 {
		t.Fatalf("build telemetry missing before save: %+v", orig)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{})
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Info("cardio")
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleQueries != orig.SampleQueries || got.EMIterations != orig.EMIterations {
		t.Errorf("provenance after round trip = %d queries / %d EM iters, want %d / %d",
			got.SampleQueries, got.EMIterations, orig.SampleQueries, orig.EMIterations)
	}
	if len(got.MixtureWeights) != len(orig.MixtureWeights) {
		t.Fatalf("λ vector length %d, want %d", len(got.MixtureWeights), len(orig.MixtureWeights))
	}
	for i := range got.MixtureWeights {
		if got.MixtureWeights[i] != orig.MixtureWeights[i] {
			t.Errorf("λ[%d] = %+v, want %+v", i, got.MixtureWeights[i], orig.MixtureWeights[i])
		}
	}
	// A save file from before telemetry persistence (no telemetry key)
	// still loads, with zero provenance.
	legacy := `{"version": 1, "databases": [{"name": "x", "category": "Heart",
		"size_estimate": 10, "sample_size": 5,
		"summary": {"version":1,"num_docs":10,"words":[{"w":"blood","p":0.5}]}}]}`
	m3 := New(Options{})
	if err := m3.Load(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	info, err := m3.Info("x")
	if err != nil {
		t.Fatal(err)
	}
	if info.SampleQueries != 0 {
		t.Errorf("legacy save produced provenance %+v", info)
	}
}

func TestSaveRequiresBuild(t *testing.T) {
	m := New(Options{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("Save before BuildSummaries accepted")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	m := New(Options{})
	cases := map[string]string{
		"garbage":          "not json at all",
		"wrong version":    `{"version": 9, "databases": [{"name": "x"}]}`,
		"empty":            `{"version": 1, "databases": []}`,
		"unknown category": `{"version": 1, "databases": [{"name": "x", "category": "Bogus", "summary": {"version":1,"num_docs":1,"words":[]}}]}`,
		"dup name":         `{"version": 1, "databases": [{"name": "x", "category": "Heart", "summary": {"version":1,"num_docs":1,"words":[]}}, {"name": "x", "category": "Heart", "summary": {"version":1,"num_docs":1,"words":[]}}]}`,
		"bad summary":      `{"version": 1, "databases": [{"name": "x", "category": "Heart", "summary": {"version":7}}]}`,
	}
	for name, in := range cases {
		if err := m.Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadReplacesState(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 32})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := buildTestMetasearcher(t, Options{Seed: 33})
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The loaded state must mirror the saved metasearcher, not the old one.
	i1, err := m.Info("onco")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := m2.Info("onco")
	if err != nil {
		t.Fatal(err)
	}
	if i1.EstimatedSize != i2.EstimatedSize || i1.SummaryWords != i2.SummaryWords {
		t.Errorf("loaded info %+v differs from saved %+v", i2, i1)
	}
}
