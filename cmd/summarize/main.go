// Command summarize demonstrates content-summary construction for one
// database of a synthetic testbed: it samples the database (QBS or
// FPS), optionally refines frequencies (Appendix A), shrinks the
// summary over the topic hierarchy (Section 3), and prints the λ
// mixture weights plus a side-by-side comparison of the unshrunk and
// shrunk summaries against the ground truth.
//
// Usage:
//
//	summarize [-db www.heart-1.example] [-sampler qbs|fps] [-freqest]
//	          [-scale small|default] [-seed 1] [-words 15] [-out report.txt]
//
// -out writes the report to a file instead of stdout, atomically: the
// report lands in a temp file and is renamed into place only once fully
// written, so a crash cannot leave a truncated report behind.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/atomicfile"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("summarize: ")
	var (
		dbName  = flag.String("db", "", "database name (default: first database)")
		sampler = flag.String("sampler", "qbs", "sampling algorithm: qbs | fps")
		freqEst = flag.Bool("freqest", true, "apply Appendix A frequency estimation")
		scale   = flag.String("scale", "small", "testbed scale: small | default")
		seed    = flag.Int64("seed", 1, "synthetic world seed")
		words   = flag.Int("words", 15, "words to display")
		outFile = flag.String("out", "", "write the report to this file (atomic write) instead of stdout")
	)
	flag.Parse()

	var buf bytes.Buffer
	out := io.Writer(os.Stdout)
	if *outFile != "" {
		out = &buf
	}

	sc := experiments.TestScale()
	if *scale == "default" {
		sc = experiments.DefaultScale()
	}
	sc.Seed = *seed
	w, err := experiments.BuildWorld(experiments.Web, sc)
	if err != nil {
		log.Fatal(err)
	}

	kind := experiments.QBS
	if *sampler == "fps" {
		kind = experiments.FPS
	}
	sums, err := w.BuildSummaries(experiments.Config{Sampler: kind, FreqEst: *freqEst})
	if err != nil {
		log.Fatal(err)
	}

	di := 0
	if *dbName != "" {
		di = -1
		for i, db := range w.Bed.Databases {
			if db.Name == *dbName {
				di = i
				break
			}
		}
		if di < 0 {
			log.Fatalf("no database named %q; try one of the first few: %s, %s, ...",
				*dbName, w.Bed.Databases[0].Name, w.Bed.Databases[1].Name)
		}
	}

	db := w.Bed.Databases[di]
	truth := w.Truth[di]
	unshrunk := sums.Unshrunk[di]
	shrunk := sums.Shrunk[di]

	fmt.Fprintf(out, "Database %s\n", db.Name)
	fmt.Fprintf(out, "  true classification: %s\n", w.Bed.Tree.PathString(db.Category))
	fmt.Fprintf(out, "  classification used: %s\n", w.Bed.Tree.PathString(sums.Class[di]))
	fmt.Fprintf(out, "  |D| = %d true, %.0f estimated (sample of %d docs)\n\n",
		db.Size(), sums.SizeEst[di], unshrunk.SampleSize)

	fmt.Fprintln(out, "Mixture weights λ (Figure 2 EM):")
	for _, l := range shrunk.Lambdas() {
		fmt.Fprintf(out, "  %-24s %6.3f\n", l.Component, l.Weight)
	}
	fmt.Fprintln(out)

	mat := shrunk.Materialize(1)
	fmt.Fprintf(out, "Summary quality vs the perfect S(D):\n")
	fmt.Fprintf(out, "  %-22s %10s %10s\n", "metric", "unshrunk", "shrunk")
	un := metrics.ApplyRoundRule(unshrunk)
	fmt.Fprintf(out, "  %-22s %10.3f %10.3f\n", "weighted recall", metrics.WeightedRecall(truth, un), metrics.WeightedRecall(truth, mat))
	fmt.Fprintf(out, "  %-22s %10.3f %10.3f\n", "unweighted recall", metrics.UnweightedRecall(truth, un), metrics.UnweightedRecall(truth, mat))
	fmt.Fprintf(out, "  %-22s %10.3f %10.3f\n", "weighted precision", metrics.WeightedPrecision(truth, un), metrics.WeightedPrecision(truth, mat))
	fmt.Fprintf(out, "  %-22s %10.3f %10.3f\n", "unweighted precision", metrics.UnweightedPrecision(truth, un), metrics.UnweightedPrecision(truth, mat))
	fmt.Fprintf(out, "  %-22s %10d %10d\n", "vocabulary", un.Len(), mat.Len())
	fmt.Fprintln(out)

	fmt.Fprintf(out, "Words recovered by shrinkage (in S(D), missed by the sample):\n")
	type rec struct {
		w          string
		truthP, pr float64
	}
	var recovered []rec
	for word := range mat.Words {
		if !unshrunk.Contains(word) && truth.Contains(word) {
			recovered = append(recovered, rec{word, truth.P(word), mat.P(word)})
		}
	}
	sort.Slice(recovered, func(a, b int) bool { return recovered[a].truthP > recovered[b].truthP })
	if len(recovered) > *words {
		recovered = recovered[:*words]
	}
	fmt.Fprintf(out, "  %-24s %12s %12s\n", "word", "true p(w|D)", "p̂R(w|D)")
	for _, r := range recovered {
		fmt.Fprintf(out, "  %-24s %12.5f %12.5f\n", r.w, r.truthP, r.pr)
	}

	if *outFile != "" {
		if err := atomicfile.Write(*outFile, 0o644, func(f *os.File) error {
			_, err := f.Write(buf.Bytes())
			return err
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *outFile)
	}
}
