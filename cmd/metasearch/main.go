// Command metasearch is an end-to-end demonstration metasearcher: it
// builds a synthetic Web testbed, registers every database with the
// library's Metasearcher (query-based sampling, shrinkage-based
// summaries, adaptive selection), and answers queries from stdin (or
// the command line) by printing the selected databases and the merged
// document ranking.
//
// Usage:
//
//	metasearch [-scale small|default] [-scorer cori|bgloss|lm] [-k 5] \
//	           [-listen :8080] [-remote host:port,...] [-v] [-trace] \
//	           [-explain] [-audit queries.jsonl] \
//	           [-save state.json] [-load state.json] \
//	           [-deadline 2s] [-hedge-after 100ms] [-probe-interval 2s] \
//	           [query ...]
//
// With no query arguments, queries are read one per line from stdin.
//
// With -remote, the metasearcher talks to dbnode servers over the wire
// protocol instead of registering in-process databases; the nodes must
// serve shards of the same testbed (same dbnode -scale and -seed) for
// the term spaces to line up. Every wire request carries the query's
// trace context (X-Trace-Id / X-Parent-Span), so a dbnode started with
// -trace logs spans that join this process's traces.
//
// With -explain, each query is followed by its selection audit record:
// every candidate database's score, the shrink-or-not verdict with the
// Monte-Carlo mean/σ behind it and the λ mixture used, per-node call
// costs, and merged-result provenance. -audit appends the same records
// as JSONL to a file.
//
// With -listen, an HTTP server exposes the operational surface while
// the process runs:
//
//	/metrics           pipeline counters/gauges/histograms and p50/p95/p99
//	                   latency windows (Prometheus text; ?format=json for
//	                   a JSON snapshot)
//	/debug/vars        the same registry as an expvar under "metasearch"
//	/debug/queries     recent per-query audit records (?n=50 for more);
//	                   /debug/queries/{id} returns one record by id
//	/debug/breakers    every node's circuit-breaker state (state, window,
//	                   trips, short-circuits)
//	/debug/pprof       the standard Go profiling endpoints
//
// -deadline bounds each query's whole fan-out; -hedge-after tunes when a
// slow node query is hedged with a duplicate (0 auto-derives the
// threshold from the observed wire p95); -probe-interval enables
// background health probes that close a tripped node's breaker as soon
// as it recovers. -save persists built summaries (atomic write, content
// checksum); -load restores them, skipping sampling — with -remote, the
// dialed nodes keep their live handles, so Search works immediately.
package main

import (
	"bufio"
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/telemetry"
)

// sanitize and sanitizeAll map the synthetic testbed's underscore
// vocabulary into the full text pipeline's token space (see
// experiments.Sanitize); cmd/dbnode applies the same mapping when
// serving a testbed shard, so -remote mode sees identical terms.
func sanitize(w string) string { return experiments.Sanitize(w) }

func sanitizeAll(ws []string) []string { return experiments.SanitizeAll(ws) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("metasearch: ")
	var (
		scale      = flag.String("scale", "small", "testbed scale: small | default")
		scorerName = flag.String("scorer", "cori", "selection algorithm: cori | bgloss | lm")
		k          = flag.Int("k", 5, "databases to select per query")
		perDB      = flag.Int("perdb", 3, "documents to retrieve per selected database")
		seed       = flag.Int64("seed", 1, "synthetic world seed")
		listen     = flag.String("listen", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :8080)")
		remote     = flag.String("remote", "", "comma-separated dbnode addresses (host:port,...); metasearch over these remote nodes instead of in-process databases (start them with: dbnode -testbed <name> -scale ... -seed ...)")
		verbose    = flag.Bool("v", false, "log pipeline progress to stderr")
		trace      = flag.Bool("trace", false, "log structured trace events (spans, EM convergence, adaptive decisions) to stderr")
		explain    = flag.Bool("explain", false, "print each query's selection audit record (scores, shrinkage verdicts, per-node costs)")
		auditFile  = flag.String("audit", "", "append every query's audit record to this file as JSONL")
		saveFile   = flag.String("save", "", "after building summaries, save them to this file (atomic write + checksum)")
		loadFile   = flag.String("load", "", "load summaries from this file instead of sampling (pairs with -remote for live handles)")
		deadline   = flag.Duration("deadline", 0, "overall per-query fan-out deadline budget (0 = none)")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge a node query after this latency (0 = auto from observed p95, negative = off)")
		probeEvery = flag.Duration("probe-interval", 0, "background health-probe interval for tripped nodes (0 = off)")
	)
	flag.Parse()

	sc := experiments.TestScale()
	if *scale == "default" {
		sc = experiments.DefaultScale()
	}
	sc.Seed = *seed

	log.Print("building Web testbed...")
	w, err := experiments.BuildWorld(experiments.Web, sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d databases, %d documents", len(w.Bed.Databases), w.Bed.TotalDocs())

	// Observability wiring: a logger for -v, a trace observer for
	// -trace, and the metrics registry that the HTTP endpoints serve.
	opts := repro.Options{
		SampleSize:  sc.SampleTarget,
		Scorer:      *scorerName,
		SeedLexicon: sanitizeAll(w.Lexicon),
		Seed:        *seed,
		Parallelism: runtime.GOMAXPROCS(0),
		// The synthetic vocabulary is not English: stemming or stopword
		// removal would mangle its token space.
		KeepStopwords: true,
		NoStemming:    true,
		Resilience: repro.ResilienceOptions{
			DeadlineBudget: *deadline,
			HedgeAfter:     *hedgeAfter,
		},
	}
	if *verbose {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *trace {
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})
		opts.Observer = telemetry.NewLogObserver(slog.New(h))
	}
	if *auditFile != "" {
		f, err := os.OpenFile(*auditFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("audit log: %v", err)
		}
		defer f.Close()
		opts.AuditLog = f
	}
	m := repro.New(opts)

	if *listen != "" {
		m.Metrics().PublishExpvar("metasearch")
		mux := http.NewServeMux()
		mux.Handle("/metrics", m.Metrics().Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/queries", m.Audit().Handler())
		mux.Handle("/debug/queries/", m.Audit().Handler())
		mux.Handle("/debug/breakers", m.Breakers().Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("telemetry on http://%s/metrics (and /debug/vars, /debug/pprof)", *listen)
			if err := http.ListenAndServe(*listen, mux); err != nil {
				log.Fatalf("telemetry server: %v", err)
			}
		}()
	}

	// Register the databases: either every testbed database in-process
	// under its directory category (the paper's "existing classification"
	// case, so no probe training is needed), or — with -remote — the
	// dbnode servers at the given addresses, each under the category it
	// advertises. A dbnode serving a shard of the same testbed (same
	// -scale and -seed) yields the same terms, so the pipeline produces
	// identical summaries and rankings either way.
	if *remote != "" {
		for _, addr := range strings.Split(*remote, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			rdb, err := repro.DialRemoteDatabase(context.Background(), addr, repro.RemoteDatabaseOptions{
				Metrics: m.Metrics(),
			})
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("connected to %s: %s (%d docs, category %q)",
				rdb.BaseURL(), rdb.Name(), rdb.NumDocs(), rdb.Category())
			if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		for _, db := range w.Bed.Databases {
			docs := make([][]string, db.Index.NumDocs())
			for id := range docs {
				docs[id] = sanitizeAll(db.Index.Doc(index.DocID(id)))
			}
			cat := w.Bed.Tree.Node(db.Category).Name
			if err := m.AddDatabase(repro.NewLocalDatabaseFromTerms(db.Name, docs), cat); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *loadFile != "" {
		log.Printf("loading summaries from %s...", *loadFile)
		if err := m.LoadFile(*loadFile); err != nil {
			log.Fatal(err)
		}
	} else {
		log.Print("sampling databases and building shrunk summaries (QBS + frequency estimation)...")
		if err := m.BuildSummaries(); err != nil {
			log.Fatal(err)
		}
	}
	if *saveFile != "" {
		if err := m.SaveFile(*saveFile); err != nil {
			log.Fatal(err)
		}
		log.Printf("summaries saved to %s", *saveFile)
	}
	if *probeEvery > 0 {
		stop := m.StartHealthProbes(*probeEvery)
		defer stop()
	}

	answer := func(query string) {
		if strings.TrimSpace(query) == "" {
			return
		}
		sels, err := m.Select(query, *k)
		if err != nil {
			fmt.Printf("%-40s -> %v\n", query, err)
			return
		}
		if len(sels) == 0 {
			fmt.Printf("%-40s -> no database selected\n", query)
			return
		}
		fmt.Printf("%s ->\n", query)
		for i, s := range sels {
			mark := " "
			if s.Shrinkage {
				mark = "*" // shrunk summary used for this query/database
			}
			info, _ := m.Info(s.Database)
			fmt.Printf("  %2d.%s %-34s score %-12.4g %s\n", i+1, mark, s.Database, s.Score, info.Category)
		}
		results, err := m.Search(query, *k, *perDB)
		if err != nil {
			fmt.Printf("  search: %v\n", err)
			if *explain {
				m.Audit().Last().Format(os.Stdout)
			}
			return
		}
		if len(results) > 8 {
			results = results[:8]
		}
		for _, res := range results {
			fmt.Printf("     doc %s/%d  %.4f\n", res.Database, res.DocID, res.Score)
		}
		if *explain {
			m.Audit().Last().Format(os.Stdout)
		}
	}

	if flag.NArg() > 0 {
		answer(strings.Join(flag.Args(), " "))
		return
	}

	// Show a few example topical words the user can query with.
	if v := w.Bed.Gen.CategoryVocab(mustLookup(w, "Heart")); v != nil {
		fmt.Printf("example query words: %s %s %s (Heart topic)\n",
			sanitize(v.Word(3)), sanitize(v.Word(20)), sanitize(v.Word(50)))
	}
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		answer(scanner.Text())
		fmt.Print("> ")
	}
}

func mustLookup(w *experiments.World, name string) hierarchy.NodeID {
	n, ok := w.Bed.Tree.Lookup(name)
	if !ok {
		log.Fatalf("category %s missing", name)
	}
	return n
}
