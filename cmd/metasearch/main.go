// Command metasearch is an end-to-end demonstration metasearcher: it
// builds a synthetic Web testbed, constructs shrinkage-based content
// summaries for every database, and answers queries from stdin (or the
// command line) by printing the selected databases.
//
// Usage:
//
//	metasearch [-scale small|default] [-scorer cori|bgloss|lm] [-k 5] [query ...]
//
// With no query arguments, queries are read one per line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/selection"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metasearch: ")
	var (
		scale      = flag.String("scale", "small", "testbed scale: small | default")
		scorerName = flag.String("scorer", "cori", "selection algorithm: cori | bgloss | lm")
		k          = flag.Int("k", 5, "databases to select per query")
		seed       = flag.Int64("seed", 1, "synthetic world seed")
	)
	flag.Parse()

	sc := experiments.TestScale()
	if *scale == "default" {
		sc = experiments.DefaultScale()
	}
	sc.Seed = *seed

	log.Print("building Web testbed...")
	w, err := experiments.BuildWorld(experiments.Web, sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d databases, %d documents", len(w.Bed.Databases), w.Bed.TotalDocs())

	log.Print("sampling databases and building shrunk summaries (QBS + frequency estimation)...")
	sums, err := w.BuildSummaries(experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	if err != nil {
		log.Fatal(err)
	}

	var scorer selection.Scorer
	switch *scorerName {
	case "bgloss":
		scorer = selection.BGloss{}
	case "lm":
		scorer = selection.LM{}
	default:
		scorer = selection.CORI{}
	}
	adaptive := &selection.Adaptive{Base: scorer, Opts: selection.AdaptiveOptions{Seed: *seed}}
	adbs := make([]*selection.DB, len(w.Bed.Databases))
	for i, db := range w.Bed.Databases {
		adbs[i] = &selection.DB{
			Name:     db.Name,
			Unshrunk: sums.Unshrunk[i],
			Shrunk:   sums.Shrunk[i],
			Gamma:    sums.Gamma[i],
			Size:     int(sums.SizeEst[i]),
		}
	}
	global := sums.GlobalSummary()

	answer := func(query string) {
		terms := strings.Fields(strings.ToLower(query))
		if len(terms) == 0 {
			return
		}
		ranked, decisions := adaptive.Rank(terms, adbs, global)
		if len(ranked) == 0 {
			fmt.Printf("%-40s -> no database selected\n", query)
			return
		}
		if len(ranked) > *k {
			ranked = ranked[:*k]
		}
		fmt.Printf("%s ->\n", query)
		for i, r := range ranked {
			mark := " "
			if decisions[r.Index].Shrinkage {
				mark = "*"
			}
			fmt.Printf("  %2d.%s %-34s score %-12.4g %s\n", i+1, mark, r.Name, r.Score,
				w.Bed.Tree.PathString(w.Bed.Databases[r.Index].Category))
		}
	}

	if flag.NArg() > 0 {
		answer(strings.Join(flag.Args(), " "))
		return
	}

	// Show a few example topical words the user can query with.
	if v := w.Bed.Gen.CategoryVocab(mustLookup(w, "Heart")); v != nil {
		fmt.Printf("example query words: %s %s %s (Heart topic)\n",
			v.Word(3), v.Word(20), v.Word(50))
	}
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		answer(scanner.Text())
		fmt.Print("> ")
	}
}

func mustLookup(w *experiments.World, name string) hierarchy.NodeID {
	n, ok := w.Bed.Tree.Lookup(name)
	if !ok {
		log.Fatalf("category %s missing", name)
	}
	return n
}
