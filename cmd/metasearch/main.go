// Command metasearch is an end-to-end demonstration metasearcher: it
// builds a synthetic Web testbed, registers every database with the
// library's Metasearcher (query-based sampling, shrinkage-based
// summaries, adaptive selection), and answers queries from stdin (or
// the command line) by printing the selected databases and the merged
// document ranking.
//
// Usage:
//
//	metasearch [-scale small|default] [-scorer cori|bgloss|lm] [-k 5] \
//	           [-serve :8090] [-listen :8080] [-remote host:port,...] \
//	           [-debug-addr :6060] [-slo-latency 500ms] [-slo-target 0.99] \
//	           [-v] [-trace] [-explain] [-audit queries.jsonl] \
//	           [-save state.json] [-load state.json] \
//	           [-deadline 2s] [-hedge-after 100ms] [-probe-interval 2s] \
//	           [-cache-size 1024] [-cache-ttl 10m] [-max-inflight 64] \
//	           [-drain-timeout 5s] \
//	           [-loadtest -lt-qps 100 -lt-duration 30s -lt-ramp 50:5s,500:2s:20 \
//	            -lt-driver http|inproc -lt-trace trace.json -lt-out BENCH.json] \
//	           [query ...]
//
// With no query arguments, queries are read one per line from stdin.
//
// With -serve, the process runs as a query service instead of a REPL:
// the gateway API (GET/POST /v1/search, GET /v1/search/stream for
// SSE/NDJSON progressive delivery, GET /v1/healthz) and the debug
// endpoints below share one listener, requests are answered through the
// two-tier query cache (selection decisions and whole results; -cache-size 0
// turns it off), -max-inflight sheds excess load with 429 + Retry-After,
// and SIGINT/SIGTERM drains in-flight requests (up to -drain-timeout)
// before exiting. -refresh-interval starts the background summary-refresh
// manager: every interval each live database is re-probed with a cheap
// -refresh-docs sample, the probe's term distribution is compared to the
// stored summary by Jensen-Shannon divergence, and a node past
// -drift-threshold is re-sampled at full size and hot-swapped (with its
// shrinkage ancestors recomputed and both cache tiers invalidated)
// without interrupting traffic; /debug/refresh reports per-node drift
// state. Each request's deadline is -deadline unless the
// client passes an explicit timeout parameter. -debug-addr moves the
// debug endpoints to a separate (private) listener, keeping the public
// one API-only. Every request is judged against the serving SLOs
// (-slo-latency, -slo-target); /debug/slo reports multi-window
// error-budget burn rates.
//
// With -loadtest, the process instead measures its own serving path:
// it generates (or replays, with -lt-trace) a deterministic open-loop
// workload — Poisson arrivals at the configured QPS profile, Zipfian
// query popularity over the testbed's query set — drives the gateway
// over a loopback HTTP listener (-lt-driver http, the default) or
// SearchExplained directly (inproc), and prints achieved QPS, latency
// percentiles measured from scheduled arrival times, shed/hedge/cache
// rates, per-stage latency percentiles, and the SLO report. -lt-out
// merges the run into a BENCH JSON file's serving section.
//
// With -remote, the metasearcher talks to dbnode servers over the wire
// protocol instead of registering in-process databases; the nodes must
// serve shards of the same testbed (same dbnode -scale and -seed) for
// the term spaces to line up. Every wire request carries the query's
// trace context (X-Trace-Id / X-Parent-Span), so a dbnode started with
// -trace logs spans that join this process's traces.
//
// Cluster modes (see DESIGN.md §14 and the README runbook):
//
//	metasearch -shard-id shard-00 -topology topo.json -load state.json -serve :8091
//	metasearch -route -topology topo.json -serve :8090
//	metasearch -collect -topology topo.json -collect-router 127.0.0.1:8090 -serve :8099
//
// -shard-id runs one topology shard: the process dials its consistent-
// hash slice of the databases (each as a replica set with per-replica
// breakers and failover), loads the full summary store from -load, and
// scopes the search fan-out to its slice. -route runs the scatter-
// gather router in front of the shards: it owns no summaries, fans
// /v1/search out to every shard, and merges the per-shard rankings into
// bit-identically the single-process answer. Both serve the standard
// gateway API; /v1/healthz reports the build version and (for shards)
// the shard id; the router's additionally reports every shard's breaker
// state and last health-probe result. -collect runs the cluster
// observability plane (see DESIGN.md §15): it scrapes every topology
// member's metrics, recent spans, and audit records, and serves the
// fleet rollup at /debug/cluster/metrics, stitched cross-process traces
// at /debug/cluster/trace/{id}, and — with -profile-dir — a continuous-
// profiling index at /debug/cluster/profiles. Every serving mode
// exports its recent spans at /debug/export/spans and audit records at
// /debug/export/queries for the collector to scrape.
//
// With -explain, each query is followed by its selection audit record:
// every candidate database's score, the shrink-or-not verdict with the
// Monte-Carlo mean/σ behind it and the λ mixture used, per-node call
// costs, and merged-result provenance. -audit appends the same records
// as JSONL to a file.
//
// With -listen, an HTTP server exposes the operational surface while
// the process runs:
//
//	/metrics           pipeline counters/gauges/histograms and p50/p95/p99
//	                   latency windows (Prometheus text; ?format=json for
//	                   a JSON snapshot)
//	/debug/vars        the same registry as an expvar under "metasearch"
//	/debug/queries     recent per-query audit records (?n=50 for more);
//	                   /debug/queries/{id} returns one record by id
//	/debug/breakers    every node's circuit-breaker state (state, window,
//	                   trips, short-circuits)
//	/debug/slo         serving-objective report: burn rate and remaining
//	                   error budget per objective and window (with -serve
//	                   or -loadtest; 404 otherwise)
//	/debug/refresh     summary-refresh state: swap generation and each
//	                   node's last divergence, drift count, and swaps
//	                   (with -refresh-interval)
//	/debug/pprof       the standard Go profiling endpoints
//
// -deadline bounds each query's whole fan-out; -hedge-after tunes when a
// slow node query is hedged with a duplicate (0 auto-derives the
// threshold from the observed wire p95); -probe-interval enables
// background health probes that close a tripped node's breaker as soon
// as it recovers. -save persists built summaries (atomic write, content
// checksum); -load restores them, skipping sampling — with -remote, the
// dialed nodes keep their live handles, so Search works immediately.
package main

import (
	"bufio"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/obscollector"
	"repro/internal/refresh"
	"repro/internal/resilience"
	"repro/internal/shardmap"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// sanitize and sanitizeAll map the synthetic testbed's underscore
// vocabulary into the full text pipeline's token space (see
// experiments.Sanitize); cmd/dbnode applies the same mapping when
// serving a testbed shard, so -remote mode sees identical terms.
func sanitize(w string) string { return experiments.Sanitize(w) }

func sanitizeAll(ws []string) []string { return experiments.SanitizeAll(ws) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("metasearch: ")
	var (
		scale      = flag.String("scale", "small", "testbed scale: small | default")
		scorerName = flag.String("scorer", "cori", "selection algorithm: cori | bgloss | lm")
		k          = flag.Int("k", 5, "databases to select per query")
		perDB      = flag.Int("perdb", 3, "documents to retrieve per selected database")
		seed       = flag.Int64("seed", 1, "synthetic world seed")
		listen     = flag.String("listen", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :8080)")
		remote     = flag.String("remote", "", "comma-separated dbnode addresses (host:port,...); metasearch over these remote nodes instead of in-process databases (start them with: dbnode -testbed <name> -scale ... -seed ...)")
		verbose    = flag.Bool("v", false, "log pipeline progress to stderr")
		trace      = flag.Bool("trace", false, "log structured trace events (spans, EM convergence, adaptive decisions) to stderr")
		explain    = flag.Bool("explain", false, "print each query's selection audit record (scores, shrinkage verdicts, per-node costs)")
		auditFile  = flag.String("audit", "", "append every query's audit record to this file as JSONL")
		saveFile   = flag.String("save", "", "after building summaries, save them to this file (atomic write + checksum)")
		loadFile   = flag.String("load", "", "load summaries from this file instead of sampling (pairs with -remote for live handles)")
		deadline   = flag.Duration("deadline", 0, "overall per-query fan-out deadline budget (0 = none); with -serve, also the default per-request deadline")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge a node query after this latency (0 = auto from observed p95, negative = off)")
		probeEvery = flag.Duration("probe-interval", 0, "background health-probe interval for tripped nodes (0 = off)")
		serveAddr  = flag.String("serve", "", "run as a query service: the gateway API (/v1/search, /v1/healthz) plus the debug endpoints on this address, until SIGINT/SIGTERM")
		cacheSize  = flag.Int("cache-size", 1024, "entries per query-cache tier; 0 disables the selection and result caches")
		cacheTTL   = flag.Duration("cache-ttl", 0, "selection-cache TTL (0 = default 10m; the result tier keeps its shorter default)")
		maxInfl    = flag.Int("max-inflight", 0, "shed query-API requests past this many in flight with 429 + Retry-After (0 = unlimited)")
		drainFor   = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests to drain")
		debugAddr  = flag.String("debug-addr", "", "with -serve: move the debug endpoints (/metrics, /debug/*) to their own listener on this address, keeping the public listener API-only")
		sloLatency = flag.Duration("slo-latency", 500*time.Millisecond, "latency-SLO threshold: requests slower than this count against the latency objective")
		sloTarget  = flag.Float64("slo-target", 0.99, "latency-SLO target: required fraction of requests under -slo-latency")

		refreshEvery = flag.Duration("refresh-interval", 0, "re-probe every database's live contents at this interval and rebuild drifted summaries in place (0 = off; incompatible with -shard-id)")
		driftThresh  = flag.Float64("drift-threshold", 0.3, "Jensen-Shannon divergence (nats, max ln 2 ≈ 0.69) between the stored summary and a fresh probe beyond which the summary is rebuilt")
		refreshDocs  = flag.Int("refresh-docs", 50, "documents per drift probe; small keeps checks cheap, the full -scale sample size is used only for an actual rebuild")

		topologyFile = flag.String("topology", "", "cluster topology file (shardmap JSON); required by -shard-id, -route, and -collect")
		topoPoll     = flag.Duration("topology-poll", 2*time.Second, "with a cluster mode: poll -topology for version bumps and apply them live — replica sets swap under traffic, the router's ring follows, the collector rescrapes (0 disables live reconfiguration)")
		shardID      = flag.String("shard-id", "", "serve one topology shard: dial this shard's replicated dbnodes and scope the search fan-out to its databases (requires -topology and -load)")
		routeMode    = flag.Bool("route", false, "run as the cluster's scatter-gather router: fan /v1/search out to every shard in -topology and merge the rankings (no summaries are loaded in this process)")

		collectMode   = flag.Bool("collect", false, "run as the cluster observability collector: scrape every member of -topology (plus -collect-router) and serve /debug/cluster/* on -serve")
		collectRouter = flag.String("collect-router", "", "with -collect: the router's address, added to the scrape set with role \"router\"")
		scrapeEvery   = flag.Duration("scrape-interval", 5*time.Second, "with -collect: how often every fleet member is scraped")
		profileDir    = flag.String("profile-dir", "", "with -collect: enable continuous profiling, storing pprof captures in this directory")
		profileEvery  = flag.Duration("profile-interval", 30*time.Second, "with -collect: pause between profile captures (each tick profiles one member, rotating through the fleet)")
		profileCPU    = flag.Int("profile-cpu-seconds", 5, "with -collect: length of each CPU profile capture")
		profileKeep   = flag.Int("profile-keep", 32, "with -collect: retained profiles per kind (cpu, heap); oldest deleted first")

		loadtest   = flag.Bool("loadtest", false, "run a load test against this process's own serving path instead of a REPL, print the report, then exit")
		ltQPS      = flag.Float64("lt-qps", 50, "load test: steady offered rate (ignored when -lt-ramp is set)")
		ltDuration = flag.Duration("lt-duration", 10*time.Second, "load test: steady-phase length (ignored when -lt-ramp is set)")
		ltRamp     = flag.String("lt-ramp", "", "load test: QPS profile as qps:duration[:burst] segments, e.g. 50:5s,500:2s:20,50:5s")
		ltDriver   = flag.String("lt-driver", "http", "load test: http (loopback gateway, the full serving path) | inproc (direct SearchExplained calls)")
		ltZipf     = flag.Float64("lt-zipf", 1.1, "load test: Zipf exponent of query popularity")
		ltQueries  = flag.Int("lt-queries", 0, "load test: distinct queries in the workload (0 = the testbed's whole query set)")
		ltTrace    = flag.String("lt-trace", "", "load test: trace file; replayed if it exists, else generated and saved for replay")
		ltOut      = flag.String("lt-out", "", "load test: merge the run report into this BENCH JSON file's serving section")
		ltName     = flag.String("lt-name", "", "load test: run label in reports (default derived from the profile)")
		ltMaxOut   = flag.Int("lt-max-outstanding", 0, "load test: client-side cap on in-flight requests; excess scheduled requests are dropped, not deferred (0 = unlimited)")
		ltStream   = flag.Bool("lt-stream", false, "load test: after the run, measure streaming delivery — /v1/search/stream time-to-first-frame vs blocking /v1/search latency — and merge a streaming section into -lt-out (http driver only)")
		ltStreamN  = flag.Int("lt-stream-samples", 40, "load test: timed requests in the -lt-stream stage, split between the blocking and streaming halves")
	)
	flag.Parse()

	if *refreshEvery > 0 && *shardID != "" {
		log.Fatal("-refresh-interval cannot be combined with -shard-id: shards serve a shared offline summary store; rebuild it centrally and reload")
	}

	if *collectMode {
		// The collector owns no testbed and answers no queries; it is
		// dispatched before the world is built.
		if err := runCollect(collectConfig{
			TopologyFile: *topologyFile,
			TopologyPoll: *topoPoll,
			RouterAddr:   *collectRouter,
			ServeAddr:    *serveAddr,
			Interval:     *scrapeEvery,
			DrainFor:     *drainFor,
			Verbose:      *verbose,
			Profiles: obscollector.ProfileOptions{
				Enable:     *profileDir != "",
				Dir:        *profileDir,
				Interval:   *profileEvery,
				CPUSeconds: *profileCPU,
				Keep:       *profileKeep,
			},
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	sc := experiments.TestScale()
	if *scale == "default" {
		sc = experiments.DefaultScale()
	}
	sc.Seed = *seed

	log.Print("building Web testbed...")
	w, err := experiments.BuildWorld(experiments.Web, sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d databases, %d documents", len(w.Bed.Databases), w.Bed.TotalDocs())

	if *routeMode {
		// The router owns no summaries and no metasearcher; it fans out
		// to the topology's shards and merges. Everything it needs is
		// assembled in route.go.
		if err := runRoute(w, routeConfig{
			TopologyFile: *topologyFile,
			TopologyPoll: *topoPoll,
			ServeAddr:    *serveAddr,
			DebugAddr:    *debugAddr,
			Deadline:     *deadline,
			ProbeEvery:   *probeEvery,
			DrainFor:     *drainFor,
			MaxDBs:       *k,
			PerDB:        *perDB,
			MaxInflight:  *maxInfl,
			SLOLatency:   *sloLatency,
			SLOTarget:    *sloTarget,
			Trace:        *trace,
			Loadtest:     *loadtest,
			LT: loadtestConfig{
				QPS:            *ltQPS,
				Duration:       *ltDuration,
				Ramp:           *ltRamp,
				Driver:         *ltDriver,
				Zipf:           *ltZipf,
				NumQueries:     *ltQueries,
				TraceFile:      *ltTrace,
				OutFile:        *ltOut,
				Name:           *ltName,
				Seed:           *seed,
				MaxDBs:         *k,
				PerDB:          *perDB,
				MaxOutstanding: *ltMaxOut,
				Section:        "cluster_serving",
				Stream:         *ltStream,
				StreamSamples:  *ltStreamN,
			},
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Observability wiring: a logger for -v, a trace observer for
	// -trace, and the metrics registry that the HTTP endpoints serve.
	opts := repro.Options{
		SampleSize:  sc.SampleTarget,
		Scorer:      *scorerName,
		SeedLexicon: sanitizeAll(w.Lexicon),
		Seed:        *seed,
		Parallelism: runtime.GOMAXPROCS(0),
		// The synthetic vocabulary is not English: stemming or stopword
		// removal would mangle its token space.
		KeepStopwords: true,
		NoStemming:    true,
		Resilience: repro.ResilienceOptions{
			DeadlineBudget: *deadline,
			HedgeAfter:     *hedgeAfter,
		},
		Cache: repro.CacheConfig{
			Disable: *cacheSize == 0,
			Size:    *cacheSize,
			TTL:     *cacheTTL,
		},
	}
	if *verbose {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	// Tracing is always on into a bounded ring, so the cluster collector
	// can assemble this process's recent spans via /debug/export/spans;
	// -trace additionally logs every event to stderr.
	ring := telemetry.NewRingCapture(0)
	opts.Observer = ring
	if *trace {
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})
		opts.Observer = telemetry.MultiObserver(ring, telemetry.NewLogObserver(slog.New(h)))
	}
	if *auditFile != "" {
		f, err := os.OpenFile(*auditFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("audit log: %v", err)
		}
		defer f.Close()
		opts.AuditLog = f
	}
	m := repro.New(opts)

	// The process's identity stamped on its span and audit exports;
	// shards carry their shard id so fleet views can slice by it.
	selfAddr := *serveAddr
	if selfAddr == "" {
		selfAddr = *listen
	}
	if selfAddr == "" {
		selfAddr = fmt.Sprintf("metasearch-pid%d", os.Getpid())
	}
	selfRole := "metasearch"
	if *shardID != "" {
		selfRole = "shard"
	}
	self := telemetry.Identity{Instance: selfAddr, Role: selfRole, Shard: *shardID}

	// The SLO tracker judges every gateway request against the serving
	// objectives; /debug/slo reports multi-window error-budget burn.
	var tracker *slo.Tracker
	if *serveAddr != "" || *loadtest {
		objectives := slo.DefaultObjectives(*sloLatency)
		objectives[0].Target = *sloTarget
		tracker = slo.New(slo.Config{Objectives: objectives, Registry: m.Metrics()})
	}

	if *listen != "" || *serveAddr != "" {
		m.Metrics().PublishExpvar("metasearch")
	}
	// In REPL mode, -listen serves the debug endpoints on their own
	// listener; it is shut down gracefully when the REPL ends. (In -serve
	// mode the gateway listener carries the debug endpoints itself unless
	// -debug-addr moves them.)
	if *listen != "" && *serveAddr == "" {
		srv := &http.Server{Addr: *listen, Handler: debugMux(metasearcherDebug(m, self, ring), tracker)}
		go func() {
			log.Printf("telemetry on http://%s/metrics (and /debug/vars, /debug/pprof)", *listen)
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("telemetry server: %v", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), *drainFor)
			defer cancel()
			srv.Shutdown(sctx)
		}()
	}

	// Register the databases: either every testbed database in-process
	// under its directory category (the paper's "existing classification"
	// case, so no probe training is needed), or — with -remote — the
	// dbnode servers at the given addresses, each under the category it
	// advertises. A dbnode serving a shard of the same testbed (same
	// -scale and -seed) yields the same terms, so the pipeline produces
	// identical summaries and rankings either way.
	var shardScope map[string]bool
	var topoWatcher *shardmap.Watcher
	var topoGen, topoSwapMs atomic.Int64
	if *shardID != "" {
		if *topologyFile == "" {
			log.Fatal("-shard-id requires -topology")
		}
		if *loadFile == "" {
			log.Fatal("-shard-id requires -load: shards serve offline-built summaries, they do not sample")
		}
		topoWatcher, err = shardmap.NewWatcher(*topologyFile, shardmap.WatcherOptions{
			Interval: *topoPoll,
			Metrics:  m.Metrics(),
		})
		if err != nil {
			log.Fatal(err)
		}
		topo := topoWatcher.Snapshot().Topology
		topoGen.Store(topoWatcher.Generation())
		assigns, err := topo.ShardAssignments(*shardID)
		if err != nil {
			log.Fatal(err)
		}
		shardScope = make(map[string]bool, len(assigns))
		for _, a := range assigns {
			rdb, err := repro.DialReplicatedDatabase(context.Background(), a.Replicas, repro.ReplicatedDatabaseOptions{
				Preferred: a.Preferred,
				Breakers:  m.Breakers(),
				Metrics:   m.Metrics(),
				Client:    repro.RemoteDatabaseOptions{Metrics: m.Metrics(), Budget: m.RetryBudget()},
			})
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("shard %s: %s (%d docs, category %q, %d replicas, preferred #%d)",
				*shardID, rdb.Name(), rdb.NumDocs(), rdb.Category(), rdb.Replicas(), rdb.Preferred())
			if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
				log.Fatal(err)
			}
			shardScope[a.Database] = true
		}
		log.Printf("shard %s owns %d of the topology's %d databases", *shardID, len(assigns), len(topo.Databases))
	} else if *remote != "" {
		for _, addr := range strings.Split(*remote, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			rdb, err := repro.DialRemoteDatabase(context.Background(), addr, repro.RemoteDatabaseOptions{
				Metrics: m.Metrics(),
				Budget:  m.RetryBudget(),
			})
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("connected to %s: %s (%d docs, category %q)",
				rdb.BaseURL(), rdb.Name(), rdb.NumDocs(), rdb.Category())
			if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		for _, db := range w.Bed.Databases {
			docs := make([][]string, db.Index.NumDocs())
			for id := range docs {
				docs[id] = sanitizeAll(db.Index.Doc(index.DocID(id)))
			}
			cat := w.Bed.Tree.Node(db.Category).Name
			if err := m.AddDatabase(repro.NewLocalDatabaseFromTerms(db.Name, docs), cat); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *loadFile != "" {
		log.Printf("loading summaries from %s...", *loadFile)
		if shardScope != nil {
			// Shard-scoped load: the full summary store (selection is a
			// function of collection-wide statistics) with the fan-out
			// restricted to this shard's slice.
			err = m.LoadFileFiltered(*loadFile, func(name string) bool { return shardScope[name] })
		} else {
			err = m.LoadFile(*loadFile)
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		log.Print("sampling databases and building shrunk summaries (QBS + frequency estimation)...")
		if err := m.BuildSummaries(); err != nil {
			log.Fatal(err)
		}
	}
	if *saveFile != "" {
		if err := m.SaveFile(*saveFile); err != nil {
			log.Fatal(err)
		}
		log.Printf("summaries saved to %s", *saveFile)
	}
	if *probeEvery > 0 {
		stop := m.StartHealthProbes(*probeEvery)
		defer stop()
	}

	// Background summary refresh: periodically re-probe every live
	// database and rebuild summaries that have drifted past the
	// threshold, hot-swapping them under traffic. Shards must not do
	// this independently — a per-shard rebuild would fork the
	// collection-wide statistics the cluster's bit-identical merge rests
	// on — so the flag is refused there; refresh the offline store and
	// roll it out with -load instead.
	var refresher *refresh.Manager
	if *refreshEvery > 0 {
		refresher = refresh.NewManager(m, refresh.Options{
			Interval:   *refreshEvery,
			Threshold:  *driftThresh,
			SampleDocs: *refreshDocs,
			Metrics:    m.Metrics(),
			Logger:     opts.Logger,
		})
		refresher.Start()
		defer refresher.Stop()
		log.Printf("summary refresh every %v (JS drift threshold %.3g, %d-doc probes)",
			*refreshEvery, *driftThresh, *refreshDocs)
	}

	// Live reconfiguration: once summaries are loaded, topology version
	// bumps swap this shard's replica sets and scope under traffic.
	if topoWatcher != nil {
		topoWatcher.Subscribe(func(snap *shardmap.Snapshot) {
			assigns, err := snap.Topology.ShardAssignments(*shardID)
			if err != nil {
				log.Printf("topology generation %d: %v; keeping current assignments", snap.Generation, err)
				return
			}
			ras := make([]repro.ReplicaAssignment, len(assigns))
			for i, a := range assigns {
				ras[i] = repro.ReplicaAssignment{
					Database: a.Database, Category: a.Category,
					Replicas: a.Replicas, Preferred: a.Preferred,
				}
			}
			rep, err := m.ApplyReplicaAssignments(ras, repro.RemoteDatabaseOptions{
				Metrics: m.Metrics(), Budget: m.RetryBudget(),
			})
			if err != nil {
				log.Printf("topology swap (generation %d) failed: %v", snap.Generation, err)
				return
			}
			topoGen.Store(snap.Generation)
			topoSwapMs.Store(time.Now().UnixMilli())
			log.Printf("topology generation %d applied: attached %d, detached %d, unknown %d, scope_changed %v",
				snap.Generation, len(rep.Attached), len(rep.Detached), len(rep.Unknown), rep.ScopeChanged)
		})
		if *topoPoll > 0 {
			topoWatcher.Start()
			defer topoWatcher.Stop()
		}
	}

	gopts := gateway.Options{
		DefaultMaxDBs:   *k,
		DefaultPerDB:    *perDB,
		DefaultDeadline: *deadline,
		MaxInflight:     *maxInfl,
		Metrics:         m.Metrics(),
		SLO:             tracker,
		ShardID:         *shardID,
	}
	if topoWatcher != nil {
		// /v1/healthz reports the generation this shard has APPLIED (and
		// when), not merely what the watcher has seen: a swap the
		// metasearcher rejected must not read as done.
		gopts.Topology = func() *wire.TopologyStatus {
			return &wire.TopologyStatus{
				Generation:     topoGen.Load(),
				LastSwapUnixMs: topoSwapMs.Load(),
			}
		}
	}

	if *loadtest {
		if err := runLoadtest(m, m.Metrics(), w, loadtestConfig{
			QPS:            *ltQPS,
			Duration:       *ltDuration,
			Ramp:           *ltRamp,
			Driver:         *ltDriver,
			Zipf:           *ltZipf,
			NumQueries:     *ltQueries,
			TraceFile:      *ltTrace,
			OutFile:        *ltOut,
			Name:           *ltName,
			Seed:           *seed,
			MaxDBs:         *k,
			PerDB:          *perDB,
			MaxOutstanding: *ltMaxOut,
			Stream:         *ltStream,
			StreamSamples:  *ltStreamN,
			Gateway:        gopts,
			Tracker:        tracker,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *serveAddr != "" {
		dbg := metasearcherDebug(m, self, ring)
		if topoWatcher != nil {
			dbg.topology = topoWatcher.Handler()
		}
		if refresher != nil {
			dbg.refresh = refresher.Handler()
		}
		if err := serve(m, w, *serveAddr, *debugAddr, gopts, tracker, *drainFor, dbg); err != nil {
			log.Fatal(err)
		}
		return
	}

	answer := func(query string) {
		if strings.TrimSpace(query) == "" {
			return
		}
		sels, err := m.Select(query, *k)
		if err != nil {
			fmt.Printf("%-40s -> %v\n", query, err)
			return
		}
		if len(sels) == 0 {
			fmt.Printf("%-40s -> no database selected\n", query)
			return
		}
		fmt.Printf("%s ->\n", query)
		for i, s := range sels {
			mark := " "
			if s.Shrinkage {
				mark = "*" // shrunk summary used for this query/database
			}
			info, _ := m.Info(s.Database)
			fmt.Printf("  %2d.%s %-34s score %-12.4g %s\n", i+1, mark, s.Database, s.Score, info.Category)
		}
		results, err := m.Search(query, *k, *perDB)
		if err != nil {
			fmt.Printf("  search: %v\n", err)
			if *explain {
				m.Audit().Last().Format(os.Stdout)
			}
			return
		}
		if len(results) > 8 {
			results = results[:8]
		}
		for _, res := range results {
			fmt.Printf("     doc %s/%d  %.4f\n", res.Database, res.DocID, res.Score)
		}
		if *explain {
			m.Audit().Last().Format(os.Stdout)
		}
	}

	if flag.NArg() > 0 {
		answer(strings.Join(flag.Args(), " "))
		return
	}

	printExampleWords(w)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		answer(scanner.Text())
		fmt.Print("> ")
	}
}

// debugBundle carries the handles behind the debug endpoints. The
// router has no metasearcher, so the pieces travel individually; every
// handler involved is nil-safe (a nil audit log serves empty records, a
// nil breaker set an empty list).
type debugBundle struct {
	reg      *telemetry.Registry
	audit    *audit.Log
	breakers *resilience.Set
	// identity and ring feed the versioned cluster-export endpoints
	// (/debug/export/spans, /debug/export/queries) the obscollector
	// scrapes; a nil ring skips the span export.
	identity telemetry.Identity
	ring     *telemetry.RingCapture
	// topology, when non-nil, serves /debug/topology: the process's view
	// of the live topology (shard: the watcher's file view; router: the
	// active ring with its swap audit trail).
	topology http.Handler
	// refresh, when non-nil, serves /debug/refresh: the summary-refresh
	// manager's per-node drift state and swap generation.
	refresh http.Handler
}

// metasearcherDebug is the debug surface of a (standalone or shard)
// metasearcher process.
func metasearcherDebug(m *repro.Metasearcher, id telemetry.Identity, ring *telemetry.RingCapture) debugBundle {
	return debugBundle{reg: m.Metrics(), audit: m.Audit(), breakers: m.Breakers(), identity: id, ring: ring}
}

// debugMux assembles the operational endpoints every serving mode
// exposes: metrics, expvar, recent audit records, breaker states, the
// SLO report, and the pprof profilers.
func debugMux(d debugBundle, tracker *slo.Tracker) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", d.reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/queries", d.audit.Handler())
	mux.Handle("/debug/queries/", d.audit.Handler())
	mux.Handle("/debug/breakers", d.breakers.Handler())
	mux.Handle("/debug/slo", tracker.Handler())
	if d.topology != nil {
		mux.Handle("/debug/topology", d.topology)
	}
	if d.refresh != nil {
		mux.Handle("/debug/refresh", d.refresh)
	}
	if d.ring != nil {
		mux.Handle("/debug/export/spans", telemetry.ExportSpansHandler(d.identity, d.ring))
	}
	mux.Handle("/debug/export/queries", d.audit.ExportHandler(d.identity.Instance, d.identity.Role, d.identity.Shard))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the process as a query service: the gateway API on addr,
// the debug endpoints on the same listener — or on their own private
// listener when debugAddr is set, so /debug/pprof and friends are not
// exposed wherever the API is. SIGINT/SIGTERM fails /v1/healthz first
// (so load balancers steer away), then drains in-flight requests via
// http.Server.Shutdown under the drain timeout before the listener
// closes — the same shutdown contract as dbnode.
func serve(s gateway.Searcher, w *experiments.World, addr, debugAddr string, gopts gateway.Options, tracker *slo.Tracker, drainFor time.Duration, dbg debugBundle) error {
	gw := gateway.New(s, gopts)
	var mux *http.ServeMux
	if debugAddr == "" {
		mux = debugMux(dbg, tracker)
	} else {
		mux = http.NewServeMux()
		dsrv := &http.Server{Addr: debugAddr, Handler: debugMux(dbg, tracker)}
		go func() {
			log.Printf("debug endpoints on http://%s/metrics (and /debug/slo, /debug/pprof, ...)", debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("debug server: %v", err)
			}
		}()
		defer dsrv.Close()
	}
	mux.Handle(gateway.PathSearch, gw)
	mux.Handle(gateway.PathSearchStream, gw)
	mux.Handle(gateway.PathHealthz, gw)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("query API on http://%s%s (health %s, metrics /metrics)",
		ln.Addr(), gateway.PathSearch, gateway.PathHealthz)
	printExampleWords(w)

	srv := &http.Server{Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	gw.SetDraining(true)
	log.Printf("draining (up to %v, %d in flight)", drainFor, gw.Inflight())
	sctx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	log.Print("drained, exiting")
	return nil
}

// printExampleWords shows a few topical words the user (or a smoke
// test) can query with.
func printExampleWords(w *experiments.World) {
	if v := w.Bed.Gen.CategoryVocab(mustLookup(w, "Heart")); v != nil {
		fmt.Printf("example query words: %s %s %s (Heart topic)\n",
			sanitize(v.Word(3)), sanitize(v.Word(20)), sanitize(v.Word(50)))
	}
}

func mustLookup(w *experiments.World, name string) hierarchy.NodeID {
	n, ok := w.Bed.Tree.Lookup(name)
	if !ok {
		log.Fatalf("category %s missing", name)
	}
	return n
}
