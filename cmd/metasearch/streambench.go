package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"sort"
	"strconv"
	"time"

	"repro/internal/evtstream"
	"repro/internal/gateway"
)

// This file is the streaming benchmark stage of -loadtest: with
// -lt-stream, after the main run it measures what progressive delivery
// buys — time-to-first-frame on /v1/search/stream against the full
// latency of the blocking /v1/search — and merges the result into the
// BENCH file's "streaming" section.
//
// The two paths are measured on disjoint halves of the query set:
// a blocking request warms the query cache for its exact (query, k,
// perdb) key, so timing a stream of the same query right after would
// measure the cache, not the stream. A few same-query pairs are still
// issued at the end — deliberately cache-correlated — to check the
// final frame's ranking is identical to the blocking answer.

// streamBenchConfig drives runStreamBench.
type streamBenchConfig struct {
	BaseURL string
	Queries []string
	MaxDBs  int
	PerDB   int
	// Samples is the total number of timed requests, split evenly
	// between the blocking and streaming halves.
	Samples int
}

// latencyQuantiles summarizes one latency population in seconds.
type latencyQuantiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	Max float64 `json:"max_seconds"`
}

// streamBenchReport is one streaming-vs-blocking measurement, merged
// into the BENCH file's "streaming" section.
type streamBenchReport struct {
	Name string `json:"name"`
	// TTFF is time to the stream's first frame (the selection frame:
	// the ranking is known, fan-out has only started).
	TTFF latencyQuantiles `json:"ttff"`
	// StreamTotal is time to the stream's final frame.
	StreamTotal latencyQuantiles `json:"stream_total"`
	// Blocking is the full latency of /v1/search on the other half of
	// the query set.
	Blocking latencyQuantiles `json:"blocking"`
	// TTFFOverBlockingP50 is the headline ratio: the paper-level claim
	// of streaming delivery is that the selection ranking reaches the
	// client in a fraction of the blocking round trip.
	TTFFOverBlockingP50 float64 `json:"ttff_p50_over_blocking_p50"`
	// FinalMatchesBlocking reports the same-query integrity pairs:
	// streamed final ranking == blocking ranking for every pair.
	FinalMatchesBlocking bool `json:"final_matches_blocking"`
	IntegrityPairs       int  `json:"integrity_pairs"`
}

// runStreamBench measures TTFF vs blocking latency against a live
// gateway (or router) base URL.
func runStreamBench(cfg streamBenchConfig) (*streamBenchReport, error) {
	if len(cfg.Queries) < 2 {
		return nil, fmt.Errorf("streambench: need at least 2 distinct queries, have %d", len(cfg.Queries))
	}
	n := cfg.Samples
	if n <= 0 {
		n = 40
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// Disjoint halves: even-indexed queries time the blocking path,
	// odd-indexed the stream, so neither warms the other's cache key.
	var blockQs, streamQs []string
	for i, q := range cfg.Queries {
		if i%2 == 0 {
			blockQs = append(blockQs, q)
		} else {
			streamQs = append(streamQs, q)
		}
	}

	var blocking, ttff, total []float64
	for i := 0; i < n/2; i++ {
		q := blockQs[i%len(blockQs)]
		t0 := time.Now()
		if _, err := fetchBlocking(client, cfg, q); err != nil {
			return nil, err
		}
		blocking = append(blocking, time.Since(t0).Seconds())
	}
	for i := 0; i < n/2; i++ {
		q := streamQs[i%len(streamQs)]
		first, full, _, err := fetchStream(client, cfg, q)
		if err != nil {
			return nil, err
		}
		ttff = append(ttff, first.Seconds())
		total = append(total, full.Seconds())
	}

	// Integrity pairs on shared queries: the streamed final frame must
	// carry exactly the blocking ranking (cache-correlated on purpose —
	// this checks the payload plumbing, not timing).
	pairs := 3
	if pairs > len(cfg.Queries) {
		pairs = len(cfg.Queries)
	}
	matches := true
	for i := 0; i < pairs; i++ {
		q := cfg.Queries[i]
		bres, err := fetchBlocking(client, cfg, q)
		if err != nil {
			return nil, err
		}
		_, _, sres, err := fetchStream(client, cfg, q)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(bres.Results, sres.Results) || !reflect.DeepEqual(bres.Selections, sres.Selections) {
			matches = false
		}
	}

	rep := &streamBenchReport{
		Name:                 fmt.Sprintf("stream-%dq", n),
		TTFF:                 quantiles(ttff),
		StreamTotal:          quantiles(total),
		Blocking:             quantiles(blocking),
		FinalMatchesBlocking: matches,
		IntegrityPairs:       pairs,
	}
	if rep.Blocking.P50 > 0 {
		rep.TTFFOverBlockingP50 = rep.TTFF.P50 / rep.Blocking.P50
	}
	return rep, nil
}

func searchParams(cfg streamBenchConfig, q string) url.Values {
	v := url.Values{}
	v.Set("q", q)
	v.Set("k", strconv.Itoa(cfg.MaxDBs))
	v.Set("perdb", strconv.Itoa(cfg.PerDB))
	return v
}

func fetchBlocking(client *http.Client, cfg streamBenchConfig, q string) (*gateway.SearchReply, error) {
	resp, err := client.Get(cfg.BaseURL + gateway.PathSearch + "?" + searchParams(cfg, q).Encode())
	if err != nil {
		return nil, fmt.Errorf("streambench: blocking %q: %v", q, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("streambench: blocking %q: HTTP %d", q, resp.StatusCode)
	}
	var reply gateway.SearchReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("streambench: blocking %q: %v", q, err)
	}
	return &reply, nil
}

// fetchStream issues one NDJSON stream request and returns time to the
// first frame, time to the final frame, and the final frame's reply.
func fetchStream(client *http.Client, cfg streamBenchConfig, q string) (first, full time.Duration, reply *gateway.SearchReply, err error) {
	v := searchParams(cfg, q)
	v.Set("format", "ndjson")
	t0 := time.Now()
	resp, err := client.Get(cfg.BaseURL + gateway.PathSearchStream + "?" + v.Encode())
	if err != nil {
		return 0, 0, nil, fmt.Errorf("streambench: stream %q: %v", q, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, nil, fmt.Errorf("streambench: stream %q: HTTP %d", q, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f evtstream.Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return 0, 0, nil, fmt.Errorf("streambench: stream %q: bad frame: %v", q, err)
		}
		if f.Type == evtstream.TypeHeartbeat {
			continue
		}
		if first == 0 {
			first = time.Since(t0)
		}
		switch f.Type {
		case evtstream.TypeFinal:
			full = time.Since(t0)
			var r gateway.SearchReply
			if err := json.Unmarshal(f.Data, &r); err != nil {
				return 0, 0, nil, fmt.Errorf("streambench: stream %q: bad final frame: %v", q, err)
			}
			reply = &r
		case evtstream.TypeError:
			return 0, 0, nil, fmt.Errorf("streambench: stream %q: error frame: %s", q, f.Data)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, nil, fmt.Errorf("streambench: stream %q: %v", q, err)
	}
	if reply == nil {
		return 0, 0, nil, fmt.Errorf("streambench: stream %q ended without a final frame", q)
	}
	return first, full, reply, nil
}

func quantiles(xs []float64) latencyQuantiles {
	if len(xs) == 0 {
		return latencyQuantiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	at := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	return latencyQuantiles{N: len(s), P50: at(0.50), P95: at(0.95), Max: s[len(s)-1]}
}
