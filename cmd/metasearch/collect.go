package main

import (
	"context"
	"errors"
	"expvar"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obscollector"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
)

// collectConfig is the -collect flag bundle.
type collectConfig struct {
	TopologyFile string
	TopologyPoll time.Duration
	RouterAddr   string
	ServeAddr    string
	Interval     time.Duration
	DrainFor     time.Duration
	Verbose      bool
	Profiles     obscollector.ProfileOptions
}

// runCollect runs the process as the cluster's observability collector:
// it owns no testbed, no summaries, and answers no queries — it scrapes
// every member of the -topology fleet (plus the router named by
// -collect-router) on a fixed interval and serves the assembled view:
//
//	/debug/cluster/metrics     fleet rollup + per-instance series
//	/debug/cluster/trace/{id}  one cross-process trace, stitched
//	/debug/cluster/traces      index of recently seen trace IDs
//	/debug/cluster/instances   scrape status per member
//	/debug/cluster/profiles    continuous-profiling captures (-profile-dir)
//
// plus its own /metrics, /debug/vars, and /debug/pprof.
func runCollect(cfg collectConfig) error {
	if cfg.TopologyFile == "" {
		log.Fatal("-collect requires -topology: the scrape set comes from the cluster topology")
	}
	if cfg.ServeAddr == "" {
		log.Fatal("-collect requires -serve: the collector's only job is its HTTP surface")
	}
	reg := telemetry.NewRegistry()
	reg.PublishExpvar("metasearch")
	var logger *slog.Logger
	if cfg.Verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	watcher, err := shardmap.NewWatcher(cfg.TopologyFile, shardmap.WatcherOptions{
		Interval: cfg.TopologyPoll,
		Metrics:  reg,
		Logger:   logger,
	})
	if err != nil {
		return err
	}
	c, err := obscollector.New(
		obscollector.TargetsFromTopology(watcher.Snapshot().Topology, cfg.RouterAddr),
		obscollector.Options{
			Interval: cfg.Interval,
			Metrics:  reg,
			Logger:   logger,
			Profiles: cfg.Profiles,
		})
	if err != nil {
		return err
	}
	// Record which generation the initial scrape set came from, then
	// follow topology version bumps: swapped-in members are scraped from
	// the next sweep, departed members' state is dropped.
	c.SetTargets(c.Targets(), watcher.Generation())
	watcher.Subscribe(func(snap *shardmap.Snapshot) {
		targets := obscollector.TargetsFromTopology(snap.Topology, cfg.RouterAddr)
		c.SetTargets(targets, snap.Generation)
		log.Printf("topology generation %d applied: scraping %d members", snap.Generation, len(targets))
	})
	if cfg.TopologyPoll > 0 {
		watcher.Start()
		defer watcher.Stop()
	}
	for _, t := range c.Targets() {
		if t.Identity.Shard != "" {
			log.Printf("scraping %s (%s %s)", t.BaseURL, t.Identity.Role, t.Identity.Shard)
		} else {
			log.Printf("scraping %s (%s)", t.BaseURL, t.Identity.Role)
		}
	}
	if cfg.Profiles.Enable {
		log.Printf("continuous profiling into %s (every %v, keep %d per kind)",
			cfg.Profiles.Dir, cfg.Profiles.Interval, cfg.Profiles.Keep)
	}
	c.Start()
	defer c.Stop()

	mux := http.NewServeMux()
	mux.Handle("/debug/cluster/", c.Handler())
	mux.Handle("/debug/topology", watcher.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", cfg.ServeAddr)
	if err != nil {
		return err
	}
	log.Printf("cluster observability on http://%s/debug/cluster/metrics (traces /debug/cluster/traces, %d members)",
		ln.Addr(), len(c.Targets()))

	srv := &http.Server{Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	stop()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.DrainFor)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	log.Print("collector stopped")
	return nil
}
