package main

import (
	"log"
	"log/slog"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/router"
	"repro/internal/shardmap"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// routeConfig is the -route flag bundle.
type routeConfig struct {
	TopologyFile string
	TopologyPoll time.Duration
	ServeAddr    string
	DebugAddr    string
	Deadline     time.Duration
	ProbeEvery   time.Duration
	DrainFor     time.Duration
	MaxDBs       int
	PerDB        int
	MaxInflight  int
	SLOLatency   time.Duration
	SLOTarget    float64
	Trace        bool
	Loadtest     bool
	LT           loadtestConfig
}

// runRoute runs the process as the cluster's scatter-gather router: no
// summaries, no selection — every query fans out to the topology's
// shards (each a metasearch -shard-id process) and the per-shard
// rankings merge into the single-process answer. The router serves the
// same gateway API and debug endpoints as a standalone metasearcher,
// with /debug/breakers showing per-shard breakers.
func runRoute(w *experiments.World, cfg routeConfig) error {
	if cfg.TopologyFile == "" {
		log.Fatal("-route requires -topology")
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("metasearch")
	// The router always traces into a bounded ring so the cluster
	// collector can stitch its fan-out spans into cross-process traces;
	// -trace additionally logs every event to stderr.
	ring := telemetry.NewRingCapture(0)
	obs := telemetry.Observer(ring)
	if cfg.Trace {
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})
		obs = telemetry.MultiObserver(ring, telemetry.NewLogObserver(slog.New(h)))
	}
	tracer := telemetry.NewTracer(obs)
	breakers := resilience.NewSet(resilience.BreakerOptions{}, reg)
	budget := resilience.NewBudget(resilience.BudgetOptions{Metrics: reg})

	watcher, err := shardmap.NewWatcher(cfg.TopologyFile, shardmap.WatcherOptions{
		Interval: cfg.TopologyPoll,
		Metrics:  reg,
	})
	if err != nil {
		return err
	}
	rt, err := router.New(watcher.Snapshot().Topology, router.Options{
		Timeout:  cfg.Deadline,
		Breakers: breakers,
		Metrics:  reg,
		Tracer:   tracer,
		Budget:   budget,
	})
	if err != nil {
		return err
	}
	for _, s := range rt.Shards() {
		log.Printf("routing to shard %s at %s", s.ID, s.Addr)
	}
	if cfg.ProbeEvery > 0 {
		prober := rt.StartHealthProbes(resilience.ProberOptions{Interval: cfg.ProbeEvery})
		defer prober.Stop()
	}
	// Live reconfiguration: topology version bumps swap the fan-out ring
	// atomically under traffic.
	watcher.Subscribe(func(snap *shardmap.Snapshot) {
		rec, err := rt.ApplyTopology(snap)
		if err != nil {
			log.Printf("topology swap (generation %d) failed: %v", snap.Generation, err)
			return
		}
		log.Printf("topology generation %d applied: shards +%d -%d moved %d",
			rec.Generation, len(rec.ShardsAdded), len(rec.ShardsRemoved), len(rec.ShardsMoved))
	})
	if cfg.TopologyPoll > 0 {
		watcher.Start()
		defer watcher.Stop()
	}

	objectives := slo.DefaultObjectives(cfg.SLOLatency)
	objectives[0].Target = cfg.SLOTarget
	tracker := slo.New(slo.Config{Objectives: objectives, Registry: reg})

	gopts := gateway.Options{
		DefaultMaxDBs:   cfg.MaxDBs,
		DefaultPerDB:    cfg.PerDB,
		DefaultDeadline: cfg.Deadline,
		MaxInflight:     cfg.MaxInflight,
		Metrics:         reg,
		SLO:             tracker,
		// /v1/healthz reports every shard's breaker state and last
		// health-probe result alongside the router's own health, plus
		// the active topology generation and last-swap timestamp.
		ShardHealth: rt.ShardHealth,
		Topology:    rt.TopologyStatus,
	}
	dbg := debugBundle{
		reg:      reg,
		breakers: breakers,
		identity: telemetry.Identity{Instance: cfg.ServeAddr, Role: "router"},
		ring:     ring,
		// The router's /debug/topology is the live ring view: active
		// generation, fan-out targets, and the swap audit trail.
		topology: rt.TopologyHandler(),
	}

	if cfg.Loadtest {
		lt := cfg.LT
		lt.Gateway = gopts
		lt.Tracker = tracker
		return runLoadtest(rt, reg, w, lt)
	}
	if cfg.ServeAddr == "" {
		log.Fatal("-route needs -serve (or -loadtest): a router has no REPL")
	}
	return serve(rt, w, cfg.ServeAddr, cfg.DebugAddr, gopts, tracker, cfg.DrainFor, dbg)
}
