package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/slo"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// loadtestConfig is the -loadtest flag bundle.
type loadtestConfig struct {
	QPS            float64
	Duration       time.Duration
	Ramp           string
	Driver         string
	Zipf           float64
	NumQueries     int
	TraceFile      string
	OutFile        string
	Name           string
	Seed           int64
	MaxDBs         int
	PerDB          int
	MaxOutstanding int
	Gateway        gateway.Options
	Tracker        *slo.Tracker
	// Section is the BENCH file section the run merges into: "serving"
	// (default, a single process) or "cluster_serving" (the router
	// fronting a sharded cluster).
	Section string
	// Stream, with the http driver, appends a streaming-vs-blocking
	// measurement (time-to-first-frame against full blocking latency)
	// and merges it into the BENCH file's "streaming" section.
	Stream        bool
	StreamSamples int
}

// runLoadtest measures a serving path: it obtains a trace (replayed
// from -lt-trace when the file exists, generated deterministically
// otherwise), drives it through the chosen driver against s — a
// standalone metasearcher or the cluster router — prints the report and
// the SLO state, and optionally merges the run into a BENCH JSON file.
func runLoadtest(s loadgen.Searcher, reg *telemetry.Registry, w *experiments.World, cfg loadtestConfig) error {
	// -lt-qps 0 with -lt-stream skips the load phase entirely: only the
	// streaming-vs-blocking measurement runs. The smoke script uses this
	// to bench a chaos-degraded cluster without recording a degraded run
	// in the serving section.
	streamOnly := cfg.Stream && cfg.QPS <= 0 && cfg.Ramp == ""
	var tr *loadgen.Trace
	queries := workloadQueries(w, cfg.NumQueries, cfg.Seed)
	if !streamOnly {
		var err error
		if tr, err = loadtestTrace(w, cfg); err != nil {
			return err
		}
		queries = tr.Queries
	}

	var driver loadgen.Driver
	var baseURL string
	switch cfg.Driver {
	case "inproc":
		driver = &loadgen.SearcherDriver{S: s, MaxDBs: cfg.MaxDBs, PerDB: cfg.PerDB}
	case "http":
		// The full serving path: a real gateway on a loopback listener,
		// requests over real sockets — admission gate, JSON codec, and
		// kernel included in every latency sample.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("loadtest listener: %v", err)
		}
		gw := gateway.New(s, cfg.Gateway)
		mux := http.NewServeMux()
		mux.Handle(gateway.PathSearch, gw)
		mux.Handle(gateway.PathSearchStream, gw)
		mux.Handle(gateway.PathHealthz, gw)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		baseURL = "http://" + ln.Addr().String()
		driver = &loadgen.HTTPDriver{
			BaseURL: baseURL,
			Client: &http.Client{
				Timeout:   30 * time.Second,
				Transport: &http.Transport{MaxIdleConnsPerHost: 512},
			},
			MaxDBs: cfg.MaxDBs,
			PerDB:  cfg.PerDB,
		}
	default:
		return fmt.Errorf("unknown -lt-driver %q (want http or inproc)", cfg.Driver)
	}

	if !streamOnly {
		name := cfg.Name
		if name == "" {
			name = fmt.Sprintf("%s-%.0fqps-%.0fs", cfg.Driver, tr.TargetQPS(), tr.Duration().Seconds())
		}
		log.Printf("load test %q: %d requests over %s (%s driver, target %.1f QPS, %d distinct queries)",
			name, len(tr.Events), tr.Duration().Round(time.Millisecond), cfg.Driver, tr.TargetQPS(), len(tr.Queries))
		rep, err := loadgen.Run(context.Background(), tr, driver, loadgen.Options{
			Name:           name,
			MaxOutstanding: cfg.MaxOutstanding,
			Registry:       reg,
		})
		if err != nil {
			return err
		}

		fmt.Print(rep.Format())
		var sloRep *slo.Report
		if cfg.Tracker != nil {
			r := cfg.Tracker.Report()
			sloRep = &r
			fmt.Print(r.Format())
		}

		if cfg.OutFile != "" {
			section := cfg.Section
			if section == "" {
				section = "serving"
			}
			if err := mergeServingReport(cfg.OutFile, section, rep, sloRep); err != nil {
				return fmt.Errorf("merge %s: %v", cfg.OutFile, err)
			}
			log.Printf("%s report merged into %s", section, cfg.OutFile)
		}
	}

	if cfg.Stream {
		if baseURL == "" {
			return fmt.Errorf("-lt-stream needs -lt-driver http: time-to-first-frame is an HTTP property")
		}
		srep, err := runStreamBench(streamBenchConfig{
			BaseURL: baseURL,
			Queries: queries,
			MaxDBs:  cfg.MaxDBs,
			PerDB:   cfg.PerDB,
			Samples: cfg.StreamSamples,
		})
		if err != nil {
			return err
		}
		if cfg.Name != "" {
			srep.Name = cfg.Name
		}
		fmt.Printf("streaming: TTFF p50 %.1fms p95 %.1fms | stream total p50 %.1fms | blocking p50 %.1fms p95 %.1fms | TTFF/blocking p50 %.2f | final==blocking %v (%d pairs)\n",
			srep.TTFF.P50*1e3, srep.TTFF.P95*1e3, srep.StreamTotal.P50*1e3,
			srep.Blocking.P50*1e3, srep.Blocking.P95*1e3,
			srep.TTFFOverBlockingP50, srep.FinalMatchesBlocking, srep.IntegrityPairs)
		if !srep.FinalMatchesBlocking {
			return fmt.Errorf("streambench: streamed final frame diverged from the blocking answer")
		}
		if cfg.OutFile != "" {
			if err := mergeSectionRuns(cfg.OutFile, "streaming", srep); err != nil {
				return fmt.Errorf("merge %s: %v", cfg.OutFile, err)
			}
			log.Printf("streaming report merged into %s", cfg.OutFile)
		}
	}
	return nil
}

// loadtestTrace replays -lt-trace when the file exists, otherwise
// generates a trace from the flags (and saves it to -lt-trace when the
// flag names a new file, so the next run replays it).
func loadtestTrace(w *experiments.World, cfg loadtestConfig) (*loadgen.Trace, error) {
	if cfg.TraceFile != "" {
		if _, err := os.Stat(cfg.TraceFile); err == nil {
			tr, err := loadgen.LoadFile(cfg.TraceFile)
			if err != nil {
				return nil, err
			}
			log.Printf("replaying trace %s (%d events, %d queries)", cfg.TraceFile, len(tr.Events), len(tr.Queries))
			return tr, nil
		}
	}

	phases := []loadgen.Phase{{QPS: cfg.QPS, DurationSeconds: cfg.Duration.Seconds()}}
	if cfg.Ramp != "" {
		var err error
		if phases, err = loadgen.ParseRamp(cfg.Ramp); err != nil {
			return nil, err
		}
	}
	tr, err := loadgen.Generate(loadgen.Spec{
		Phases:       phases,
		ZipfExponent: cfg.Zipf,
		Seed:         cfg.Seed,
	}, workloadQueries(w, cfg.NumQueries, cfg.Seed))
	if err != nil {
		return nil, err
	}
	if cfg.TraceFile != "" {
		if err := tr.SaveFile(cfg.TraceFile); err != nil {
			return nil, err
		}
		log.Printf("trace saved to %s for replay", cfg.TraceFile)
	}
	return tr, nil
}

// workloadQueries turns the testbed's evaluation query set into serving
// query strings. When more distinct queries are requested than the
// testbed carries, a larger short-query workload is generated against
// the same testbed (best effort: on failure the existing set is used).
func workloadQueries(w *experiments.World, n int, seed int64) []string {
	qs := w.Bed.Queries
	if n > len(qs) {
		spec := synth.TREC6QuerySpec(seed)
		spec.Count = n
		spec.MinRelevant = 3
		if err := synth.GenQueries(w.Bed, spec); err != nil {
			log.Printf("could not grow workload to %d queries (%v); using the testbed's %d", n, err, len(qs))
		} else {
			qs = w.Bed.Queries
		}
	}
	if n > 0 && n < len(qs) {
		qs = qs[:n]
	}
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = strings.Join(sanitizeAll(q.Terms), " ")
	}
	return out
}

// mergeServingReport appends one run to the named section ("serving" or
// "cluster_serving") of a BENCH JSON file, creating the file or the
// section as needed and leaving every other section untouched.
func mergeServingReport(path, section string, rep *loadgen.Report, sloRep *slo.Report) error {
	entry := map[string]any{"run": rep}
	if sloRep != nil {
		entry["slo"] = sloRep
	}
	return mergeSectionRuns(path, section, entry)
}

// mergeSectionRuns appends entry to {section: {"runs": [...]}} of a
// BENCH JSON file, creating the file or the section as needed and
// leaving every other section untouched.
func mergeSectionRuns(path, section string, entry any) error {
	doc := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("existing file is not a JSON object: %v", err)
		}
	}
	var runs struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if raw, ok := doc[section]; ok {
		if err := json.Unmarshal(raw, &runs); err != nil {
			return fmt.Errorf("existing %s section: %v", section, err)
		}
	}
	eb, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	runs.Runs = append(runs.Runs, eb)
	sb, err := json.Marshal(runs)
	if err != nil {
		return err
	}
	doc[section] = sb
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
