// Command chaosproxy fronts one cluster member with the fault-injecting
// reverse proxy from internal/chaos. Point a topology entry at the
// proxy's address instead of the real node and the whole resilience
// stack (wire retries, breakers, hedges, failover, retry budgets) gets
// exercised against injected latency, errors, resets, partitions, and
// slow links — over real sockets, the same way an operator would run a
// game day.
//
//	chaosproxy -listen 127.0.0.1:9460 -target http://127.0.0.1:9401
//
// Faults start transparent (or from -faults JSON) and are runtime-
// reconfigurable:
//
//	curl localhost:9460/chaos                                      # inspect
//	curl -X POST -d '{"latency_ms":150,"error_rate":0.3}' \
//	     localhost:9460/chaos                                      # inject
//	curl -X POST -d '{}' localhost:9460/chaos                      # clear
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"

	"repro/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosproxy: ")
	var (
		listen = flag.String("listen", "127.0.0.1:0", "address to serve on (port 0 picks an ephemeral port)")
		target = flag.String("target", "", "backend base URL to front, e.g. http://127.0.0.1:9401")
		faults = flag.String("faults", "", "initial fault set as JSON (default: transparent)")
		seed   = flag.Int64("seed", 1, "fault-sampling PRNG seed (runs are reproducible per seed)")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("-target is required")
	}
	var initial chaos.Faults
	if *faults != "" {
		if err := json.Unmarshal([]byte(*faults), &initial); err != nil {
			log.Fatalf("-faults: %v", err)
		}
	}
	p, err := chaos.New(*target, chaos.Options{Initial: initial, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fronting %s on http://%s (admin at /chaos)", *target, ln.Addr())
	log.Fatal(http.Serve(ln, p))
}
