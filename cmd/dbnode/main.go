// Command dbnode serves one text database over the repro wire protocol
// (see DESIGN.md): POST /v1/query evaluates a conjunctive query,
// GET /v1/doc/{id} returns one document's terms, GET /v1/info describes
// the node. A metasearch process (or any wire client) can then sample,
// classify, and select the database remotely, exactly as the paper's
// metasearcher treats autonomous web databases.
//
// Server mode — serve a corpus file (one document per line, analyzed
// with the library's default text pipeline):
//
//	dbnode -corpus docs.txt -name medline -category Health
//
// or serve one shard of the synthetic Web testbed (the shard's terms
// and category match what metasearch -remote expects when both use the
// same -scale and -seed):
//
//	dbnode -list -scale small -seed 1        # show available shard names
//	dbnode -testbed Web-Heart-0 -scale small -seed 1
//
// The default -listen 127.0.0.1:0 picks an ephemeral port; the chosen
// address is logged as "serving <name> (<n> docs) on http://host:port".
// The same listener also exposes /metrics, /debug/vars, and
// /debug/pprof for operations, plus GET /v1/health (200 ok while
// serving, 503 once draining). -max-inflight bounds concurrent protocol
// requests — excess load is shed with 429 + Retry-After instead of
// queueing — and SIGINT/SIGTERM triggers a graceful drain: health goes
// 503, in-flight requests finish (up to -drain-timeout), then the
// process exits.
//
// Client mode — poke a running node:
//
//	dbnode -node 127.0.0.1:8391 -info
//	dbnode -node 127.0.0.1:8391 -query "blood pressure treatment"
//	dbnode -node 127.0.0.1:8391 -query "heartu31u3" -raw
//
// -query analyzes the text with the default pipeline before sending;
// -raw sends whitespace-split words verbatim (for synthetic-vocabulary
// testbed nodes).
package main

import (
	"bufio"
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/telemetry"
	"repro/internal/textproc"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbnode: ")
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to serve on (port 0 picks an ephemeral port)")
		maxInfl  = flag.Int("max-inflight", 0, "admission gate: shed protocol requests with 429 + Retry-After past this many in flight (0 = unlimited)")
		drainFor = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline: how long to wait for in-flight requests after SIGINT/SIGTERM")
		corpus   = flag.String("corpus", "", "serve this corpus file (one document per line)")
		name     = flag.String("name", "", "database name (default: corpus file base name / testbed shard name)")
		category = flag.String("category", "", "topic category to advertise in /v1/info")
		testbed  = flag.String("testbed", "", "serve this synthetic Web testbed shard (see -list)")
		scale    = flag.String("scale", "small", "testbed scale: small | default")
		seed     = flag.Int64("seed", 1, "testbed seed (must match the metasearcher's)")
		list     = flag.Bool("list", false, "list the testbed's shard names and exit")
		trace    = flag.Bool("trace", false, "log one wire.serve span per request to stderr, joined to the caller's propagated trace (X-Trace-Id / X-Parent-Span)")
		node     = flag.String("node", "", "client mode: address of a running dbnode")
		query    = flag.String("query", "", "client mode: evaluate this query at -node")
		info     = flag.Bool("info", false, "client mode: print the -node description")
		raw      = flag.Bool("raw", false, "client mode: send -query words verbatim instead of analyzing them")
	)
	flag.Parse()

	if *node != "" {
		runClient(*node, *query, *info, *raw)
		return
	}
	if *list {
		listShards(*scale, *seed)
		return
	}

	db, cat, err := buildBackend(*corpus, *name, *category, *testbed, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("dbnode")
	// Every serve always traces into a bounded ring so the cluster
	// collector can join this node's wire.serve spans to the callers'
	// traces; -trace additionally logs every event to stderr.
	ring := telemetry.NewRingCapture(0)
	obs := telemetry.Observer(ring)
	if *trace {
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})
		obs = telemetry.MultiObserver(ring, telemetry.NewLogObserver(slog.New(h)))
	}
	tracer := telemetry.NewTracer(obs)
	mux := http.NewServeMux()
	srvNode := wire.NewNode(db, wire.ServerOptions{
		Category:    cat,
		MaxInflight: *maxInfl,
		Metrics:     reg,
		Tracer:      tracer,
	})
	mux.Handle("/v1/", srvNode)
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// Registered after Listen so the export can self-report the bound
	// address; the server has not started serving yet.
	mux.Handle("/debug/export/spans", telemetry.ExportSpansHandler(
		telemetry.Identity{Instance: ln.Addr().String(), Role: "dbnode"}, ring))
	log.Printf("serving %s (%d docs) on http://%s", db.Name(), db.NumDocs(), ln.Addr())

	// Graceful shutdown: on SIGINT/SIGTERM, fail /v1/health first (so
	// probes and breakers steer new traffic away), then drain in-flight
	// requests via http.Server.Shutdown under the -drain-timeout
	// deadline before the listener closes.
	srv := &http.Server{Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	srvNode.SetDraining(true)
	log.Printf("draining (up to %v, %d in flight)", *drainFor, srvNode.Inflight())
	sctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("drain deadline exceeded: %v", err)
	}
	log.Print("drained, exiting")
}

// buildBackend assembles the database to serve from either a corpus
// file or a synthetic testbed shard.
func buildBackend(corpus, name, category, testbed, scale string, seed int64) (*repro.LocalDatabase, string, error) {
	switch {
	case corpus != "" && testbed != "":
		return nil, "", fmt.Errorf("-corpus and -testbed are mutually exclusive")
	case corpus != "":
		db, err := loadCorpus(corpus, name)
		return db, category, err
	case testbed != "":
		return buildShard(testbed, name, category, scale, seed)
	default:
		return nil, "", fmt.Errorf("nothing to serve: pass -corpus <file> or -testbed <shard> (or -list)")
	}
}

// loadCorpus indexes a one-document-per-line text file under the
// library's default analyzer (stopword removal + stemming), the same
// pipeline a default-configured metasearcher applies to queries.
func loadCorpus(path, name string) (*repro.LocalDatabase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var docs [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		docs = append(docs, analyze(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("corpus %s holds no documents", path)
	}
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return repro.NewLocalDatabaseFromTerms(name, docs), nil
}

// buildShard regenerates the synthetic Web testbed (deterministic in
// scale and seed) and serves the named database, with the sanitized
// term space and directory category cmd/metasearch uses.
func buildShard(shard, name, category, scale string, seed int64) (*repro.LocalDatabase, string, error) {
	w, err := buildWorld(scale, seed)
	if err != nil {
		return nil, "", err
	}
	for _, db := range w.Bed.Databases {
		if db.Name != shard {
			continue
		}
		docs := make([][]string, db.Index.NumDocs())
		for id := range docs {
			docs[id] = experiments.SanitizeAll(db.Index.Doc(index.DocID(id)))
		}
		if name == "" {
			name = db.Name
		}
		if category == "" {
			category = w.Bed.Tree.Node(db.Category).Name
		}
		return repro.NewLocalDatabaseFromTerms(name, docs), category, nil
	}
	return nil, "", fmt.Errorf("no testbed database named %q (try -list)", shard)
}

func buildWorld(scale string, seed int64) (*experiments.World, error) {
	sc := experiments.TestScale()
	if scale == "default" {
		sc = experiments.DefaultScale()
	}
	sc.Seed = seed
	return experiments.BuildWorld(experiments.Web, sc)
}

func listShards(scale string, seed int64) {
	w, err := buildWorld(scale, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, db := range w.Bed.Databases {
		fmt.Printf("%-34s %6d docs  %s\n",
			db.Name, db.Index.NumDocs(), w.Bed.Tree.Node(db.Category).Name)
	}
}

// analyze applies the library's default text pipeline (what a
// default-configured Metasearcher does to raw text).
func analyze(text string) []string {
	return textproc.Analyze(text, textproc.Options{
		RemoveStopwords: true,
		Stem:            true,
		MinLength:       2,
	})
}

// runClient executes one client-mode operation against a node.
func runClient(addr, query string, info, raw bool) {
	c := wire.NewClient(addr, wire.ClientOptions{})
	ctx := context.Background()
	if info || query == "" {
		desc, err := c.Info(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("name: %s\nprotocol: %d\ndocs: %d\ncategory: %s\n",
			desc.Name, desc.Protocol, desc.NumDocs, desc.Category)
		if query == "" {
			return
		}
	}
	terms := strings.Fields(query)
	if !raw {
		terms = analyze(query)
	}
	if len(terms) == 0 {
		log.Fatalf("query %q has no indexable terms", query)
	}
	matches, ids, err := c.Query(ctx, terms, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v: %d matches\n", terms, matches)
	for rank, id := range ids {
		doc, err := c.Doc(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		preview := strings.Join(doc, " ")
		if len(preview) > 72 {
			preview = preview[:72] + "..."
		}
		fmt.Printf("%3d. doc %-6d %s\n", rank+1, id, preview)
	}
}
