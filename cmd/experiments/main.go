// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 6) over the synthetic testbeds.
//
// Usage:
//
//	experiments -all                     # everything (slow: full grid)
//	experiments -table 4                 # one table (1-10)
//	experiments -figure 4                # one figure (4 or 5)
//	experiments -extra adaptive-vs-universal
//	experiments -scale small             # miniature testbeds (fast sanity run)
//	experiments -seed 7                  # different synthetic world
//
// Output is aligned text: the same rows/series the paper reports, to be
// compared in shape (who wins, by how much, where crossovers are) with
// the published numbers; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/selection"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		all     = flag.Bool("all", false, "regenerate every table and figure")
		table   = flag.Int("table", 0, "regenerate one table (1-10)")
		figure  = flag.Int("figure", 0, "regenerate one figure (4 or 5)")
		extra   = flag.String("extra", "", "extra analysis: adaptive-vs-universal | freqest-effect | category-weighting | redde | mc-stability")
		scale   = flag.String("scale", "default", "testbed scale: default | small")
		seed    = flag.Int64("seed", 1, "synthetic world seed")
		maxK    = flag.Int("maxk", experiments.MaxK, "largest k for Rk curves")
		beds    = flag.String("beds", "", "restrict quality tables to one data set: Web | TREC4 | TREC6")
		format  = flag.String("format", "text", "figure output format: text | csv")
		verbose = flag.Bool("v", true, "print progress to stderr")
		telem   = flag.Bool("telemetry", true, "print a pipeline telemetry summary to stderr after the run")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	if *scale == "small" {
		sc = experiments.TestScale()
		sc.Queries = 10
	}
	sc.Seed = *seed

	r := &runner{
		scale: sc, maxK: *maxK, verbose: *verbose, bedFilter: *beds,
		csv: *format == "csv", reg: telemetry.NewRegistry(),
	}
	if *telem {
		defer func() {
			snap := r.reg.Snapshot()
			fmt.Fprintln(os.Stderr, "\npipeline telemetry:")
			fmt.Fprintln(os.Stderr, snap.Summary())
			// Audit summary: how often the paper's adaptive criterion
			// actually fired, per query and per query-database decision.
			if q := snap.Counters["adaptive_queries_total"]; q > 0 {
				shrunk := snap.Counters["adaptive_queries_shrunk_total"]
				applied := snap.Counters["adaptive_shrinkage_applied_total"]
				decided := applied + snap.Counters["adaptive_shrinkage_skipped_total"]
				fmt.Fprintf(os.Stderr,
					"selection audit: shrinkage fired on %d/%d queries (%.1f%%); %d/%d per-database decisions shrunk (%.1f%%)\n",
					shrunk, q, 100*float64(shrunk)/float64(q),
					applied, decided, 100*float64(applied)/float64(max(decided, 1)))
			}
		}()
	}

	switch {
	case *all:
		r.showcase()
		for t := 4; t <= 9; t++ {
			r.qualityTable(t)
		}
		r.figures(4)
		r.figures(5)
		r.table10()
		r.extras("adaptive-vs-universal")
		r.extras("freqest-effect")
		r.extras("category-weighting")
		r.extras("redde")
		r.extras("mc-stability")
	case *table >= 1 && *table <= 3:
		r.showcase()
	case *table >= 4 && *table <= 9:
		r.qualityTable(*table)
	case *table == 10:
		r.table10()
	case *figure == 4 || *figure == 5:
		r.figures(*figure)
	case *extra != "":
		r.extras(*extra)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runner caches worlds and summary sets across experiments.
type runner struct {
	scale     experiments.Scale
	maxK      int
	verbose   bool
	bedFilter string
	csv       bool

	reg *telemetry.Registry

	worlds map[experiments.BedKind]*experiments.World
	sums   map[string]*experiments.DBSummaries
	grids  map[experiments.BedKind][]experiments.QualityRow
}

func (r *runner) logf(format string, args ...interface{}) {
	if r.verbose {
		log.Printf(format, args...)
	}
}

func (r *runner) world(kind experiments.BedKind) *experiments.World {
	if r.worlds == nil {
		r.worlds = make(map[experiments.BedKind]*experiments.World)
	}
	if w, ok := r.worlds[kind]; ok {
		return w
	}
	start := time.Now()
	w, err := experiments.BuildWorld(kind, r.scale)
	if err != nil {
		log.Fatalf("building %v world: %v", kind, err)
	}
	w.Metrics = r.reg
	r.logf("built %v world: %d databases, %d docs, %d queries (%.1fs)",
		kind, len(w.Bed.Databases), w.Bed.TotalDocs(), len(w.Bed.Queries),
		time.Since(start).Seconds())
	r.worlds[kind] = w
	return w
}

func (r *runner) summaries(kind experiments.BedKind, cfg experiments.Config) *experiments.DBSummaries {
	if r.sums == nil {
		r.sums = make(map[string]*experiments.DBSummaries)
	}
	key := fmt.Sprintf("%v/%v", kind, cfg)
	if s, ok := r.sums[key]; ok {
		return s
	}
	w := r.world(kind)
	start := time.Now()
	s, err := w.BuildSummaries(cfg)
	if err != nil {
		log.Fatalf("building summaries %s: %v", key, err)
	}
	r.logf("built summaries %s (%.1fs)", key, time.Since(start).Seconds())
	r.sums[key] = s
	return s
}

func (r *runner) qualityBeds() []experiments.BedKind {
	switch r.bedFilter {
	case "Web":
		return []experiments.BedKind{experiments.Web}
	case "TREC4":
		return []experiments.BedKind{experiments.TREC4}
	case "TREC6":
		return []experiments.BedKind{experiments.TREC6}
	}
	return []experiments.BedKind{experiments.Web, experiments.TREC4, experiments.TREC6}
}

// qualityTable regenerates one of Tables 4-9. One quality grid per
// testbed carries all six metrics, so grids are computed once and
// shared across the tables.
func (r *runner) qualityTable(t int) {
	mt := experiments.QualityMetricTitle[t]
	var rows []experiments.QualityRow
	for _, kind := range r.qualityBeds() {
		rows = append(rows, r.grid(kind)...)
	}
	fmt.Println(experiments.FormatQualityTable(mt[1], mt[0], rows))
}

func (r *runner) grid(kind experiments.BedKind) []experiments.QualityRow {
	if r.grids == nil {
		r.grids = make(map[experiments.BedKind][]experiments.QualityRow)
	}
	if g, ok := r.grids[kind]; ok {
		return g
	}
	w := r.world(kind)
	start := time.Now()
	grid, err := w.QualityGrid()
	if err != nil {
		log.Fatalf("quality grid for %v: %v", kind, err)
	}
	r.logf("quality grid %v done (%.1fs)", kind, time.Since(start).Seconds())
	r.grids[kind] = grid
	return grid
}

// showcase prints Tables 1-3 from the Web world.
func (r *runner) showcase() {
	w := r.world(experiments.Web)
	fmt.Println(w.Table1(6))
	sums := r.summaries(experiments.Web, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	fmt.Println(experiments.FormatLambdaTable(w.Table2Lambdas(sums, 2)))
	fmt.Println(w.Table3(6))
}

// figures regenerates Figure 4 (CORI over TREC4+TREC6) or Figure 5
// (bGlOSS over TREC4, LM over TREC6).
func (r *runner) figures(f int) {
	type panel struct {
		bed     experiments.BedKind
		sampler experiments.SamplerKind
		scorer  selection.Scorer
		title   string
	}
	var panels []panel
	if f == 4 {
		for _, bed := range []experiments.BedKind{experiments.TREC4, experiments.TREC6} {
			for _, s := range []experiments.SamplerKind{experiments.QBS, experiments.FPS} {
				panels = append(panels, panel{bed, s, selection.CORI{},
					fmt.Sprintf("Figure 4: Rk for CORI over %v (%v)", bed, s)})
			}
		}
	} else {
		panels = []panel{
			{experiments.TREC4, experiments.QBS, selection.BGloss{}, "Figure 5a: Rk for bGlOSS over TREC4 (QBS)"},
			{experiments.TREC6, experiments.FPS, selection.LM{}, "Figure 5b: Rk for LM over TREC6 (FPS)"},
		}
	}
	for _, p := range panels {
		w := r.world(p.bed)
		sums := r.summaries(p.bed, experiments.Config{Sampler: p.sampler, FreqEst: true})
		start := time.Now()
		var results []experiments.AccuracyResult
		for _, st := range []experiments.Strategy{experiments.Shrinkage, experiments.Hierarchical, experiments.Plain} {
			results = append(results, w.SelectionAccuracy(sums, p.scorer, st, r.maxK))
		}
		r.logf("%s done (%.1fs)", p.title, time.Since(start).Seconds())
		fmt.Println(r.formatSeries(p.title, results))
		if tt, err := experiments.CompareRk(results[0], results[2]); err == nil {
			fmt.Printf("paired t-test Shrinkage vs Plain (per-query mean Rk): t = %.2f, p = %.3g\n\n", tt.T, tt.P)
		}
	}
}

// table10 regenerates the shrinkage application rates.
func (r *runner) table10() {
	var rows []experiments.ShrinkRateRow
	for _, bed := range []experiments.BedKind{experiments.TREC4, experiments.TREC6} {
		w := r.world(bed)
		for _, sampler := range []experiments.SamplerKind{experiments.FPS, experiments.QBS} {
			sums := r.summaries(bed, experiments.Config{Sampler: sampler, FreqEst: true})
			for _, scorer := range []selection.Scorer{selection.BGloss{}, selection.CORI{}, selection.LM{}} {
				res := w.SelectionAccuracy(sums, scorer, experiments.Shrinkage, r.maxK)
				rows = append(rows, experiments.ShrinkRateRow{
					Bed: bed, Sampler: sampler, Algo: scorer.Name(), Rate: res.ShrinkRate,
				})
				r.logf("table 10: %v/%v/%s rate %.1f%%", bed, sampler, scorer.Name(), 100*res.ShrinkRate)
			}
		}
	}
	fmt.Println(experiments.FormatShrinkRateTable(rows))
}

// extras runs the additional analyses discussed in Section 6.2 and the
// DESIGN.md ablations.
func (r *runner) extras(name string) {
	switch name {
	case "adaptive-vs-universal":
		fmt.Println("Extra: adaptive vs universal application of shrinkage (TREC4, QBS; Section 6.2)")
		w := r.world(experiments.TREC4)
		sums := r.summaries(experiments.TREC4, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
		for _, scorer := range []selection.Scorer{selection.BGloss{}, selection.CORI{}, selection.LM{}} {
			var results []experiments.AccuracyResult
			for _, st := range []experiments.Strategy{experiments.Shrinkage, experiments.Universal, experiments.Plain} {
				results = append(results, w.SelectionAccuracy(sums, scorer, st, r.maxK))
			}
			fmt.Println(experiments.FormatRkSeries(scorer.Name(), results))
		}
	case "freqest-effect":
		fmt.Println("Extra: effect of frequency estimation (TREC4, QBS; Section 6.2)")
		w := r.world(experiments.TREC4)
		for _, scorer := range []selection.Scorer{selection.BGloss{}, selection.CORI{}, selection.LM{}} {
			var results []experiments.AccuracyResult
			for _, fe := range []bool{true, false} {
				sums := r.summaries(experiments.TREC4, experiments.Config{Sampler: experiments.QBS, FreqEst: fe})
				res := w.SelectionAccuracy(sums, scorer, experiments.Plain, r.maxK)
				res.Label = "QBS-raw"
				if fe {
					res.Label = "QBS-freqest"
				}
				results = append(results, res)
			}
			fmt.Println(experiments.FormatRkSeries(scorer.Name()+" with vs without frequency estimation", results))
		}
	case "category-weighting":
		fmt.Println("Extra: Equation 1 vs equal-weight category summaries (footnote 5)")
		experiments.CategoryWeightingAblation(os.Stdout, r.world(experiments.Web),
			r.summaries(experiments.Web, experiments.Config{Sampler: experiments.QBS, FreqEst: true}))
	case "redde":
		fmt.Println("Extra: ReDDE baseline (Si & Callan; the paper's footnote-9 future work) vs CORI (TREC4, QBS)")
		w := r.world(experiments.TREC4)
		sums := r.summaries(experiments.TREC4, experiments.Config{
			Sampler: experiments.QBS, FreqEst: true, KeepSampleDocs: true,
		})
		redde, err := w.ReDDEAccuracy(sums, 0, r.maxK)
		if err != nil {
			log.Fatalf("redde: %v", err)
		}
		results := []experiments.AccuracyResult{
			redde,
			w.SelectionAccuracy(sums, selection.CORI{}, experiments.Shrinkage, r.maxK),
			w.SelectionAccuracy(sums, selection.CORI{}, experiments.Plain, r.maxK),
		}
		fmt.Println(experiments.FormatRkSeries("ReDDE vs CORI over TREC4 (QBS summaries)", results))
	case "mc-stability":
		fmt.Println("Extra: Monte-Carlo sample count vs adaptive decision stability (Section 4)")
		w := r.world(experiments.TREC4)
		sums := r.summaries(experiments.TREC4, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
		experiments.MCStability(os.Stdout, w, sums)
	default:
		log.Fatalf("unknown extra %q", name)
	}
}

// formatSeries renders a figure panel in the selected output format.
func (r *runner) formatSeries(title string, results []experiments.AccuracyResult) string {
	if r.csv {
		return experiments.FormatRkCSV(title, results)
	}
	return experiments.FormatRkSeries(title, results)
}
