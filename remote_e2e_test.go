package repro

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/wire"
)

// testShard is one synthetic testbed database in sanitized term space.
type testShard struct {
	name     string
	category string
	docs     [][]string
}

var (
	shardOnce    sync.Once
	shardCache   []testShard
	lexiconCache []string
	shardErr     error
)

// testbedShards builds the TestScale Web testbed once and returns its
// first n databases (sanitized the way cmd/metasearch and cmd/dbnode
// do) plus the matching seed lexicon.
func testbedShards(t testing.TB, n int) ([]testShard, []string) {
	t.Helper()
	shardOnce.Do(func() {
		sc := experiments.TestScale()
		w, err := experiments.BuildWorld(experiments.Web, sc)
		if err != nil {
			shardErr = err
			return
		}
		lexiconCache = experiments.SanitizeAll(w.Lexicon)
		for _, db := range w.Bed.Databases {
			docs := make([][]string, db.Index.NumDocs())
			for id := range docs {
				docs[id] = experiments.SanitizeAll(db.Index.Doc(index.DocID(id)))
			}
			shardCache = append(shardCache, testShard{
				name:     db.Name,
				category: w.Bed.Tree.Node(db.Category).Name,
				docs:     docs,
			})
		}
	})
	if shardErr != nil {
		t.Fatal(shardErr)
	}
	if n > len(shardCache) {
		t.Fatalf("testbed has %d databases, need %d", len(shardCache), n)
	}
	return shardCache[:n], lexiconCache
}

// testbedOptions is the metasearcher configuration cmd/metasearch uses
// for the synthetic term space.
func testbedOptions(lexicon []string) Options {
	return Options{
		SampleSize:    60,
		SeedLexicon:   lexicon,
		Seed:          1,
		KeepStopwords: true,
		NoStemming:    true,
	}
}

// TestRemotePipelineMatchesInProcess runs the full pipeline twice over
// the same three testbed databases — once in-process, once with every
// database behind a dbnode-style wire server — and requires identical
// summaries, selections, and merged search results. The wire protocol
// must be a transparent transport: same terms in, same ranking out.
func TestRemotePipelineMatchesInProcess(t *testing.T) {
	shards, lexicon := testbedShards(t, 3)
	query := strings.Join([]string{shards[0].docs[0][0], shards[0].docs[0][1]}, " ")

	local := New(testbedOptions(lexicon))
	for _, s := range shards {
		if err := local.AddDatabase(NewLocalDatabaseFromTerms(s.name, s.docs), s.category); err != nil {
			t.Fatal(err)
		}
	}
	if err := local.BuildSummaries(); err != nil {
		t.Fatal(err)
	}

	remote := New(testbedOptions(lexicon))
	for _, s := range shards {
		srv := httptest.NewServer(wire.NewServer(
			NewLocalDatabaseFromTerms(s.name, s.docs),
			wire.ServerOptions{Category: s.category}))
		t.Cleanup(srv.Close)
		rdb, err := DialRemoteDatabase(context.Background(), srv.URL, RemoteDatabaseOptions{
			Metrics: remote.Metrics(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rdb.Name() != s.name {
			t.Fatalf("node advertises name %q, want %q", rdb.Name(), s.name)
		}
		if rdb.Category() != s.category {
			t.Fatalf("node advertises category %q, want %q", rdb.Category(), s.category)
		}
		if rdb.NumDocs() != len(s.docs) {
			t.Fatalf("node advertises %d docs, want %d", rdb.NumDocs(), len(s.docs))
		}
		if err := remote.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
	}
	if err := remote.BuildSummariesContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The built state must match database by database: remote sampling
	// saw the same terms through the same seeded random streams.
	for _, s := range shards {
		li, err := local.Info(s.name)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := remote.Info(s.name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(li, ri) {
			t.Errorf("built state diverges for %s:\n local: %+v\nremote: %+v", s.name, li, ri)
		}
	}

	lsel, err := local.Select(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	rsel, err := remote.Select(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lsel, rsel) {
		t.Errorf("selection diverges:\n local: %+v\nremote: %+v", lsel, rsel)
	}

	lres, err := local.Search(query, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := remote.SearchContext(context.Background(), query, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lres) == 0 {
		t.Fatal("in-process search returned no results; query is not exercising the pipeline")
	}
	if !reflect.DeepEqual(lres, rres) {
		t.Errorf("search results diverge:\n local: %+v\nremote: %+v", lres, rres)
	}
}

// TestBuildSummariesContextCancelled verifies a cancelled build stops
// against remote nodes and reports the context's error.
func TestBuildSummariesContextCancelled(t *testing.T) {
	shards, lexicon := testbedShards(t, 1)
	srv := httptest.NewServer(wire.NewServer(
		NewLocalDatabaseFromTerms(shards[0].name, shards[0].docs),
		wire.ServerOptions{Category: shards[0].category}))
	defer srv.Close()

	m := New(testbedOptions(lexicon))
	rdb, err := DialRemoteDatabase(context.Background(), srv.URL, RemoteDatabaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = m.BuildSummariesContext(ctx)
	if err == nil {
		t.Fatal("cancelled build reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build error = %v, want context.Canceled", err)
	}
}
