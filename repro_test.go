package repro

import (
	"math/rand"
	"strings"
	"testing"
)

// topicOrder fixes topic iteration order: a shared rng makes map-order
// iteration nondeterministic across runs.
var topicOrder = []string{"Heart", "Cancer", "Soccer"}

var testTopics = map[string][]string{
	"Heart": {
		"blood pressure hypertension cardiology artery",
		"cardiac valve surgery coronary bypass",
		"heart rate arrhythmia electrocardiogram monitoring",
	},
	"Cancer": {
		"tumor oncology chemotherapy radiation malignant",
		"biopsy carcinoma metastasis lymphoma screening",
		"melanoma leukemia remission survival prognosis",
	},
	"Soccer": {
		"goal penalty striker midfielder goalkeeper",
		"match league championship referee offside",
		"stadium supporters trophy tournament qualifier",
	},
}

func topicDocs(rng *rand.Rand, topic string, n int) []string {
	phrases := testTopics[topic]
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 3+rng.Intn(3); j++ {
			sb.WriteString(phrases[rng.Intn(len(phrases))])
			sb.WriteString(". ")
		}
		docs[i] = sb.String()
	}
	return docs
}

// buildTestMetasearcher assembles a small three-database system.
func buildTestMetasearcher(t *testing.T, opts Options) *Metasearcher {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	if opts.SampleSize == 0 {
		opts.SampleSize = 30
	}
	m := New(opts)
	for _, topic := range topicOrder {
		if err := m.Train(topic, topicDocs(rng, topic, 20)); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name, topic, cat string, n int) {
		t.Helper()
		if err := m.AddDatabase(m.NewLocalDatabase(name, topicDocs(rng, topic, n)), cat); err != nil {
			t.Fatal(err)
		}
	}
	add("cardio", "Heart", "Heart", 80)
	add("onco", "Cancer", "", 90) // probe-classified
	add("futbol", "Soccer", "Soccer", 70)
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMetasearcherEndToEnd(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 5})
	sels, err := m.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) == 0 || sels[0].Database != "cardio" {
		t.Errorf("selection = %+v, want cardio first", sels)
	}
	sels, err = m.Select("tumor chemotherapy", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) == 0 || sels[0].Database != "onco" {
		t.Errorf("selection = %+v, want onco first", sels)
	}
}

func TestMetasearcherProbeClassification(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 6})
	info, err := m.Info("onco")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Category, "Cancer") && !strings.Contains(info.Category, "Health") {
		t.Errorf("onco classified as %q", info.Category)
	}
	if info.EstimatedSize < float64(info.SampleSize) {
		t.Errorf("size estimate %v below sample size %d", info.EstimatedSize, info.SampleSize)
	}
	if len(info.MixtureWeights) == 0 {
		t.Error("no mixture weights reported")
	}
	var sum float64
	for _, mw := range info.MixtureWeights {
		sum += mw.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("mixture weights sum to %v", sum)
	}
}

func TestMetasearcherScorers(t *testing.T) {
	for _, scorer := range []string{"cori", "bgloss", "lm"} {
		m := buildTestMetasearcher(t, Options{Seed: 7, Scorer: scorer})
		sels, err := m.Select("goal penalty match", 3)
		if err != nil {
			t.Fatalf("%s: %v", scorer, err)
		}
		if len(sels) == 0 {
			t.Fatalf("%s: nothing selected", scorer)
		}
		if sels[0].Database != "futbol" {
			t.Errorf("%s: top = %s, want futbol", scorer, sels[0].Database)
		}
	}
}

func TestMetasearcherUniversalShrinkage(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 8, UniversalShrinkage: true})
	sels, err := m.Select("blood pressure", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sels {
		if !s.Shrinkage {
			t.Errorf("universal shrinkage not reported for %s", s.Database)
		}
	}
}

func TestMetasearcherErrors(t *testing.T) {
	m := New(Options{})
	if _, err := m.Select("x", 1); err == nil {
		t.Error("Select before BuildSummaries accepted")
	}
	if err := m.BuildSummaries(); err == nil {
		t.Error("BuildSummaries with no databases accepted")
	}
	if err := m.Train("NoSuchCategory", []string{"doc"}); err == nil {
		t.Error("unknown training category accepted")
	}
	if err := m.AddDatabase(NewLocalDatabaseFromTerms("d", [][]string{{"a"}}), "NoSuchCategory"); err == nil {
		t.Error("unknown database category accepted")
	}
	if err := m.AddDatabase(NewLocalDatabaseFromTerms("d", [][]string{{"a"}}), "Heart"); err != nil {
		t.Errorf("valid AddDatabase failed: %v", err)
	}
	if err := m.AddDatabase(NewLocalDatabaseFromTerms("d", [][]string{{"a"}}), "Heart"); err == nil {
		t.Error("duplicate database name accepted")
	}
	// Probe classification without training data must fail clearly.
	m2 := New(Options{})
	if err := m2.AddDatabase(NewLocalDatabaseFromTerms("x", [][]string{{"a"}}), ""); err != nil {
		t.Fatal(err)
	}
	if err := m2.BuildSummaries(); err == nil {
		t.Error("probe classification without Train accepted")
	}
	m3 := buildTestMetasearcher(t, Options{Seed: 9})
	if _, err := m3.Select("", 3); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := m3.Info("nope"); err == nil {
		t.Error("Info on unknown database accepted")
	}
}

func TestMetasearcherCustomHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(Options{
		SampleSize: 25,
		Categories: &CategorySpec{
			Name: "Root",
			Children: []*CategorySpec{
				{Name: "Medicine", Children: []*CategorySpec{{Name: "Heart"}, {Name: "Cancer"}}},
				{Name: "Sport", Children: []*CategorySpec{{Name: "Soccer"}}},
			},
		},
	})
	hier := m.Hierarchy()
	if len(hier) != 6 {
		t.Fatalf("hierarchy nodes = %d, want 6", len(hier))
	}
	for _, topic := range topicOrder {
		if err := m.Train(topic, topicDocs(rng, topic, 15)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddDatabase(m.NewLocalDatabase("c1", topicDocs(rng, "Heart", 60)), "Heart"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("c2", topicDocs(rng, "Cancer", 60)), "Cancer"); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	sels, err := m.Select("tumor biopsy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) == 0 || sels[0].Database != "c2" {
		t.Errorf("selection = %+v", sels)
	}
}

func TestMetasearcherFPSSampler(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 10, Sampler: "fps"})
	sels, err := m.Select("blood pressure hypertension", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) == 0 || sels[0].Database != "cardio" {
		t.Errorf("FPS selection = %+v", sels)
	}
}

func TestLocalDatabase(t *testing.T) {
	db := NewLocalDatabaseFromTerms("test", [][]string{
		{"alpha", "beta"},
		{"alpha"},
	})
	if db.Name() != "test" || db.NumDocs() != 2 {
		t.Error("metadata wrong")
	}
	matches, ids := db.Query([]string{"alpha"}, 10)
	if matches != 2 || len(ids) != 2 {
		t.Errorf("Query = %d, %v", matches, ids)
	}
	doc := db.Fetch(ids[0])
	if len(doc) == 0 {
		t.Error("Fetch returned nothing")
	}
}

func TestDefaultLexiconIsStemmed(t *testing.T) {
	for _, w := range defaultLexicon() {
		if w == "people" { // stem of "people" is "peopl"
			t.Errorf("lexicon not stemmed: %q", w)
		}
	}
}

func TestMetasearcherReDDEScorer(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 40, Scorer: "redde"})
	sels, err := m.Select("tumor chemotherapy biopsy", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) == 0 || sels[0].Database != "onco" {
		t.Errorf("ReDDE selection = %+v, want onco first", sels)
	}
	for _, s := range sels {
		if s.Score <= 0 {
			t.Errorf("non-positive ReDDE score: %+v", s)
		}
	}
}

func TestMetasearcherParallelBuildMatchesSequential(t *testing.T) {
	seq := buildTestMetasearcher(t, Options{Seed: 50})
	par := buildTestMetasearcher(t, Options{Seed: 50, Parallelism: 4})
	for _, name := range []string{"cardio", "onco", "futbol"} {
		a, err := seq.Info(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Info(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.EstimatedSize != b.EstimatedSize || a.SummaryWords != b.SummaryWords || a.Category != b.Category {
			t.Errorf("%s differs: %+v vs %+v", name, a, b)
		}
	}
}

func TestParseHierarchy(t *testing.T) {
	spec, err := ParseHierarchy(strings.NewReader("Root\n\tMedicine\n\t\tHeart\n\tSport\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "Root" || len(spec.Children) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Children[0].Name != "Medicine" || spec.Children[0].Children[0].Name != "Heart" {
		t.Errorf("nested spec wrong: %+v", spec.Children[0])
	}
	m := New(Options{Categories: spec})
	if len(m.Hierarchy()) != 4 {
		t.Errorf("hierarchy nodes = %d", len(m.Hierarchy()))
	}
	if _, err := ParseHierarchy(strings.NewReader("")); err == nil {
		t.Error("empty taxonomy accepted")
	}
}

func TestMetasearcherAnalyzerToggles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(Options{SampleSize: 25, KeepStopwords: true, NoStemming: true})
	for _, topic := range topicOrder {
		if err := m.Train(topic, topicDocs(rng, topic, 15)); err != nil {
			t.Fatal(err)
		}
	}
	// With stemming off, "goals" must NOT match documents containing
	// "goal": the raw surface forms differ.
	if err := m.AddDatabase(m.NewLocalDatabase("futbol", topicDocs(rng, "Soccer", 60)), "Soccer"); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	plural, err := m.Select("goals", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plural) != 0 {
		t.Errorf("unstemmed metasearcher matched %v for [goals]", plural)
	}
	exact, err := m.Select("goal", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) == 0 {
		t.Error("exact surface form not matched")
	}
	// Stopwords retained: "the" is indexable now.
	if _, err := m.Select("the", 1); err != nil {
		t.Errorf("stopword query rejected with KeepStopwords: %v", err)
	}
}
