package repro

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/summary"
)

// Sampling a remote database costs hundreds of queries, so deployments
// build content summaries offline and load them at query time (the
// paper computes the λ weights offline for the same reason). Save and
// Load persist a built Metasearcher's summaries; a loaded metasearcher
// can Select immediately without any live database connection, because
// selection consults only the summaries.

// persistVersion guards the on-disk format.
const persistVersion = 1

type persistEnvelope struct {
	Version   int         `json:"version"`
	Databases []persistDB `json:"databases"`
	Training  int         `json:"training_docs"` // informational
	// Checksum is "sha256:<hex>" over the canonical JSON encoding of
	// Databases, verified by Load so a torn or corrupted save file is
	// rejected loudly instead of silently loading garbage summaries.
	// Empty in files from before the field existed (still loadable).
	Checksum string `json:"checksum,omitempty"`
}

// databasesChecksum computes the envelope's content checksum.
func databasesChecksum(dbs []persistDB) (string, error) {
	b, err := json.Marshal(dbs)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

type persistDB struct {
	Name     string          `json:"name"`
	Category string          `json:"category"` // assigned classification (unique name)
	SizeEst  float64         `json:"size_estimate"`
	Gamma    float64         `json:"gamma"`
	Sample   int             `json:"sample_size"`
	Summary  json.RawMessage `json:"summary"`
	// Telemetry is the build provenance (sampling cost, EM convergence,
	// λ vector). Optional: save files written before it existed load
	// fine, leaving the provenance zero.
	Telemetry *persistTelemetry `json:"telemetry,omitempty"`
}

type persistTelemetry struct {
	SampleQueries int             `json:"sample_queries"`
	EMIterations  int             `json:"em_iterations"`
	Lambdas       []persistLambda `json:"lambdas,omitempty"`
}

type persistLambda struct {
	Component string  `json:"component"`
	Weight    float64 `json:"weight"`
}

// Save writes the built summaries. BuildSummaries must have succeeded.
func (m *Metasearcher) Save(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.built {
		return errors.New("repro: nothing to save; run BuildSummaries first")
	}
	env := persistEnvelope{Version: persistVersion, Training: m.training.Len()}
	for _, r := range m.dbs {
		var buf bytes.Buffer
		if err := r.unshrunk.Encode(&buf); err != nil {
			return fmt.Errorf("repro: encoding %s: %w", r.name, err)
		}
		pd := persistDB{
			Name:     r.name,
			Category: m.tree.Node(r.assigned).Name,
			SizeEst:  r.sizeEst,
			Gamma:    r.gamma,
			Sample:   r.sampleLen,
			Summary:  json.RawMessage(buf.Bytes()),
		}
		if r.prov != nil {
			pt := &persistTelemetry{
				SampleQueries: r.prov.SampleQueries,
				EMIterations:  r.prov.EMIterations,
			}
			for _, l := range r.prov.Lambdas {
				pt.Lambdas = append(pt.Lambdas, persistLambda{Component: l.Component, Weight: l.Weight})
			}
			pd.Telemetry = pt
		}
		env.Databases = append(env.Databases, pd)
	}
	sum, err := databasesChecksum(env.Databases)
	if err != nil {
		return fmt.Errorf("repro: save: %w", err)
	}
	env.Checksum = sum
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(env); err != nil {
		return fmt.Errorf("repro: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// A save marks a summary state the operator may re-Load or ship to
	// other processes; bumping the generation here keeps "what the cache
	// answers from" never older than "what is on disk".
	m.InvalidateCaches()
	return nil
}

// SaveFile writes the built summaries to path crash-safely: the bytes
// land in a temp file first and are renamed over path only once fully
// written, so a crash mid-save cannot leave a truncated state file
// behind (Load would reject one anyway, via the checksum).
func (m *Metasearcher) SaveFile(path string) error {
	return atomicfile.Write(path, 0o644, func(f *os.File) error {
		return m.Save(f)
	})
}

// LoadFile restores summaries previously written by SaveFile (or any
// Save output on disk).
func (m *Metasearcher) LoadFile(path string) error {
	return m.LoadFileFiltered(path, nil)
}

// LoadFileFiltered is LoadFile with a shard scope: see LoadFiltered.
func (m *Metasearcher) LoadFileFiltered(path string, keep func(name string) bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("repro: load: %w", err)
	}
	defer f.Close()
	return m.LoadFiltered(f, keep)
}

// Load restores summaries previously written by Save into this
// metasearcher, replacing any registered databases, and rebuilds the
// category summaries and shrunk summaries. The metasearcher must have
// been created with the same hierarchy the state was saved under
// (category names are matched by name). A database already registered
// under a name the save file mentions keeps its live handle, so a
// deployment can dial remote nodes first, Load offline-built
// summaries second, and Search immediately. Files carrying a content
// checksum are verified; checksum-less files (older saves) still load.
func (m *Metasearcher) Load(r io.Reader) error {
	return m.LoadFiltered(r, nil)
}

// LoadFiltered is the shard-scoped load path of the cluster tier: it
// restores the complete save file exactly like Load — every database's
// summary, the category summaries, the shrunk summaries — but marks
// only the databases keep admits as this process's search scope. A nil
// keep means unscoped (plain Load).
//
// The full summary store is retained on purpose, and this is the
// shrinkage invariant the cluster tier rests on: selection scores are
// functions of collection-wide statistics (the CORI context's mean
// document counts and collection frequencies, the category summaries
// every shrunk summary was EM-fit against, the LM root model, and the
// per-database-index Monte-Carlo random streams of adaptive selection).
// Every shard therefore computes bit-identical selections from the
// identical file, and the router can merge per-shard rankings into
// exactly the single-process answer. What a shard does NOT do is dial,
// probe, or query out-of-scope databases: their live handles are
// dropped, their fan-out slots are skipped (counted in
// search_out_of_scope_total), and its breakers and health probes cover
// only its own slice. Summaries are kilobytes; connections, probes, and
// query fan-out are what sharding actually divides.
//
// Like Load, LoadFiltered bumps the cache generation — each shard keeps
// its own caches, so the bump is naturally scoped to this shard.
func (m *Metasearcher) LoadFiltered(r io.Reader, keep func(name string) bool) error {
	var env persistEnvelope
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&env); err != nil {
		return fmt.Errorf("repro: load: %w", err)
	}
	if env.Version != persistVersion {
		return fmt.Errorf("repro: unsupported save version %d", env.Version)
	}
	if env.Checksum != "" {
		// Decode→re-encode round-trips canonically (RawMessage passes
		// through verbatim), so the recomputed sum matches Save's unless
		// the content was corrupted.
		sum, err := databasesChecksum(env.Databases)
		if err != nil {
			return fmt.Errorf("repro: load: %w", err)
		}
		if sum != env.Checksum {
			return fmt.Errorf("repro: load: checksum mismatch (file says %s, content is %s) — save file is corrupted or was torn mid-write", env.Checksum, sum)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	// Databases already registered with live handles keep them when the
	// loaded state names them: a deployment can dial its remote nodes,
	// then Load offline-built summaries, and Search immediately.
	handles := make(map[string]SearchableDatabase, len(m.dbs))
	for _, r := range m.dbs {
		if r.db != nil {
			handles[r.name] = r.db
		}
	}

	dbs := make([]*registeredDB, 0, len(env.Databases))
	seen := make(map[string]bool, len(env.Databases))
	for _, pd := range env.Databases {
		if pd.Name == "" || seen[pd.Name] {
			return fmt.Errorf("repro: invalid or duplicate database name %q", pd.Name)
		}
		seen[pd.Name] = true
		cat, ok := m.tree.Lookup(pd.Category)
		if !ok {
			return fmt.Errorf("repro: database %q references unknown category %q", pd.Name, pd.Category)
		}
		sum, err := summary.Decode(bytes.NewReader(pd.Summary))
		if err != nil {
			return fmt.Errorf("repro: database %q: %w", pd.Name, err)
		}
		rdb := &registeredDB{
			name:      pd.Name,
			db:        handles[pd.Name],
			category:  cat,
			fixedCat:  true,
			assigned:  cat,
			unshrunk:  sum,
			sizeEst:   pd.SizeEst,
			gamma:     pd.Gamma,
			sampleLen: pd.Sample,
		}
		if pd.Telemetry != nil {
			prov := &BuildTelemetry{
				SampleQueries: pd.Telemetry.SampleQueries,
				EMIterations:  pd.Telemetry.EMIterations,
			}
			for _, l := range pd.Telemetry.Lambdas {
				prov.Lambdas = append(prov.Lambdas, core.Lambda{Component: l.Component, Weight: l.Weight})
			}
			rdb.prov = prov
		}
		dbs = append(dbs, rdb)
	}
	if len(dbs) == 0 {
		return errors.New("repro: save file contains no databases")
	}

	// Shard scope: every summary stays (selection statistics are
	// collection-wide), but only in-scope databases keep live handles
	// or are eligible for the search fan-out.
	var scope map[string]bool
	if keep != nil {
		scope = make(map[string]bool)
		for _, r := range dbs {
			if keep(r.name) {
				scope[r.name] = true
			} else {
				r.db = nil
			}
		}
		if len(scope) == 0 {
			return errors.New("repro: load scope matches no database in the save file")
		}
	}

	classified := make([]core.Classified, len(dbs))
	for i, r := range dbs {
		classified[i] = core.Classified{Name: r.name, Category: r.assigned, Sum: r.unshrunk}
	}
	cats := core.BuildCategorySummaries(m.tree, classified, core.SizeWeighted)
	for i, r := range dbs {
		r.shrunk = core.Shrink(cats, classified[i], core.ShrinkOptions{Metrics: m.reg})
	}
	m.dbs = dbs
	m.cats = cats
	m.global = cats.Summary(hierarchy.Root)
	m.scope = scope
	m.built = true
	// The summaries every cached selection was computed from are gone;
	// stale entries must not outlive them.
	m.InvalidateCaches()
	return nil
}
