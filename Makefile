GO ?= go

.PHONY: all vet build test race bench smoke smoke-remote smoke-gateway smoke-loadtest smoke-cluster loadtest check clean

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The telemetry registry and tracer are hammered concurrently by the
# build pipeline; run the whole tree under the race detector.
race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the bench
# harness without paying for a full measurement run.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

smoke: vet build
	$(GO) test -race ./internal/telemetry/ .
	$(GO) test -run='^$$' -bench=BenchmarkTable2 -benchtime=1x .

# End-to-end wire-protocol smoke: build dbnode, serve the sample corpus
# on an ephemeral port, run one remote query, tear down.
smoke-remote:
	GO="$(GO)" sh scripts/smoke_remote.sh

# End-to-end gateway smoke: run metasearch as a query service, issue
# the same query twice, assert the second is a result-cache hit, and
# check SIGTERM drains cleanly.
smoke-gateway:
	GO="$(GO)" sh scripts/smoke_gateway.sh

# End-to-end workload-engine smoke: drive the loopback gateway at a
# modest rate for a few seconds and check the serving report lands in
# a (throwaway) BENCH file.
smoke-loadtest:
	QPS=40 DURATION=3s GO="$(GO)" sh scripts/loadtest.sh "$$(mktemp -u).json"

# End-to-end cluster smoke: replicated dbnodes behind two
# consistent-hash shards behind the scatter-gather router; queries keep
# succeeding while every preferred replica is killed mid-stream.
smoke-cluster:
	GO="$(GO)" sh scripts/smoke_cluster.sh

# A full measured load run into the PR's BENCH file (see
# scripts/loadtest.sh for the QPS/DURATION/RAMP/DRIVER knobs).
loadtest:
	GO="$(GO)" sh scripts/loadtest.sh

# The full pre-merge gate.
check: vet build test race smoke-remote smoke-gateway smoke-loadtest smoke-cluster

clean:
	$(GO) clean ./...
