GO ?= go

.PHONY: all vet build test race bench smoke clean

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The telemetry registry and tracer are hammered concurrently by the
# build pipeline; run the whole tree under the race detector.
race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the bench
# harness without paying for a full measurement run.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

smoke: vet build
	$(GO) test -race ./internal/telemetry/ .
	$(GO) test -run='^$$' -bench=BenchmarkTable2 -benchtime=1x .

clean:
	$(GO) clean ./...
