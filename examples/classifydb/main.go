// Classifydb demonstrates probe-based database classification (the
// QProber technique the paper relies on for TREC databases, Section
// 5.2): the classifier learns discriminative probe words per category
// from labeled examples, then classifies an unknown database by sending
// the probes and observing only match counts — no document is ever
// retrieved.
//
//	go run ./examples/classifydb
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/synth"
)

func main() {
	tree := hierarchy.Default()
	gen, err := synth.NewGenerator(synth.Config{Tree: tree, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// Train from generated example documents for every leaf category.
	ts := &classify.TrainingSet{}
	rng := rand.New(rand.NewSource(5))
	for _, leaf := range tree.Leaves() {
		src := gen.NewDocSource(leaf, nil, rng)
		var buf []string
		for i := 0; i < 40; i++ {
			buf = src.GenDoc(rng, buf)
			ts.Add(leaf, buf)
		}
	}
	cls, err := classify.Train(tree, ts, classify.Options{})
	if err != nil {
		log.Fatal(err)
	}

	aids, _ := tree.Lookup("AIDS")
	fmt.Printf("learned probes for %s: %v\n\n", tree.PathString(aids), cls.Probes(aids))

	// Build "unknown" databases under a few categories and classify
	// them from match counts alone.
	for _, catName := range []string{"AIDS", "Soccer", "Economics", "Health"} {
		cat, _ := tree.Lookup(catName)
		priv, err := gen.NewPrivateVocab("site_")
		if err != nil {
			log.Fatal(err)
		}
		src := gen.NewDocSource(cat, priv, rng)
		b := index.NewBuilder(400)
		var buf []string
		for i := 0; i < 400; i++ {
			buf = src.GenDoc(rng, buf)
			b.Add(buf)
		}
		db := prober{b.Build()}
		got := cls.Classify(db)
		fmt.Printf("database generated under %-28s classified as %s\n",
			tree.PathString(cat), tree.PathString(got))
	}
}

// prober exposes only MatchCount — the uncooperative-database interface.
type prober struct{ ix *index.Index }

func (p prober) MatchCount(q []string) int { return p.ix.MatchCount(q) }
