// Trecbench runs a miniature version of the paper's database selection
// accuracy experiment (Section 6.2) end to end: it generates a
// TREC4-style testbed of topically clustered databases with a long-query
// workload and exact relevance judgments, builds QBS summaries with
// frequency estimation, and compares the Rk curves of Plain,
// Hierarchical, and adaptive Shrinkage selection for a chosen scorer.
//
//	go run ./examples/trecbench [-scorer cori|bgloss|lm] [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/selection"
)

func main() {
	scorerName := flag.String("scorer", "cori", "selection algorithm: cori | bgloss | lm")
	full := flag.Bool("full", false, "paper-scale testbed (slower)")
	flag.Parse()

	var scorer selection.Scorer
	switch *scorerName {
	case "bgloss":
		scorer = selection.BGloss{}
	case "lm":
		scorer = selection.LM{}
	default:
		scorer = selection.CORI{}
	}

	sc := experiments.TestScale()
	sc.TRECPool = 6000
	sc.TRECDatabases = 20
	sc.Queries = 15
	sc.SampleTarget = 120
	if *full {
		sc = experiments.DefaultScale()
	}

	fmt.Println("building TREC4-style testbed (clustered databases, long queries)...")
	w, err := experiments.BuildWorld(experiments.TREC4, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d databases, %d documents, %d queries\n\n",
		len(w.Bed.Databases), w.Bed.TotalDocs(), len(w.Bed.Queries))

	sums, err := w.BuildSummaries(experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	if err != nil {
		log.Fatal(err)
	}

	maxK := 10
	results := []experiments.AccuracyResult{
		w.SelectionAccuracy(sums, scorer, experiments.Shrinkage, maxK),
		w.SelectionAccuracy(sums, scorer, experiments.Hierarchical, maxK),
		w.SelectionAccuracy(sums, scorer, experiments.Plain, maxK),
	}
	fmt.Println(experiments.FormatRkSeries(
		fmt.Sprintf("Rk for %s over the TREC4-style testbed (QBS summaries)", scorer.Name()),
		results))
	fmt.Printf("shrinkage applied for %.1f%% of query-database pairs\n", 100*results[0].ShrinkRate)
}
