// Raresearch reproduces Example 1 of the paper: a rare but important
// word ("hemophilia" in PubMed) occurs in only a fraction of a percent
// of a large database's documents. A 300-document sample almost surely
// misses it, so the unshrunk content summary cannot route the query
// [hemophilia] to the database — but the shrunk summary recovers it
// from topically related databases.
//
//	go run ./examples/raresearch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	repro "repro"
)

const rareWord = "hemophilia"

// healthPhrases build generic medical documents; a small fraction of
// pubmed.example documents additionally mention the rare word.
var healthPhrases = []string{
	"clinical treatment outcomes for chronic patients",
	"randomized trial of the new therapy protocol",
	"diagnosis guidelines for primary care physicians",
	"symptoms persisted after the medication course",
	"blood test results and laboratory reference ranges",
	"patient recovery rates across hospital cohorts",
	"dosage adjustment for pediatric cases",
	"epidemiology of the disease in urban populations",
}

var sportsPhrases = []string{
	"the team won the championship game decisively",
	"player statistics for the current season",
	"coach announced the starting lineup yesterday",
	"the stadium crowd celebrated the final score",
}

func healthDocs(rng *rand.Rand, n int, rareFrac float64) []string {
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 5+rng.Intn(4); j++ {
			sb.WriteString(healthPhrases[rng.Intn(len(healthPhrases))])
			sb.WriteString(". ")
		}
		if rng.Float64() < rareFrac {
			sb.WriteString("management of " + rareWord + " with clotting factor concentrate. ")
		}
		docs[i] = sb.String()
	}
	return docs
}

func sportsDocs(rng *rand.Rand, n int) []string {
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 5+rng.Intn(4); j++ {
			sb.WriteString(sportsPhrases[rng.Intn(len(sportsPhrases))])
			sb.WriteString(". ")
		}
		docs[i] = sb.String()
	}
	return docs
}

func main() {
	rng := rand.New(rand.NewSource(3))
	m := repro.New(repro.Options{
		SampleSize: 100,
		Scorer:     "bgloss", // no smoothing: most sensitive to missing words
		Seed:       11,
	})

	// pubmed.example: large, mentions the rare word in ~0.5% of docs —
	// likely absent from a 100-doc sample. The sibling databases
	// mention it more prominently, as specialist sites would.
	pubmed := m.NewLocalDatabase("pubmed.example", healthDocs(rng, 4000, 0.005))
	sibling1 := m.NewLocalDatabase("hematology.example", healthDocs(rng, 500, 0.3))
	sibling2 := m.NewLocalDatabase("bloodcenter.example", healthDocs(rng, 400, 0.2))
	offtopic := m.NewLocalDatabase("espn.example", sportsDocs(rng, 800))

	for db, cat := range map[*repro.LocalDatabase]string{
		pubmed: "Health", sibling1: "Health", sibling2: "Health", offtopic: "Sports",
	} {
		if err := m.AddDatabase(db, cat); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.BuildSummaries(); err != nil {
		log.Fatal(err)
	}

	truthDF, _ := pubmed.Query([]string{"hemophilia"}, 0)
	fmt.Printf("ground truth: %q matches %d of %d pubmed.example documents (%.2f%%)\n\n",
		rareWord, truthDF, pubmed.NumDocs(), 100*float64(truthDF)/float64(pubmed.NumDocs()))

	info, err := m.Info("pubmed.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pubmed.example sampled %d docs; estimated size %.0f\n",
		info.SampleSize, info.EstimatedSize)
	fmt.Print("mixture weights:")
	for _, mw := range info.MixtureWeights {
		fmt.Printf(" %s=%.2f", mw.Component, mw.Weight)
	}
	fmt.Println()

	sels, err := m.Select(rareWord, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselection for query [%s]:\n", rareWord)
	if len(sels) == 0 {
		fmt.Println("  (no database selected)")
	}
	for i, s := range sels {
		mark := ""
		if s.Shrinkage {
			mark = " (via shrinkage)"
		}
		fmt.Printf("  %d. %-22s score %.3g%s\n", i+1, s.Database, s.Score, mark)
	}
	fmt.Println("\nWithout shrinkage a database whose sample missed the word cannot")
	fmt.Println("be selected by bGlOSS at all; with the shrunk summary, pubmed.example")
	fmt.Println("competes for the query even though its sample never saw the word.")
}
