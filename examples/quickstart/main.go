// Quickstart: metasearch over three small text databases.
//
// This example exercises the library's end-to-end path on readable
// English text: register databases, train the probe classifier, build
// shrinkage-based content summaries, and select databases for queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	repro "repro"
)

// phrases per topic, recombined randomly into documents.
var topics = map[string][]string{
	"Heart": {
		"blood pressure measurements in hypertensive patients",
		"coronary artery disease and cholesterol levels",
		"cardiac surgery outcomes for valve replacement",
		"heart rate variability during exercise stress tests",
		"treatment of arrhythmia with beta blockers",
		"hypertension management and dietary sodium",
	},
	"Cancer": {
		"tumor growth rates under chemotherapy regimens",
		"breast cancer screening with mammography",
		"radiation therapy dosage for lymphoma patients",
		"oncology clinical trials for metastatic melanoma",
		"biopsy results and malignant cell classification",
		"survival rates after early tumor detection",
	},
	"Soccer": {
		"the striker scored a goal in the final minute",
		"the goalkeeper saved a penalty kick during the match",
		"midfield players controlled possession of the ball",
		"the league championship trophy ceremony",
		"offside decisions reviewed by the referee",
		"training drills for passing and dribbling",
	},
}

func makeDocs(rng *rand.Rand, topic string, n int) []string {
	phrases := topics[topic]
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 4+rng.Intn(4); j++ {
			sb.WriteString(phrases[rng.Intn(len(phrases))])
			sb.WriteString(". ")
		}
		docs[i] = sb.String()
	}
	return docs
}

func main() {
	rng := rand.New(rand.NewSource(42))
	m := repro.New(repro.Options{
		SampleSize: 40, // tiny databases; sample most of them
		Scorer:     "cori",
		Seed:       7,
	})

	// Train the classifier with a handful of labeled example documents
	// per category (the role of directory-labeled pages in the paper).
	for _, topic := range []string{"Heart", "Cancer", "Soccer"} {
		if err := m.Train(topic, makeDocs(rng, topic, 30)); err != nil {
			log.Fatal(err)
		}
	}

	// Register databases. cardio.example comes with a directory
	// classification; the other two are classified by query probing.
	if err := m.AddDatabase(m.NewLocalDatabase("cardio.example", makeDocs(rng, "Heart", 120)), "Heart"); err != nil {
		log.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("oncology.example", makeDocs(rng, "Cancer", 150)), ""); err != nil {
		log.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("futbol.example", makeDocs(rng, "Soccer", 100)), ""); err != nil {
		log.Fatal(err)
	}

	if err := m.BuildSummaries(); err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"cardio.example", "oncology.example", "futbol.example"} {
		info, err := m.Info(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  classified: %s\n  estimated size: %.0f docs (sampled %d)\n  mixture weights:",
			info.Name, info.Category, info.EstimatedSize, info.SampleSize)
		for _, mw := range info.MixtureWeights {
			fmt.Printf(" %s=%.2f", mw.Component, mw.Weight)
		}
		fmt.Println()
	}
	fmt.Println()

	for _, q := range []string{
		"blood pressure hypertension",
		"tumor chemotherapy",
		"goal penalty match",
		"patients treatment",
	} {
		sels, err := m.Select(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-34q ->", q)
		for _, s := range sels {
			mark := ""
			if s.Shrinkage {
				mark = "*"
			}
			fmt.Printf("  %s%s (%.3g)", s.Database, mark, s.Score)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = shrunk summary used for this query)")

	// The full metasearch loop: select databases, evaluate the query at
	// each, merge the ranked results.
	results, err := m.Search("blood pressure hypertension", 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmerged results for [blood pressure hypertension]:")
	for i, r := range results {
		fmt.Printf("  %d. %s doc#%d (%.3f)\n", i+1, r.Database, r.DocID, r.Score)
	}
}
