package repro_test

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	repro "repro"
)

// phrases builds deterministic topical documents for the example.
func phrases(rng *rand.Rand, parts []string, n int) []string {
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 4; j++ {
			sb.WriteString(parts[rng.Intn(len(parts))])
			sb.WriteString(". ")
		}
		docs[i] = sb.String()
	}
	return docs
}

// Example demonstrates the end-to-end metasearch flow: train the
// classifier, register databases, build shrinkage-based summaries, and
// select databases for a query.
func Example() {
	rng := rand.New(rand.NewSource(7))
	heart := []string{
		"blood pressure and hypertension management",
		"coronary artery disease treatment",
		"cardiac valve surgery outcomes",
	}
	soccer := []string{
		"the striker scored a late goal",
		"penalty decisions by the referee",
		"league championship standings",
	}

	m := repro.New(repro.Options{SampleSize: 30, Seed: 3})
	if err := m.Train("Heart", phrases(rng, heart, 20)); err != nil {
		log.Fatal(err)
	}
	if err := m.Train("Soccer", phrases(rng, soccer, 20)); err != nil {
		log.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("cardio.example", phrases(rng, heart, 80)), "Heart"); err != nil {
		log.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("futbol.example", phrases(rng, soccer, 80)), ""); err != nil {
		log.Fatal(err)
	}
	if err := m.BuildSummaries(); err != nil {
		log.Fatal(err)
	}

	sels, err := m.Select("blood pressure", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sels[0].Database)
	// Output: cardio.example
}

// ExampleParseHierarchy shows loading a custom taxonomy.
func ExampleParseHierarchy() {
	spec, err := repro.ParseHierarchy(strings.NewReader(`
Root
	Medicine
		Cardiology
	Sport
`))
	if err != nil {
		log.Fatal(err)
	}
	m := repro.New(repro.Options{Categories: spec})
	for _, c := range m.Hierarchy() {
		fmt.Printf("%s%s\n", strings.Repeat("  ", c.Depth), c.Name)
	}
	// Output:
	// Root
	//   Medicine
	//     Cardiology
	//   Sport
}
