package repro

import (
	"errors"
	"sort"
)

// The paper's introduction defines a metasearcher by three steps:
// select the best databases for the query, evaluate the query at each,
// and merge the results into one answer. Select covers step one; Search
// is the full loop.

// Result is one merged document hit.
type Result struct {
	// Database names the source database.
	Database string
	// DocID is the document's id within that database.
	DocID int
	// Score is the merged ranking score: the database's selection
	// score, normalized across the selected databases, discounted by
	// the document's rank in its database's result list. Uncooperative
	// databases expose only ranked ids — no comparable document scores
	// — so rank-based merging is what a metasearcher actually has.
	Score float64
}

// Search performs the complete metasearch: select up to maxDBs
// databases for the query (Figure 3's adaptive selection under the
// configured scorer), evaluate the query at each selected database, and
// merge the top perDB documents of each into a single ranking.
func (m *Metasearcher) Search(query string, maxDBs, perDB int) ([]Result, error) {
	if perDB <= 0 {
		perDB = 10
	}
	sels, err := m.Select(query, maxDBs)
	if err != nil {
		return nil, err
	}
	if len(sels) == 0 {
		return nil, nil
	}

	m.mu.Lock()
	terms := m.analyze(query)
	handles := make(map[string]SearchableDatabase, len(m.dbs))
	for _, r := range m.dbs {
		if r.db != nil {
			handles[r.name] = r.db
		}
	}
	m.mu.Unlock()

	// Normalize selection scores to [0, 1] so the discounting is
	// comparable across scorers.
	maxScore := sels[0].Score
	for _, s := range sels {
		if s.Score > maxScore {
			maxScore = s.Score
		}
	}
	if maxScore <= 0 {
		maxScore = 1
	}

	var out []Result
	for _, sel := range sels {
		db, ok := handles[sel.Database]
		if !ok {
			return nil, errors.New("repro: Search needs live database connections (Load-ed state has none)")
		}
		_, ids := db.Query(terms, perDB)
		for rank, id := range ids {
			out = append(out, Result{
				Database: sel.Database,
				DocID:    id,
				Score:    (sel.Score / maxScore) / float64(rank+1),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Database != out[b].Database {
			return out[a].Database < out[b].Database
		}
		return out[a].DocID < out[b].DocID
	})
	return out, nil
}
