package repro

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// auditTopHits caps how many merged results a QueryRecord retains for
// provenance.
const auditTopHits = 10

// The paper's introduction defines a metasearcher by three steps:
// select the best databases for the query, evaluate the query at each,
// and merge the results into one answer. Select covers step one; Search
// is the full loop.

// Result is one merged document hit.
type Result struct {
	// Database names the source database.
	Database string
	// DocID is the document's id within that database.
	DocID int
	// Score is the merged ranking score: the database's selection
	// score, normalized across the selected databases, discounted by
	// the document's rank in its database's result list. Uncooperative
	// databases expose only ranked ids — no comparable document scores
	// — so rank-based merging is what a metasearcher actually has.
	Score float64
}

// Search performs the complete metasearch: select up to maxDBs
// databases for the query (Figure 3's adaptive selection under the
// configured scorer), evaluate the query at each selected database, and
// merge the top perDB documents of each into a single ranking.
//
// A selected database without a live handle (registered via RegisterLoaded,
// or whose connection is otherwise gone) is skipped — counted in
// search_db_unavailable_total and noted on the trace — rather than
// failing the whole search. A ContextSearchableDatabase whose query
// errors (e.g. a RemoteDatabase whose node is down, even after the
// client's retries) is treated exactly the same way. Search errors
// only when none of the selected databases is reachable.
func (m *Metasearcher) Search(query string, maxDBs, perDB int) ([]Result, error) {
	return m.SearchContext(context.Background(), query, maxDBs, perDB)
}

// SearchContext is Search under a context: cancelling ctx cancels
// in-flight remote queries (databases implementing
// ContextSearchableDatabase) and stops the fan-out.
func (m *Metasearcher) SearchContext(ctx context.Context, query string, maxDBs, perDB int) ([]Result, error) {
	if perDB <= 0 {
		perDB = 10
	}
	span := m.tracer.Span("search",
		telemetry.String("query", query),
		telemetry.Int("max_dbs", maxDBs),
		telemetry.Int("per_db", perDB))
	m.reg.Counter("search_requests_total").Inc()
	start := time.Now()
	defer m.reg.Histogram("search_latency", nil).ObserveSince(start)
	defer m.reg.Window("search_latency_window", 0).ObserveSince(start)

	// The audit record is assembled as the search progresses and
	// published exactly once, on every exit path — failed queries leave
	// records too (that is when an explanation matters most).
	rec := &audit.QueryRecord{
		TraceID: span.Context().TraceID,
		Time:    start,
		Query:   query,
		MaxDBs:  maxDBs,
		PerDB:   perDB,
	}
	finish := func(err error) {
		rec.ElapsedSeconds = time.Since(start).Seconds()
		if err != nil {
			rec.Error = err.Error()
		}
		m.audit.Add(rec)
	}

	sels, explain, err := m.selectExplained(span, query, maxDBs)
	if explain != nil {
		rec.Terms = explain.terms
		rec.Scorer = explain.scorer
		rec.Candidates = explain.candidates
	}
	if err != nil {
		span.End(telemetry.String("error", err.Error()))
		finish(err)
		return nil, err
	}
	for _, s := range sels {
		rec.Selected = append(rec.Selected, s.Database)
	}
	if len(sels) == 0 {
		span.End(telemetry.Int("merged", 0))
		finish(nil)
		return nil, nil
	}

	m.mu.Lock()
	terms := m.analyze(query)
	handles := make(map[string]SearchableDatabase, len(m.dbs))
	for _, r := range m.dbs {
		if r.db != nil {
			handles[r.name] = r.db
		}
	}
	m.mu.Unlock()

	// Normalize selection scores to [0, 1] so the discounting is
	// comparable across scorers.
	maxScore := sels[0].Score
	for _, s := range sels {
		if s.Score > maxScore {
			maxScore = s.Score
		}
	}
	if maxScore <= 0 {
		maxScore = 1
	}

	unavailable := m.reg.Counter("search_db_unavailable_total")
	dbLatency := m.reg.Histogram("search_db_latency", nil)
	var out []Result
	queried := 0
	for _, sel := range sels {
		if err := ctx.Err(); err != nil {
			span.End(telemetry.String("error", err.Error()))
			finish(err)
			return nil, err
		}
		db, ok := handles[sel.Database]
		if !ok {
			unavailable.Inc()
			span.Event("search.db_unavailable", telemetry.String("db", sel.Database))
			m.logWarn("search: selected database has no live connection, skipping",
				"db", sel.Database, "query", query)
			rec.Nodes = append(rec.Nodes, audit.NodeCall{Database: sel.Database, Unavailable: true})
			continue
		}
		dbSpan := span.Child("search.db", telemetry.String("db", sel.Database))
		dbStart := time.Now()
		var ids []int
		if cdb, ok := db.(ContextSearchableDatabase); ok {
			// Carry the db span on the wire (the remote node's serve span
			// parents under it) and collect per-call transport stats so
			// the audit record can attribute retries to this database.
			cctx := telemetry.ContextWithSpan(ctx, dbSpan)
			cctx, stats := wire.WithCallStats(cctx)
			var qerr error
			_, ids, qerr = cdb.QueryContext(cctx, terms, perDB)
			if qerr != nil {
				dbLatency.ObserveSince(dbStart)
				dbSpan.End(telemetry.String("error", qerr.Error()))
				rec.Nodes = append(rec.Nodes, audit.NodeCall{
					Database:       sel.Database,
					LatencySeconds: time.Since(dbStart).Seconds(),
					Attempts:       stats.Attempts(),
					Retries:        stats.Retries(),
					Error:          qerr.Error(),
					Unavailable:    true,
				})
				if cerr := ctx.Err(); cerr != nil {
					span.End(telemetry.String("error", cerr.Error()))
					finish(cerr)
					return nil, cerr
				}
				// The node is down (the client already retried): skip it,
				// exactly like a database with no live handle.
				unavailable.Inc()
				span.Event("search.db_unavailable",
					telemetry.String("db", sel.Database), telemetry.String("error", qerr.Error()))
				m.logWarn("search: selected database unreachable, skipping",
					"db", sel.Database, "query", query, "error", qerr)
				continue
			}
			rec.Nodes = append(rec.Nodes, audit.NodeCall{
				Database:       sel.Database,
				LatencySeconds: time.Since(dbStart).Seconds(),
				Attempts:       stats.Attempts(),
				Retries:        stats.Retries(),
				Results:        len(ids),
			})
		} else {
			_, ids = db.Query(terms, perDB)
			rec.Nodes = append(rec.Nodes, audit.NodeCall{
				Database:       sel.Database,
				LatencySeconds: time.Since(dbStart).Seconds(),
				Results:        len(ids),
			})
		}
		dbLatency.ObserveSince(dbStart)
		dbSpan.End(telemetry.Int("results", len(ids)))
		queried++
		for rank, id := range ids {
			out = append(out, Result{
				Database: sel.Database,
				DocID:    id,
				Score:    (sel.Score / maxScore) / float64(rank+1),
			})
		}
	}
	if queried == 0 {
		err := errors.New("repro: Search needs live database connections (Load-ed state has none)")
		span.End(telemetry.String("error", err.Error()))
		finish(err)
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Database != out[b].Database {
			return out[a].Database < out[b].Database
		}
		return out[a].DocID < out[b].DocID
	})
	m.reg.Counter("search_results_merged_total").Add(int64(len(out)))
	rec.Merged = len(out)
	for i, r := range out {
		if i >= auditTopHits {
			break
		}
		rec.TopHits = append(rec.TopHits, audit.Hit{Database: r.Database, DocID: r.DocID, Score: r.Score})
	}
	span.End(
		telemetry.Int("selected", len(sels)),
		telemetry.Int("queried", queried),
		telemetry.Int("merged", len(out)))
	finish(nil)
	return out, nil
}
