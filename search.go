package repro

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// auditTopHits caps how many merged results a QueryRecord retains for
// provenance.
const auditTopHits = 10

// The paper's introduction defines a metasearcher by three steps:
// select the best databases for the query, evaluate the query at each,
// and merge the results into one answer. Select covers step one; Search
// is the full loop.

// Result is one merged document hit.
type Result struct {
	// Database names the source database.
	Database string
	// DocID is the document's id within that database.
	DocID int
	// Score is the merged ranking score: the database's selection
	// score, normalized across the selected databases, discounted by
	// the document's rank in its database's result list. Uncooperative
	// databases expose only ranked ids — no comparable document scores
	// — so rank-based merging is what a metasearcher actually has.
	Score float64
}

// Search performs the complete metasearch: select up to maxDBs
// databases for the query (Figure 3's adaptive selection under the
// configured scorer), evaluate the query at each selected database
// concurrently, and merge the top perDB documents of each into a
// single ranking.
//
// A selected database without a live handle (registered via
// AddDatabase, or whose connection is otherwise gone) is skipped —
// counted in search_db_unavailable_total and noted on the trace —
// rather than failing the whole search. A ContextSearchableDatabase
// whose query errors (e.g. a RemoteDatabase whose node is down, even
// after the client's retries) is treated exactly the same way, as is a
// database whose circuit breaker is open (counted separately, in
// search_breaker_open_total). Search errors only when none of the
// selected databases is reachable.
func (m *Metasearcher) Search(query string, maxDBs, perDB int) ([]Result, error) {
	return m.SearchContext(context.Background(), query, maxDBs, perDB)
}

// SearchContext is Search under a context: cancelling ctx cancels
// in-flight remote queries (databases implementing
// ContextSearchableDatabase) and stops the fan-out.
func (m *Metasearcher) SearchContext(ctx context.Context, query string, maxDBs, perDB int) ([]Result, error) {
	resp, err := m.SearchExplained(ctx, query, maxDBs, perDB)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchResponse is one answered query with its provenance: what a
// query-serving front end returns to a client. Slices are owned by the
// caller (copied out of any cache entry they came from).
type SearchResponse struct {
	// TraceID links the response to this query's distributed trace and
	// audit record ("" when tracing is disabled).
	TraceID string
	// Query is the raw query; Terms the analyzed words actually scored;
	// Scorer the base selection algorithm.
	Query  string
	Terms  []string
	Scorer string
	// Selections is the selected database set in rank order.
	Selections []Selection
	// Results is the merged document ranking.
	Results []Result
	// CacheHit reports the whole answer came from the result cache;
	// SelectionCacheHit that only the selection step was cached (the
	// fan-out ran); Collapsed that this query piggybacked on an
	// identical concurrent query's in-flight work.
	CacheHit          bool
	SelectionCacheHit bool
	Collapsed         bool
	// Elapsed is this request's end-to-end latency; Stages decomposes
	// it by pipeline stage.
	Elapsed time.Duration
	Stages  SearchStages
}

// SearchStages decomposes one request's latency by pipeline stage, in
// seconds. For a cold request Cache is the residual spent on key
// computation and cache bookkeeping around the real work; for a cache
// hit or a collapsed request the whole latency is Cache time (the other
// stages were paid by the request that fanned out). Each stage is also
// recorded in its search_stage_* latency histogram, whose percentiles
// are exported via telemetry.HistogramSnapshot.Quantile.
type SearchStages struct {
	// Cache is time spent in cache lookup and bookkeeping.
	Cache float64
	// Selection is the database-selection stage (through the selection
	// cache: a selection-tier hit makes this small but nonzero).
	Selection float64
	// Fanout is the parallel query evaluation across selected databases.
	Fanout float64
	// Merge is result merging and ranking.
	Merge float64
}

// SearchExplained is SearchContext plus provenance: the selection set,
// the analyzed terms, the trace ID, and how the answer was produced
// (cold fan-out, result-cache hit, or collapsed onto a concurrent
// identical query). It is the call a serving gateway makes per request.
//
// The cached fan-out: identical queries (same analyzed terms, scorer,
// maxDBs, perDB) within the result tier's TTL are answered from memory
// without touching selection or any database, and concurrent identical
// queries collapse onto a single upstream fan-out (singleflight) — each
// still gets its own audit record and trace, flagged CacheHit or
// Collapsed. The fan-out itself queries all selected databases in
// parallel (bounded by Options.Resilience.Concurrency), each under the
// shared deadline budget; slow nodes are hedged and persistently
// failing nodes are short-circuited by their breakers. The merged
// ranking is deterministic regardless of arrival order.
func (m *Metasearcher) SearchExplained(ctx context.Context, query string, maxDBs, perDB int) (*SearchResponse, error) {
	return m.searchExplained(ctx, query, maxDBs, perDB, nil)
}

// SearchExplainedObserved is SearchExplained with incremental progress
// events: obs receives the selection as soon as it is ranked, each
// node's outcome as the fan-out completes it, and the partial merged
// ranking after each — the hook behind /v1/search/stream. The returned
// response is bit-identical to SearchExplained's for the same query:
// observation never changes the answer. A nil obs is SearchExplained.
//
// For a result-cache hit or a query collapsed onto a concurrent
// identical search, obs sees only the Selection event (the fan-out it
// would narrate already ran, or is owned by another request) before
// the response returns.
func (m *Metasearcher) SearchExplainedObserved(ctx context.Context, query string, maxDBs, perDB int, obs SearchEvents) (*SearchResponse, error) {
	return m.searchExplained(ctx, query, maxDBs, perDB, obs)
}

func (m *Metasearcher) searchExplained(ctx context.Context, query string, maxDBs, perDB int, obs SearchEvents) (*SearchResponse, error) {
	if perDB <= 0 {
		perDB = 10
	}
	inflight := m.reg.Gauge("search_inflight")
	inflight.Add(1)
	defer inflight.Add(-1)
	attrs := []telemetry.Attr{
		telemetry.String("query", query),
		telemetry.Int("max_dbs", maxDBs),
		telemetry.Int("per_db", perDB)}
	var span *telemetry.Span
	// When the request arrived traced from another process (the cluster
	// router propagating through the gateway), parent the search under
	// the remote span so the whole fan-out is one cross-process trace;
	// otherwise this call roots its own trace.
	if remote := telemetry.RemoteFromContext(ctx); remote.Valid() {
		span = m.tracer.SpanWithRemoteParent("search", remote, attrs...)
	} else {
		span = m.tracer.Span("search", attrs...)
	}
	m.reg.Counter("search_requests_total").Inc()
	start := time.Now()
	defer func() {
		m.reg.Histogram("search_latency", nil).ObserveExemplar(time.Since(start).Seconds(), span.Context().TraceID)
	}()
	defer m.reg.Window("search_latency_window", 0).ObserveSince(start)

	// The audit record is assembled as the search progresses and
	// published exactly once, on every exit path — failed queries leave
	// records too (that is when an explanation matters most). Cache hits
	// and collapsed queries leave records too, built from the shared
	// entry's evidence.
	rec := &audit.QueryRecord{
		TraceID: span.Context().TraceID,
		Time:    start,
		Query:   query,
		MaxDBs:  maxDBs,
		PerDB:   perDB,
	}
	finish := func(err error) {
		rec.ElapsedSeconds = time.Since(start).Seconds()
		if err != nil {
			rec.Error = err.Error()
		}
		m.audit.Add(rec)
	}

	var (
		e         *searchEntry
		err       error
		hit       bool
		collapsed bool
	)
	terms := m.analyze(query)
	if m.resCache != nil && len(terms) > 0 {
		key := resultKey(selectionKey(terms, m.scorerKey(), maxDBs), perDB)
		var v interface{}
		v, hit, collapsed, err = m.resCache.Do(ctx, key, func() (interface{}, error) {
			return m.searchUncached(ctx, span, query, maxDBs, perDB, obs)
		})
		if v != nil {
			e = v.(*searchEntry)
		}
	} else {
		e, err = m.searchUncached(ctx, span, query, maxDBs, perDB, obs)
	}
	// A cache hit or collapsed query never ran this caller's fan-out
	// (and so never narrated anything): replay the selection from the
	// shared entry, so a streaming client still gets its selection
	// frame before the final answer.
	if obs != nil && (hit || collapsed) && e != nil && err == nil {
		obs.Selection(append([]Selection(nil), e.selections...), e.terms, e.scorer)
	}

	rec.CacheHit = hit
	rec.Collapsed = collapsed
	if e != nil {
		rec.Terms = e.terms
		rec.Scorer = e.scorer
		rec.Candidates = e.candidates
		rec.Selected = e.selected
		rec.Merged = e.merged
		rec.TopHits = e.topHits
		if !hit && !collapsed {
			// Only the query that actually fanned out owns the node-call
			// evidence; hit/collapsed records point to it via the cache
			// flags instead of double-reporting costs nobody paid twice.
			rec.Nodes = e.nodes
			rec.SelectionCacheHit = e.selCacheHit
		}
	}
	if err != nil {
		span.End(telemetry.String("error", err.Error()))
		finish(err)
		return nil, err
	}
	if hit {
		span.Event("search.cache_hit")
	}
	resp := &SearchResponse{
		TraceID:           rec.TraceID,
		Query:             query,
		Terms:             e.terms,
		Scorer:            e.scorer,
		Selections:        append([]Selection(nil), e.selections...),
		Results:           append([]Result(nil), e.results...),
		CacheHit:          hit,
		SelectionCacheHit: rec.SelectionCacheHit,
		Collapsed:         collapsed,
	}
	cached := 0
	if hit {
		cached = 1
	}
	span.End(
		telemetry.Int("selected", len(e.selections)),
		telemetry.Int("queried", e.queried),
		telemetry.Int("merged", e.merged),
		telemetry.Int("cache_hit", cached))
	finish(nil)
	resp.Elapsed = time.Since(start)
	resp.Stages = m.stageBreakdown(e, hit, collapsed, resp.Elapsed)
	return resp, nil
}

// stageBreakdown attributes one request's latency to pipeline stages.
// The request that fanned out owns the selection/fan-out/merge timings
// it measured; a hit or collapsed request paid only cache time. The
// cache stage (this request's residual around the measured stages) is
// recorded here because only the caller knows the end-to-end latency.
func (m *Metasearcher) stageBreakdown(e *searchEntry, hit, collapsed bool, elapsed time.Duration) SearchStages {
	var st SearchStages
	if hit || collapsed || e == nil {
		st.Cache = elapsed.Seconds()
	} else {
		st = e.stages
		if residual := elapsed.Seconds() - (st.Selection + st.Fanout + st.Merge); residual > 0 {
			st.Cache = residual
		}
	}
	m.reg.Histogram("search_stage_cache_latency", nil).Observe(st.Cache)
	return st
}

// searchEntry is one search's cacheable outcome plus the audit evidence
// behind it. Entries are shared between the caller that produced them,
// collapsed waiters, and later cache hits — never mutated after return.
type searchEntry struct {
	terms       []string
	scorer      string
	candidates  []audit.Candidate
	selections  []Selection
	selected    []string
	nodes       []audit.NodeCall
	results     []Result
	merged      int
	queried     int
	topHits     []audit.Hit
	selCacheHit bool
	stages      SearchStages // selection/fan-out/merge timings of the cold path
}

// searchUncached is the cold search path: selection (through the
// selection cache), parallel fan-out, merge. It always returns a
// non-nil entry carrying whatever evidence was gathered before a
// failure, so failed queries still produce explanatory audit records.
// The span stays open — the caller owns its lifecycle. obs, when
// non-nil, narrates the search as it progresses (see SearchEvents).
func (m *Metasearcher) searchUncached(ctx context.Context, span *telemetry.Span, query string, maxDBs, perDB int, obs SearchEvents) (*searchEntry, error) {
	e := &searchEntry{}
	tSel := time.Now()
	sels, explain, selHit, err := m.selectCached(ctx, span, query, maxDBs)
	e.stages.Selection = time.Since(tSel).Seconds()
	m.reg.Histogram("search_stage_selection_latency", nil).Observe(e.stages.Selection)
	e.selCacheHit = selHit
	if explain != nil {
		e.terms = explain.terms
		e.scorer = explain.scorer
		e.candidates = explain.candidates
	}
	if err != nil {
		return e, err
	}
	e.selections = sels
	for _, s := range sels {
		e.selected = append(e.selected, s.Database)
	}
	if obs != nil {
		obs.Selection(append([]Selection(nil), sels...), e.terms, e.scorer)
	}
	if len(sels) == 0 {
		return e, nil
	}

	m.mu.Lock()
	terms := m.analyze(query)
	handles := make(map[string]SearchableDatabase, len(m.dbs))
	for _, r := range m.dbs {
		if r.db != nil {
			handles[r.name] = r.db
		}
	}
	scope := m.scope
	m.mu.Unlock()

	// Normalize selection scores to [0, 1] so the discounting is
	// comparable across scorers.
	maxScore := sels[0].Score
	for _, s := range sels {
		if s.Score > maxScore {
			maxScore = s.Score
		}
	}
	if maxScore <= 0 {
		maxScore = 1
	}

	// Fan out: all selected databases in parallel, each outcome written
	// into its own slot so the merge below is independent of arrival
	// order. The deadline budget bounds the whole fan-out — one hung
	// node costs at most the budget, not the sum of per-node timeouts.
	fanCtx := ctx
	if budget := m.opts.Resilience.DeadlineBudget; budget > 0 {
		var cancel context.CancelFunc
		fanCtx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	hedgeAfter := m.hedgeThreshold()
	workers := m.opts.Resilience.Concurrency
	if workers <= 0 {
		workers = len(sels)
	}
	outcomes := make([]nodeOutcome, len(sels))
	em := newSearchEmitter(obs, sels, maxScore)
	tFan := time.Now()
	forEachCollect(len(sels), workers, m.reg, func(i int) {
		name := sels[i].Database
		// A shard-scoped metasearcher ranks every database (selection
		// needs the collection-wide statistics) but queries only its own
		// slice; the databases it skips here are served by the shards
		// that own them and merged back together by the router.
		if scope != nil && !scope[name] {
			m.reg.Counter("search_out_of_scope_total").Inc()
			span.Event("search.out_of_scope", telemetry.String("db", name))
			outcomes[i] = nodeOutcome{call: audit.NodeCall{Database: name, OutOfScope: true}}
			em.record(i, outcomes[i])
			return
		}
		outcomes[i] = m.searchNode(fanCtx, span, handles[name], name, terms, perDB, hedgeAfter)
		em.record(i, outcomes[i])
	})
	e.stages.Fanout = time.Since(tFan).Seconds()
	m.reg.Histogram("search_stage_fanout_latency", nil).Observe(e.stages.Fanout)
	// The fan-out absorbs node failures, but the caller giving up is
	// not a node failure: surface their cancellation as the search's
	// error (the budget expiring is fanCtx's deadline, not ctx's).
	if cerr := ctx.Err(); cerr != nil {
		for _, o := range outcomes {
			e.nodes = append(e.nodes, o.call)
		}
		return e, cerr
	}

	tMerge := time.Now()
	queried, skipped := 0, 0
	for _, o := range outcomes {
		e.nodes = append(e.nodes, o.call)
		if !o.ok {
			if o.call.OutOfScope {
				skipped++
			}
			continue
		}
		queried++
	}
	if queried == 0 {
		// On a shard whose slice holds none of the selected databases an
		// empty answer is correct, not an error: the router gets the
		// results from the shards that own them.
		if skipped == 0 {
			return e, errors.New("repro: Search needs live database connections (Load-ed state has none)")
		}
		e.stages.Merge = time.Since(tMerge).Seconds()
		return e, nil
	}
	out := scoreOutcomes(sels, maxScore, outcomes)
	m.reg.Counter("search_results_merged_total").Add(int64(len(out)))
	e.results = out
	e.merged = len(out)
	e.queried = queried
	for i, r := range out {
		if i >= auditTopHits {
			break
		}
		e.topHits = append(e.topHits, audit.Hit{Database: r.Database, DocID: r.DocID, Score: r.Score})
	}
	e.stages.Merge = time.Since(tMerge).Seconds()
	m.reg.Histogram("search_stage_merge_latency", nil).Observe(e.stages.Merge)
	return e, nil
}

// nodeOutcome is one selected database's result slot in the fan-out.
type nodeOutcome struct {
	call audit.NodeCall
	ids  []int
	ok   bool
}

// sortResults applies the merge's deterministic order in place: score
// descending, then database name, then document id. Arrival order never
// shows through.
func sortResults(out []Result) {
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Database != out[b].Database {
			return out[a].Database < out[b].Database
		}
		return out[a].DocID < out[b].DocID
	})
}

// scoreOutcomes merges the completed fan-out slots into the ranked
// result list: each document scored by its database's normalized
// selection score discounted by rank, then sorted deterministically.
// Slots not yet completed (ok=false) contribute nothing, so scoring a
// partially-filled outcome array yields the completed prefix of the
// eventual answer — which is what streaming merge_update frames carry.
func scoreOutcomes(sels []Selection, maxScore float64, outcomes []nodeOutcome) []Result {
	var out []Result
	for i, o := range outcomes {
		if !o.ok {
			continue
		}
		for rank, id := range o.ids {
			out = append(out, Result{
				Database: sels[i].Database,
				DocID:    id,
				Score:    (sels[i].Score / maxScore) / float64(rank+1),
			})
		}
	}
	sortResults(out)
	return out
}

// searchNode evaluates the query at one selected database: breaker
// admission, the (possibly hedged) call, breaker verdict, and the audit
// record of what it all cost. It never fails the search — every path
// returns an outcome.
func (m *Metasearcher) searchNode(ctx context.Context, span *telemetry.Span, db SearchableDatabase, name string, terms []string, perDB int, hedgeAfter time.Duration) nodeOutcome {
	unavailable := m.reg.Counter("search_db_unavailable_total")
	if db == nil {
		unavailable.Inc()
		span.Event("search.db_unavailable", telemetry.String("db", name))
		m.logWarn("search: selected database has no live connection, skipping",
			"db", name, "query", terms)
		return nodeOutcome{call: audit.NodeCall{Database: name, Unavailable: true}}
	}

	var b *resilience.Breaker
	call := audit.NodeCall{Database: name}
	if m.breakers != nil {
		b = m.breakers.Get(name)
		if !b.Allow() {
			// Short-circuited: the node is known-bad and was not touched.
			// Audited as BreakerOpen, distinct from Unavailable (which
			// means the node was actually tried, or had no handle).
			m.reg.Counter("search_breaker_open_total").Inc()
			span.Event("search.breaker_open", telemetry.String("db", name))
			call.BreakerState = b.State().String()
			call.BreakerOpen = true
			return nodeOutcome{call: call}
		}
		// Post-Allow state: an admitted call on a cooled-down breaker is
		// the half-open trial, and the audit should say so.
		call.BreakerState = b.State().String()
	}

	dbSpan := span.Child("search.db", telemetry.String("db", name))
	dbLatency := m.reg.Histogram("search_db_latency", nil)
	dbStart := time.Now()
	defer dbLatency.ObserveSince(dbStart)

	cdb, isCtx := db.(ContextSearchableDatabase)
	if !isCtx {
		// In-process database: infallible, nothing to hedge or retry.
		if err := ctx.Err(); err != nil {
			b.RecordNeutral()
			call.LatencySeconds = time.Since(dbStart).Seconds()
			call.Error = err.Error()
			call.Unavailable = true
			unavailable.Inc()
			dbSpan.End(telemetry.String("error", err.Error()))
			return nodeOutcome{call: call}
		}
		_, ids := db.Query(terms, perDB)
		b.Record(true)
		call.LatencySeconds = time.Since(dbStart).Seconds()
		call.Results = len(ids)
		dbSpan.End(telemetry.Int("results", len(ids)))
		return nodeOutcome{call: call, ids: ids, ok: true}
	}

	// Remote call, hedged: if the primary attempt outlives hedgeAfter,
	// a second identical request races it and the first success wins.
	// Per-attempt result and stats slots keep the loser (possibly still
	// in flight when Hedged returns) from racing the winner.
	stats := [2]*wire.CallStats{{}, {}}
	var ids [2][]int
	winner, hedged, qerr := resilience.HedgedWithBudget(ctx, hedgeAfter, m.budget, func(actx context.Context, attempt int) error {
		actx = telemetry.ContextWithSpan(actx, dbSpan)
		actx = wire.ContextWithCallStats(actx, stats[attempt])
		_, res, err := cdb.QueryContext(actx, terms, perDB)
		if err != nil {
			return err
		}
		ids[attempt] = res
		return nil
	})
	if hedged {
		m.reg.Counter("search_hedges_total").Inc()
		call.Hedged = true
		if winner == 1 && qerr == nil {
			m.reg.Counter("search_hedge_wins_total").Inc()
			call.HedgeWon = true
		}
		span.Event("search.hedged", telemetry.String("db", name), telemetry.Int("winner", winner))
	}
	call.LatencySeconds = time.Since(dbStart).Seconds()
	call.Attempts = stats[0].Attempts() + stats[1].Attempts()
	call.Retries = stats[0].Retries() + stats[1].Retries()
	call.Sheds = stats[0].Sheds() + stats[1].Sheds()
	if call.Sheds > 0 {
		m.reg.Counter("search_sheds_total").Add(call.Sheds)
	}
	if qerr != nil {
		// Feed the breaker: a shed-only failure is backpressure, not
		// node failure — neither closes nor trips the breaker.
		if wire.IsShed(qerr) {
			b.RecordNeutral()
		} else {
			b.Record(false)
		}
		call.Error = qerr.Error()
		call.Unavailable = true
		unavailable.Inc()
		dbSpan.End(telemetry.String("error", qerr.Error()))
		span.Event("search.db_unavailable",
			telemetry.String("db", name), telemetry.String("error", qerr.Error()))
		m.logWarn("search: selected database unreachable, skipping",
			"db", name, "error", qerr)
		return nodeOutcome{call: call}
	}
	b.Record(true)
	call.Results = len(ids[winner])
	dbSpan.End(telemetry.Int("results", len(ids[winner])))
	return nodeOutcome{call: call, ids: ids[winner], ok: true}
}
