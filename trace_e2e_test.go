package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// findDBSpan returns the search.db child span for the named database.
func findDBSpan(t *testing.T, root *telemetry.SpanNode, db string) *telemetry.SpanNode {
	t.Helper()
	for _, c := range root.Children {
		if c.Name != "search.db" {
			continue
		}
		if got, _ := c.Start.Attr("db").(string); got == db {
			return c
		}
	}
	t.Fatalf("no search.db span for %q under %q", db, root.Name)
	return nil
}

// requestIDs extracts the request_id of every wire.attempt event on a span.
func requestIDs(n *telemetry.SpanNode) []string {
	var ids []string
	for _, e := range n.Events {
		if e.Name == "wire.attempt" {
			if id, _ := e.Attr("request_id").(string); id != "" {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// TestEndToEndTraceAcrossProcesses runs a search against two real dbnode
// wire servers, each with its own tracer (standing in for a separate
// process), with exactly one transient 503 injected at the first node.
// It asserts the topology DESIGN.md §10 promises:
//
//   - a single trace ID spans the metasearcher's search span, its
//     search.db children, and the wire.serve spans on both nodes;
//   - each wire.serve span is parented under the metasearcher's
//     search.db span for that node (X-Trace-Id / X-Parent-Span made it
//     across the wire);
//   - the injected failure shows up as two wire.attempt events sharing
//     one request sequence (r<seq>.0 then r<seq>.1), and the node only
//     ever serves the retry (request_id r<seq>.1);
//   - the query's audit record carries the same trace ID, the
//     per-node attempt/retry counts, and shrinkage verdicts matching
//     what the selection code computes for the same query — both
//     in-process via Audit() and over HTTP via /debug/queries.
func TestEndToEndTraceAcrossProcesses(t *testing.T) {
	shards, lexicon := testbedShards(t, 2)
	query := strings.Join([]string{shards[0].docs[0][0], shards[0].docs[0][1]}, " ")

	clientCap := &telemetry.Capture{}
	opts := testbedOptions(lexicon)
	opts.Observer = clientCap
	m := New(opts)

	nodeCaps := make([]*telemetry.Capture, len(shards))
	var fail *wire.FailOnceHandler
	for i, s := range shards {
		nodeCaps[i] = &telemetry.Capture{}
		var h http.Handler = wire.NewServer(
			NewLocalDatabaseFromTerms(s.name, s.docs),
			wire.ServerOptions{
				Category: s.category,
				Tracer:   telemetry.NewTracer(nodeCaps[i]),
			})
		if i == 0 {
			fail = wire.FailOnce(h)
			h = fail
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		rdb, err := DialRemoteDatabase(context.Background(), srv.URL, RemoteDatabaseOptions{
			BackoffBase: time.Millisecond,
			Metrics:     m.Metrics(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}

	// Build traffic is not under test: start the search from clean
	// captures, with exactly one 503 armed at the first node.
	clientCap.Reset()
	for _, c := range nodeCaps {
		c.Reset()
	}
	fail.Arm()

	res, err := m.SearchContext(context.Background(), query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("search returned no results; query is not exercising the pipeline")
	}
	if got := fail.Injected(); got != 1 {
		t.Fatalf("injected failures = %d, want exactly 1", got)
	}

	// One trace ID covers the whole search on the metasearcher side.
	search := clientCap.Find("search")
	if search == nil {
		t.Fatal("no search span recorded")
	}
	trace := search.Start.Trace
	if trace == "" {
		t.Fatal("search span has no trace id")
	}

	// The failed node's search.db span records both attempts: r<seq>.0
	// (the injected 503) and r<seq>.1 (the retry), sharing one sequence.
	db0 := findDBSpan(t, search, shards[0].name)
	ids0 := requestIDs(db0)
	if len(ids0) != 2 {
		t.Fatalf("node 0 attempts = %v, want r<seq>.0 and r<seq>.1", ids0)
	}
	if !strings.HasSuffix(ids0[0], ".0") || !strings.HasSuffix(ids0[1], ".1") ||
		strings.TrimSuffix(ids0[0], ".0") != strings.TrimSuffix(ids0[1], ".1") {
		t.Fatalf("retry request ids = %v, want same r<seq> base with .0/.1", ids0)
	}
	// The healthy node took one attempt.
	db1 := findDBSpan(t, search, shards[1].name)
	ids1 := requestIDs(db1)
	if len(ids1) != 1 || !strings.HasSuffix(ids1[0], ".0") {
		t.Fatalf("node 1 attempts = %v, want a single r<seq>.0", ids1)
	}

	// Each node's wire.serve span joined the propagated trace, parented
	// under the metasearcher's search.db span for that node. The failed
	// node never served the injected attempt — the only serve span it
	// recorded is the retry, and it carries the retry's request id.
	for i, want := range []struct {
		parent *telemetry.SpanNode
		reqID  string
	}{
		{db0, ids0[1]},
		{db1, ids1[0]},
	} {
		serve := nodeCaps[i].Find("wire.serve")
		if serve == nil {
			t.Fatalf("node %d recorded no wire.serve span", i)
		}
		if len(nodeCaps[i].SpanNames()) != 1 {
			t.Errorf("node %d spans = %v, want exactly one wire.serve", i, nodeCaps[i].SpanNames())
		}
		if serve.Start.Trace != trace {
			t.Errorf("node %d trace = %q, search trace = %q", i, serve.Start.Trace, trace)
		}
		if serve.Start.Parent != want.parent.Start.Span {
			t.Errorf("node %d serve parent = %d, want search.db span %d",
				i, serve.Start.Parent, want.parent.Start.Span)
		}
		if got, _ := serve.Start.Attr("request_id").(string); got != want.reqID {
			t.Errorf("node %d served request_id = %q, want %q", i, got, want.reqID)
		}
	}

	// The audit record for this query ties the same trace ID to the
	// selection evidence and the per-node retry accounting.
	rec := m.Audit().Last()
	if rec == nil {
		t.Fatal("no audit record published")
	}
	if rec.TraceID != trace {
		t.Errorf("audit trace = %q, span trace = %q", rec.TraceID, trace)
	}
	if rec.Query != query || rec.Error != "" {
		t.Errorf("audit record = %q error=%q, want %q with no error", rec.Query, rec.Error, query)
	}
	nodeByDB := make(map[string]audit.NodeCall, len(rec.Nodes))
	for _, n := range rec.Nodes {
		nodeByDB[n.Database] = n
	}
	if n := nodeByDB[shards[0].name]; n.Attempts != 2 || n.Retries != 1 {
		t.Errorf("node 0 audit = %d attempts / %d retries, want 2/1", n.Attempts, n.Retries)
	}
	if n := nodeByDB[shards[1].name]; n.Attempts != 1 || n.Retries != 0 {
		t.Errorf("node 1 audit = %d attempts / %d retries, want 1/0", n.Attempts, n.Retries)
	}

	// The recorded shrinkage verdicts must match what the selection code
	// decides for this query: Monte Carlo sampling is seeded, so an
	// independent Select reproduces the adaptive criterion exactly.
	sels, err := m.Select(query, len(shards))
	if err != nil {
		t.Fatal(err)
	}
	verdict := make(map[string]Selection, len(sels))
	for _, s := range sels {
		verdict[s.Database] = s
	}
	checkCandidates := func(src string, cands []audit.Candidate) {
		t.Helper()
		if len(cands) != len(shards) {
			t.Fatalf("%s: %d candidates, want %d", src, len(cands), len(shards))
		}
		for _, c := range cands {
			want, ok := verdict[c.Database]
			if !ok {
				t.Errorf("%s: candidate %q not in selection", src, c.Database)
				continue
			}
			if c.Shrinkage != want.Shrinkage {
				t.Errorf("%s: %q shrinkage verdict = %v, selection code says %v",
					src, c.Database, c.Shrinkage, want.Shrinkage)
			}
			if c.Score != want.Score {
				t.Errorf("%s: %q score = %v, selection code says %v",
					src, c.Database, c.Score, want.Score)
			}
			if !c.Selected {
				t.Errorf("%s: %q not marked selected with k = number of databases", src, c.Database)
			}
		}
	}
	checkCandidates("Audit()", rec.Candidates)

	// The same record is served over HTTP at /debug/queries/{id}.
	ts := httptest.NewServer(m.Audit().Handler())
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/debug/queries/%d", ts.URL, rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries/%d = %d, want 200", rec.ID, resp.StatusCode)
	}
	var got audit.QueryRecord
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.TraceID != trace {
		t.Errorf("HTTP record id=%d trace=%q, want id=%d trace=%q", got.ID, got.TraceID, rec.ID, trace)
	}
	checkCandidates("/debug/queries", got.Candidates)
}
