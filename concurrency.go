package repro

import (
	"sync"
	"sync/atomic"
)

// forEachConcurrently runs fn(i) for i in [0, n) over a bounded worker
// pool. workers <= 1 runs sequentially and stops at the first error;
// the concurrent path lets in-flight work finish and reports the first
// error encountered. Callers write results into pre-sized per-index
// slots, so no additional synchronization is needed.
func forEachConcurrently(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
