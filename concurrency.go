package repro

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// forEachConcurrently runs fn(i) for i in [0, n) over a bounded worker
// pool. workers <= 1 runs sequentially and stops at the first error;
// the concurrent path stops dispatching new work after the first error
// (in-flight calls finish) and reports the first error encountered.
// Callers write results into pre-sized per-index slots, so no
// additional synchronization is needed. Dispatches and failures are
// counted in reg (concurrency_tasks_{started,failed}_total; reg may be
// nil).
func forEachConcurrently(n, workers int, reg *telemetry.Registry, fn func(i int) error) error {
	started := reg.Counter("concurrency_tasks_started_total")
	failed := reg.Counter("concurrency_tasks_failed_total")
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			started.Inc()
			if err := fn(i); err != nil {
				failed.Inc()
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		stop  atomic.Bool
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				started.Inc()
				if err := fn(i); err != nil {
					failed.Inc()
					stop.Store(true)
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// forEachCollect runs fn(i) for i in [0, n) over a bounded worker pool
// and always visits every index: unlike forEachConcurrently there is no
// early stop, because the search fan-out needs an outcome per selected
// database (a failed node is an outcome, not a reason to abandon the
// rest). Callers write results into pre-sized per-index slots.
func forEachCollect(n, workers int, reg *telemetry.Registry, fn func(i int)) {
	forEachConcurrently(n, workers, reg, func(i int) error {
		fn(i)
		return nil
	})
}
