#!/bin/sh
# smoke_gateway.sh — end-to-end smoke test of the query-serving
# gateway: build metasearch, run it as a service on an ephemeral port,
# issue the same query twice, and assert the second answer was served
# from the result cache (visible both in the response body and in the
# /metrics counters). Finishes by checking SIGTERM drains cleanly.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
SRV_PID=""

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke-gateway: building metasearch..."
"$GO" build -o "$TMP/metasearch" ./cmd/metasearch

"$TMP/metasearch" -serve 127.0.0.1:0 -k 3 -perdb 3 >"$TMP/srv.log" 2>&1 &
SRV_PID=$!

# The service logs "query API on http://host:port/v1/search ..." once
# the listener is up (after building and sampling the testbed), and
# prints example query words the testbed answers.
ADDR=""
for _ in $(seq 1 150); do
    ADDR="$(sed -n 's|.*query API on http://||p' "$TMP/srv.log" | head -n 1 | cut -d/ -f1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$TMP/srv.log" >&2; exit 1; }
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "smoke-gateway: service never came up" >&2
    cat "$TMP/srv.log" >&2
    exit 1
fi
echo "smoke-gateway: service up at $ADDR"

WORDS="$(sed -n 's/^example query words: \(.*\) (.*/\1/p' "$TMP/srv.log" | head -n 1)"
if [ -z "$WORDS" ]; then
    echo "smoke-gateway: service printed no example query words" >&2
    cat "$TMP/srv.log" >&2
    exit 1
fi
set -- $WORDS
Q="$1+$2"
echo "smoke-gateway: querying q=$Q"

curl -fsS "http://$ADDR/v1/healthz" >/dev/null

FIRST="$(curl -fsS "http://$ADDR/v1/search?q=$Q")"
case "$FIRST" in
*'"result_hit":true'*)
    echo "smoke-gateway: first query claims a cache hit" >&2
    echo "$FIRST" >&2
    exit 1
    ;;
esac
case "$FIRST" in
*'"results":['*) ;;
*)
    echo "smoke-gateway: first query returned no results" >&2
    echo "$FIRST" >&2
    exit 1
    ;;
esac

SECOND="$(curl -fsS "http://$ADDR/v1/search?q=$Q")"
case "$SECOND" in
*'"result_hit":true'*) ;;
*)
    echo "smoke-gateway: second identical query was not a cache hit" >&2
    echo "$SECOND" >&2
    exit 1
    ;;
esac

HITS="$(curl -fsS "http://$ADDR/metrics" | sed -n 's/^result_cache_hits_total //p')"
case "${HITS:-0}" in
0 | '')
    echo "smoke-gateway: result_cache_hits_total = ${HITS:-missing}, want >= 1" >&2
    exit 1
    ;;
esac
echo "smoke-gateway: cache hit confirmed (result_cache_hits_total=$HITS)"

# Graceful shutdown: SIGTERM must drain and exit, logging the drain.
kill -TERM "$SRV_PID"
for _ in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "smoke-gateway: service did not exit after SIGTERM" >&2
    exit 1
fi
SRV_PID=""
if ! grep -q "drained, exiting" "$TMP/srv.log"; then
    echo "smoke-gateway: no drain log after SIGTERM" >&2
    cat "$TMP/srv.log" >&2
    exit 1
fi
echo "smoke-gateway: OK"
