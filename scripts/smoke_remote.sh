#!/bin/sh
# smoke_remote.sh — end-to-end smoke test of the remote wire protocol:
# build dbnode, serve the sample corpus on an ephemeral port, run one
# remote query against it, and tear everything down. Fails if the query
# does not come back with matches.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
NODE_PID=""

cleanup() {
    [ -n "$NODE_PID" ] && kill "$NODE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke-remote: building dbnode..."
"$GO" build -o "$TMP/dbnode" ./cmd/dbnode

"$TMP/dbnode" -corpus cmd/dbnode/testdata/smoke.txt -name smoke -category Health \
    >"$TMP/node.log" 2>&1 &
NODE_PID=$!

# The node logs "serving smoke (N docs) on http://host:port" once the
# ephemeral listener is up.
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's|.*on http://||p' "$TMP/node.log" | head -n 1)"
    [ -n "$ADDR" ] && break
    kill -0 "$NODE_PID" 2>/dev/null || { cat "$TMP/node.log"; exit 1; }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "smoke-remote: node never came up" >&2
    cat "$TMP/node.log" >&2
    exit 1
fi
echo "smoke-remote: node up at $ADDR"

"$TMP/dbnode" -node "$ADDR" -info
OUT="$("$TMP/dbnode" -node "$ADDR" -query "blood pressure")"
echo "$OUT"
case "$OUT" in
*"0 matches"*)
    echo "smoke-remote: remote query returned no matches" >&2
    exit 1
    ;;
*matches*) ;;
*)
    echo "smoke-remote: unexpected query output" >&2
    exit 1
    ;;
esac
echo "smoke-remote: OK"
