#!/bin/sh
# smoke_cluster.sh — end-to-end smoke test of the sharded cluster:
# boot 2 dbnode replicas for each of three testbed databases, build the
# summary store once over the wire, serve it from two consistent-hash
# shards behind the scatter-gather router, query through the router,
# then kill every database's preferred replica mid-stream and assert
# the cluster keeps answering (replica failover, not an outage).
#
# Usage: scripts/smoke_cluster.sh [bench-file]
#
# With a bench-file argument (or $BENCH_OUT), a measured open-loop load
# run is driven through the router while the cluster is healthy and
# merged into the file's "cluster_serving" section — the cluster
# counterpart of scripts/loadtest.sh. $QPS and $DURATION tune it.
#
# A -collect observability collector is always booted against the full
# topology (all nine processes): the smoke asserts the fleet metrics
# rollup and one assembled cross-process trace. With $COLLECTOR_OUT
# set, the aggregated cluster snapshot is saved there (a CI artifact
# alongside the BENCH file).
set -eu

GO="${GO:-go}"
OUT="${1:-${BENCH_OUT:-}}"
TMP="$(mktemp -d)"
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke-cluster: building dbnode, metasearch, and chaosproxy..."
"$GO" build -o "$TMP/dbnode" ./cmd/dbnode
"$GO" build -o "$TMP/metasearch" ./cmd/metasearch
"$GO" build -o "$TMP/chaosproxy" ./cmd/chaosproxy

# Three databases keep the bounded-load ring honest: with cap
# ceil(1.25 * 3 / 2) = 2 neither shard can own everything, so both
# shards end up serving real traffic. The Heart database is included
# because the router prints Heart-topic example query words.
HEART="$("$TMP/dbnode" -list -scale small -seed 1 | awk '$NF == "Heart" {print $1; exit}')"
[ -n "$HEART" ] || { echo "smoke-cluster: no Heart database in the testbed" >&2; exit 1; }
OTHERS="$("$TMP/dbnode" -list -scale small -seed 1 | awk -v h="$HEART" '$1 != h {print $1}' | head -n 2)"
DBS="$HEART $OTHERS"
echo "smoke-cluster: databases:" $DBS

slug() { echo "$1" | tr -c 'a-zA-Z0-9' '_'; }

# start_node <db> <replica#>: boot one dbnode replica; sets ADDR and
# NODE_PID_<replica>_<db-slug> in the calling shell.
start_node() {
    log="$TMP/node-$(slug "$1")$2.log"
    "$TMP/dbnode" -testbed "$1" -scale small -seed 1 >"$log" 2>&1 &
    PIDS="$PIDS $!"
    eval "NODE_PID_$2_$(slug "$1")=$!"
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's|.*on http://||p' "$log" | head -n 1)"
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$ADDR" ]; then
        echo "smoke-cluster: dbnode $1 replica $2 never came up" >&2
        cat "$log" >&2
        exit 1
    fi
}

# Every database gets two identical replicas; replica 0 is every
# shard's preferred copy (replication 1 => owner rank 0), so killing
# the 0s later forces failover on every call.
REPLICA0=""
for db in $DBS; do
    start_node "$db" 0
    a0="$ADDR"
    start_node "$db" 1
    a1="$ADDR"
    eval "ADDRS_$(slug "$db")='$a0 $a1'"
    REPLICA0="$REPLICA0${REPLICA0:+,}$a0"
    echo "smoke-cluster: $db replicas at $a0 $a1"
done

# Build the summary store once, over the wire, from the replica-0
# nodes; every shard will load this same file (full store, scoped
# fan-out).
echo "smoke-cluster: sampling the nodes and saving summaries..."
"$TMP/metasearch" -remote "$REPLICA0" -save "$TMP/state.json" heart >"$TMP/build.log" 2>&1 || {
    echo "smoke-cluster: summary build failed" >&2
    cat "$TMP/build.log" >&2
    exit 1
}

# write_topology <shard00-addr> <shard01-addr>: the shared cluster view.
# Shard addrs are placeholders until the shard gateways are up — the
# ring hashes only shard IDs, so the assignment is already final.
write_topology() {
    {
        printf '{\n  "version": 1,\n  "shards": [\n'
        printf '    {"id": "shard-00", "addr": "%s"},\n' "$1"
        printf '    {"id": "shard-01", "addr": "%s"}\n  ],\n' "$2"
        printf '  "databases": [\n'
        first=1
        for db in $DBS; do
            [ "$first" -eq 1 ] || printf ',\n'
            first=0
            eval "addrs=\$ADDRS_$(slug "$db")"
            reps=""
            for a in $addrs; do
                reps="$reps${reps:+, }\"$a\""
            done
            printf '    {"name": "%s", "replicas": [%s]}' "$db" "$reps"
        done
        printf '\n  ]\n}\n'
    } >"$TMP/topo.json"
}
write_topology "127.0.0.1:1" "127.0.0.1:1"

# start_shard <shard-id>: boot one shard metasearcher; sets ADDR.
start_shard() {
    log="$TMP/$1.log"
    "$TMP/metasearch" -shard-id "$1" -topology "$TMP/topo.json" -load "$TMP/state.json" \
        -topology-poll 200ms -cache-size 0 -serve 127.0.0.1:0 >"$log" 2>&1 &
    PIDS="$PIDS $!"
    ADDR=""
    for _ in $(seq 1 150); do
        ADDR="$(sed -n 's|.*query API on http://||p' "$log" | head -n 1 | cut -d/ -f1)"
        [ -n "$ADDR" ] && break
        sleep 0.2
    done
    if [ -z "$ADDR" ]; then
        echo "smoke-cluster: $1 never came up" >&2
        cat "$log" >&2
        exit 1
    fi
}

start_shard shard-00
SHARD0="$ADDR"
start_shard shard-01
SHARD1="$ADDR"
echo "smoke-cluster: shards up at $SHARD0 $SHARD1"

# The shard's health endpoint must report its shard id (satellite of
# the cluster PR: operators tell shards apart from /v1/healthz alone).
HEALTH="$(curl -fsS "http://$SHARD0/v1/healthz")"
case "$HEALTH" in
*'"shard_id":"shard-00"'*) ;;
*)
    echo "smoke-cluster: shard healthz does not report its shard id: $HEALTH" >&2
    exit 1
    ;;
esac

# Rewrite the topology with the live shard addrs and boot the router.
write_topology "$SHARD0" "$SHARD1"
"$TMP/metasearch" -route -topology "$TMP/topo.json" -probe-interval 250ms \
    -topology-poll 200ms -serve 127.0.0.1:0 >"$TMP/router.log" 2>&1 &
PIDS="$PIDS $!"
ROUTER=""
for _ in $(seq 1 150); do
    ROUTER="$(sed -n 's|.*query API on http://||p' "$TMP/router.log" | head -n 1 | cut -d/ -f1)"
    [ -n "$ROUTER" ] && break
    sleep 0.2
done
if [ -z "$ROUTER" ]; then
    echo "smoke-cluster: router never came up" >&2
    cat "$TMP/router.log" >&2
    exit 1
fi
echo "smoke-cluster: router up at $ROUTER"

WORDS="$(sed -n 's/^example query words: \(.*\) (.*/\1/p' "$TMP/router.log" | head -n 1)"
if [ -z "$WORDS" ]; then
    echo "smoke-cluster: router printed no example query words" >&2
    cat "$TMP/router.log" >&2
    exit 1
fi
set -- $WORDS
Q="$1+$2"
echo "smoke-cluster: querying q=$Q through the router"

assert_results() {
    resp="$(curl -fsS "http://$ROUTER/v1/search?q=$Q")"
    case "$resp" in
    *'"results":[{'*) ;;
    *)
        echo "smoke-cluster: $1: router returned no results" >&2
        echo "$resp" >&2
        exit 1
        ;;
    esac
}

assert_results "all replicas up"
echo "smoke-cluster: query answered with all replicas up"

# The router's health endpoint must report every shard's breaker state
# (satellite of the observability PR: one healthz call answers for the
# whole fleet behind the router).
RHEALTH="$(curl -fsS "http://$ROUTER/v1/healthz")"
case "$RHEALTH" in
*'"shards":'*'"breaker":"closed"'*) ;;
*)
    echo "smoke-cluster: router healthz does not report per-shard breaker state: $RHEALTH" >&2
    exit 1
    ;;
esac

# Boot the observability collector against the same topology: it
# scrapes all nine processes (router, 2 shards, 6 dbnode replicas) and
# serves the fleet rollup and stitched traces.
"$TMP/metasearch" -collect -topology "$TMP/topo.json" -collect-router "$ROUTER" \
    -scrape-interval 300ms -serve 127.0.0.1:0 >"$TMP/collector.log" 2>&1 &
PIDS="$PIDS $!"
COLLECTOR=""
for _ in $(seq 1 150); do
    COLLECTOR="$(sed -n 's|.*observability on http://||p' "$TMP/collector.log" | head -n 1 | cut -d/ -f1)"
    [ -n "$COLLECTOR" ] && break
    sleep 0.2
done
if [ -z "$COLLECTOR" ]; then
    echo "smoke-cluster: collector never came up" >&2
    cat "$TMP/collector.log" >&2
    exit 1
fi
echo "smoke-cluster: collector up at $COLLECTOR"

# A traced query through the router: its X-Trace-Id must show up —
# within a scrape interval or two — as an assembled cross-process trace
# with spans from at least the router, a shard, and a dbnode.
TID="$(curl -fsS -D - -o /dev/null "http://$ROUTER/v1/search?q=$Q" | tr -d '\r' | sed -n 's/^[Xx]-[Tt]race-[Ii]d: //p' | head -n 1)"
if [ -z "$TID" ]; then
    echo "smoke-cluster: router search response carries no X-Trace-Id" >&2
    exit 1
fi
NPROCS=0
for _ in $(seq 1 50); do
    TRACE="$(curl -fsS "http://$COLLECTOR/debug/cluster/trace/$TID" 2>/dev/null | tr -d '\n ')" || TRACE=""
    case "$TRACE" in
    *'"roots":'*)
        NPROCS="$(printf '%s' "$TRACE" | sed -n 's/.*"processes":\[\([^]]*\)\].*/\1/p' | tr ',' '\n' | grep -c '"' || true)"
        [ "$NPROCS" -ge 3 ] && break
        ;;
    esac
    sleep 0.2
done
if [ "$NPROCS" -lt 3 ]; then
    echo "smoke-cluster: trace $TID never assembled across >=3 processes (got $NPROCS)" >&2
    cat "$TMP/collector.log" >&2
    exit 1
fi
echo "smoke-cluster: trace $TID assembled across $NPROCS processes"

# The aggregated metrics rollup must carry fleet-wide series in the
# Prometheus rendering (unlabeled rollup + per-instance labeled lines).
PROM="$(curl -fsS "http://$COLLECTOR/debug/cluster/metrics")"
for series in 'gateway_requests_total ' 'wire_requests_total ' 'gateway_requests_total{instance='; do
    case "$PROM" in
    *"$series"*) ;;
    *)
        echo "smoke-cluster: cluster metrics rollup is missing $series" >&2
        printf '%s\n' "$PROM" | head -n 40 >&2
        exit 1
        ;;
    esac
done
echo "smoke-cluster: fleet metrics rollup serving"

if [ -n "${COLLECTOR_OUT:-}" ]; then
    curl -fsS "http://$COLLECTOR/debug/cluster/metrics?format=json" >"$COLLECTOR_OUT"
    echo "smoke-cluster: cluster snapshot saved to $COLLECTOR_OUT"
fi

# Streaming delivery through the router: one curl -N against
# /v1/search/stream must carry at least the selection, node_result, and
# final frame types, and the final frame's ranking must be exactly the
# blocking endpoint's answer.
echo "smoke-cluster: streaming query through the router..."
STREAM="$(curl -fsSN "http://$ROUTER/v1/search/stream?q=$Q")"
for ev in 'event: selection' 'event: node_result' 'event: final'; do
    case "$STREAM" in
    *"$ev"*) ;;
    *)
        echo "smoke-cluster: stream is missing \"$ev\"" >&2
        printf '%s\n' "$STREAM" | head -n 20 >&2
        exit 1
        ;;
    esac
done
FINAL_DATA="$(printf '%s\n' "$STREAM" | sed -n '/^event: final$/{n;n;s/^data: //p;}')"
BLOCKING="$(curl -fsS "http://$ROUTER/v1/search?q=$Q")"
# trace_id and elapsed differ per request; the ranking and selection
# payloads must not (shards run cache-off, so both requests recompute).
pick() { printf '%s' "$2" | sed -n 's/.*"'"$1"'":\(\[[^]]*\]\).*/\1/p'; }
for field in results selections; do
    sv="$(pick "$field" "$FINAL_DATA")"
    bv="$(pick "$field" "$BLOCKING")"
    if [ -z "$sv" ] || [ "$sv" != "$bv" ]; then
        echo "smoke-cluster: streamed final $field differ from blocking answer" >&2
        echo "stream:   $sv" >&2
        echo "blocking: $bv" >&2
        exit 1
    fi
done
echo "smoke-cluster: stream carried selection/node_result/final, final ranking == blocking"

# Optional measured run: a second router process in -loadtest mode fans
# the open-loop workload out to the same (healthy) shards and merges
# the report into the BENCH file's cluster_serving section.
if [ -n "$OUT" ]; then
    echo "smoke-cluster: measured cluster serving run into $OUT..."
    "$TMP/metasearch" -route -topology "$TMP/topo.json" -loadtest \
        -lt-qps "${QPS:-50}" -lt-duration "${DURATION:-5s}" -lt-out "$OUT"
    if ! grep -q '"cluster_serving"' "$OUT"; then
        echo "smoke-cluster: $OUT has no cluster_serving section" >&2
        exit 1
    fi

    # Streaming bench: front shard-01 with a 120ms chaos proxy so the
    # fan-out dominates, then measure time-to-first-frame against full
    # blocking latency through a stream-only router loadtest (-lt-qps 0
    # keeps the degraded run out of the cluster_serving section). The
    # selection frame must reach the client in under half the blocking
    # round trip — that is what progressive delivery buys.
    echo "smoke-cluster: streaming bench against a chaos-delayed shard..."
    "$TMP/chaosproxy" -target "http://$SHARD1" \
        -faults '{"latency_ms":120}' >"$TMP/chaos.log" 2>&1 &
    PIDS="$PIDS $!"
    CHAOS=""
    for _ in $(seq 1 100); do
        CHAOS="$(sed -n 's|.*on http://||p' "$TMP/chaos.log" | head -n 1 | cut -d' ' -f1)"
        [ -n "$CHAOS" ] && break
        sleep 0.1
    done
    if [ -z "$CHAOS" ]; then
        echo "smoke-cluster: chaosproxy never came up" >&2
        cat "$TMP/chaos.log" >&2
        exit 1
    fi
    sed "s|\"addr\": \"$SHARD1\"|\"addr\": \"$CHAOS\"|" "$TMP/topo.json" >"$TMP/topo-stream.json"
    "$TMP/metasearch" -route -topology "$TMP/topo-stream.json" -loadtest \
        -lt-qps 0 -lt-stream -lt-stream-samples "${STREAM_SAMPLES:-12}" \
        -lt-name stream-vs-blocking -lt-out "$OUT"
    if ! grep -q '"streaming"' "$OUT"; then
        echo "smoke-cluster: $OUT has no streaming section" >&2
        exit 1
    fi
    RATIO="$(sed -n 's/.*"ttff_p50_over_blocking_p50":[[:space:]]*\([0-9.eE+-]*\).*/\1/p' "$OUT" | tail -n 1)"
    if [ -z "$RATIO" ] || ! awk -v r="$RATIO" 'BEGIN{exit !(r > 0 && r < 0.5)}'; then
        echo "smoke-cluster: TTFF/blocking p50 ratio '$RATIO' not in (0, 0.5)" >&2
        exit 1
    fi
    echo "smoke-cluster: streaming TTFF is ${RATIO}x the blocking p50"
fi

# Kill every database's replica 0 — the preferred copy on every shard —
# while the cluster keeps serving. The next queries must fail over to
# replica 1 without a single failed request.
for db in $DBS; do
    eval "pid=\$NODE_PID_0_$(slug "$db")"
    kill "$pid" 2>/dev/null || true
done
sleep 0.3

assert_results "preferred replicas down"
assert_results "preferred replicas down, requery"
echo "smoke-cluster: queries still answered with every preferred replica dead"

# The shards must have recorded real failovers (and no exhausted replica
# sets: one live copy per database remained throughout).
FAILOVERS=0
for shard in "$SHARD0" "$SHARD1"; do
    n="$(curl -fsS "http://$shard/metrics" | sed -n 's/^replica_failover_total //p')"
    FAILOVERS=$((FAILOVERS + ${n:-0}))
    x="$(curl -fsS "http://$shard/metrics" | sed -n 's/^replica_exhausted_total //p')"
    if [ "${x:-0}" -ne 0 ]; then
        echo "smoke-cluster: replica_exhausted_total=$x on $shard, want 0" >&2
        exit 1
    fi
done
if [ "$FAILOVERS" -eq 0 ]; then
    echo "smoke-cluster: no replica failover recorded although every preferred replica is dead" >&2
    exit 1
fi
echo "smoke-cluster: $FAILOVERS replica failovers, 0 exhausted replica sets"

# Live topology reconfiguration under load: boot a replacement replica
# for the Heart database, then rewrite the topology mid-stream — every
# database drops its dead replica 0 and Heart gains the replacement as
# its new preferred copy. The shard and router watchers must apply the
# swap with zero failed queries, and /v1/healthz must report the bumped
# topology generation on both planes.
gen_of() {
    curl -fsS "http://$1/v1/healthz" | sed -n 's/.*"topology":{"generation":\([0-9]*\).*/\1/p'
}
RGEN="$(gen_of "$ROUTER")"
SGEN="$(gen_of "$SHARD0")"
if [ -z "$RGEN" ] || [ -z "$SGEN" ]; then
    echo "smoke-cluster: healthz reports no topology generation (router='$RGEN' shard='$SGEN')" >&2
    exit 1
fi

start_node "$HEART" 2
NEWADDR="$ADDR"
echo "smoke-cluster: replacement replica for $HEART at $NEWADDR"

# Continuous query load across the rewrite; any failure fails the smoke.
: >"$TMP/reconfig.fail"
(
    while [ ! -f "$TMP/reconfig.stop" ]; do
        curl -fsS "http://$ROUTER/v1/search?q=$Q" >/dev/null 2>&1 || echo x >>"$TMP/reconfig.fail"
        sleep 0.05
    done
) &
LOAD_PID=$!
PIDS="$PIDS $LOAD_PID"
sleep 0.3

for db in $DBS; do
    eval "addrs=\$ADDRS_$(slug "$db")"
    set -- $addrs
    if [ "$db" = "$HEART" ]; then
        eval "ADDRS_$(slug "$db")='$NEWADDR $2'"
    else
        eval "ADDRS_$(slug "$db")='$2'"
    fi
done
write_topology "$SHARD0" "$SHARD1"

NEWRGEN=""
NEWSGEN=""
for _ in $(seq 1 100); do
    NEWRGEN="$(gen_of "$ROUTER")"
    NEWSGEN="$(gen_of "$SHARD0")"
    [ "${NEWRGEN:-0}" -gt "$RGEN" ] && [ "${NEWSGEN:-0}" -gt "$SGEN" ] && break
    sleep 0.2
done
if [ "${NEWRGEN:-0}" -le "$RGEN" ] || [ "${NEWSGEN:-0}" -le "$SGEN" ]; then
    echo "smoke-cluster: topology generation never bumped (router $RGEN->$NEWRGEN, shard $SGEN->$NEWSGEN)" >&2
    cat "$TMP/router.log" >&2
    exit 1
fi

# Let the load run on the new topology for a moment, then stop it.
sleep 0.5
touch "$TMP/reconfig.stop"
wait "$LOAD_PID" 2>/dev/null || true
if [ -s "$TMP/reconfig.fail" ]; then
    echo "smoke-cluster: $(wc -l <"$TMP/reconfig.fail") queries failed during the topology swap, want 0" >&2
    cat "$TMP/router.log" >&2
    exit 1
fi
assert_results "after topology swap"
echo "smoke-cluster: topology swap applied under load (router gen $RGEN->$NEWRGEN, shard gen $SGEN->$NEWSGEN), zero failed queries"

# The router's swap audit trail records the reconfiguration. With
# $SWAP_OUT set, the trail is saved there (a CI artifact alongside the
# BENCH and COLLECTOR files).
TRAIL="$(curl -fsS "http://$ROUTER/debug/topology")"
case "$TRAIL" in
*'"swaps":'*) ;;
*)
    echo "smoke-cluster: router /debug/topology has no swap audit trail: $TRAIL" >&2
    exit 1
    ;;
esac
if [ -n "${SWAP_OUT:-}" ]; then
    printf '%s\n' "$TRAIL" >"$SWAP_OUT"
    echo "smoke-cluster: swap audit trail saved to $SWAP_OUT"
fi

echo "smoke-cluster: OK"
