#!/bin/sh
# loadtest.sh — drive the gateway with the open-loop workload engine
# and merge the serving report (achieved QPS, tail latency percentiles,
# shed/hedge/breaker/cache rates, SLO burn) into a BENCH JSON file's
# "serving" section. Pairs with scripts/bench.sh, which records the
# microbenchmarks into the same file.
#
# Usage: scripts/loadtest.sh [output-file]
#
# Environment knobs:
#   QPS=100 DURATION=10s        steady-rate profile (the default)
#   RAMP="50:5s,500:2s:20"      qps:duration[:burst] segments instead
#   DRIVER=http|inproc          serving surface (default http)
#   SCALE=small|default         testbed size (default small)
#   NAME=steady-100             run label in the report
set -eu

GO="${GO:-go}"
OUT="${1:-${BENCH_OUT:-BENCH_pr10.json}}"
QPS="${QPS:-100}"
DURATION="${DURATION:-10s}"
DRIVER="${DRIVER:-http}"
SCALE="${SCALE:-small}"
RAMP="${RAMP:-}"
NAME="${NAME:-}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "loadtest: building metasearch..." >&2
"$GO" build -o "$TMP/metasearch" ./cmd/metasearch

set -- -scale "$SCALE" -loadtest -lt-driver "$DRIVER" -lt-out "$OUT" \
    -lt-qps "$QPS" -lt-duration "$DURATION"
[ -n "$RAMP" ] && set -- "$@" -lt-ramp "$RAMP"
[ -n "$NAME" ] && set -- "$@" -lt-name "$NAME"

"$TMP/metasearch" "$@"

if ! grep -q '"serving"' "$OUT"; then
    echo "loadtest: $OUT has no serving section" >&2
    exit 1
fi
echo "loadtest: serving report in $OUT" >&2
