#!/bin/sh
# bench.sh — run every benchmark with allocation stats and record the
# results as a JSON document so benchmark output is diffable across
# PRs instead of scrolling away in CI logs. The output name defaults
# to BENCH_<tag>.json where the tag tracks the current PR; override
# via the first argument or $BENCH_OUT.
#
# Usage: scripts/bench.sh [output-file]
set -eu

GO="${GO:-go}"
OUT="${1:-${BENCH_OUT:-BENCH_pr10.json}}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

echo "bench: running go test -bench . -benchmem ./..." >&2
"$GO" test -run='^$' -bench . -benchmem ./... | tee "$TMP" >&2

# Convert `go test -bench` lines into a JSON array. Benchmark rows look
# like:
#   BenchmarkName-8   1000  1234 ns/op  56 B/op  7 allocs/op
awk '
BEGIN { print "{"; printf "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
    if (ns != "")     printf ", \"ns_per_op\": %s", ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n  ]"; print "}" }
' "$TMP" >"$OUT"

echo "bench: wrote $OUT ($(grep -c '"name"' "$OUT" || true) benchmarks)" >&2
