package repro

import (
	"sort"
)

// ReplicaAssignment is one database this process must serve after a
// topology change: the database's name, its advertised category, the
// replica addresses serving it, and which replica this process prefers
// (the topology's owner-rank rotation). cmd/metasearch derives these
// from shardmap.ShardAssignments; the type lives here so the library
// does not depend on the topology-file format.
type ReplicaAssignment struct {
	Database  string
	Category  string
	Replicas  []string
	Preferred int
}

// TopologySwapReport is what one ApplyReplicaAssignments call changed —
// the shard-side swap audit record.
type TopologySwapReport struct {
	// Attached lists databases that entered this process's scope (lazy
	// replica handles created); Detached those that left (handles
	// drained and closed).
	Attached []string `json:"attached,omitempty"`
	Detached []string `json:"detached,omitempty"`
	// Unknown lists assigned databases with no summary in the store:
	// they cannot be selected (selection is summary-driven), so they are
	// skipped until a rebuilt summary file is loaded.
	Unknown []string `json:"unknown,omitempty"`
	// ReplicasAdded/Removed map database name → replica addresses that
	// joined or left its live replica set.
	ReplicasAdded   map[string][]string `json:"replicas_added,omitempty"`
	ReplicasRemoved map[string][]string `json:"replicas_removed,omitempty"`
	// ScopeChanged reports whether the search scope itself changed
	// (attach/detach), which also invalidates the query caches.
	ScopeChanged bool `json:"scope_changed"`
}

// ApplyReplicaAssignments reconciles this process's live replica
// handles and search scope with a new topology — the shard-side half of
// a zero-downtime reconfiguration. For each assigned database:
//
//   - already in scope with a replicated handle: the replica set is
//     swapped in place (ReplicatedDatabase.UpdateReplicas) — surviving
//     replicas keep breaker state, clients, and in-flight counts;
//     removed ones drain and close; added ones get lazy clients with
//     breakers seeded half-open.
//   - newly in scope: a lazy replicated handle is attached (no network
//     I/O on the swap path) and the database joins the search scope.
//   - assigned but absent from the summary store: skipped and reported
//     — a database the selection statistics do not cover cannot serve.
//
// Databases in scope but no longer assigned are detached: their handles
// drain and close in the background, their breakers leave the set, and
// they revert to selection-only participation (exactly like an
// out-of-scope database at load time). In-flight searches finish on the
// handles they hold. When the scope changes the query caches are
// invalidated (a cached merged result describes the old scope); the
// health prober, if running, is retargeted either way.
//
// client configures the wire clients of replicas created by this swap;
// its Budget defaults to the process's retry budget.
func (m *Metasearcher) ApplyReplicaAssignments(assigns []ReplicaAssignment, client RemoteDatabaseOptions) (*TopologySwapReport, error) {
	if client.Budget == nil {
		client.Budget = m.budget
	}
	rep := &TopologySwapReport{}

	m.mu.Lock()
	byName := make(map[string]*registeredDB, len(m.dbs))
	for _, r := range m.dbs {
		byName[r.name] = r
	}
	assigned := make(map[string]bool, len(assigns))
	newScope := make(map[string]bool, len(assigns))
	for _, a := range assigns {
		assigned[a.Database] = true
		r, ok := byName[a.Database]
		if !ok {
			rep.Unknown = append(rep.Unknown, a.Database)
			continue
		}
		newScope[a.Database] = true
		opts := ReplicatedDatabaseOptions{
			Preferred: a.Preferred,
			Breakers:  m.breakers,
			Metrics:   m.reg,
			Client:    client,
		}
		if rd, ok := r.db.(*ReplicatedDatabase); ok {
			added, removed, err := rd.UpdateReplicas(a.Replicas, a.Preferred)
			if err != nil {
				m.mu.Unlock()
				return rep, err
			}
			if len(added) > 0 {
				if rep.ReplicasAdded == nil {
					rep.ReplicasAdded = make(map[string][]string)
				}
				rep.ReplicasAdded[a.Database] = added
			}
			if len(removed) > 0 {
				if rep.ReplicasRemoved == nil {
					rep.ReplicasRemoved = make(map[string][]string)
				}
				rep.ReplicasRemoved[a.Database] = removed
			}
			continue
		}
		// Newly in scope (or a non-replicated handle being promoted):
		// attach a lazy replicated handle.
		rd, err := NewReplicatedDatabase(a.Database, a.Category, 0, a.Replicas, opts)
		if err != nil {
			m.mu.Unlock()
			return rep, err
		}
		r.db = rd
		rep.Attached = append(rep.Attached, a.Database)
	}

	// The old effective scope: the explicit scope set when present
	// (cluster shards after LoadFiltered), otherwise every database with
	// a live handle (an unscoped process adopting a topology).
	oldScope := make(map[string]bool)
	for _, r := range m.dbs {
		if m.scope != nil {
			if m.scope[r.name] {
				oldScope[r.name] = true
			}
		} else if r.db != nil {
			oldScope[r.name] = true
		}
	}

	// Detach databases that left this process's slice: drain and close
	// their handles, drop their database-level breakers.
	for _, r := range m.dbs {
		if r.db == nil || assigned[r.name] || !oldScope[r.name] {
			continue
		}
		if rd, ok := r.db.(*ReplicatedDatabase); ok {
			rd.Close()
		}
		r.db = nil
		m.breakers.Remove(r.name)
		rep.Detached = append(rep.Detached, r.name)
	}

	rep.ScopeChanged = len(newScope) != len(oldScope)
	for name := range newScope {
		if !oldScope[name] {
			rep.ScopeChanged = true
		}
	}
	m.scope = newScope
	m.mu.Unlock()

	sort.Strings(rep.Attached)
	sort.Strings(rep.Detached)
	sort.Strings(rep.Unknown)
	if rep.ScopeChanged {
		// Cached selections survive (selection statistics are
		// collection-wide and unchanged), but cached merged results
		// describe the old scope.
		m.InvalidateCaches()
	}
	m.refreshProbeTargets()
	m.logInfo("topology swap applied",
		"attached", len(rep.Attached), "detached", len(rep.Detached),
		"unknown", len(rep.Unknown), "scope_changed", rep.ScopeChanged)
	return rep, nil
}
