package repro

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// RemoteDatabaseOptions configures the HTTP client behind a
// RemoteDatabase. The zero value is usable.
type RemoteDatabaseOptions struct {
	// Timeout bounds each HTTP attempt, dial to last body byte
	// (default 5s).
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is retried on
	// transient errors — network failures, timeouts, 5xx, 429 —
	// before the call fails (default 3; negative disables retries).
	MaxRetries int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between retries (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CacheSize is the capacity of the in-client LRU document cache;
	// repeat Fetches of the same document are served without a round
	// trip (default 1024; negative disables caching).
	CacheSize int
	// Metrics receives the wire client series (wire_requests_total,
	// wire_client_retries_total, wire_request_latency, ...); pass the
	// metasearcher's registry (Metasearcher.Metrics) to expose remote
	// traffic alongside the pipeline series. May be nil.
	Metrics *telemetry.Registry
	// Budget, when non-nil, bounds the client's retry volume (see
	// wire.ClientOptions.Budget). Share one budget across every remote
	// database in the process.
	Budget wire.RetryBudget
	// Transport overrides the shared keep-alive HTTP transport (tests).
	Transport http.RoundTripper
}

func (o RemoteDatabaseOptions) clientOptions() wire.ClientOptions {
	return wire.ClientOptions{
		Timeout:     o.Timeout,
		MaxRetries:  o.MaxRetries,
		BackoffBase: o.BackoffBase,
		BackoffMax:  o.BackoffMax,
		CacheSize:   o.CacheSize,
		Transport:   o.Transport,
		Metrics:     o.Metrics,
		Budget:      o.Budget,
	}
}

// RemoteDatabase is a SearchableDatabase served by a dbnode process over
// the wire protocol. It implements ContextSearchableDatabase, so the
// pipeline cancels its in-flight calls with the build or search context
// and treats its failures as transient unavailability. Safe for
// concurrent use.
type RemoteDatabase struct {
	client   *wire.Client
	name     string
	category string
	numDocs  int

	// Lazily dialed handles (NewLazyRemoteDatabase) adopt their identity
	// from the caller and verify it against the node on first contact.
	verifyMu sync.Mutex
	verified bool
}

var _ ContextSearchableDatabase = (*RemoteDatabase)(nil)

// DialRemoteDatabase connects to the node at addr ("host:port" or a
// full http:// base URL), fetches its description, and verifies the
// protocol version. The node must be reachable at dial time; afterwards
// the database degrades gracefully (failed calls are retried by the
// client and, if still failing, treated by the pipeline like a missing
// database).
func DialRemoteDatabase(ctx context.Context, addr string, opts RemoteDatabaseOptions) (*RemoteDatabase, error) {
	client := wire.NewClient(addr, opts.clientOptions())
	info, err := client.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("repro: dialing remote database at %s: %w", addr, err)
	}
	if info.Protocol != wire.Version {
		return nil, fmt.Errorf("repro: remote database at %s speaks protocol %d, want %d",
			addr, info.Protocol, wire.Version)
	}
	if info.Name == "" {
		return nil, fmt.Errorf("repro: remote database at %s reports no name", addr)
	}
	return &RemoteDatabase{
		client:   client,
		name:     info.Name,
		category: info.Category,
		numDocs:  info.NumDocs,
		verified: true,
	}, nil
}

// NewLazyRemoteDatabase builds a handle to the node at addr without
// touching the network: the identity (name, category, document count)
// is adopted from the caller — for a replica swapped into an existing
// replica set, that is the set's identity — and verified against the
// node's /v1/info on first contact. A swap must not block on a replica
// that is still warming up; the handle is ready immediately and the
// node earns traffic when it starts answering.
func NewLazyRemoteDatabase(addr, name, category string, numDocs int, opts RemoteDatabaseOptions) *RemoteDatabase {
	return &RemoteDatabase{
		client:   wire.NewClient(addr, opts.clientOptions()),
		name:     name,
		category: category,
		numDocs:  numDocs,
	}
}

// ensureVerified performs the one-time identity check a lazy handle
// deferred at construction: the node must speak the expected protocol
// version and carry the adopted name. Until it passes, every call fails
// — a replica claiming a different database's name must never serve a
// query attributed to this one.
func (d *RemoteDatabase) ensureVerified(ctx context.Context) error {
	d.verifyMu.Lock()
	defer d.verifyMu.Unlock()
	if d.verified {
		return nil
	}
	info, err := d.client.Info(ctx)
	if err != nil {
		return err
	}
	if info.Protocol != wire.Version {
		return fmt.Errorf("repro: remote database at %s speaks protocol %d, want %d",
			d.client.BaseURL(), info.Protocol, wire.Version)
	}
	if info.Name != d.name {
		return fmt.Errorf("repro: remote database at %s is %q, want replica of %q",
			d.client.BaseURL(), info.Name, d.name)
	}
	d.verified = true
	return nil
}

// Close releases the handle's transport resources. Calls in flight are
// unaffected (the wire client is stateless per call); Close exists so
// a replica drained out of the topology does not pin idle keep-alive
// connections until their idle timeout.
func (d *RemoteDatabase) Close() {
	d.client.Close()
}

// Name implements SearchableDatabase.
func (d *RemoteDatabase) Name() string { return d.name }

// Category returns the category the node advertises for its corpus
// ("" when the node has none configured); callers may pass it to
// AddDatabase as the known classification.
func (d *RemoteDatabase) Category() string { return d.category }

// NumDocs returns the document count the node advertised at dial time.
func (d *RemoteDatabase) NumDocs() int { return d.numDocs }

// BaseURL returns the node's base URL.
func (d *RemoteDatabase) BaseURL() string { return d.client.BaseURL() }

// Ping verifies the node is still reachable and accepting traffic,
// via /v1/health (a single attempt, no retries — health probes measure
// the node as it is now). Nodes from before the health endpoint answer
// 404; Ping falls back to /v1/info for those, so probing still works
// against an old fleet.
func (d *RemoteDatabase) Ping(ctx context.Context) error {
	if err := d.ensureVerified(ctx); err != nil {
		return err
	}
	_, err := d.client.Health(ctx)
	var pe *wire.ProtocolError
	if errors.As(err, &pe) && pe.Status == http.StatusNotFound {
		_, err = d.client.Info(ctx)
	}
	return err
}

// QueryContext implements ContextSearchableDatabase.
func (d *RemoteDatabase) QueryContext(ctx context.Context, terms []string, limit int) (int, []int, error) {
	if err := d.ensureVerified(ctx); err != nil {
		return 0, nil, err
	}
	return d.client.Query(ctx, terms, limit)
}

// FetchContext implements ContextSearchableDatabase.
func (d *RemoteDatabase) FetchContext(ctx context.Context, id int) ([]string, error) {
	if err := d.ensureVerified(ctx); err != nil {
		return nil, err
	}
	return d.client.Doc(ctx, id)
}

// Query implements SearchableDatabase (the infallible compatibility
// shape): a failed remote query reports zero matches.
func (d *RemoteDatabase) Query(terms []string, limit int) (int, []int) {
	matches, ids, err := d.client.Query(context.Background(), terms, limit)
	if err != nil {
		return 0, nil
	}
	return matches, ids
}

// Fetch implements SearchableDatabase: a failed remote fetch reports an
// empty document.
func (d *RemoteDatabase) Fetch(id int) []string {
	terms, err := d.client.Doc(context.Background(), id)
	if err != nil {
		return nil
	}
	return terms
}
