package repro

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// RemoteDatabaseOptions configures the HTTP client behind a
// RemoteDatabase. The zero value is usable.
type RemoteDatabaseOptions struct {
	// Timeout bounds each HTTP attempt, dial to last body byte
	// (default 5s).
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is retried on
	// transient errors — network failures, timeouts, 5xx, 429 —
	// before the call fails (default 3; negative disables retries).
	MaxRetries int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between retries (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CacheSize is the capacity of the in-client LRU document cache;
	// repeat Fetches of the same document are served without a round
	// trip (default 1024; negative disables caching).
	CacheSize int
	// Metrics receives the wire client series (wire_requests_total,
	// wire_client_retries_total, wire_request_latency, ...); pass the
	// metasearcher's registry (Metasearcher.Metrics) to expose remote
	// traffic alongside the pipeline series. May be nil.
	Metrics *telemetry.Registry
	// Transport overrides the shared keep-alive HTTP transport (tests).
	Transport http.RoundTripper
}

// RemoteDatabase is a SearchableDatabase served by a dbnode process over
// the wire protocol. It implements ContextSearchableDatabase, so the
// pipeline cancels its in-flight calls with the build or search context
// and treats its failures as transient unavailability. Safe for
// concurrent use.
type RemoteDatabase struct {
	client   *wire.Client
	name     string
	category string
	numDocs  int
}

var _ ContextSearchableDatabase = (*RemoteDatabase)(nil)

// DialRemoteDatabase connects to the node at addr ("host:port" or a
// full http:// base URL), fetches its description, and verifies the
// protocol version. The node must be reachable at dial time; afterwards
// the database degrades gracefully (failed calls are retried by the
// client and, if still failing, treated by the pipeline like a missing
// database).
func DialRemoteDatabase(ctx context.Context, addr string, opts RemoteDatabaseOptions) (*RemoteDatabase, error) {
	client := wire.NewClient(addr, wire.ClientOptions{
		Timeout:     opts.Timeout,
		MaxRetries:  opts.MaxRetries,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
		CacheSize:   opts.CacheSize,
		Transport:   opts.Transport,
		Metrics:     opts.Metrics,
	})
	info, err := client.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("repro: dialing remote database at %s: %w", addr, err)
	}
	if info.Protocol != wire.Version {
		return nil, fmt.Errorf("repro: remote database at %s speaks protocol %d, want %d",
			addr, info.Protocol, wire.Version)
	}
	if info.Name == "" {
		return nil, fmt.Errorf("repro: remote database at %s reports no name", addr)
	}
	return &RemoteDatabase{
		client:   client,
		name:     info.Name,
		category: info.Category,
		numDocs:  info.NumDocs,
	}, nil
}

// Name implements SearchableDatabase.
func (d *RemoteDatabase) Name() string { return d.name }

// Category returns the category the node advertises for its corpus
// ("" when the node has none configured); callers may pass it to
// AddDatabase as the known classification.
func (d *RemoteDatabase) Category() string { return d.category }

// NumDocs returns the document count the node advertised at dial time.
func (d *RemoteDatabase) NumDocs() int { return d.numDocs }

// BaseURL returns the node's base URL.
func (d *RemoteDatabase) BaseURL() string { return d.client.BaseURL() }

// Ping verifies the node is still reachable and accepting traffic,
// via /v1/health (a single attempt, no retries — health probes measure
// the node as it is now). Nodes from before the health endpoint answer
// 404; Ping falls back to /v1/info for those, so probing still works
// against an old fleet.
func (d *RemoteDatabase) Ping(ctx context.Context) error {
	_, err := d.client.Health(ctx)
	var pe *wire.ProtocolError
	if errors.As(err, &pe) && pe.Status == http.StatusNotFound {
		_, err = d.client.Info(ctx)
	}
	return err
}

// QueryContext implements ContextSearchableDatabase.
func (d *RemoteDatabase) QueryContext(ctx context.Context, terms []string, limit int) (int, []int, error) {
	return d.client.Query(ctx, terms, limit)
}

// FetchContext implements ContextSearchableDatabase.
func (d *RemoteDatabase) FetchContext(ctx context.Context, id int) ([]string, error) {
	return d.client.Doc(ctx, id)
}

// Query implements SearchableDatabase (the infallible compatibility
// shape): a failed remote query reports zero matches.
func (d *RemoteDatabase) Query(terms []string, limit int) (int, []int) {
	matches, ids, err := d.client.Query(context.Background(), terms, limit)
	if err != nil {
		return 0, nil
	}
	return matches, ids
}

// Fetch implements SearchableDatabase: a failed remote fetch reports an
// empty document.
func (d *RemoteDatabase) Fetch(id int) []string {
	terms, err := d.client.Doc(context.Background(), id)
	if err != nil {
		return nil
	}
	return terms
}
