package repro

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingDB wraps a database, counting — and optionally delaying or
// gating — Query calls once armed. Arming happens after BuildSummaries,
// so sampling traffic is not counted: only the search fan-out is.
type countingDB struct {
	SearchableDatabase
	armed   atomic.Bool
	queries atomic.Int64
	delay   time.Duration
	block   chan struct{}
}

func (d *countingDB) Query(terms []string, limit int) (int, []int) {
	if d.armed.Load() {
		d.queries.Add(1)
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
		if d.block != nil {
			<-d.block
		}
	}
	return d.SearchableDatabase.Query(terms, limit)
}

func totalQueries(dbs []*countingDB) int64 {
	var n int64
	for _, d := range dbs {
		n += d.queries.Load()
	}
	return n
}

// buildCountingMetasearcher is buildTestMetasearcher with every
// database wrapped in a countingDB, hedging off (a hedge would double
// a gated node's Query count).
func buildCountingMetasearcher(t *testing.T, opts Options) (*Metasearcher, []*countingDB) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	if opts.SampleSize == 0 {
		opts.SampleSize = 30
	}
	opts.Resilience.HedgeAfter = -1
	m := New(opts)
	for _, topic := range topicOrder {
		if err := m.Train(topic, topicDocs(rng, topic, 20)); err != nil {
			t.Fatal(err)
		}
	}
	var dbs []*countingDB
	add := func(name, topic, cat string, n int) {
		t.Helper()
		d := &countingDB{SearchableDatabase: m.NewLocalDatabase(name, topicDocs(rng, topic, n))}
		if err := m.AddDatabase(d, cat); err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, d)
	}
	add("cardio", "Heart", "Heart", 80)
	add("onco", "Cancer", "Cancer", 90)
	add("futbol", "Soccer", "Soccer", 70)
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	return m, dbs
}

func arm(dbs []*countingDB) {
	for _, d := range dbs {
		d.armed.Store(true)
	}
}

// TestRepeatedQueryServedFromCache is the gateway acceptance core: the
// second identical query is answered entirely from the result cache —
// identical results, no upstream fan-out, CacheHit on both the response
// and the audit record.
func TestRepeatedQueryServedFromCache(t *testing.T) {
	m, dbs := buildCountingMetasearcher(t, Options{Seed: 5})
	reg := m.Metrics()
	arm(dbs)
	const query = "blood pressure hypertension"

	r1, err := m.SearchExplained(context.Background(), query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || r1.Collapsed {
		t.Errorf("first query reported a cache hit: %+v", r1)
	}
	if len(r1.Results) == 0 {
		t.Fatal("first query returned no results")
	}
	cold := totalQueries(dbs)
	if cold == 0 {
		t.Fatal("no upstream queries counted on the cold path")
	}

	r2, err := m.SearchExplained(context.Background(), query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("second identical query was not a result-cache hit")
	}
	if !reflect.DeepEqual(r1.Results, r2.Results) {
		t.Errorf("cached results differ:\ncold: %+v\n hit: %+v", r1.Results, r2.Results)
	}
	if !reflect.DeepEqual(r1.Selections, r2.Selections) {
		t.Errorf("cached selections differ")
	}
	if got := totalQueries(dbs); got != cold {
		t.Errorf("cache hit still queried upstream: %d calls, want %d", got, cold)
	}
	if got := reg.Counter("result_cache_hits_total").Value(); got != 1 {
		t.Errorf("result_cache_hits_total = %d, want 1", got)
	}

	// The hit's audit record carries the cache flag and no node calls —
	// the fan-out evidence lives in the record that populated the cache.
	rec := m.Audit().Last()
	if rec == nil || !rec.CacheHit {
		t.Fatalf("audit record of the hit = %+v, want CacheHit", rec)
	}
	if len(rec.Nodes) != 0 {
		t.Errorf("cache-hit audit record has %d node calls, want 0", len(rec.Nodes))
	}
	if rec.Merged != len(r2.Results) {
		t.Errorf("cache-hit audit record merged = %d, want %d", rec.Merged, len(r2.Results))
	}
}

// TestSelectionCacheSharedAcrossPerDB: changing perDB misses the result
// tier (different retrieval depth) but still reuses the cached
// selection decision.
func TestSelectionCacheSharedAcrossPerDB(t *testing.T) {
	m, dbs := buildCountingMetasearcher(t, Options{Seed: 5})
	reg := m.Metrics()
	arm(dbs)
	const query = "tumor chemotherapy radiation"

	r1, err := m.SearchExplained(context.Background(), query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SelectionCacheHit {
		t.Error("cold query claimed a selection-cache hit")
	}
	cold := totalQueries(dbs)

	r2, err := m.SearchExplained(context.Background(), query, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Error("different perDB must miss the result tier")
	}
	if !r2.SelectionCacheHit {
		t.Error("selection decision was not reused across perDB")
	}
	if got := totalQueries(dbs); got <= cold {
		t.Error("result-tier miss did not fan out")
	}
	if got := reg.Counter("selection_cache_hits_total").Value(); got != 1 {
		t.Errorf("selection_cache_hits_total = %d, want 1", got)
	}
	if !reflect.DeepEqual(r1.Selections, r2.Selections) {
		t.Errorf("selections differ across perDB:\n%+v\n%+v", r1.Selections, r2.Selections)
	}
}

// TestConcurrentIdenticalQueriesCollapse: N identical concurrent
// queries produce exactly one upstream fan-out (singleflight), and all
// N receive identical results. The gated backend blocks the one real
// fan-out until every other request has provably joined it (the
// collapse counter increments at join time), so the test is
// deterministic.
func TestConcurrentIdenticalQueriesCollapse(t *testing.T) {
	m, dbs := buildCountingMetasearcher(t, Options{Seed: 5})
	reg := m.Metrics()
	block := make(chan struct{})
	for _, d := range dbs {
		d.block = block
	}
	arm(dbs)
	const query = "goal penalty striker"
	const n = 6

	var wg sync.WaitGroup
	resps := make([]*SearchResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = m.SearchExplained(context.Background(), query, 2, 5)
		}(i)
	}

	// Wait until the n-1 waiters have collapsed onto the in-flight load,
	// then let the gated fan-out finish.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("result_cache_collapsed_total").Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests collapsed",
				reg.Counter("result_cache_collapsed_total").Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()

	owners := 0
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(resps[i].Results) == 0 {
			t.Fatalf("request %d returned no results", i)
		}
		if !reflect.DeepEqual(resps[i].Results, resps[0].Results) {
			t.Errorf("request %d results differ from request 0", i)
		}
		if !resps[i].CacheHit && !resps[i].Collapsed {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d requests claim to have fanned out, want exactly 1", owners)
	}

	// Exactly one fan-out reached the backends: every selected database
	// was queried once, no more.
	if got, want := totalQueries(dbs), int64(len(resps[0].Selections)); got != want {
		t.Errorf("upstream queries = %d, want %d (one per selected database)", got, want)
	}
}

// TestLoadInvalidatesCache: restoring summaries (Load) bumps the cache
// generation, so cached selections and results from the previous
// summary state are never served afterwards.
func TestLoadInvalidatesCache(t *testing.T) {
	m, dbs := buildCountingMetasearcher(t, Options{Seed: 5})
	reg := m.Metrics()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	arm(dbs)
	const query = "blood pressure hypertension"

	r1, err := m.SearchExplained(context.Background(), query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r2, err := m.SearchExplained(context.Background(), query, 2, 5); err != nil || !r2.CacheHit {
		t.Fatalf("warm-up hit failed: resp %+v err %v", r2, err)
	}
	cold := totalQueries(dbs)

	// Load keeps the registered databases' live handles, so the same
	// wrapped backends serve the re-queried fan-out.
	if err := m.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	r3, err := m.SearchExplained(context.Background(), query, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit || r3.Collapsed || r3.SelectionCacheHit {
		t.Errorf("query after Load was served from cache: %+v", r3)
	}
	if got := totalQueries(dbs); got <= cold {
		t.Error("query after Load did not re-fan-out")
	}
	// Same summaries were reloaded, so the re-computed answer matches.
	if !reflect.DeepEqual(r1.Results, r3.Results) {
		t.Errorf("results changed across Load of identical summaries:\n%+v\n%+v", r1.Results, r3.Results)
	}
	// Save and Load each bump the generation of both tiers.
	for _, name := range []string{"selection_cache_invalidations_total", "result_cache_invalidations_total"} {
		if got := reg.Counter(name).Value(); got < 2 {
			t.Errorf("%s = %d, want >= 2 (Save + Load)", name, got)
		}
	}
}

// TestCacheHitLatency enforces the performance contract: a result-cache
// hit must cost well under a tenth of the cold path (here the backends
// take ~100ms, so a hit has four orders of magnitude of headroom).
func TestCacheHitLatency(t *testing.T) {
	m, dbs := buildCountingMetasearcher(t, Options{Seed: 5})
	for _, d := range dbs {
		d.delay = 100 * time.Millisecond
	}
	arm(dbs)
	const query = "stadium trophy tournament"

	start := time.Now()
	if _, err := m.SearchExplained(context.Background(), query, 2, 5); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if cold < 100*time.Millisecond {
		t.Fatalf("cold path took %v despite a 100ms backend delay", cold)
	}

	start = time.Now()
	r, err := m.SearchExplained(context.Background(), query, 2, 5)
	warm := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Fatal("second query was not a cache hit")
	}
	if warm > cold/10 {
		t.Errorf("cache hit took %v, want < 10%% of the %v cold path", warm, cold)
	}
}

// TestSelectCached: the plain Select API also flows through the
// selection cache, and a disabled cache (CacheConfig.Disable) behaves
// exactly as before — every call recomputes.
func TestSelectCached(t *testing.T) {
	m := buildTestMetasearcher(t, Options{Seed: 5})
	reg := m.Metrics()
	s1, err := m.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Select("blood pressure hypertension", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("cached selection differs: %+v vs %+v", s1, s2)
	}
	if got := reg.Counter("selection_cache_hits_total").Value(); got != 1 {
		t.Errorf("selection_cache_hits_total = %d, want 1", got)
	}

	off := buildTestMetasearcher(t, Options{Seed: 5, Cache: CacheConfig{Disable: true}})
	if _, err := off.Select("blood pressure hypertension", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Select("blood pressure hypertension", 2); err != nil {
		t.Fatal(err)
	}
	if got := off.Metrics().Counter("selection_cache_hits_total").Value(); got != 0 {
		t.Errorf("disabled cache recorded %d hits", got)
	}
}
