package repro_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/slo"
)

// topicDocs builds deterministic topical documents (the example_test
// pattern; this file is in package repro_test because loadgen imports
// repro, so the in-package helpers are out of reach).
func topicDocs(rng *rand.Rand, parts []string, n int) []string {
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 4; j++ {
			sb.WriteString(parts[rng.Intn(len(parts))])
			sb.WriteString(". ")
		}
		docs[i] = sb.String()
	}
	return docs
}

// buildServingStack assembles a small metasearcher with an HTTP gateway
// and an SLO tracker, returning the pieces the load generator needs.
func buildServingStack(t *testing.T) (*repro.Metasearcher, *slo.Tracker, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	heart := []string{
		"blood pressure and hypertension management",
		"coronary artery disease treatment",
		"cardiac valve surgery outcomes",
	}
	soccer := []string{
		"the striker scored a late goal",
		"penalty decisions by the referee",
		"league championship standings",
	}
	m := repro.New(repro.Options{SampleSize: 30, Seed: 3})
	if err := m.Train("Heart", topicDocs(rng, heart, 20)); err != nil {
		t.Fatal(err)
	}
	if err := m.Train("Soccer", topicDocs(rng, soccer, 20)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("cardio.example", topicDocs(rng, heart, 80)), "Heart"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDatabase(m.NewLocalDatabase("futbol.example", topicDocs(rng, soccer, 80)), ""); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}

	tracker := slo.New(slo.Config{
		Objectives: slo.DefaultObjectives(500 * time.Millisecond),
		Registry:   m.Metrics(),
	})
	gw := gateway.New(m, gateway.Options{
		DefaultMaxDBs: 2,
		DefaultPerDB:  3,
		Metrics:       m.Metrics(),
		SLO:           tracker,
	})
	mux := http.NewServeMux()
	mux.Handle(gateway.PathSearch, gw)
	mux.Handle(gateway.PathHealthz, gw)
	mux.Handle("/debug/slo", tracker.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return m, tracker, srv
}

// TestServingLoadE2E drives the full serving path — loadgen trace,
// HTTP driver, gateway, caches, selection, fan-out — and checks that
// the load report, the gateway's request accounting, and the /debug/slo
// report all describe the same run.
func TestServingLoadE2E(t *testing.T) {
	m, _, srv := buildServingStack(t)

	queries := []string{
		"blood pressure",
		"coronary artery disease",
		"late goal",
		"penalty referee",
		"league standings",
	}
	tr, err := loadgen.Generate(loadgen.Spec{
		Phases: []loadgen.Phase{{QPS: 60, DurationSeconds: 1.5}},
		Seed:   5,
	}, queries)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := loadgen.Run(context.Background(), tr, &loadgen.HTTPDriver{
		BaseURL: srv.URL,
		Client:  srv.Client(),
		MaxDBs:  2,
		PerDB:   3,
	}, loadgen.Options{Name: "e2e", Registry: m.Metrics()})
	if err != nil {
		t.Fatal(err)
	}

	// The load report describes the whole schedule.
	if rep.Requests != len(tr.Events) {
		t.Fatalf("issued %d of %d scheduled requests", rep.Requests, len(tr.Events))
	}
	if rep.Errors != 0 || rep.Shed != 0 {
		t.Fatalf("clean run expected: errors %d shed %d", rep.Errors, rep.Shed)
	}
	if rep.AchievedQPS < tr.TargetQPS()/2 {
		t.Fatalf("achieved %.1f QPS against a %.1f QPS schedule", rep.AchievedQPS, tr.TargetQPS())
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}
	// Five queries under a Zipf law repeat heavily: the cache must show.
	if rep.Rates["result_cache_hit"] == 0 {
		t.Fatal("no result-cache hits under a Zipfian workload")
	}
	// Per-stage percentiles from the stage histograms.
	if rep.Stages["selection.p50"] <= 0 {
		t.Fatalf("no selection-stage latency recorded: %v", rep.Stages)
	}
	if rep.Stages["selection.p99"] < rep.Stages["selection.p50"] {
		t.Fatalf("selection p99 %v below p50 %v", rep.Stages["selection.p99"], rep.Stages["selection.p50"])
	}

	// The gateway's own accounting agrees with the client's.
	snap := m.Metrics().Snapshot()
	if got := snap.Counters["gateway_requests_total"]; got != int64(rep.Requests) {
		t.Fatalf("gateway saw %d requests, client issued %d", got, rep.Requests)
	}
	if got := snap.Histograms["gateway_latency"].Count; got != int64(rep.Requests) {
		t.Fatalf("gateway_latency has %d observations, want %d", got, rep.Requests)
	}
	if got := snap.Histograms["gateway_error_latency"].Count; got != 0 {
		t.Fatalf("gateway_error_latency has %d observations on a clean run", got)
	}
	if infl := snap.Gauges["gateway_requests_inflight"]; infl != 0 {
		t.Fatalf("inflight gauge %v after drain", infl)
	}

	// /debug/slo reports the same traffic against the objectives, with
	// burn rates computed from the same request stream.
	resp, err := http.Get(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo: %s", resp.Status)
	}
	var sloRep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&sloRep); err != nil {
		t.Fatal(err)
	}
	byName := map[string]slo.ObjectiveReport{}
	for _, o := range sloRep.Objectives {
		byName[o.Name] = o
	}
	for _, name := range []string{"latency", "availability"} {
		o, ok := byName[name]
		if !ok {
			t.Fatalf("objective %q missing from /debug/slo", name)
		}
		if len(o.Windows) == 0 {
			t.Fatalf("objective %q has no windows", name)
		}
		if o.TotalSinceStart != int64(rep.Requests) {
			t.Fatalf("objective %q judged %d requests, gateway served %d", name, o.TotalSinceStart, rep.Requests)
		}
		// All requests were local and fast: no budget burned, and the
		// one-minute window must have seen the whole run.
		if o.Windows[0].Total != int64(rep.Requests) {
			t.Fatalf("objective %q window %s saw %d of %d requests",
				name, o.Windows[0].Window, o.Windows[0].Total, rep.Requests)
		}
		if o.Windows[0].BurnRate != 0 || o.Windows[0].BudgetRemaining != 1 {
			t.Fatalf("objective %q burning budget on a clean run: %+v", name, o.Windows[0])
		}
	}
	if sloRep.Latency == nil || sloRep.Latency.Count != int64(rep.Requests) {
		t.Fatalf("slo latency quantiles missing or wrong count: %+v", sloRep.Latency)
	}
}

// TestServingSLOSeesFailures injects failures through the gateway (bad
// deadline → 504s) and checks the burn rate moves.
func TestServingSLOSeesFailures(t *testing.T) {
	_, tracker, srv := buildServingStack(t)

	// A deadline too short for a cold query forces timeouts.
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL + gateway.PathSearch + "?q=blood+pressure+" + string(rune('a'+i)) + "&timeout=1ns")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("1ns deadline produced a 200")
		}
	}
	resp, err := http.Get(srv.URL + gateway.PathSearch + "?q=blood+pressure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rep := tracker.Report()
	var avail *slo.ObjectiveReport
	for i := range rep.Objectives {
		if rep.Objectives[i].Name == "availability" {
			avail = &rep.Objectives[i]
		}
	}
	if avail == nil {
		t.Fatal("availability objective missing")
	}
	if avail.BadSinceStart < 4 {
		t.Fatalf("availability saw %d bad requests, want >= 4", avail.BadSinceStart)
	}
	if avail.Windows[0].BurnRate <= 1 {
		t.Fatalf("burn rate %v after 4/5 requests failed", avail.Windows[0].BurnRate)
	}
}
