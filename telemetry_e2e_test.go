package repro

import (
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// TestPipelineTraceEndToEnd asserts the span sequence one build+search
// emits: sample → classify → shrink under the build span, then
// select → search.db fan-out under the search span. The default
// sequential Parallelism makes the order deterministic.
func TestPipelineTraceEndToEnd(t *testing.T) {
	cap := &telemetry.Capture{}
	m := buildTestMetasearcher(t, Options{Seed: 70, Observer: cap})

	build := cap.Find("build")
	if build == nil {
		t.Fatal("no build span recorded")
	}
	var order []string
	counts := map[string]int{}
	for _, ch := range build.Children {
		order = append(order, ch.Name)
		counts[ch.Name]++
	}
	if counts["sample"] != 3 || counts["shrink"] != 3 {
		t.Errorf("build children = %v, want 3 sample + 3 shrink", order)
	}
	// Only "onco" is registered without a category, so exactly one
	// probe-classification span runs — after onco's sample span.
	if counts["classify"] != 1 {
		t.Errorf("build children = %v, want exactly 1 classify", order)
	}
	sawOncoSample := false
	for _, ch := range build.Children {
		db := ch.Start.Attr("db")
		if ch.Name == "sample" && db == "onco" {
			sawOncoSample = true
		}
		if ch.Name == "classify" {
			if !sawOncoSample {
				t.Error("classify span started before onco's sample span")
			}
			if db != "onco" {
				t.Errorf("classify span for %v, want onco", db)
			}
		}
	}
	// Every shrink span follows every sample span (shrinkage needs all
	// category summaries first).
	lastSample, firstShrink := -1, len(order)
	for i, name := range order {
		if name == "sample" {
			lastSample = i
		}
		if name == "shrink" && i < firstShrink {
			firstShrink = i
		}
	}
	if firstShrink < lastSample {
		t.Errorf("shrink span before the last sample span: %v", order)
	}
	shrink := cap.Find("shrink")
	if shrink == nil || len(shrink.Events) == 0 {
		t.Fatal("shrink span has no shrink.em event")
	}
	if shrink.Events[0].Name != "shrink.em" {
		t.Errorf("shrink event = %q, want shrink.em", shrink.Events[0].Name)
	}

	cap.Reset()
	if _, err := m.Search("blood pressure hypertension", 2, 3); err != nil {
		t.Fatal(err)
	}
	search := cap.Find("search")
	if search == nil {
		t.Fatal("no search span recorded")
	}
	if !search.Ended() {
		t.Error("search span never ended")
	}
	var names []string
	for _, ch := range search.Children {
		names = append(names, ch.Name)
	}
	if len(names) < 2 || names[0] != "select" {
		t.Fatalf("search children = %v, want select first then search.db fan-out", names)
	}
	for _, name := range names[1:] {
		if name != "search.db" {
			t.Errorf("unexpected search child %q", name)
		}
	}
	sel := search.Children[0]
	if got, ok := sel.End.Attr("selected").(int64); !ok || got < 1 {
		t.Errorf("select span end attr selected = %v", sel.End.Attr("selected"))
	}

	// The registry saw the same story.
	snap := m.Metrics().Snapshot()
	for name, want := range map[string]int64{
		"em_runs_total":         3,
		"build_runs_total":      1,
		"search_requests_total": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["sampling_queries_total"] == 0 {
		t.Error("sampling_queries_total stayed 0")
	}
	if snap.Counters["classify_probes_total"] == 0 {
		t.Error("classify_probes_total stayed 0")
	}
	if hist, ok := snap.Histograms["search_latency"]; !ok || hist.Count != 1 {
		t.Errorf("search_latency histogram = %+v (present %v), want count 1", hist, ok)
	}
}

// TestSearchSkipsDeadDatabase exercises the graceful degradation of the
// fan-out: a selected database without a live handle is skipped (and
// counted) instead of failing the whole search, and the surviving
// databases still answer.
func TestSearchSkipsDeadDatabase(t *testing.T) {
	cap := &telemetry.Capture{}
	rng := rand.New(rand.NewSource(2))
	m := New(Options{Seed: 71, Observer: cap, SampleSize: 30})
	// Training extends the QBS seed lexicon with on-topic words (the
	// categories are fixed, so no probe classifier is needed).
	for _, topic := range topicOrder {
		if err := m.Train(topic, topicDocs(rng, topic, 20)); err != nil {
			t.Fatal(err)
		}
	}
	// Two databases share the Heart topic so a query that selects both
	// can still be answered when one goes dark.
	for _, db := range []struct {
		name string
		n    int
	}{{"cardio", 80}, {"cardio2", 60}} {
		if err := m.AddDatabase(m.NewLocalDatabase(db.name, topicDocs(rng, "Heart", db.n)), "Heart"); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddDatabase(m.NewLocalDatabase("futbol", topicDocs(rng, "Soccer", 70)), "Soccer"); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	// Kill one of the two Heart databases' handles.
	for _, r := range m.dbs {
		if r.name == "cardio" {
			r.db = nil
		}
	}
	cap.Reset()
	results, err := m.Search("blood pressure hypertension", 2, 5)
	if err != nil {
		t.Fatalf("Search with one dead database failed: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("no results from the surviving databases")
	}
	for _, r := range results {
		if r.Database == "cardio" {
			t.Errorf("result from the dead database: %+v", r)
		}
	}
	if got := m.Metrics().Snapshot().Counters["search_db_unavailable_total"]; got != 1 {
		t.Errorf("search_db_unavailable_total = %d, want 1", got)
	}
	search := cap.Find("search")
	if search == nil {
		t.Fatal("no search span recorded")
	}
	found := false
	for _, e := range search.Events {
		if e.Name == "search.db_unavailable" {
			if db := e.Attr("db"); db != "cardio" {
				t.Errorf("search.db_unavailable for %v, want cardio", db)
			}
			found = true
		}
	}
	if !found {
		t.Error("no search.db_unavailable event on the search span")
	}
}
