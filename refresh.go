package repro

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/freqest"
	"repro/internal/hierarchy"
	"repro/internal/sampling"
	"repro/internal/summary"
	"repro/internal/telemetry"
	"repro/internal/zipf"
)

// This file implements refresh.Target: the hooks the background
// summary-refresh manager (internal/refresh) uses to keep content
// summaries tracking the live collections. The split of labor: the
// manager owns scheduling, drift decisions, and observability; the
// metasearcher owns sampling and the atomic swap, because only it knows
// the build pipeline and holds the lock the serving path reads under.

// RefreshableDatabases lists the databases the refresh manager may
// re-sample: those with a live connection, within this process's search
// scope (a cluster shard refreshes only its slice — refreshing another
// shard's nodes would fork the collection-wide statistics the cluster
// merge identity rests on), sorted by name.
func (m *Metasearcher) RefreshableDatabases() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, r := range m.dbs {
		if r.db == nil {
			continue
		}
		if m.scope != nil && !m.scope[r.name] {
			continue
		}
		out = append(out, r.name)
	}
	sort.Strings(out)
	return out
}

// StoredSummary returns a database's current unshrunk content summary.
// Summaries are immutable once built (a rebuild swaps in a new one), so
// the returned pointer is safe to read without the metasearcher's lock.
func (m *Metasearcher) StoredSummary(name string) (*summary.Summary, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.findLocked(name)
	if r == nil {
		return nil, fmt.Errorf("repro: unknown database %q", name)
	}
	if r.unshrunk == nil {
		return nil, fmt.Errorf("repro: database %q has no built summary", name)
	}
	return r.unshrunk, nil
}

// ResampleSummary draws a fresh sample of about docs documents from the
// live database and summarizes it, touching no stored state — the cheap
// probe the drift check compares against StoredSummary. The sampler's
// seed is derived from the database name, distinct from the build
// pipeline's seed, so the resample is an independent draw from the
// node's contents while staying deterministic run to run.
func (m *Metasearcher) ResampleSummary(ctx context.Context, name string, docs int) (*summary.Summary, error) {
	m.mu.Lock()
	r := m.findLocked(name)
	if r == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("repro: unknown database %q", name)
	}
	db := r.db
	lexicon := m.refreshLexiconLocked()
	m.mu.Unlock()
	if db == nil {
		return nil, fmt.Errorf("repro: database %q has no live connection", name)
	}
	if docs <= 0 {
		docs = 50
	}

	span := m.tracer.Span("refresh.resample",
		telemetry.String("db", name), telemetry.Int("docs", docs))
	defer span.End()
	sctx := telemetry.ContextWithSpan(ctx, span)
	sample, err := sampling.QBS(sctx, &dbSearcher{m: m, db: db, ctx: sctx}, sampling.QBSConfig{
		TargetDocs:  docs,
		SeedLexicon: lexicon,
		Seed:        refreshSeed(m.opts.Seed, name),
		Span:        span,
		Metrics:     m.reg,
	})
	if err != nil {
		return nil, fmt.Errorf("resampling %s: %w", name, err)
	}
	return summary.FromSample(sample.Docs), nil
}

// RebuildSummary re-samples one database at full build size and swaps
// the result into the serving state: the node's unshrunk summary is
// replaced, the category summaries it feeds are recomputed, every
// database is re-shrunk against them (shrinkage ancestors share
// statistics, so one node's drift moves its siblings' shrunk summaries
// too), and both query-cache tiers are invalidated. Sampling — the slow,
// latency-bound part — runs outside the metasearcher's lock, so queries
// keep serving from the old state until the swap; the swap itself holds
// the lock exactly as BuildSummaries does, which is what makes it atomic
// under traffic. The database keeps its assigned category: contents
// drift, classification is re-probed only by a full offline rebuild.
func (m *Metasearcher) RebuildSummary(ctx context.Context, name string) error {
	m.mu.Lock()
	if !m.built {
		m.mu.Unlock()
		return errors.New("repro: BuildSummaries has not been run")
	}
	var idx int
	r := m.findLocked(name)
	for i, d := range m.dbs {
		if d.name == name {
			idx = i
		}
	}
	if r == nil {
		m.mu.Unlock()
		return fmt.Errorf("repro: unknown database %q", name)
	}
	db := r.db
	lexicon := m.refreshLexiconLocked()
	m.mu.Unlock()
	if db == nil {
		return fmt.Errorf("repro: database %q has no live connection", name)
	}

	t0 := time.Now()
	span := m.tracer.Span("refresh.rebuild", telemetry.String("db", name))
	defer span.End()
	sctx := telemetry.ContextWithSpan(ctx, span)
	sample, err := sampling.QBS(sctx, &dbSearcher{m: m, db: db, ctx: sctx}, sampling.QBSConfig{
		TargetDocs:  m.opts.SampleSize,
		SeedLexicon: lexicon,
		Seed:        refreshSeed(m.opts.Seed+int64(idx), name),
		Span:        span,
		Metrics:     m.reg,
	})
	if err != nil {
		return fmt.Errorf("rebuild sampling %s: %w", name, err)
	}
	raw := summary.FromSample(sample.Docs)
	est, errFit := freqest.FitCheckpoints(sample.Checkpoints)
	size, errSize := freqest.EstimateSize(sample, raw)
	if errFit != nil || errSize != nil {
		size = raw.NumDocs
	}
	unshrunk := raw
	if !m.opts.DisableFrequencyEstimation && errFit == nil {
		unshrunk = freqest.Apply(raw, est, size)
	}
	gamma := zipf.FreqPowerLawGamma(est.LawAt(size).Alpha)

	// The swap: recompute everything derived from the summary set under
	// the lock, then stale both cache tiers so no query serves a ranking
	// mixing old and new statistics.
	m.mu.Lock()
	defer m.mu.Unlock()
	r = m.findLocked(name)
	if r == nil {
		return fmt.Errorf("repro: database %q disappeared during rebuild", name)
	}
	r.unshrunk = unshrunk
	r.sampleLen = raw.SampleSize
	r.sizeEst = size
	r.gamma = gamma
	if r.prov == nil {
		r.prov = &BuildTelemetry{}
	}
	r.prov.SampleQueries = sample.Queries
	if strings.EqualFold(m.opts.Scorer, "redde") {
		r.sampleDocs = sample.Docs
	}
	classified := make([]core.Classified, len(m.dbs))
	for i, d := range m.dbs {
		classified[i] = core.Classified{Name: d.name, Category: d.assigned, Sum: d.unshrunk}
	}
	m.cats = core.BuildCategorySummaries(m.tree, classified, core.SizeWeighted)
	for i, d := range m.dbs {
		d.shrunk = core.Shrink(m.cats, classified[i], core.ShrinkOptions{Metrics: m.reg})
		if d.prov != nil {
			d.prov.EMIterations = d.shrunk.EMIterations()
			d.prov.Lambdas = d.shrunk.Lambdas()
		}
	}
	m.global = m.cats.Summary(hierarchy.Root)
	m.InvalidateCaches()
	m.logInfo("summary rebuilt after drift",
		"db", name, "docs", len(sample.Docs), "vocab", raw.Len(),
		"elapsed", time.Since(t0))
	return nil
}

// findLocked returns the registered database by name; m.mu must be
// held.
func (m *Metasearcher) findLocked(name string) *registeredDB {
	for _, r := range m.dbs {
		if r.name == name {
			return r
		}
	}
	return nil
}

// refreshLexiconLocked resolves the QBS bootstrap lexicon exactly as
// BuildSummariesContext does; m.mu must be held.
func (m *Metasearcher) refreshLexiconLocked() []string {
	if m.opts.SeedLexicon != nil {
		return m.opts.SeedLexicon
	}
	lexicon := defaultLexicon()
	return append(lexicon, m.training.TopWords(300)...)
}

// refreshSeed derives a refresh sampler's seed: the configured base
// offset by a hash of the database name, so refresh draws differ from
// the build pipeline's (seeded base+index) while staying deterministic.
func refreshSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base + int64(h.Sum64()&0x7fffffffffff) + 1
}
