package repro

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/refresh"
)

// The refresh end-to-end test: a live database whose contents change
// out from under its stored summary must be detected by the drift
// check, re-summarized, and hot-swapped — under steady query load with
// zero failed queries — after which rankings reflect the new contents
// and the pre-swap cache entries are gone.

// swappableDB is a SearchableDatabase whose backing corpus can be
// replaced at runtime, simulating a remote collection that changed.
type swappableDB struct {
	name string
	mu   sync.RWMutex
	db   *LocalDatabase
}

func (s *swappableDB) Name() string { return s.name }

func (s *swappableDB) Query(terms []string, limit int) (int, []int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Query(terms, limit)
}

func (s *swappableDB) Fetch(id int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Fetch(id)
}

func (s *swappableDB) swap(db *LocalDatabase) {
	s.mu.Lock()
	s.db = db
	s.mu.Unlock()
}

// corpus builds n docs cycling through a small vocabulary, with enough
// term variety per doc that sampling reconstructs the distribution.
func corpus(words []string, n int) [][]string {
	docs := make([][]string, n)
	for i := range docs {
		doc := make([]string, 12)
		for j := range doc {
			doc[j] = words[(i+j)%len(words)]
		}
		docs[i] = doc
	}
	return docs
}

func TestRefreshDriftHotSwap(t *testing.T) {
	medical := []string{"heart", "cancer", "patient", "drug", "clinic", "therapy", "nurse", "dose"}
	space := []string{"galaxy", "star", "planet", "orbit", "telescope", "comet", "nebula", "cosmos"}
	sports := []string{"football", "league", "goal", "match", "coach", "season", "striker", "stadium"}
	lexicon := append(append(append([]string{}, medical...), space...), sports...)

	m := New(Options{
		SampleSize:    40,
		SeedLexicon:   lexicon,
		Seed:          1,
		KeepStopwords: true,
		NoStemming:    true,
		// Caches stay ON: the post-swap assertions prove the rebuild
		// invalidated them.
	})
	drifty := &swappableDB{name: "drifty", db: NewLocalDatabaseFromTerms("drifty", corpus(medical, 80))}
	if err := m.AddDatabase(drifty, "Health"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDatabase(NewLocalDatabaseFromTerms("stable", corpus(space, 80)), "Science"); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}

	const qSports = "football stadium goal"
	const qSpace = "galaxy telescope"

	driftyResults := func(q string) (selected bool, results int) {
		resp, err := m.SearchExplained(context.Background(), q, 2, 5)
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		for _, s := range resp.Selections {
			if s.Database == "drifty" {
				selected = true
			}
		}
		for _, r := range resp.Results {
			if r.Database == "drifty" {
				results++
			}
		}
		return selected, results
	}

	// Pre-swap: drifty's summary is medical; a sports query must not
	// rank it. Issue it twice so the answer is sitting in the result
	// cache when the rebuild lands.
	if sel, res := driftyResults(qSports); sel || res != 0 {
		t.Fatalf("pre-swap sports query reached drifty (selected=%v results=%d); summary should be medical", sel, res)
	}
	driftyResults(qSports)

	// The live collection changes out from under the stored summary.
	drifty.swap(NewLocalDatabaseFromTerms("drifty", corpus(sports, 80)))

	// Steady query load across the swap: any failed query fails the
	// test.
	var loadErrs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.SearchExplained(context.Background(), qSpace, 2, 3); err != nil {
					loadErrs.Add(1)
				}
			}
		}()
	}

	mgr := refresh.NewManager(m, refresh.Options{
		Threshold:  0.45,
		SampleDocs: 40,
		Metrics:    m.Metrics(),
	})
	swapped, err := mgr.RunOnce(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if swapped != 1 {
		t.Fatalf("RunOnce swapped %d nodes, want 1 (drifty)", swapped)
	}
	if got := mgr.Generation(); got != 1 {
		t.Errorf("Generation = %d, want 1", got)
	}
	if n := loadErrs.Load(); n != 0 {
		t.Errorf("%d queries failed during the hot swap, want 0", n)
	}
	for _, st := range mgr.Snapshot() {
		switch st.Database {
		case "drifty":
			if st.Drifts != 1 || st.Swaps != 1 {
				t.Errorf("drifty state: %+v, want 1 drift and 1 swap", st)
			}
		case "stable":
			if st.Drifts != 0 || st.Swaps != 0 {
				t.Errorf("stable node drifted: %+v", st)
			}
		}
	}

	// Post-swap: the same sports query — cached before the swap — must
	// now select drifty and return its documents. This pins both the
	// re-summarization (selection reflects the sports vocabulary) and
	// the cache invalidation (the cached empty answer is gone).
	if sel, res := driftyResults(qSports); !sel || res == 0 {
		t.Fatalf("post-swap sports query missed drifty (selected=%v results=%d); rebuilt summary not serving", sel, res)
	}

	// A second pass over the now-consistent state must swap nothing.
	if swapped, err := mgr.RunOnce(context.Background()); err != nil || swapped != 0 {
		t.Fatalf("second RunOnce = (%d, %v), want (0, nil)", swapped, err)
	}
}
