// Package repro implements shrinkage-based content summaries for
// distributed text database selection, reproducing Ipeirotis & Gravano,
// "When one Sample is not Enough: Improving Text Database Selection
// Using Shrinkage" (SIGMOD 2004).
//
// A Metasearcher mediates queries over many text databases that expose
// only a search interface (match counts + ranked document retrieval).
// For each registered database it builds an approximate content summary
// by query-based sampling, classifies the database into a topic
// hierarchy (via probing, or a caller-provided category), improves the
// summary by "shrinking" it towards the summaries of topically related
// databases, and at query time ranks the databases with a selection
// algorithm (bGlOSS, CORI, or LM) — adaptively deciding per query and
// per database whether the shrunk summary should be used.
//
// Quick start:
//
//	m := repro.New(repro.Options{})
//	m.Train("Health", healthDocs)             // classifier examples
//	m.AddDatabase(db, "")                     // "" = classify by probing
//	if err := m.BuildSummaries(); err != nil { ... }
//	for _, sel := range m.Select("blood hypertension treatment", 5) {
//		fmt.Println(sel.Database, sel.Score)
//	}
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/freqest"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/resilience"
	"repro/internal/sampling"
	"repro/internal/selection"
	"repro/internal/summary"
	"repro/internal/telemetry"
	"repro/internal/textproc"
	"repro/internal/zipf"
)

// SearchableDatabase is the interface a remote text database must
// implement: exactly what an uncooperative web database's search form
// exposes. Implementations must be safe for concurrent use.
type SearchableDatabase interface {
	// Name identifies the database.
	Name() string
	// Query evaluates a conjunctive query, returning the total number
	// of matching documents and the top-ranked matches (at most limit).
	Query(terms []string, limit int) (matches int, ids []int)
	// Fetch returns the text terms of one document.
	Fetch(id int) []string
}

// ContextSearchableDatabase extends SearchableDatabase with
// cancellable, fallible calls — the honest shape of a database at the
// other end of a network. The pipeline prefers these methods when a
// database implements them: BuildSummariesContext cancellation aborts
// in-flight probes, and SearchContext treats a query error as "node
// unreachable" (the database is skipped, like a missing handle).
// The plain SearchableDatabase methods remain the compatibility shim
// for in-process databases, which cannot fail.
type ContextSearchableDatabase interface {
	SearchableDatabase
	// QueryContext is Query under a context.
	QueryContext(ctx context.Context, terms []string, limit int) (matches int, ids []int, err error)
	// FetchContext is Fetch under a context.
	FetchContext(ctx context.Context, id int) ([]string, error)
}

// Options configures a Metasearcher. The zero value is usable.
type Options struct {
	// Categories is the topic hierarchy as nested specs. Nil uses the
	// built-in 72-node ODP-style hierarchy the paper evaluates with.
	Categories *CategorySpec
	// SampleSize is the query-based sampling target (default 300, as in
	// the paper).
	SampleSize int
	// Sampler selects the sampling strategy: "qbs" (default) or "fps".
	Sampler string
	// Scorer selects the selection algorithm: "cori" (default),
	// "bgloss", "lm", or "redde" (ReDDE pools the sample documents and
	// estimates relevant-document counts; it bypasses the shrinkage
	// machinery and retains the raw samples in memory).
	Scorer string
	// FrequencyEstimation enables the Appendix A absolute-frequency
	// refinement (default true; set DisableFrequencyEstimation to turn off).
	DisableFrequencyEstimation bool
	// Adaptive applies shrinkage per query/database only under score
	// uncertainty (default true; set UniversalShrinkage to always use
	// shrunk summaries instead).
	UniversalShrinkage bool
	// SeedLexicon supplies bootstrap words for QBS; nil uses a small
	// built-in English word list.
	SeedLexicon []string
	// Analyzer options for query/document text (stopword removal and
	// stemming on by default, matching the paper's configuration).
	KeepStopwords bool
	NoStemming    bool
	// Parallelism bounds how many databases BuildSummaries samples
	// concurrently (sampling a remote database is latency-bound).
	// 0 or 1 samples sequentially. Results are independent of the
	// setting: every database derives its own random stream.
	Parallelism int
	// Seed drives sampling and Monte-Carlo randomness.
	Seed int64
	// Observer receives structured trace events from the whole pipeline
	// (sampling rounds, classification probing, EM convergence, adaptive
	// decisions, search fan-out). Nil disables tracing at zero cost; see
	// telemetry.Capture (tests) and telemetry.NewLogObserver (slog).
	Observer telemetry.Observer
	// Logger, when non-nil, receives pipeline progress and warnings
	// (databases sampled, dead backends skipped during Search).
	Logger *slog.Logger
	// Metrics is the registry pipeline counters, gauges, and latency
	// histograms are recorded in. Nil creates a private registry,
	// retrievable via Metasearcher.Metrics; pass a shared registry to
	// aggregate several metasearchers into one /metrics endpoint.
	Metrics *telemetry.Registry
	// AuditSize bounds the in-memory ring of per-query audit records
	// (audit.QueryRecord: selection scores, shrinkage verdicts, per-node
	// costs, merged-result provenance) retrievable via Audit and served
	// at /debug/queries. 0 selects audit.DefaultCapacity; negative
	// disables query auditing entirely.
	AuditSize int
	// AuditLog, when non-nil, additionally receives every audit record
	// as one JSON line (JSONL) — a durable selection audit trail.
	AuditLog io.Writer
	// Resilience tunes the search fan-out's fault tolerance: deadline
	// budget, hedging, and per-node circuit breakers. The zero value
	// selects sensible defaults (breakers on, hedging auto-tuned from
	// the observed wire p95, no overall deadline).
	Resilience ResilienceOptions
	// Cache tunes the query-path caches. The zero value enables both
	// tiers with defaults; set Cache.Disable to turn caching off.
	Cache CacheConfig
}

// CacheConfig tunes the Metasearcher's two query-path cache tiers.
//
// The selection tier caches the expensive adaptive-selection decision
// (per-database Monte-Carlo sampling over the score posterior), keyed
// by the analyzed query terms, the scorer, and k. Selection depends
// only on those inputs and the current summaries, so entries stay valid
// until the summaries change — Save, Load, and BuildSummaries bump the
// cache generation, staling every entry at once.
//
// The result tier additionally caches the merged document ranking,
// keyed by the selection key plus perDB. Results also depend on the
// remote databases' live contents, which the metasearcher cannot
// observe changing, so this tier gets a short TTL rather than relying
// on generation bumps alone. Concurrent identical queries collapse onto
// one in-flight search (singleflight).
type CacheConfig struct {
	// Disable turns both cache tiers off.
	Disable bool
	// Size is the per-tier entry capacity (default 1024).
	Size int
	// TTL bounds a selection entry's life (default 10m). Negative
	// disables expiry (generation bumps still invalidate).
	TTL time.Duration
	// ResultTTL bounds a result entry's life (default 30s; negative
	// disables expiry).
	ResultTTL time.Duration
	// Shards is the number of independently locked cache segments
	// (default 16).
	Shards int
}

// ttl resolves a configured TTL: 0 selects def, negative means none.
func ttlOrDefault(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	if d < 0 {
		return 0
	}
	return d
}

// ResilienceOptions tunes how SearchContext fans out over selected
// databases when some of them are slow, overloaded, or down.
type ResilienceOptions struct {
	// DeadlineBudget bounds the whole fan-out: every node call runs
	// under a context that expires this long after the fan-out starts,
	// so one hung node cannot stall the merged answer. 0 = no budget
	// (the caller's context still applies).
	DeadlineBudget time.Duration
	// HedgeAfter is the latency threshold past which a node call is
	// hedged with a second identical request (first success wins, loser
	// cancelled). 0 = auto: the observed p95 of recent wire requests
	// (wire_request_latency_window), floored at HedgeFloor. Negative
	// disables hedging.
	HedgeAfter time.Duration
	// HedgeFloor is the minimum auto-derived hedge threshold (default
	// 250ms): with too few observations the p95 is noise, and hedging
	// below the floor would double traffic for no tail to cut.
	HedgeFloor time.Duration
	// Concurrency bounds how many node queries run at once (0 = all
	// selected databases in parallel).
	Concurrency int
	// DisableBreakers turns the per-node circuit breakers off: every
	// selected database is always tried.
	DisableBreakers bool
	// DisableRetryBudget turns the cluster-wide retry/hedge budget off:
	// retries and hedges launch whenever their own logic wants them,
	// with no cap on amplification.
	DisableRetryBudget bool
	// RetryBudgetRatio is the fraction of recent successful volume that
	// may be spent on retries and hedges (default 0.2);
	// RetryBudgetBurst is the bucket's cap and starting balance
	// (default 10). See resilience.BudgetOptions.
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// Breaker tuning (zero values select the resilience package
	// defaults: window 20, threshold 0.5, min samples 3, cooldown 5s).
	BreakerWindow           int
	BreakerFailureThreshold float64
	BreakerMinSamples       int
	BreakerCooldown         time.Duration
}

// CategorySpec mirrors a topic-hierarchy node for Options.
type CategorySpec struct {
	Name     string
	Children []*CategorySpec
}

// ParseHierarchy reads an indentation-structured taxonomy (one category
// per line, one tab or four spaces per level, '#' comments) into a
// CategorySpec for Options.Categories:
//
//	Root
//		Health
//			Diseases
//		Sports
func ParseHierarchy(r io.Reader) (*CategorySpec, error) {
	tree, err := hierarchy.Parse(r)
	if err != nil {
		return nil, err
	}
	var build func(id hierarchy.NodeID) *CategorySpec
	build = func(id hierarchy.NodeID) *CategorySpec {
		c := &CategorySpec{Name: tree.Node(id).Name}
		for _, ch := range tree.Children(id) {
			c.Children = append(c.Children, build(ch))
		}
		return c
	}
	return build(hierarchy.Root), nil
}

// Selection is one ranked database.
type Selection struct {
	// Database is the database's name.
	Database string
	// Score is the selection algorithm's s(q, D).
	Score float64
	// Shrinkage reports whether the shrunk summary was used to score
	// this database for this query.
	Shrinkage bool
}

// Metasearcher is the end-to-end system of the paper. Methods are safe
// for concurrent use after BuildSummaries has returned.
type Metasearcher struct {
	opts     Options
	tree     *hierarchy.Tree
	reg      *telemetry.Registry
	tracer   *telemetry.Tracer
	logger   *slog.Logger    // nil = logging disabled
	audit    *audit.Log         // nil = query auditing disabled
	breakers *resilience.Set    // nil = breakers disabled
	budget   *resilience.Budget // nil = retry/hedge budget disabled
	selCache *cache.Cache       // selection tier; nil = caching disabled
	resCache *cache.Cache       // merged-result tier; nil = caching disabled

	proberMu sync.Mutex
	prober   *resilience.Prober // live health prober; retargeted on topology swaps

	mu       sync.Mutex
	training *classify.TrainingSet
	dbs      []*registeredDB
	// scope, when non-nil, is the set of database names this process
	// actually queries during Search (a cluster shard's slice). Every
	// database still participates in selection — the shrinkage and
	// scoring statistics are collection-wide — but out-of-scope fan-out
	// is skipped. Nil means unscoped (query everything). Set by
	// LoadFiltered.
	scope map[string]bool

	// built state
	classifier *classify.Classifier
	cats       *core.CategorySummaries
	global     *summary.Summary
	built      bool
}

type registeredDB struct {
	name       string
	db         SearchableDatabase // nil when state was loaded from disk
	category   hierarchy.NodeID   // classification to use; -1 = probe
	fixedCat   bool
	unshrunk   *summary.Summary
	shrunk     *core.ShrunkSummary
	assigned   hierarchy.NodeID
	sizeEst    float64
	gamma      float64
	sampleLen  int
	sampleDocs [][]string      // retained only for the ReDDE scorer
	prov       *BuildTelemetry // how the summary was built (persisted)
}

// BuildTelemetry records the provenance of one database's content
// summary: what building it cost and what the EM converged to. It is
// persisted by Save so Load-ed deployments keep it.
type BuildTelemetry struct {
	// SampleQueries is the number of queries the sampler (and its
	// resample probes) sent to the database.
	SampleQueries int
	// EMIterations is the Figure 2 iteration count to convergence.
	EMIterations int
	// Lambdas is the converged mixture-weight vector, uniform component
	// first, the database itself last.
	Lambdas []core.Lambda
}

// New creates a Metasearcher.
func New(opts Options) *Metasearcher {
	var tree *hierarchy.Tree
	if opts.Categories != nil {
		tree = hierarchy.MustNew(toSpec(opts.Categories))
	} else {
		tree = hierarchy.Default()
	}
	if opts.SampleSize == 0 {
		opts.SampleSize = 300
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	registerPipelineMetrics(reg)
	var alog *audit.Log
	if opts.AuditSize >= 0 {
		alog = audit.NewLog(opts.AuditSize)
		alog.SetSink(opts.AuditLog)
	}
	var breakers *resilience.Set
	if !opts.Resilience.DisableBreakers {
		breakers = resilience.NewSet(resilience.BreakerOptions{
			Window:           opts.Resilience.BreakerWindow,
			FailureThreshold: opts.Resilience.BreakerFailureThreshold,
			MinSamples:       opts.Resilience.BreakerMinSamples,
			Cooldown:         opts.Resilience.BreakerCooldown,
		}, reg)
	}
	var budget *resilience.Budget
	if !opts.Resilience.DisableRetryBudget {
		budget = resilience.NewBudget(resilience.BudgetOptions{
			Ratio:   opts.Resilience.RetryBudgetRatio,
			Burst:   opts.Resilience.RetryBudgetBurst,
			Metrics: reg,
		})
	}
	m := &Metasearcher{
		opts:     opts,
		tree:     tree,
		reg:      reg,
		tracer:   telemetry.NewTracer(opts.Observer),
		logger:   opts.Logger,
		audit:    alog,
		breakers: breakers,
		budget:   budget,
		training: &classify.TrainingSet{},
	}
	if !opts.Cache.Disable {
		m.selCache = cache.New(cache.Options{
			Name:     "selection_cache",
			Capacity: opts.Cache.Size,
			Shards:   opts.Cache.Shards,
			TTL:      ttlOrDefault(opts.Cache.TTL, 10*time.Minute),
			Metrics:  reg,
		})
		m.resCache = cache.New(cache.Options{
			Name:     "result_cache",
			Capacity: opts.Cache.Size,
			Shards:   opts.Cache.Shards,
			TTL:      ttlOrDefault(opts.Cache.ResultTTL, 30*time.Second),
			Metrics:  reg,
		})
	}
	return m
}

// InvalidateCaches bumps the query-cache generation, instantly staling
// every cached selection and merged result. Save, Load, and
// BuildSummaries call it automatically; operators may call it directly
// (e.g. when remote database contents are known to have changed under
// an unexpired result entry). O(1) and non-blocking; a no-op when
// caching is disabled.
func (m *Metasearcher) InvalidateCaches() {
	m.selCache.Invalidate()
	m.resCache.Invalidate()
}

// Metrics returns the registry this metasearcher records pipeline
// telemetry in (serve it with telemetry.Registry.Handler, or snapshot
// it for reports). Never nil.
func (m *Metasearcher) Metrics() *telemetry.Registry { return m.reg }

// Breakers returns the per-node circuit-breaker set the search fan-out
// consults (serve its Handler at /debug/breakers). Nil when
// Options.Resilience.DisableBreakers is set — and every resilience.Set
// method is nil-safe, so callers need no guard.
func (m *Metasearcher) Breakers() *resilience.Set { return m.breakers }

// RetryBudget returns the process-wide retry/hedge budget. Pass it to
// the wire clients of remote databases (RemoteDatabaseOptions.Budget)
// so their retries draw from the same bucket as the fan-out's hedges.
// Nil when Options.Resilience.DisableRetryBudget is set — and every
// resilience.Budget method is nil-safe, so callers need no guard.
func (m *Metasearcher) RetryBudget() *resilience.Budget { return m.budget }

// SearchScope returns the database names this process queries during
// Search (sorted), or nil when unscoped — i.e. when it is not a
// cluster shard restricted by LoadFiltered.
func (m *Metasearcher) SearchScope() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scope == nil {
		return nil
	}
	out := make([]string, 0, len(m.scope))
	for name := range m.scope {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StartHealthProbes launches a background prober that pings the
// /v1/health endpoint of every registered remote database whose breaker
// is not closed, feeding results back into the breakers: an open
// breaker closes as soon as its node recovers, without waiting for live
// query traffic. A ReplicatedDatabase contributes one probe target per
// replica (keyed "name@addr", the same keys its per-replica breakers
// use) plus a database-level target that succeeds while any replica
// does. interval <= 0 selects the default (2s). The returned stop
// function halts the prober (idempotent). With breakers disabled or no
// remote databases registered it is a no-op.
func (m *Metasearcher) StartHealthProbes(interval time.Duration) (stop func()) {
	if m.breakers == nil {
		return func() {}
	}
	m.mu.Lock()
	targets := m.probeTargetsLocked()
	m.mu.Unlock()
	if len(targets) == 0 {
		return func() {}
	}
	p := resilience.NewProber(m.breakers, targets, resilience.ProberOptions{
		Interval: interval,
		Metrics:  m.reg,
	})
	m.proberMu.Lock()
	m.prober = p
	m.proberMu.Unlock()
	p.Start()
	return func() {
		m.proberMu.Lock()
		if m.prober == p {
			m.prober = nil
		}
		m.proberMu.Unlock()
		p.Stop()
	}
}

// probeTargetsLocked derives the current probe-target list from the
// registered databases (m.mu held). Called at prober start and again
// after every topology swap, so swapped-in replicas are probed and
// swapped-out ones are not.
func (m *Metasearcher) probeTargetsLocked() []resilience.ProbeTarget {
	var targets []resilience.ProbeTarget
	for _, r := range m.dbs {
		switch db := r.db.(type) {
		case *RemoteDatabase:
			targets = append(targets, resilience.ProbeTarget{
				Name: r.name,
				Ping: db.Ping,
			})
		case *ReplicatedDatabase:
			targets = append(targets, resilience.ProbeTarget{
				Name: r.name,
				Ping: db.Ping,
			})
			targets = append(targets, db.ProbeTargets()...)
		}
	}
	return targets
}

// refreshProbeTargets re-derives the prober's target list (no-op when
// no prober is running).
func (m *Metasearcher) refreshProbeTargets() {
	m.proberMu.Lock()
	p := m.prober
	m.proberMu.Unlock()
	if p == nil {
		return
	}
	m.mu.Lock()
	targets := m.probeTargetsLocked()
	m.mu.Unlock()
	p.SetTargets(targets)
}

// hedgeThreshold resolves the hedge-latency threshold for one search:
// the configured HedgeAfter, or (when 0) the observed p95 of recent
// wire requests floored at HedgeFloor. Negative disables hedging.
func (m *Metasearcher) hedgeThreshold() time.Duration {
	r := m.opts.Resilience
	if r.HedgeAfter != 0 {
		if r.HedgeAfter < 0 {
			return 0
		}
		return r.HedgeAfter
	}
	floor := r.HedgeFloor
	if floor <= 0 {
		floor = 250 * time.Millisecond
	}
	p95 := m.reg.Window("wire_request_latency_window", 0).Quantile(0.95)
	d := time.Duration(p95 * float64(time.Second))
	if d < floor {
		return floor
	}
	return d
}

// Audit returns the per-query audit trail: one audit.QueryRecord per
// Search call, newest last, holding the selection evidence (scores,
// shrinkage verdicts with λ mixtures, Monte-Carlo statistics), per-node
// call costs, and merged-result provenance. Serve it over HTTP with
// Audit().Handler() (the /debug/queries endpoints), or inspect it with
// Last/Get/Recent. Nil when Options.AuditSize is negative — and every
// audit.Log method is nil-safe, so callers need no guard.
func (m *Metasearcher) Audit() *audit.Log { return m.audit }

// registerPipelineMetrics pre-creates every pipeline series (with its
// help text) so an exposition endpoint shows the full schema (at zero)
// before traffic arrives. The names are documented in DESIGN.md §8; the
// metric-hygiene test fails any series registered without help.
func registerPipelineMetrics(reg *telemetry.Registry) {
	for _, c := range []struct{ name, help string }{
		{"build_runs_total", "BuildSummaries pipeline runs (sample, classify, shrink)."},
		{"sampling_queries_total", "Query-based-sampling probe queries sent to databases."},
		{"sampling_docs_fetched_total", "Documents fetched while sampling database content."},
		{"classify_probes_total", "Classification probe queries sent during hierarchy placement."},
		{"em_runs_total", "EM shrinkage estimations run (one per database)."},
		{"em_iterations_total", "Total EM iterations across all shrinkage runs."},
		{"adaptive_shrinkage_applied_total", "Per-query decisions that used the shrunk summary."},
		{"adaptive_shrinkage_skipped_total", "Per-query decisions that kept the unshrunk summary."},
		{"adaptive_mc_samples_total", "Monte-Carlo samples drawn for adaptive shrinkage decisions."},
		{"adaptive_queries_total", "Queries that went through the adaptive shrinkage decision."},
		{"adaptive_queries_shrunk_total", "Queries whose selection used at least one shrunk summary."},
		{"select_requests_total", "Database-selection requests (Select and the search pipeline)."},
		{"search_requests_total", "Search requests through SearchExplained/SearchContext."},
		{"search_db_unavailable_total", "Selected databases skipped because no live handle existed."},
		{"search_results_merged_total", "Documents merged into final rankings across all searches."},
		{"search_hedges_total", "Hedge requests launched against slow database calls."},
		{"search_hedge_wins_total", "Hedge requests that beat their primary attempt."},
		{"search_breaker_open_total", "Database calls short-circuited by an open breaker."},
		{"search_sheds_total", "Database call attempts shed by a node's admission gate (429)."},
		{"search_out_of_scope_total", "Selected databases skipped as owned by another cluster shard."},
		{"replica_failover_total", "Database calls that failed over to a non-preferred replica."},
		{"replica_exhausted_total", "Database calls that ran out of replicas entirely."},
		{"concurrency_tasks_started_total", "Tasks started by the pipeline's bounded worker pools."},
		{"concurrency_tasks_failed_total", "Worker-pool tasks that returned an error."},
	} {
		reg.Counter(c.name)
		reg.Describe(c.name, c.help)
	}
	for _, g := range []struct{ name, help string }{
		{"build_databases", "Databases covered by the latest BuildSummaries run."},
		{"search_inflight", "Search requests currently inside SearchExplained."},
		{"em_iterations", "EM iterations of the most recent shrinkage run."},
		{"sampling_vocab_size", "Distinct terms in the most recently sampled vocabulary."},
	} {
		reg.Gauge(g.name)
		reg.Describe(g.name, g.help)
	}
	for _, h := range []struct{ name, help string }{
		{"build_latency", "Wall time of BuildSummaries runs, seconds."},
		{"select_latency", "Latency of database-selection decisions, seconds."},
		{"search_latency", "End-to-end search latency, seconds."},
		{"search_db_latency", "Per-database query-call latency inside the fan-out, seconds."},
		// Per-stage decomposition of search_latency: cache lookup →
		// selection → fan-out → merge. Percentiles export via
		// telemetry.HistogramSnapshot.Quantile.
		{"search_stage_cache_latency", "Search time spent in cache lookup and bookkeeping, seconds."},
		{"search_stage_selection_latency", "Search time spent in database selection, seconds."},
		{"search_stage_fanout_latency", "Search time spent in the parallel database fan-out, seconds."},
		{"search_stage_merge_latency", "Search time spent merging and ranking results, seconds."},
	} {
		reg.Histogram(h.name, nil)
		reg.Describe(h.name, h.help)
	}
	// Sliding-window latency quantiles (p50/p95/p99 of recent requests,
	// where the histograms above accumulate since process start).
	for _, w := range []struct{ name, help string }{
		{"select_latency_window", "Sliding-window p50/p95/p99 of selection latency, seconds."},
		{"search_latency_window", "Sliding-window p50/p95/p99 of search latency, seconds."},
	} {
		reg.Window(w.name, 0)
		reg.Describe(w.name, w.help)
	}
}

// logInfo and logWarn guard the optional logger.
func (m *Metasearcher) logInfo(msg string, args ...interface{}) {
	if m.logger != nil {
		m.logger.Info(msg, args...)
	}
}

func (m *Metasearcher) logWarn(msg string, args ...interface{}) {
	if m.logger != nil {
		m.logger.Warn(msg, args...)
	}
}

func toSpec(c *CategorySpec) hierarchy.Spec {
	s := hierarchy.Spec{Name: c.Name}
	for _, ch := range c.Children {
		s.Children = append(s.Children, toSpec(ch))
	}
	return s
}

// Hierarchy returns the category names in preorder with their depths,
// for display.
func (m *Metasearcher) Hierarchy() []struct {
	Name  string
	Depth int
} {
	out := make([]struct {
		Name  string
		Depth int
	}, 0, m.tree.Len())
	for _, id := range m.tree.All() {
		n := m.tree.Node(id)
		out = append(out, struct {
			Name  string
			Depth int
		}{n.Name, n.Depth})
	}
	return out
}

// Train adds labeled example documents for a category, used to learn
// the classification probes (the role of directory-labeled pages in the
// paper). Must be called before BuildSummaries. Documents are raw text.
func (m *Metasearcher) Train(category string, docs []string) error {
	id, ok := m.tree.Lookup(category)
	if !ok {
		return fmt.Errorf("repro: unknown category %q", category)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range docs {
		m.training.Add(id, m.analyze(d))
	}
	m.built = false
	return nil
}

// AddDatabase registers a database. category may name a hierarchy node
// (the paper's "existing classification" case, e.g. a web directory) or
// be empty, in which case the database is classified automatically by
// query probing during BuildSummaries.
func (m *Metasearcher) AddDatabase(db SearchableDatabase, category string) error {
	r := &registeredDB{name: db.Name(), db: db, category: -1}
	if category != "" {
		id, ok := m.tree.Lookup(category)
		if !ok {
			return fmt.Errorf("repro: unknown category %q", category)
		}
		r.category = id
		r.fixedCat = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.dbs {
		if existing.name == db.Name() {
			return fmt.Errorf("repro: database %q already registered", db.Name())
		}
	}
	m.dbs = append(m.dbs, r)
	m.built = false
	return nil
}

// analyze runs the configured text pipeline.
func (m *Metasearcher) analyze(text string) []string {
	return textproc.Analyze(text, textproc.Options{
		RemoveStopwords: !m.opts.KeepStopwords,
		Stem:            !m.opts.NoStemming,
		MinLength:       2,
	})
}

// analyzeTerms filters pre-tokenized terms (database documents arrive
// as terms via Fetch).
func (m *Metasearcher) analyzeTerms(terms []string) []string {
	return textproc.Filter(terms, textproc.Options{
		RemoveStopwords: !m.opts.KeepStopwords,
		Stem:            !m.opts.NoStemming,
		MinLength:       2,
	})
}

// BuildSummaries samples every registered database, classifies it,
// estimates sizes and frequencies, and computes the shrunk content
// summaries. It must be called after registering databases and before
// Select.
func (m *Metasearcher) BuildSummaries() error {
	return m.BuildSummariesContext(context.Background())
}

// BuildSummariesContext is BuildSummaries under a context. Cancelling
// ctx aborts the build: samplers stop between probes, and databases
// implementing ContextSearchableDatabase have their in-flight remote
// calls cancelled too.
func (m *Metasearcher) BuildSummariesContext(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.dbs) == 0 {
		return errors.New("repro: no databases registered")
	}
	t0 := time.Now()
	buildSpan := m.tracer.Span("build", telemetry.Int("databases", len(m.dbs)))
	defer buildSpan.End()
	defer m.reg.Histogram("build_latency", nil).ObserveSince(t0)
	m.reg.Counter("build_runs_total").Inc()
	m.reg.Gauge("build_databases").Set(float64(len(m.dbs)))

	needProbing := false
	for _, r := range m.dbs {
		if !r.fixedCat {
			needProbing = true
		}
	}
	useFPS := strings.EqualFold(m.opts.Sampler, "fps")
	if needProbing || useFPS {
		if m.training.Len() == 0 {
			return errors.New("repro: probe classification requires Train examples")
		}
		cls, err := classify.Train(m.tree, m.training, classify.Options{})
		if err != nil {
			return err
		}
		m.classifier = cls
	}

	lexicon := m.opts.SeedLexicon
	if lexicon == nil {
		// Bootstrap words: the built-in common-English list plus the
		// most frequent training-set words, which provably occur in
		// on-topic text.
		lexicon = defaultLexicon()
		lexicon = append(lexicon, m.training.TopWords(300)...)
	}

	if useFPS && m.classifier == nil {
		return errors.New("repro: FPS requires Train examples")
	}

	// buildOne samples and summarizes one database. Each database's
	// randomness is derived from its own seed, so results are identical
	// under any Parallelism setting. Sampling a remote database is
	// latency-bound, which is where the concurrency pays off.
	buildOne := func(i int) error {
		r := m.dbs[i]
		var sample *sampling.Sample
		var probed hierarchy.NodeID
		var err error
		samplerName := "qbs"
		if useFPS {
			samplerName = "fps"
		}
		sampleSpan := buildSpan.Child("sample",
			telemetry.String("db", r.name), telemetry.String("sampler", samplerName))
		// Remote probes issued under sctx carry the build trace on the
		// wire, so a dbnode's sampling-time spans join this build's trace.
		sctx := telemetry.ContextWithSpan(ctx, sampleSpan)
		searcher := &dbSearcher{m: m, db: r.db, ctx: sctx}
		if useFPS {
			sample, probed, err = sampling.FPS(sctx, searcher, sampling.FPSConfig{
				Classifier: m.classifier,
				Span:       sampleSpan,
				Metrics:    m.reg,
			})
			sampleSpan.End(queriesDocsAttrs(sample)...)
		} else {
			sample, err = sampling.QBS(sctx, searcher, sampling.QBSConfig{
				TargetDocs:  m.opts.SampleSize,
				SeedLexicon: lexicon,
				Seed:        m.opts.Seed + int64(i),
				Span:        sampleSpan,
				Metrics:     m.reg,
			})
			sampleSpan.End(queriesDocsAttrs(sample)...)
			if err == nil && !r.fixedCat {
				classifySpan := buildSpan.Child("classify", telemetry.String("db", r.name))
				probed = m.classifier.ClassifyTraced(searcher, classifySpan, m.reg)
				classifySpan.End(telemetry.String("category", m.tree.PathString(probed)))
			}
		}
		if err != nil {
			return fmt.Errorf("sampling %s: %w", r.name, err)
		}

		raw := summary.FromSample(sample.Docs)
		r.sampleLen = raw.SampleSize
		r.prov = &BuildTelemetry{SampleQueries: sample.Queries}
		m.reg.Gauge("sampling_vocab_size").Set(float64(raw.Len()))
		m.logInfo("sampled database",
			"db", r.name, "sampler", samplerName,
			"queries", sample.Queries, "docs", len(sample.Docs), "vocab", raw.Len())
		if strings.EqualFold(m.opts.Scorer, "redde") {
			r.sampleDocs = sample.Docs
		}
		est, errFit := freqest.FitCheckpoints(sample.Checkpoints)
		size, errSize := freqest.EstimateSize(sample, raw)
		if errFit != nil || errSize != nil {
			size = raw.NumDocs
		}
		r.sizeEst = size
		r.gamma = zipf.FreqPowerLawGamma(est.LawAt(size).Alpha)
		if !m.opts.DisableFrequencyEstimation && errFit == nil {
			r.unshrunk = freqest.Apply(raw, est, size)
		} else {
			r.unshrunk = raw
		}
		if r.fixedCat {
			r.assigned = r.category
		} else {
			r.assigned = probed
		}
		return nil
	}
	if err := forEachConcurrently(len(m.dbs), m.opts.Parallelism, m.reg, buildOne); err != nil {
		return err
	}

	classified := make([]core.Classified, len(m.dbs))
	for i, r := range m.dbs {
		classified[i] = core.Classified{Name: r.name, Category: r.assigned, Sum: r.unshrunk}
	}
	m.cats = core.BuildCategorySummaries(m.tree, classified, core.SizeWeighted)
	for i, r := range m.dbs {
		shrinkSpan := buildSpan.Child("shrink", telemetry.String("db", r.name))
		r.shrunk = core.Shrink(m.cats, classified[i], core.ShrinkOptions{
			Span:    shrinkSpan,
			Metrics: m.reg,
		})
		shrinkSpan.End(telemetry.Int("em_iterations", r.shrunk.EMIterations()))
		r.prov.EMIterations = r.shrunk.EMIterations()
		r.prov.Lambdas = r.shrunk.Lambdas()
	}
	m.global = m.cats.Summary(hierarchy.Root)
	m.built = true
	// Fresh summaries: any cached selection or result was derived from
	// the previous ones and must not outlive them.
	m.InvalidateCaches()
	m.logInfo("summaries built", "databases", len(m.dbs), "elapsed", time.Since(t0))
	return nil
}

// queriesDocsAttrs annotates a sample span's end event (nil-tolerant:
// sampling may have failed).
func queriesDocsAttrs(s *sampling.Sample) []telemetry.Attr {
	if s == nil {
		return nil
	}
	return []telemetry.Attr{
		telemetry.Int("queries", s.Queries),
		telemetry.Int("docs", len(s.Docs)),
	}
}

// scorer resolves the configured base selection algorithm.
func (m *Metasearcher) scorer() selection.Scorer {
	switch strings.ToLower(m.opts.Scorer) {
	case "bgloss":
		return selection.BGloss{}
	case "lm":
		return selection.LM{}
	default:
		return selection.CORI{}
	}
}

// Select ranks the databases for a free-text query and returns the top
// k (possibly fewer: databases indistinguishable from knowing nothing
// about the query are not selected, as in the paper). Repeated Selects
// for the same terms, scorer, and k are served from the selection cache
// until the summaries change (see CacheConfig).
func (m *Metasearcher) Select(query string, k int) ([]Selection, error) {
	sels, _, _, err := m.selectCached(context.Background(), nil, query, k)
	if err != nil {
		return nil, err
	}
	// The cached slice is shared; hand the caller their own copy.
	out := make([]Selection, len(sels))
	copy(out, sels)
	return out, nil
}

// selectionExplain is the selection step's audit evidence: everything
// a QueryRecord needs that only the selection code knows.
type selectionExplain struct {
	terms      []string
	scorer     string
	candidates []audit.Candidate
}

// selectExplained is selectSpanned plus the audit evidence: the
// analyzed terms, the scorer used, and one audit.Candidate per
// registered database (in registration order) carrying the score,
// the shrinkage verdict with its Monte-Carlo statistics, and — when
// shrinkage fired — the λ mixture the shrunk summary was built with.
func (m *Metasearcher) selectExplained(parent *telemetry.Span, query string, k int) ([]Selection, *selectionExplain, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.built {
		return nil, nil, errors.New("repro: BuildSummaries has not been run")
	}
	terms := m.analyze(query)
	if len(terms) == 0 {
		return nil, nil, errors.New("repro: query has no indexable terms")
	}

	t0 := time.Now()
	span := parent.Child("select", telemetry.Int("terms", len(terms)), telemetry.Int("k", k))
	if parent == nil {
		span = m.tracer.Span("select", telemetry.Int("terms", len(terms)), telemetry.Int("k", k))
	}
	m.reg.Counter("select_requests_total").Inc()
	defer m.reg.Histogram("select_latency", nil).ObserveSince(t0)
	defer m.reg.Window("select_latency_window", 0).ObserveSince(t0)

	if strings.EqualFold(m.opts.Scorer, "redde") {
		out, err := m.selectReDDE(terms, k)
		span.End(telemetry.Int("selected", len(out)))
		if err != nil {
			return nil, nil, err
		}
		// ReDDE bypasses the summary machinery: audit evidence is the
		// selected set's scores only (no shrinkage verdicts to explain).
		ex := &selectionExplain{terms: terms, scorer: "ReDDE"}
		for _, s := range out {
			ex.candidates = append(ex.candidates, audit.Candidate{
				Database: s.Database, Score: s.Score, Selected: true,
			})
		}
		return out, ex, nil
	}

	base := m.scorer()
	var ranked []selection.Ranked
	var decisions []selection.Decision
	if m.opts.UniversalShrinkage {
		entries := make([]selection.Entry, len(m.dbs))
		for i, r := range m.dbs {
			entries[i] = selection.Entry{Name: r.name, View: r.shrunk}
		}
		ctx := selection.NewContext(terms, entries, m.global)
		var scores []float64
		ranked, scores = selection.RankWithScores(base, terms, entries, ctx)
		decisions = make([]selection.Decision, len(m.dbs))
		m.reg.Counter("adaptive_shrinkage_applied_total").Add(int64(len(m.dbs)))
		for i := range decisions {
			decisions[i].Shrinkage = true
			decisions[i].Score = scores[i]
		}
	} else {
		adbs := make([]*selection.DB, len(m.dbs))
		for i, r := range m.dbs {
			adbs[i] = &selection.DB{
				Name:     r.name,
				Unshrunk: r.unshrunk,
				Shrunk:   r.shrunk,
				Gamma:    r.gamma,
				Size:     int(r.sizeEst),
			}
		}
		adaptive := &selection.Adaptive{Base: base, Opts: selection.AdaptiveOptions{
			Seed:    m.opts.Seed,
			Span:    span,
			Metrics: m.reg,
		}}
		ranked, decisions = adaptive.Rank(terms, adbs, m.global)
	}

	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Selection, 0, k)
	selected := make(map[string]bool, k)
	for _, r := range ranked[:k] {
		out = append(out, Selection{
			Database:  r.Name,
			Score:     r.Score,
			Shrinkage: decisions[r.Index].Shrinkage,
		})
		selected[r.Name] = true
	}
	ex := &selectionExplain{
		terms:      terms,
		scorer:     base.Name(),
		candidates: make([]audit.Candidate, len(m.dbs)),
	}
	for i, r := range m.dbs {
		d := decisions[i]
		c := audit.Candidate{
			Database:  r.name,
			Score:     d.Score,
			Selected:  selected[r.name],
			Shrinkage: d.Shrinkage,
			MCMean:    d.Mean,
			MCStdDev:  d.StdDev,
			MCSamples: d.Combos,
		}
		if d.Shrinkage && r.shrunk != nil {
			for _, l := range r.shrunk.Lambdas() {
				c.Lambdas = append(c.Lambdas, audit.Lambda{Component: l.Component, Weight: l.Weight})
			}
		}
		ex.candidates[i] = c
	}
	span.End(telemetry.Int("selected", len(out)))
	return out, ex, nil
}

// selectReDDE ranks with the ReDDE algorithm (Si & Callan) over the
// pooled sample documents — the selection baseline the paper names as
// future work to combine with shrinkage. Requires summaries built with
// Options.Scorer == "redde" (so sample documents were retained) and a
// metasearcher that was built (not loaded: Save does not persist raw
// sample documents).
func (m *Metasearcher) selectReDDE(terms []string, k int) ([]Selection, error) {
	samples := make([]selection.ReDDESample, len(m.dbs))
	for i, r := range m.dbs {
		if r.sampleDocs == nil && r.sampleLen > 0 {
			return nil, errors.New(`repro: ReDDE needs retained samples; build with Options.Scorer = "redde" (Load-ed state cannot be used)`)
		}
		samples[i] = selection.ReDDESample{Name: r.name, Docs: r.sampleDocs, Size: r.sizeEst}
	}
	redde, err := selection.NewReDDE(samples, 0)
	if err != nil {
		return nil, err
	}
	ranked := redde.Rank(terms)
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Selection, 0, k)
	for _, r := range ranked[:k] {
		out = append(out, Selection{Database: r.Name, Score: r.Score})
	}
	return out, nil
}

// DatabaseInfo describes one registered database after BuildSummaries.
type DatabaseInfo struct {
	Name           string
	Category       string  // assigned classification (path string)
	EstimatedSize  float64 // sample-resample |D̂|
	SampleSize     int
	SummaryWords   int // unshrunk vocabulary size
	MixtureWeights []struct {
		Component string
		Weight    float64
	}
	// SampleQueries and EMIterations are the build provenance: queries
	// the sampler issued and Figure 2 EM iterations to convergence.
	// Both survive a Save/Load round trip (zero when loaded from a save
	// file that predates telemetry persistence).
	SampleQueries int
	EMIterations  int
}

// Info reports the built state of a database.
func (m *Metasearcher) Info(name string) (DatabaseInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.dbs {
		if r.name != name {
			continue
		}
		if !m.built {
			return DatabaseInfo{}, errors.New("repro: BuildSummaries has not been run")
		}
		info := DatabaseInfo{
			Name:          name,
			Category:      m.tree.PathString(r.assigned),
			EstimatedSize: r.sizeEst,
			SampleSize:    r.sampleLen,
			SummaryWords:  r.unshrunk.Len(),
		}
		lambdas := r.shrunk.Lambdas()
		if r.prov != nil {
			info.SampleQueries = r.prov.SampleQueries
			info.EMIterations = r.prov.EMIterations
			// Prefer the persisted λ vector: it is the provenance of the
			// deployed summaries even if a re-run would converge equally.
			if len(r.prov.Lambdas) > 0 {
				lambdas = r.prov.Lambdas
			}
		} else {
			info.EMIterations = r.shrunk.EMIterations()
		}
		for _, l := range lambdas {
			info.MixtureWeights = append(info.MixtureWeights, struct {
				Component string
				Weight    float64
			}{l.Component, l.Weight})
		}
		return info, nil
	}
	return DatabaseInfo{}, fmt.Errorf("repro: unknown database %q", name)
}

// dbSearcher adapts a SearchableDatabase to the internal sampling and
// classification interfaces, applying the text pipeline to fetched
// documents. When the database implements ContextSearchableDatabase
// the context-aware methods are used, so remote calls can fail softly
// and are cancelled with the build; plain databases fall back to the
// infallible methods after a cancellation check.
type dbSearcher struct {
	m   *Metasearcher
	db  SearchableDatabase
	ctx context.Context // the build's context (for MatchCount, which has no ctx parameter)
}

func (s *dbSearcher) Query(ctx context.Context, terms []string, limit int) (int, []index.DocID, error) {
	var matches int
	var ids []int
	if cdb, ok := s.db.(ContextSearchableDatabase); ok {
		var err error
		matches, ids, err = cdb.QueryContext(ctx, terms, limit)
		if err != nil {
			return 0, nil, err
		}
	} else {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		matches, ids = s.db.Query(terms, limit)
	}
	out := make([]index.DocID, len(ids))
	for i, id := range ids {
		out[i] = index.DocID(id)
	}
	return matches, out, nil
}

func (s *dbSearcher) Fetch(ctx context.Context, id index.DocID) ([]string, error) {
	if cdb, ok := s.db.(ContextSearchableDatabase); ok {
		terms, err := cdb.FetchContext(ctx, int(id))
		if err != nil {
			return nil, err
		}
		return s.m.analyzeTerms(terms), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.m.analyzeTerms(s.db.Fetch(int(id))), nil
}

// MatchCount implements classify.Prober under the build's context.
// A failed remote probe counts zero matches (the classifier treats the
// probe as matching nothing, exactly like a barren query).
func (s *dbSearcher) MatchCount(terms []string) int {
	matches, _, err := s.Query(s.ctx, terms, 0)
	if err != nil {
		return 0
	}
	return matches
}
