package repro

import "sync"

// SearchEvents observes one search's incremental progress: the
// selection as soon as the CORI+shrinkage ranking lands, each fan-out
// node's outcome as it arrives, and the partial merged ranking after
// each. It is the hook the streaming gateway (/v1/search/stream) plugs
// a frame publisher into.
//
// Calls are serialized by the emitter (never concurrent) and ordered:
// Selection once, then for each completed node a NodeResult followed by
// the MergeUpdate reflecting it. Implementations must not block — the
// fan-out worker that completed the node is the goroutine calling —
// and must not retain the slices past the call (they are the
// emitter's snapshots, handed to each observer call fresh).
type SearchEvents interface {
	// Selection delivers the selected database set in rank order,
	// with the analyzed terms and the scorer that ranked them. For a
	// cache-hit or collapsed search this is the only event before the
	// caller's final response: the fan-out it describes already ran.
	Selection(sels []Selection, terms []string, scorer string)
	// NodeResult delivers one selected database's fan-out outcome.
	NodeResult(ev NodeEvent)
	// MergeUpdate delivers the merged ranking over the nodes completed
	// so far, in the final deterministic order (the completed prefix of
	// the eventual answer's evidence).
	MergeUpdate(results []Result)
}

// NodeEvent is one fan-out node's outcome as streamed to observers —
// the streaming twin of audit.NodeCall.
type NodeEvent struct {
	// Database names the selected database.
	Database string
	// Results is how many documents the node returned.
	Results int
	// LatencySeconds is the node call's wall time.
	LatencySeconds float64
	// Error is the node failure, if any ("" = success).
	Error string
	// OutOfScope: the database is owned by another cluster shard.
	// BreakerOpen: the call was short-circuited by its breaker.
	// Unavailable: the node was tried and unreachable (or had no
	// live handle).
	OutOfScope  bool
	BreakerOpen bool
	Unavailable bool
	// Completed of Total fan-out slots have finished (this one
	// included), so clients can render progress.
	Completed int
	Total     int
}

// searchEmitter serializes observer callbacks from concurrent fan-out
// workers and owns the partial-merge state. A nil emitter is inert, so
// the fan-out calls it unconditionally.
type searchEmitter struct {
	obs      SearchEvents
	sels     []Selection
	maxScore float64

	mu       sync.Mutex
	outcomes []nodeOutcome // emitter-owned copies; slots not yet done are zero (ok=false)
	done     int
}

func newSearchEmitter(obs SearchEvents, sels []Selection, maxScore float64) *searchEmitter {
	if obs == nil {
		return nil
	}
	return &searchEmitter{
		obs:      obs,
		sels:     sels,
		maxScore: maxScore,
		outcomes: make([]nodeOutcome, len(sels)),
	}
}

// record publishes one completed fan-out slot: the node event and the
// partial merge over everything completed so far. Emitting under the
// lock keeps NodeResult/MergeUpdate pairs ordered across workers; the
// observer contract (non-blocking) keeps the hold time trivial.
func (em *searchEmitter) record(i int, o nodeOutcome) {
	if em == nil {
		return
	}
	em.mu.Lock()
	defer em.mu.Unlock()
	em.outcomes[i] = o
	em.done++
	c := o.call
	em.obs.NodeResult(NodeEvent{
		Database:       c.Database,
		Results:        c.Results,
		LatencySeconds: c.LatencySeconds,
		Error:          c.Error,
		OutOfScope:     c.OutOfScope,
		BreakerOpen:    c.BreakerOpen,
		Unavailable:    c.Unavailable,
		Completed:      em.done,
		Total:          len(em.outcomes),
	})
	// Zero-value slots are ok=false, so scoring the whole array merges
	// exactly the completed prefix — in the final answer's order.
	em.obs.MergeUpdate(scoreOutcomes(em.sels, em.maxScore, em.outcomes))
}
