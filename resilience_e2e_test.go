package repro

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/resilience"
	"repro/internal/wire"
)

// switchable is an http.Handler whose behavior can be swapped at
// runtime, so a test can build summaries against healthy nodes and then
// flip individual nodes into failure modes without restarting servers
// (a restart would change the address and reset the connection).
type switchable struct {
	h atomic.Pointer[http.Handler]
}

func newSwitchable(h http.Handler) *switchable {
	s := &switchable{}
	s.Set(h)
	return s
}

func (s *switchable) Set(h http.Handler) { s.h.Store(&h) }

func (s *switchable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// chaosNode is one remote database under test control.
type chaosNode struct {
	shard   testShard
	healthy http.Handler
	sw      *switchable
	srv     *httptest.Server
}

// dialChaosNodes starts n switchable (initially healthy) wire servers
// over the first n testbed shards and registers them with m.
func dialChaosNodes(t *testing.T, m *Metasearcher, shards []testShard, opts RemoteDatabaseOptions) []*chaosNode {
	t.Helper()
	nodes := make([]*chaosNode, len(shards))
	for i, s := range shards {
		healthy := wire.NewServer(NewLocalDatabaseFromTerms(s.name, s.docs),
			wire.ServerOptions{Category: s.category, Metrics: m.Metrics()})
		sw := newSwitchable(healthy)
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		rdb, err := DialRemoteDatabase(context.Background(), srv.URL, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &chaosNode{shard: s, healthy: healthy, sw: sw, srv: srv}
	}
	return nodes
}

// nodeCall extracts one database's NodeCall from a query record.
func nodeCall(t *testing.T, rec *audit.QueryRecord, db string) audit.NodeCall {
	t.Helper()
	if rec == nil {
		t.Fatal("no audit record")
	}
	for _, c := range rec.Nodes {
		if c.Database == db {
			return c
		}
	}
	t.Fatalf("audit record has no node call for %s (selected: %v)", db, rec.Selected)
	return audit.NodeCall{}
}

// TestSearchSurvivesChaos is the resilience end-to-end: four remote
// nodes, summaries built while all are healthy, then one node is made
// to hang every request and another to fail every request. The first
// search must still merge the two healthy nodes' results well inside
// the deadline budget, hedging the hung node's call; the failures trip
// the bad nodes' breakers, so the second search short-circuits them
// without touching the network, and /debug/breakers reports the same
// states the audit trail does.
func TestSearchSurvivesChaos(t *testing.T) {
	shards, lexicon := testbedShards(t, 4)

	const budget = 3 * time.Second
	opts := testbedOptions(lexicon)
	opts.Resilience = ResilienceOptions{
		DeadlineBudget: budget,
		HedgeAfter:     30 * time.Millisecond,
		// One failed call trips a node's breaker, and the cooldown is
		// long enough that it stays open for the whole test.
		BreakerMinSamples: 1,
		BreakerCooldown:   time.Minute,
	}
	// The same query runs before and after the chaos is injected; the
	// point is the second fan-out, so the result cache is off.
	opts.Cache.Disable = true
	m := New(opts)
	reg := m.Metrics()
	nodes := dialChaosNodes(t, m, shards, RemoteDatabaseOptions{
		Timeout:     150 * time.Millisecond,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Metrics:     reg,
	})
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}

	// Chaos: node 1 hangs every request (slower than any client
	// timeout), node 2 rejects every request with a transient 503.
	hung, erroring := nodes[1], nodes[2]
	hung.sw.Set(wire.NewFlaky(hung.healthy, wire.FlakyOptions{HangEvery: 1, HangFor: 2 * time.Second}))
	erroring.sw.Set(wire.NewFlaky(erroring.healthy, wire.FlakyOptions{FailureRate: 1, Seed: 7}))

	// Query with a word every shard's documents contain (the testbed's
	// general vocabulary), so selection fans out over all four nodes
	// and both healthy nodes have documents to contribute.
	query := sharedWord(t, shards)

	start := time.Now()
	results, err := m.Search(query, 4, 5)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("search with a hung and an erroring node: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("search returned no results despite two healthy nodes")
	}
	if elapsed >= budget {
		t.Errorf("search took %v, budget is %v: the hung node stalled the fan-out", elapsed, budget)
	}
	for _, r := range results {
		if r.Database == hung.shard.name || r.Database == erroring.shard.name {
			t.Errorf("failed node %s contributed result %+v", r.Database, r)
		}
	}

	rec := m.Audit().Last()
	hungCall := nodeCall(t, rec, hung.shard.name)
	if !hungCall.Hedged {
		t.Errorf("hung node's call was not hedged: %+v", hungCall)
	}
	if !hungCall.Unavailable || hungCall.Error == "" {
		t.Errorf("hung node's call not audited as a failure: %+v", hungCall)
	}
	errCall := nodeCall(t, rec, erroring.shard.name)
	if !errCall.Unavailable || errCall.Error == "" {
		t.Errorf("erroring node's call not audited as a failure: %+v", errCall)
	}
	if errCall.Attempts != erroring.flakyInjected() {
		t.Errorf("erroring node: %d audited attempts, %d injected faults",
			errCall.Attempts, erroring.flakyInjected())
	}
	if got := reg.Counter("search_hedges_total").Value(); got == 0 {
		t.Error("search_hedges_total is zero despite a hung node")
	}

	// Both bad nodes' breakers tripped on the failures above; the next
	// search must short-circuit them without touching the network.
	hungRequests := hung.flakyRequests()
	shortCircuitsBefore := reg.Counter("search_breaker_open_total").Value()
	start = time.Now()
	results, err = m.Search(query, 4, 5)
	elapsed = time.Since(start)
	if err != nil {
		t.Fatalf("search with open breakers: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("second search returned no results")
	}
	if elapsed >= budget {
		t.Errorf("short-circuited search took %v, budget is %v", elapsed, budget)
	}
	if got := hung.flakyRequests(); got != hungRequests {
		t.Errorf("open breaker still sent %d requests to the hung node", got-hungRequests)
	}
	if got := reg.Counter("search_breaker_open_total").Value(); got < shortCircuitsBefore+2 {
		t.Errorf("search_breaker_open_total = %d, want at least %d (both bad nodes short-circuited)",
			got, shortCircuitsBefore+2)
	}
	rec = m.Audit().Last()
	for _, bad := range []*chaosNode{hung, erroring} {
		call := nodeCall(t, rec, bad.shard.name)
		if !call.BreakerOpen || call.BreakerState != "open" {
			t.Errorf("%s: call not audited as breaker-open: %+v", bad.shard.name, call)
		}
		if call.Unavailable {
			t.Errorf("%s: short-circuited call also marked Unavailable: %+v", bad.shard.name, call)
		}
	}

	// /debug/breakers must tell the same story as the audit trail.
	rw := httptest.NewRecorder()
	m.Breakers().Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/breakers", nil))
	var page struct {
		Breakers []resilience.BreakerSnapshot `json:"breakers"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &page); err != nil {
		t.Fatalf("/debug/breakers is not JSON: %v", err)
	}
	states := make(map[string]string, len(page.Breakers))
	for _, b := range page.Breakers {
		states[b.Database] = b.State
	}
	for i, n := range nodes {
		want := "closed"
		if n == hung || n == erroring {
			want = "open"
		}
		if states[n.shard.name] != want {
			t.Errorf("/debug/breakers: node %d (%s) state %q, want %q",
				i, n.shard.name, states[n.shard.name], want)
		}
	}
}

// flakyInjected returns the node's injected-503 count (zero while the
// healthy handler is installed).
func (n *chaosNode) flakyInjected() int64 {
	if f, ok := (*n.sw.h.Load()).(*wire.Flaky); ok {
		return f.Injected()
	}
	return 0
}

// flakyRequests returns how many requests reached the node's fault
// injector.
func (n *chaosNode) flakyRequests() int64 {
	if f, ok := (*n.sw.h.Load()).(*wire.Flaky); ok {
		return f.Requests()
	}
	return 0
}

// sharedWord returns a word from the first shard's first document that
// every shard's corpus contains — a query certain to score (and match
// documents in) every node.
func sharedWord(t *testing.T, shards []testShard) string {
	t.Helper()
	contains := func(s testShard, w string) bool {
		for _, d := range s.docs {
			for _, dw := range d {
				if dw == w {
					return true
				}
			}
		}
		return false
	}
	for _, w := range shards[0].docs[0] {
		everywhere := true
		for _, s := range shards[1:] {
			if !contains(s, w) {
				everywhere = false
				break
			}
		}
		if everywhere {
			return w
		}
	}
	t.Fatal("no word of the first document appears in every shard")
	return ""
}

// TestHealthProbesCloseTrippedBreaker verifies the background prober
// closes an open breaker as soon as its node answers /v1/health again,
// without any live query traffic.
func TestHealthProbesCloseTrippedBreaker(t *testing.T) {
	shards, lexicon := testbedShards(t, 1)
	opts := testbedOptions(lexicon)
	opts.Resilience = ResilienceOptions{
		BreakerMinSamples: 1,
		BreakerCooldown:   time.Millisecond,
	}
	m := New(opts)
	dialChaosNodes(t, m, shards, RemoteDatabaseOptions{Metrics: m.Metrics()})

	// Trip the node's breaker by hand: one recorded failure with
	// MinSamples 1 opens it.
	b := m.Breakers().Get(shards[0].name)
	b.Allow()
	b.Record(false)
	if b.State() != resilience.Open {
		t.Fatalf("breaker state after a failure = %v, want open", b.State())
	}

	stop := m.StartHealthProbes(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for b.State() != resilience.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker still %v after 5s of health probes against a healthy node", b.State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := m.Metrics().Counter("health_probes_total").Value(); got == 0 {
		t.Error("health_probes_total is zero despite the breaker closing")
	}
}

// TestPartialFailureMergeDeterminism pins down the degraded-mode
// contract: when one contributing node dies mid-flight, the merged
// ranking must equal the healthy ranking with exactly that node's
// results removed — same order, same scores — and the audit record's
// transport accounting must reconcile against the injected faults.
func TestPartialFailureMergeDeterminism(t *testing.T) {
	shards, lexicon := testbedShards(t, 3)
	opts := testbedOptions(lexicon)
	// Hedging and breakers off: this test wants exact attempt
	// accounting, so every failure must reach the node. The result cache
	// is off for the same reason — every Search must fan out.
	opts.Resilience = ResilienceOptions{HedgeAfter: -1, DisableBreakers: true}
	opts.Cache.Disable = true
	m := New(opts)
	nodes := dialChaosNodes(t, m, shards, RemoteDatabaseOptions{
		Timeout:     time.Second,
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Metrics:     m.Metrics(),
	})
	if err := m.BuildSummaries(); err != nil {
		t.Fatal(err)
	}

	query := strings.Join([]string{shards[0].docs[0][0], shards[0].docs[0][1]}, " ")
	full, err := m.Search(query, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("healthy search returned no results")
	}

	// Break the node that contributed the top hit, so the survivor
	// ranking provably differs from the full one.
	var victim *chaosNode
	for _, n := range nodes {
		if n.shard.name == full[0].Database {
			victim = n
		}
	}
	flaky := wire.NewFlaky(victim.healthy, wire.FlakyOptions{FailureRate: 1, Seed: 11})
	victim.sw.Set(flaky)

	degraded, err := m.Search(query, 3, 5)
	if err != nil {
		t.Fatalf("search with a failing node: %v", err)
	}
	var want []Result
	for _, r := range full {
		if r.Database != victim.shard.name {
			want = append(want, r)
		}
	}
	if !reflect.DeepEqual(degraded, want) {
		t.Errorf("degraded ranking is not the healthy ranking minus the dead node:\n got: %+v\nwant: %+v",
			degraded, want)
	}

	// Every injected fault is an attempt the audit record accounts for:
	// with retries exhausted and no hedge, attempts == injected 503s.
	call := nodeCall(t, m.Audit().Last(), victim.shard.name)
	if !call.Unavailable || call.Error == "" {
		t.Errorf("victim's call not audited as a failure: %+v", call)
	}
	if call.Attempts != flaky.Injected() {
		t.Errorf("victim: %d audited attempts, %d injected faults", call.Attempts, flaky.Injected())
	}
	if call.Retries != call.Attempts-1 {
		t.Errorf("victim: %d retries for %d attempts", call.Retries, call.Attempts)
	}
}
