// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks of the core machinery. Each
// table/figure benchmark runs the corresponding experiment pipeline on
// a compact testbed and reports the headline metric via b.ReportMetric,
// so `go test -bench=.` both exercises and summarizes the reproduction.
// (The full-scale numbers come from `go run ./cmd/experiments -all`;
// these benches use reduced testbeds to keep the run minutes-long.)
package repro

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/selection"
	"repro/internal/summary"
)

// benchScale is the compact testbed used by the table/figure benches:
// bigger than TestScale (so the phenomena are visible) but far below
// the full evaluation scale.
func benchScale() experiments.Scale {
	sc := experiments.TestScale()
	sc.WebPerLeaf = 2
	sc.WebExtra = 10
	sc.WebMinSize = 100
	sc.WebMaxSize = 600
	sc.TRECPool = 8000
	sc.TRECDatabases = 30
	sc.Queries = 15
	sc.SampleTarget = 100
	sc.GlobalVocab = 3000
	sc.CategoryVocab = 1500
	return sc
}

var benchWorlds struct {
	mu   sync.Mutex
	web  *experiments.World
	trec *experiments.World
	sums map[string]*experiments.DBSummaries
}

func benchWorld(b *testing.B, kind experiments.BedKind) *experiments.World {
	b.Helper()
	benchWorlds.mu.Lock()
	defer benchWorlds.mu.Unlock()
	switch kind {
	case experiments.Web:
		if benchWorlds.web == nil {
			w, err := experiments.BuildWorld(kind, benchScale())
			if err != nil {
				b.Fatal(err)
			}
			benchWorlds.web = w
		}
		return benchWorlds.web
	default:
		if benchWorlds.trec == nil {
			w, err := experiments.BuildWorld(experiments.TREC4, benchScale())
			if err != nil {
				b.Fatal(err)
			}
			benchWorlds.trec = w
		}
		return benchWorlds.trec
	}
}

func benchSummaries(b *testing.B, kind experiments.BedKind, cfg experiments.Config) *experiments.DBSummaries {
	b.Helper()
	w := benchWorld(b, kind)
	benchWorlds.mu.Lock()
	defer benchWorlds.mu.Unlock()
	if benchWorlds.sums == nil {
		benchWorlds.sums = make(map[string]*experiments.DBSummaries)
	}
	key := kind.String() + "/" + cfg.String()
	if s, ok := benchWorlds.sums[key]; ok {
		return s
	}
	s, err := w.BuildSummaries(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchWorlds.sums[key] = s
	return s
}

// BenchmarkTable2MixtureWeights measures the EM computation of the λ
// mixture weights (Table 2) across all Web databases.
func BenchmarkTable2MixtureWeights(b *testing.B) {
	w := benchWorld(b, experiments.Web)
	sums := benchSummaries(b, experiments.Web, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	classified := sums.Classified(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range classified {
			core.Shrink(sums.Cats, classified[j], core.ShrinkOptions{})
		}
	}
	b.ReportMetric(float64(len(classified)), "databases/op")
}

// qualityBench runs the Tables 4-9 pipeline once per iteration and
// reports the shrunk-vs-unshrunk values of one metric.
func qualityBench(b *testing.B, metric string) {
	w := benchWorld(b, experiments.Web)
	b.ResetTimer()
	var row experiments.QualityRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = w.Quality(experiments.QBS, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	cell := map[string][2]float64{
		"wr":   {row.WR.Shrunk, row.WR.Unshrunk},
		"ur":   {row.UR.Shrunk, row.UR.Unshrunk},
		"wp":   {row.WP.Shrunk, row.WP.Unshrunk},
		"up":   {row.UP.Shrunk, row.UP.Unshrunk},
		"srcc": {row.SRCC.Shrunk, row.SRCC.Unshrunk},
		"kl":   {row.KL.Shrunk, row.KL.Unshrunk},
	}[metric]
	b.ReportMetric(cell[0], metric+"-shrunk")
	b.ReportMetric(cell[1], metric+"-plain")
}

// BenchmarkTable4WeightedRecall regenerates the Table 4 metric.
func BenchmarkTable4WeightedRecall(b *testing.B) { qualityBench(b, "wr") }

// BenchmarkTable5UnweightedRecall regenerates the Table 5 metric.
func BenchmarkTable5UnweightedRecall(b *testing.B) { qualityBench(b, "ur") }

// BenchmarkTable6WeightedPrecision regenerates the Table 6 metric.
func BenchmarkTable6WeightedPrecision(b *testing.B) { qualityBench(b, "wp") }

// BenchmarkTable7UnweightedPrecision regenerates the Table 7 metric.
func BenchmarkTable7UnweightedPrecision(b *testing.B) { qualityBench(b, "up") }

// BenchmarkTable8SRCC regenerates the Table 8 metric.
func BenchmarkTable8SRCC(b *testing.B) { qualityBench(b, "srcc") }

// BenchmarkTable9KL regenerates the Table 9 metric.
func BenchmarkTable9KL(b *testing.B) { qualityBench(b, "kl") }

// BenchmarkTable10AdaptiveRate measures the adaptive algorithm's
// shrinkage-application decision over the whole workload and reports
// the Table 10 rate.
func BenchmarkTable10AdaptiveRate(b *testing.B) {
	w := benchWorld(b, experiments.TREC4)
	sums := benchSummaries(b, experiments.TREC4, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	b.ResetTimer()
	var res experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		res = w.SelectionAccuracy(sums, selection.BGloss{}, experiments.Shrinkage, 10)
	}
	b.ReportMetric(100*res.ShrinkRate, "%shrinkage")
}

// figureBench runs one selection-accuracy comparison and reports mean
// Rk at k=5 for the three strategies of Figures 4-5.
func figureBench(b *testing.B, scorer selection.Scorer) {
	w := benchWorld(b, experiments.TREC4)
	sums := benchSummaries(b, experiments.TREC4, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	b.ResetTimer()
	var shrink, hier, plain experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		shrink = w.SelectionAccuracy(sums, scorer, experiments.Shrinkage, 10)
		hier = w.SelectionAccuracy(sums, scorer, experiments.Hierarchical, 10)
		plain = w.SelectionAccuracy(sums, scorer, experiments.Plain, 10)
	}
	b.ReportMetric(shrink.Rk[4], "R5-shrinkage")
	b.ReportMetric(hier.Rk[4], "R5-hierarchical")
	b.ReportMetric(plain.Rk[4], "R5-plain")
}

// BenchmarkFigure4CORISelection regenerates the Figure 4 comparison.
func BenchmarkFigure4CORISelection(b *testing.B) { figureBench(b, selection.CORI{}) }

// BenchmarkFigure5BGlossLM regenerates the Figure 5 comparison (bGlOSS
// panel; the LM panel is exercised by the cmd/experiments harness).
func BenchmarkFigure5BGlossLM(b *testing.B) { figureBench(b, selection.BGloss{}) }

// BenchmarkEMConvergence is the DESIGN.md ablation: EM cost as a
// function of the convergence tolerance.
func BenchmarkEMConvergence(b *testing.B) {
	w := benchWorld(b, experiments.Web)
	sums := benchSummaries(b, experiments.Web, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	classified := sums.Classified(w)
	for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
		b.Run(epsName(eps), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sh := core.Shrink(sums.Cats, classified[i%len(classified)], core.ShrinkOptions{Epsilon: eps})
				iters = sh.EMIterations()
			}
			b.ReportMetric(float64(iters), "em-iters")
		})
	}
}

func epsName(eps float64) string {
	switch eps {
	case 1e-2:
		return "eps=1e-2"
	case 1e-3:
		return "eps=1e-3"
	default:
		return "eps=1e-4"
	}
}

// BenchmarkAdaptiveDecision measures the per-(query, database) cost of
// the Figure 3 content-summary selection step (the paper argues it is
// cheap enough for query time).
func BenchmarkAdaptiveDecision(b *testing.B) {
	w := benchWorld(b, experiments.TREC4)
	sums := benchSummaries(b, experiments.TREC4, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	adbs := make([]*selection.DB, len(w.Bed.Databases))
	for i, db := range w.Bed.Databases {
		adbs[i] = &selection.DB{
			Name: db.Name, Unshrunk: sums.Unshrunk[i], Shrunk: sums.Shrunk[i],
			Gamma: sums.Gamma[i], Size: int(sums.SizeEst[i]),
		}
	}
	a := &selection.Adaptive{Base: selection.CORI{}}
	q := w.Bed.Queries[0].Terms
	entries := make([]selection.Entry, len(adbs))
	for i, db := range adbs {
		entries[i] = selection.Entry{Name: db.Name, View: db.Unshrunk}
	}
	ctx := selection.NewContext(q, entries, sums.GlobalSummary())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Choose(q, adbs, ctx)
	}
	b.ReportMetric(float64(len(adbs)), "databases/op")
}

// BenchmarkEndToEndSelect measures a complete metasearcher query
// through the public API.
func BenchmarkEndToEndSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := New(Options{SampleSize: 30, Seed: 3})
	for _, topic := range topicOrder {
		docs := topicDocs(rng, topic, 20)
		if err := m.Train(topic, docs); err != nil {
			b.Fatal(err)
		}
	}
	for i, topic := range []string{"Heart", "Cancer", "Soccer"} {
		db := m.NewLocalDatabase(topic+"-db", topicDocs(rng, topic, 60))
		if err := m.AddDatabase(db, ""); err != nil {
			b.Fatal(err)
		}
		_ = i
	}
	if err := m.BuildSummaries(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Select("blood pressure hypertension", 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchCached contrasts the query-cache hit path with the
// cold path through the public search API: "hit" answers every
// iteration from the result cache, "miss" invalidates before each
// iteration so selection and the fan-out run every time.
func BenchmarkSearchCached(b *testing.B) {
	build := func(b *testing.B) *Metasearcher {
		rng := rand.New(rand.NewSource(1))
		m := New(Options{SampleSize: 30, Seed: 3})
		for _, topic := range topicOrder {
			if err := m.Train(topic, topicDocs(rng, topic, 20)); err != nil {
				b.Fatal(err)
			}
		}
		for _, topic := range topicOrder {
			db := m.NewLocalDatabase(topic+"-db", topicDocs(rng, topic, 60))
			if err := m.AddDatabase(db, topic); err != nil {
				b.Fatal(err)
			}
		}
		if err := m.BuildSummaries(); err != nil {
			b.Fatal(err)
		}
		return m
	}
	const query = "blood pressure hypertension"
	ctx := context.Background()

	b.Run("hit", func(b *testing.B) {
		m := build(b)
		if _, err := m.SearchExplained(ctx, query, 2, 5); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := m.SearchExplained(ctx, query, 2, 5)
			if err != nil {
				b.Fatal(err)
			}
			if !r.CacheHit {
				b.Fatal("iteration was not a cache hit")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		m := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.InvalidateCaches()
			r, err := m.SearchExplained(ctx, query, 2, 5)
			if err != nil {
				b.Fatal(err)
			}
			if r.CacheHit {
				b.Fatal("iteration was served from cache despite invalidation")
			}
		}
	})
}

// BenchmarkBuildSummaries measures full summary construction (sampling
// + classification + frequency estimation + shrinkage) per database.
func BenchmarkBuildSummaries(b *testing.B) {
	w := benchWorld(b, experiments.Web)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.BuildSummaries(experiments.Config{Sampler: experiments.QBS, FreqEst: true, Run: i + 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(w.Bed.Databases)), "databases/op")
}

// BenchmarkMaterializeShrunk measures materializing a shrunk summary
// with the round rule (the evaluation path of Tables 4-7).
func BenchmarkMaterializeShrunk(b *testing.B) {
	sums := benchSummaries(b, experiments.Web, experiments.Config{Sampler: experiments.QBS, FreqEst: true})
	b.ResetTimer()
	var s *summary.Summary
	for i := 0; i < b.N; i++ {
		s = sums.Shrunk[i%len(sums.Shrunk)].Materialize(1)
	}
	b.ReportMetric(float64(s.Len()), "words")
}
