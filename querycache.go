package repro

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// The selection decision (Figure 3's adaptive choice, including its
// Monte-Carlo sampling over the document-frequency posterior) is a pure
// function of the analyzed query terms, the scorer, k, and the current
// summaries — between summary rebuilds it is safe to cache. This file
// holds the cache keys and the cached selection step; the cached search
// path (result tier + singleflight) lives in search.go.

// scorerKey canonicalizes the configured scorer name for cache keys, so
// "CORI", "cori", and the zero value share entries.
func (m *Metasearcher) scorerKey() string {
	switch s := strings.ToLower(m.opts.Scorer); s {
	case "bgloss", "lm", "redde":
		return s
	default:
		return "cori"
	}
}

// selectionKey builds the selection-tier cache key from the analyzed
// (stemmed, stopped) terms, the scorer, and k. The summaries generation
// is not part of the key: the cache's generation counter carries it.
func selectionKey(terms []string, scorer string, k int) string {
	var sb strings.Builder
	sb.WriteString("k=")
	sb.WriteString(strconv.Itoa(k))
	sb.WriteString(";s=")
	sb.WriteString(scorer)
	sb.WriteString(";q=")
	for i, t := range terms {
		if i > 0 {
			sb.WriteByte(0) // terms never contain NUL
		}
		sb.WriteString(t)
	}
	return sb.String()
}

// resultKey extends a selection key to the result tier, which
// additionally depends on the per-database retrieval depth.
func resultKey(selKey string, perDB int) string {
	return selKey + ";perdb=" + strconv.Itoa(perDB)
}

// selEntry is one cached selection decision plus the audit evidence it
// was made on. Shared between callers: never mutated after insertion.
type selEntry struct {
	sels    []Selection
	explain *selectionExplain
}

// selectCached is the selection step through the selection cache:
// a hit skips the entire adaptive-selection path (scoring every
// candidate plus the per-database Monte-Carlo uncertainty estimate); a
// miss runs selectExplained once, with concurrent identical misses
// collapsed onto that one run. The returned slices are shared with the
// cache and must not be modified.
func (m *Metasearcher) selectCached(ctx context.Context, parent *telemetry.Span, query string, k int) (sels []Selection, ex *selectionExplain, hit bool, err error) {
	if m.selCache == nil {
		sels, ex, err = m.selectExplained(parent, query, k)
		return sels, ex, false, err
	}
	terms := m.analyze(query)
	if len(terms) == 0 {
		// Not cacheable; selectExplained produces the canonical error.
		sels, ex, err = m.selectExplained(parent, query, k)
		return sels, ex, false, err
	}
	key := selectionKey(terms, m.scorerKey(), k)
	v, hit, _, err := m.selCache.Do(ctx, key, func() (interface{}, error) {
		s, e, err := m.selectExplained(parent, query, k)
		if err != nil {
			return nil, err
		}
		return &selEntry{sels: s, explain: e}, nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	e := v.(*selEntry)
	if hit {
		parent.Event("select.cache_hit", telemetry.Int("k", k))
	}
	return e.sels, e.explain, hit, nil
}
