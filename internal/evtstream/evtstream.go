// Package evtstream is the incremental-delivery layer of the query
// path: it turns one search's progress events into a framed event
// stream a client can consume over HTTP as Server-Sent Events (SSE) or
// newline-delimited JSON (NDJSON).
//
// The shape is a per-connection Publisher with a bounded frame queue
// and a Serve loop that drains it to the client, flushing per frame so
// the first frame reaches the client while the fan-out is still
// running. The queue protects the search pipeline from a slow
// consumer: when it fills, the oldest *droppable* frame (node_result,
// merge_update, heartbeat — progress that the next update supersedes)
// is evicted and counted; critical frames (selection, final, error)
// are never dropped, so the stream's contract — a selection frame, then
// progress, then exactly one terminal frame — survives any consumer.
//
// Frames are versioned (Frame.V) so clients can reject a schema they
// do not understand; the payload schemas themselves live with the
// gateway, which is the component that defines the public API.
package evtstream

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SchemaVersion is stamped on every frame as "v". Bump it when a
// frame's wire shape changes incompatibly.
const SchemaVersion = 1

// Frame types. selection/final/error are critical (never evicted);
// node_result/merge_update/heartbeat are droppable progress.
const (
	TypeSelection   = "selection"
	TypeNodeResult  = "node_result"
	TypeMergeUpdate = "merge_update"
	TypeFinal       = "final"
	TypeHeartbeat   = "heartbeat"
	TypeError       = "error"
)

// Frame is one streamed event. Data holds the type-specific payload
// (the gateway defines the payload schemas; see gateway.StreamSelection
// and friends).
type Frame struct {
	V    int             `json:"v"`
	Type string          `json:"type"`
	Seq  int64           `json:"seq"`
	Data json.RawMessage `json:"data,omitempty"`
}

// droppable reports whether a frame type may be evicted under queue
// pressure. Progress frames are superseded by later ones; the
// selection and terminal frames are the stream's contract.
func droppable(typ string) bool {
	switch typ {
	case TypeNodeResult, TypeMergeUpdate, TypeHeartbeat:
		return true
	}
	return false
}

// Format selects the stream encoding.
type Format int

const (
	// FormatSSE is text/event-stream: "event:" + "data:" records,
	// consumable by EventSource and curl -N.
	FormatSSE Format = iota
	// FormatNDJSON is application/x-ndjson: one Frame JSON per line,
	// the encoding the cluster router consumes from its shards.
	FormatNDJSON
)

// Negotiate picks the stream format from the request: an explicit
// format=ndjson query parameter or an Accept preferring
// application/x-ndjson selects NDJSON; everything else gets SSE.
func Negotiate(r *http.Request) Format {
	if r.URL.Query().Get("format") == "ndjson" {
		return FormatNDJSON
	}
	if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		return FormatNDJSON
	}
	return FormatSSE
}

// Options tunes a Publisher.
type Options struct {
	// MaxQueue bounds the frame queue (default 64). Past it, the oldest
	// droppable frame is evicted per enqueue; critical frames always
	// fit (the queue may exceed MaxQueue by the critical overflow).
	MaxQueue int
	// Heartbeat is the idle interval after which Serve writes a
	// heartbeat frame so proxies and clients can tell a slow search
	// from a dead connection (default 5s; negative disables).
	Heartbeat time.Duration
	// Metrics receives the stream_* series (may be nil).
	Metrics *telemetry.Registry
}

// RegisterMetrics pre-creates the stream_* series with help text so
// exposition endpoints show the schema before the first stream.
func RegisterMetrics(reg *telemetry.Registry) {
	for _, c := range []struct{ name, help string }{
		{"stream_requests_total", "Event-stream connections served by Publisher.Serve."},
		{"stream_frames_total", "Frames written to event-stream clients."},
		{"stream_frames_dropped_total", "Droppable frames evicted from full per-connection queues (slow consumers)."},
		{"stream_heartbeats_total", "Heartbeat frames written on idle event streams."},
		{"stream_disconnects_total", "Event streams that ended before their terminal frame (client hang-up)."},
	} {
		reg.Counter(c.name)
		reg.Describe(c.name, c.help)
	}
	reg.Gauge("stream_active")
	reg.Describe("stream_active", "Event-stream connections currently being served.")
	reg.Histogram("stream_first_frame_latency", nil)
	reg.Describe("stream_first_frame_latency", "Latency from stream start to the first frame on the wire, seconds.")
}

// Publisher is one connection's frame queue: the search pipeline
// publishes into it (via the gateway's observer adapter) and Serve
// drains it to the HTTP client. Publish never blocks; Serve owns the
// socket. Safe for concurrent use.
type Publisher struct {
	opts Options

	mu     sync.Mutex
	queue  []Frame
	seq    int64
	closed bool
	wake   chan struct{} // cap 1: kicks Serve when frames or close arrive
}

// NewPublisher builds a Publisher.
func NewPublisher(opts Options) *Publisher {
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 5 * time.Second
	}
	return &Publisher{opts: opts, wake: make(chan struct{}, 1)}
}

// Publish marshals payload into a frame of the given type and enqueues
// it. On a full queue the oldest droppable frame is evicted (counted in
// stream_frames_dropped_total); critical frames always enqueue. After
// Close, frames are silently discarded — the producer may still be
// finishing while the consumer is gone.
func (p *Publisher) Publish(typ string, payload interface{}) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("evtstream: marshal %s payload: %w", typ, err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.seq++
	f := Frame{V: SchemaVersion, Type: typ, Seq: p.seq, Data: data}
	if len(p.queue) >= p.opts.MaxQueue {
		evicted := false
		for i, q := range p.queue {
			if droppable(q.Type) {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				evicted = true
				break
			}
		}
		if evicted {
			p.opts.Metrics.Counter("stream_frames_dropped_total").Inc()
		}
	}
	p.queue = append(p.queue, f)
	p.mu.Unlock()
	p.kick()
	return nil
}

// Close marks the stream complete: Serve drains what is queued and
// returns. Idempotent.
func (p *Publisher) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.kick()
}

func (p *Publisher) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// drain removes and returns all queued frames, plus whether the
// publisher is closed.
func (p *Publisher) drain() ([]Frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	frames := p.queue
	p.queue = nil
	return frames, p.closed
}

// heartbeatFrame mints a heartbeat with the publisher's next sequence
// number, so heartbeats order consistently with data frames.
func (p *Publisher) heartbeatFrame() Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	return Frame{V: SchemaVersion, Type: TypeHeartbeat, Seq: p.seq}
}

// Serve writes the stream to w until the publisher closes (after its
// terminal frame) or ctx is cancelled (the client hung up; counted in
// stream_disconnects_total). It sets the response headers, flushes per
// frame, and emits heartbeats on idle. Returns nil on a complete
// stream, ctx.Err() on disconnect, or the first write error.
func (p *Publisher) Serve(ctx context.Context, w http.ResponseWriter, format Format) error {
	reg := p.opts.Metrics
	reg.Counter("stream_requests_total").Inc()
	active := reg.Gauge("stream_active")
	active.Add(1)
	defer active.Add(-1)

	h := w.Header()
	switch format {
	case FormatNDJSON:
		h.Set("Content-Type", "application/x-ndjson")
	default:
		h.Set("Content-Type", "text/event-stream")
	}
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	rc := http.NewResponseController(w)
	// Get the headers (and for SSE a comment preamble) on the wire
	// immediately: the client learns the stream is live before the
	// first data frame exists.
	w.WriteHeader(http.StatusOK)
	if format == FormatSSE {
		if _, err := fmt.Fprint(w, ": stream open\n\n"); err != nil {
			return err
		}
	}
	rc.Flush()

	start := time.Now()
	first := true
	writeFrame := func(f Frame) error {
		b, err := json.Marshal(f)
		if err != nil {
			return err
		}
		switch format {
		case FormatNDJSON:
			_, err = fmt.Fprintf(w, "%s\n", b)
		default:
			_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", f.Type, f.Seq, b)
		}
		if err != nil {
			return err
		}
		if err := rc.Flush(); err != nil {
			return err
		}
		if first {
			first = false
			reg.Histogram("stream_first_frame_latency", nil).Observe(time.Since(start).Seconds())
		}
		reg.Counter("stream_frames_total").Inc()
		if f.Type == TypeHeartbeat {
			reg.Counter("stream_heartbeats_total").Inc()
		}
		return nil
	}

	var heartbeat <-chan time.Time
	var ticker *time.Ticker
	if p.opts.Heartbeat > 0 {
		ticker = time.NewTicker(p.opts.Heartbeat)
		defer ticker.Stop()
		heartbeat = ticker.C
	}
	for {
		frames, closed := p.drain()
		for _, f := range frames {
			if err := writeFrame(f); err != nil {
				reg.Counter("stream_disconnects_total").Inc()
				return err
			}
			if ticker != nil {
				ticker.Reset(p.opts.Heartbeat)
			}
		}
		if closed {
			// One last drain: a frame may have landed between drain and
			// the closed check of the next iteration.
			if rest, _ := p.drain(); len(rest) > 0 {
				for _, f := range rest {
					if err := writeFrame(f); err != nil {
						reg.Counter("stream_disconnects_total").Inc()
						return err
					}
				}
			}
			return nil
		}
		select {
		case <-ctx.Done():
			reg.Counter("stream_disconnects_total").Inc()
			return ctx.Err()
		case <-p.wake:
		case <-heartbeat:
			if err := writeFrame(p.heartbeatFrame()); err != nil {
				reg.Counter("stream_disconnects_total").Inc()
				return err
			}
		}
	}
}

// ParseSSE splits a raw SSE stream into its data payloads (the JSON
// frames), ignoring comments and event/id lines. It is the inverse of
// Serve's SSE encoding, for tests and simple clients.
func ParseSSE(raw string) []Frame {
	var out []Frame
	for _, line := range strings.Split(raw, "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f Frame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err == nil {
			out = append(out, f)
		}
	}
	return out
}
