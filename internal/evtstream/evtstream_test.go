package evtstream

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestPublishDrainOrder(t *testing.T) {
	p := NewPublisher(Options{})
	p.Publish(TypeSelection, map[string]int{"a": 1})
	p.Publish(TypeNodeResult, map[string]int{"b": 2})
	p.Publish(TypeFinal, nil)
	frames, closed := p.drain()
	if closed {
		t.Fatal("publisher reported closed before Close")
	}
	if len(frames) != 3 {
		t.Fatalf("drained %d frames, want 3", len(frames))
	}
	want := []string{TypeSelection, TypeNodeResult, TypeFinal}
	for i, f := range frames {
		if f.Type != want[i] {
			t.Errorf("frame %d type %q, want %q", i, f.Type, want[i])
		}
		if f.V != SchemaVersion {
			t.Errorf("frame %d schema v%d, want v%d", i, f.V, SchemaVersion)
		}
		if f.Seq != int64(i+1) {
			t.Errorf("frame %d seq %d, want %d", i, f.Seq, i+1)
		}
	}
}

// A full queue evicts the oldest droppable frame and keeps every
// critical one: the slow-consumer contract.
func TestSlowConsumerEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{MaxQueue: 4, Metrics: reg})
	p.Publish(TypeSelection, nil)
	for i := 0; i < 10; i++ {
		p.Publish(TypeNodeResult, map[string]int{"i": i})
	}
	p.Publish(TypeFinal, nil)
	frames, _ := p.drain()
	// Queue cap 4: selection + final always fit; node_results evicted
	// oldest-first down to the cap.
	if len(frames) > 5 {
		t.Fatalf("queue held %d frames, cap 4 (+1 critical overflow)", len(frames))
	}
	if frames[0].Type != TypeSelection {
		t.Errorf("first frame %q, want the critical selection frame kept", frames[0].Type)
	}
	if frames[len(frames)-1].Type != TypeFinal {
		t.Errorf("last frame %q, want final", frames[len(frames)-1].Type)
	}
	if got := reg.Counter("stream_frames_dropped_total").Value(); got == 0 {
		t.Error("no drops counted although the queue overflowed")
	}
	// The surviving node_results are the newest ones, in order.
	var seqs []int64
	for _, f := range frames {
		seqs = append(seqs, f.Seq)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Errorf("sequence numbers not increasing: %v", seqs)
		}
	}
}

// Critical frames are never evicted, even when the queue is all
// critical.
func TestCriticalFramesAlwaysEnqueue(t *testing.T) {
	p := NewPublisher(Options{MaxQueue: 2})
	p.Publish(TypeSelection, nil)
	p.Publish(TypeError, nil)
	p.Publish(TypeFinal, nil)
	frames, _ := p.drain()
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want all 3 critical frames kept", len(frames))
	}
}

func TestServeSSE(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{Metrics: reg, Heartbeat: -1})
	go func() {
		p.Publish(TypeSelection, map[string]string{"scorer": "CORI"})
		p.Publish(TypeNodeResult, map[string]string{"database": "db1"})
		p.Publish(TypeFinal, map[string]string{"query": "q"})
		p.Close()
	}()
	rec := httptest.NewRecorder()
	if err := p.Serve(context.Background(), rec, FormatSSE); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type %q, want text/event-stream", ct)
	}
	frames := ParseSSE(rec.Body.String())
	if len(frames) != 3 {
		t.Fatalf("parsed %d frames from SSE body, want 3:\n%s", len(frames), rec.Body.String())
	}
	if frames[0].Type != TypeSelection || frames[2].Type != TypeFinal {
		t.Errorf("frame types %q...%q, want selection...final", frames[0].Type, frames[2].Type)
	}
	var sel map[string]string
	if err := json.Unmarshal(frames[0].Data, &sel); err != nil || sel["scorer"] != "CORI" {
		t.Errorf("selection payload %s (err %v), want scorer CORI", frames[0].Data, err)
	}
	if got := reg.Counter("stream_frames_total").Value(); got != 3 {
		t.Errorf("stream_frames_total = %d, want 3", got)
	}
}

func TestServeNDJSON(t *testing.T) {
	p := NewPublisher(Options{Heartbeat: -1})
	go func() {
		p.Publish(TypeSelection, nil)
		p.Publish(TypeFinal, nil)
		p.Close()
	}()
	rec := httptest.NewRecorder()
	if err := p.Serve(context.Background(), rec, FormatNDJSON); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	var types []string
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		types = append(types, f.Type)
	}
	if len(types) != 2 || types[0] != TypeSelection || types[1] != TypeFinal {
		t.Errorf("frame types %v, want [selection final]", types)
	}
}

// A cancelled context ends Serve with the disconnect counted, even with
// no frames flowing.
func TestServeDisconnect(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{Metrics: reg, Heartbeat: -1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Serve(ctx, httptest.NewRecorder(), FormatSSE) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after ctx cancel")
	}
	if got := reg.Counter("stream_disconnects_total").Value(); got != 1 {
		t.Errorf("stream_disconnects_total = %d, want 1", got)
	}
}

// Idle streams emit heartbeats so a slow search is distinguishable
// from a dead connection.
func TestServeHeartbeat(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPublisher(Options{Metrics: reg, Heartbeat: 20 * time.Millisecond})
	rec := httptest.NewRecorder()
	done := make(chan error, 1)
	go func() { done <- p.Serve(context.Background(), rec, FormatSSE) }()
	time.Sleep(120 * time.Millisecond)
	p.Publish(TypeFinal, nil)
	p.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := reg.Counter("stream_heartbeats_total").Value(); got == 0 {
		t.Error("no heartbeats on an idle stream")
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		url    string
		accept string
		want   Format
	}{
		{"/v1/search/stream?q=x", "", FormatSSE},
		{"/v1/search/stream?q=x&format=ndjson", "", FormatNDJSON},
		{"/v1/search/stream?q=x", "application/x-ndjson", FormatNDJSON},
		{"/v1/search/stream?q=x", "text/event-stream", FormatSSE},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, c.url, nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := Negotiate(r); got != c.want {
			t.Errorf("Negotiate(%q, Accept %q) = %v, want %v", c.url, c.accept, got, c.want)
		}
	}
}

// Publish after Close is a silent no-op: the producer may still be
// finishing while the consumer is gone.
func TestPublishAfterClose(t *testing.T) {
	p := NewPublisher(Options{})
	p.Close()
	if err := p.Publish(TypeFinal, nil); err != nil {
		t.Fatalf("Publish after Close: %v", err)
	}
	frames, closed := p.drain()
	if !closed || len(frames) != 0 {
		t.Fatalf("drain after Close = %d frames, closed %v; want 0, true", len(frames), closed)
	}
}
