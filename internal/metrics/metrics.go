// Package metrics implements the paper's evaluation measures: the
// content-summary quality metrics of Section 6.1 (weighted/unweighted
// recall and precision, Spearman rank correlation of word rankings, and
// KL divergence of word-frequency estimates) and the database selection
// accuracy metric Rk of Section 6.2.
package metrics

import (
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/summary"
)

// ApplyRoundRule filters a content summary to the words estimated to
// appear in at least one document: round(|D̂|·p̂(w|D)) >= 1. The paper
// applies this rule before computing precision and recall so that the
// (technically infinite-support) shrunk summaries are not artificially
// inflated, and CORI's cf statistic uses the same rule.
func ApplyRoundRule(s *summary.Summary) *summary.Summary {
	out := &summary.Summary{
		NumDocs:    s.NumDocs,
		CW:         s.CW,
		SampleSize: s.SampleSize,
		Words:      make(map[string]summary.Word, len(s.Words)),
	}
	for w, st := range s.Words {
		if int(s.NumDocs*st.P+0.5) >= 1 {
			out.Words[w] = st
		}
	}
	return out
}

// WeightedRecall is wr = Σ_{w∈WA∩WS} p(w|D) / Σ_{w∈WS} p(w|D): the
// fraction of the true summary's probability mass covered by the
// approximate summary (the ctf ratio of Callan & Connell). Frequent
// words weigh more.
func WeightedRecall(truth, approx *summary.Summary) float64 {
	var num, den float64
	for w, st := range truth.Words {
		den += st.P
		if approx.Contains(w) {
			num += st.P
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// UnweightedRecall is ur = |WA∩WS| / |WS|: the fraction of the true
// vocabulary present in the approximate summary.
func UnweightedRecall(truth, approx *summary.Summary) float64 {
	if truth.Len() == 0 {
		return 0
	}
	var both int
	for w := range truth.Words {
		if approx.Contains(w) {
			both++
		}
	}
	return float64(both) / float64(truth.Len())
}

// WeightedPrecision is wp = Σ_{w∈WA∩WS} p̂(w|D) / Σ_{w∈WA} p̂(w|D):
// the fraction of the approximate summary's (estimated) probability
// mass that corresponds to real database words.
func WeightedPrecision(truth, approx *summary.Summary) float64 {
	var num, den float64
	for w, st := range approx.Words {
		den += st.P
		if truth.Contains(w) {
			num += st.P
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// UnweightedPrecision is up = |WA∩WS| / |WA|: the fraction of the
// approximate summary's words that actually occur in the database.
func UnweightedPrecision(truth, approx *summary.Summary) float64 {
	if approx.Len() == 0 {
		return 0
	}
	var both int
	for w := range approx.Words {
		if truth.Contains(w) {
			both++
		}
	}
	return float64(both) / float64(approx.Len())
}

// SRCC is the Spearman Rank Correlation Coefficient between the word
// rankings (by estimated p̂) of the two summaries, computed over their
// common vocabulary, as Callan & Connell evaluate content summaries.
func SRCC(truth, approx *summary.Summary) float64 {
	var ts, as []float64
	for w, st := range approx.Words {
		tst, ok := truth.Words[w]
		if !ok {
			continue
		}
		as = append(as, st.P)
		ts = append(ts, tst.P)
	}
	r, err := stats.Spearman(ts, as)
	if err != nil {
		return 0
	}
	return r
}

// KL is the word-frequency divergence Σ_{w∈WA∩WS} p(w|D) ·
// log(p(w|D)/p̂(w|D)), with p the term-frequency (LM-style)
// probabilities, renormalized over the common vocabulary so both sides
// are distributions (0 means identical estimates; larger is worse).
func KL(truth, approx *summary.Summary) float64 {
	var ps, qs []float64
	for w, st := range approx.Words {
		tst, ok := truth.Words[w]
		if !ok {
			continue
		}
		ps = append(ps, tst.Ptf)
		qs = append(qs, st.Ptf)
	}
	if len(ps) == 0 {
		return math.Inf(1)
	}
	kl, err := stats.KLDivergence(stats.Normalize(ps), stats.Normalize(qs))
	if err != nil {
		return math.Inf(1)
	}
	return kl
}

// Rk is the database selection accuracy metric of Section 6.2:
// the number of relevant documents in the top-k ranked databases,
// divided by the number in the best possible ("perfect") choice of k
// databases. rel[i] is r(q, D_i), the relevant-document count of
// database i; ranked lists the selected database indexes in rank order
// (it may be shorter than k when the selection algorithm selected fewer
// databases, in which case the missing slots contribute nothing, as in
// the paper). A query with no relevant documents anywhere yields 1
// (every choice is vacuously perfect).
func Rk(rel []int, ranked []int, k int) float64 {
	if k <= 0 {
		return 1
	}
	var got int
	for i := 0; i < k && i < len(ranked); i++ {
		got += rel[ranked[i]]
	}
	perfect := perfectTopK(rel, k)
	if perfect == 0 {
		return 1
	}
	return float64(got) / float64(perfect)
}

// RkCurve evaluates Rk for every k in 1..maxK in one pass, which the
// Figure 4/5 experiments use.
func RkCurve(rel []int, ranked []int, maxK int) []float64 {
	sorted := make([]int, len(rel))
	copy(sorted, rel)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	out := make([]float64, maxK)
	var got, perfect int
	for k := 1; k <= maxK; k++ {
		if k-1 < len(ranked) {
			got += rel[ranked[k-1]]
		}
		if k-1 < len(sorted) {
			perfect += sorted[k-1]
		}
		if perfect == 0 {
			out[k-1] = 1
		} else {
			out[k-1] = float64(got) / float64(perfect)
		}
	}
	return out
}

// perfectTopK sums the k largest relevance counts.
func perfectTopK(rel []int, k int) int {
	cp := make([]int, len(rel))
	copy(cp, rel)
	sort.Sort(sort.Reverse(sort.IntSlice(cp)))
	if k > len(cp) {
		k = len(cp)
	}
	var s int
	for i := 0; i < k; i++ {
		s += cp[i]
	}
	return s
}
