package metrics

import (
	"math"
	"testing"

	"repro/internal/summary"
)

func mkSum(numDocs float64, words map[string]float64) *summary.Summary {
	s := &summary.Summary{NumDocs: numDocs, Words: map[string]summary.Word{}}
	for w, p := range words {
		s.Words[w] = summary.Word{P: p, Ptf: p / 3}
	}
	return s
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRecallMetrics(t *testing.T) {
	truth := mkSum(100, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	app := mkSum(100, map[string]float64{"a": 0.6, "b": 0.2})
	// wr = (0.5+0.3)/(0.5+0.3+0.2) = 0.8
	if got := WeightedRecall(truth, app); !approx(got, 0.8, 1e-12) {
		t.Errorf("wr = %v", got)
	}
	// ur = 2/3
	if got := UnweightedRecall(truth, app); !approx(got, 2.0/3, 1e-12) {
		t.Errorf("ur = %v", got)
	}
	// A perfect summary scores 1 on both.
	if WeightedRecall(truth, truth) != 1 || UnweightedRecall(truth, truth) != 1 {
		t.Error("self recall != 1")
	}
	// Empty approximations score 0.
	empty := mkSum(100, nil)
	if WeightedRecall(truth, empty) != 0 || UnweightedRecall(truth, empty) != 0 {
		t.Error("empty approx recall != 0")
	}
}

func TestPrecisionMetrics(t *testing.T) {
	truth := mkSum(100, map[string]float64{"a": 0.5, "b": 0.3})
	app := mkSum(100, map[string]float64{"a": 0.4, "spurious": 0.1})
	// wp = 0.4/(0.4+0.1) = 0.8
	if got := WeightedPrecision(truth, app); !approx(got, 0.8, 1e-12) {
		t.Errorf("wp = %v", got)
	}
	// up = 1/2
	if got := UnweightedPrecision(truth, app); !approx(got, 0.5, 1e-12) {
		t.Errorf("up = %v", got)
	}
	// A summary containing only true words has precision 1 — the
	// sample-derived (unshrunk) case in Tables 6 and 7.
	clean := mkSum(100, map[string]float64{"a": 0.9})
	if WeightedPrecision(truth, clean) != 1 || UnweightedPrecision(truth, clean) != 1 {
		t.Error("clean approx precision != 1")
	}
}

func TestSRCC(t *testing.T) {
	truth := mkSum(100, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2, "d": 0.1})
	same := mkSum(100, map[string]float64{"a": 0.45, "b": 0.33, "c": 0.21, "d": 0.15})
	if got := SRCC(truth, same); !approx(got, 1, 1e-12) {
		t.Errorf("identical ranking SRCC = %v", got)
	}
	rev := mkSum(100, map[string]float64{"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.5})
	if got := SRCC(truth, rev); !approx(got, -1, 1e-12) {
		t.Errorf("reversed ranking SRCC = %v", got)
	}
	// Words outside the intersection are ignored.
	extra := mkSum(100, map[string]float64{"a": 0.5, "b": 0.3, "zz": 0.9})
	if got := SRCC(truth, extra); !approx(got, 1, 1e-12) {
		t.Errorf("SRCC with extra word = %v", got)
	}
}

func TestKL(t *testing.T) {
	truth := mkSum(100, map[string]float64{"a": 0.6, "b": 0.3})
	if got := KL(truth, truth); !approx(got, 0, 1e-12) {
		t.Errorf("KL(self) = %v", got)
	}
	skewed := mkSum(100, map[string]float64{"a": 0.3, "b": 0.6})
	if got := KL(truth, skewed); got <= 0 {
		t.Errorf("KL of skewed estimate = %v, want > 0", got)
	}
	// Disjoint summaries diverge infinitely.
	disjoint := mkSum(100, map[string]float64{"zz": 0.5})
	if got := KL(truth, disjoint); !math.IsInf(got, 1) {
		t.Errorf("KL with empty intersection = %v", got)
	}
}

func TestApplyRoundRule(t *testing.T) {
	s := mkSum(1000, map[string]float64{
		"keep":   0.01,    // 10 docs
		"edge":   0.00051, // 0.51 docs -> rounds to 1
		"drop":   0.0004,  // 0.4 docs -> dropped
		"barely": 0.0005,  // 0.5 -> rounds to 1 (int(x+0.5))
	})
	out := ApplyRoundRule(s)
	if !out.Contains("keep") || !out.Contains("edge") || !out.Contains("barely") {
		t.Errorf("kept words wrong: %v", out.Words)
	}
	if out.Contains("drop") {
		t.Error("sub-document word survived the round rule")
	}
	if out.NumDocs != 1000 {
		t.Error("metadata lost")
	}
	if s.Len() != 4 {
		t.Error("input mutated")
	}
}

func TestRk(t *testing.T) {
	rel := []int{0, 10, 5, 0, 20}
	// Perfect: top-2 = 20 + 10 = 30.
	ranked := []int{4, 1, 2} // 20, 10, 5
	if got := Rk(rel, ranked, 2); !approx(got, 1, 1e-12) {
		t.Errorf("perfect R2 = %v", got)
	}
	// Suboptimal: picked db2 (5) then db4 (20): (5+20)/30.
	if got := Rk(rel, []int{2, 4}, 2); !approx(got, 25.0/30, 1e-12) {
		t.Errorf("R2 = %v", got)
	}
	// Fewer selected databases than k contribute nothing for the rest.
	if got := Rk(rel, []int{4}, 2); !approx(got, 20.0/30, 1e-12) {
		t.Errorf("short ranking R2 = %v", got)
	}
	// No relevant documents anywhere: vacuously 1.
	if got := Rk([]int{0, 0}, []int{0}, 1); got != 1 {
		t.Errorf("no-relevant Rk = %v", got)
	}
	// k beyond the number of databases.
	if got := Rk(rel, []int{4, 1, 2, 0, 3}, 10); !approx(got, 1, 1e-12) {
		t.Errorf("k>n Rk = %v", got)
	}
}

func TestRkCurveMatchesPointwise(t *testing.T) {
	rel := []int{3, 0, 7, 2, 9, 1}
	ranked := []int{4, 0, 3, 2}
	curve := RkCurve(rel, ranked, 6)
	for k := 1; k <= 6; k++ {
		if want := Rk(rel, ranked, k); !approx(curve[k-1], want, 1e-12) {
			t.Errorf("k=%d: curve %v, pointwise %v", k, curve[k-1], want)
		}
	}
	// Rk curves from a fixed ranking are non-increasing in optimality
	// only if the ranking is perfect; at minimum they stay in [0, 1].
	for k, v := range curve {
		if v < 0 || v > 1 {
			t.Errorf("R%d = %v out of range", k+1, v)
		}
	}
}
