// Package router is the scatter-gather front of a sharded metasearcher
// cluster. A Router owns no summaries and makes no selection decisions:
// it fans each query out to every shard's gateway (each shard is a full
// metasearcher process that loaded the complete summary store but only
// its topology slice of live database connections), collects the
// per-shard rankings, and merges them deterministically into exactly
// the answer a single-process metasearcher would have produced.
//
// The merge identity rests on the shrinkage invariant documented on
// repro.LoadFiltered: every shard computes selection scores from the
// identical collection-wide statistics, so the per-document merged
// scores (selection score normalized over the selected set, discounted
// by in-database rank) are bit-identical across shards. The router then
// only has to concatenate, sort by the fan-out's exact tie-break
// (score descending, database ascending, doc id ascending), and drop
// duplicate (database, doc id) pairs — duplicates exist precisely when
// the topology's replication places one database on several shards.
//
// Shards are peers of the wire protocol's operational conventions: each
// has a circuit breaker (keyed by shard ID, on the router's
// resilience.Set), a shed (429) reply is backpressure rather than
// failure, and a background prober re-admits recovered shards. A query
// succeeds if at least one shard answers; shards the breaker holds back
// or that fail mid-query cost coverage (their databases go unranked),
// never availability.
//
// Router implements gateway.Searcher, so the standard gateway serves
// the cluster under the same /v1/search API a single process exposes.
package router

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/evtstream"
	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options configures a Router.
type Options struct {
	// Client issues the shard HTTP calls (default: a client with
	// Timeout as its overall bound; the per-request context governs
	// cancellation either way).
	Client *http.Client
	// Timeout bounds each shard call when the incoming request carries
	// no deadline of its own (default 10s; zero keeps the default, use
	// a negative value for unbounded).
	Timeout time.Duration
	// Breakers tracks one circuit breaker per shard, keyed by shard ID.
	// Nil builds a private set with default BreakerOptions.
	Breakers *resilience.Set
	// Metrics receives the router_* series (may be nil).
	Metrics *telemetry.Registry
	// Tracer traces the scatter-gather (may be nil). Shard calls carry
	// the trace context in the standard propagation headers.
	Tracer *telemetry.Tracer
	// Budget, when set, funds one same-shard retry after a transient
	// call failure (spent from the cluster retry budget; see
	// resilience.Budget). Nil disables router-side retries entirely —
	// failover to the other shards' coverage is never budget-gated.
	Budget *resilience.Budget
}

// Router fans queries out to every shard and merges the rankings. It
// implements gateway.Searcher; wrap it in gateway.New to serve HTTP.
//
// The fan-out targets live in an immutable ring snapshot swapped
// atomically by ApplyTopology: queries in flight finish on the snapshot
// they loaded at entry while new queries route on the new one.
type Router struct {
	ring     atomic.Pointer[ringState]
	client   *http.Client
	timeout  time.Duration
	breakers *resilience.Set
	reg      *telemetry.Registry
	tracer   *telemetry.Tracer
	budget   *resilience.Budget

	requests     *telemetry.Counter
	errors       *telemetry.Counter
	shardCalls   *telemetry.Counter
	shardErrors  *telemetry.Counter
	shardSkips   *telemetry.Counter
	shardRetries *telemetry.Counter
	dedupDrops   *telemetry.Counter
	swaps        *telemetry.Counter

	probeMu   sync.Mutex
	lastProbe map[string]probeResult // shard ID → latest background probe

	proberMu sync.Mutex
	prober   *resilience.Prober // retargeted on topology swaps

	swapMu      sync.Mutex
	swapHistory []SwapRecord // bounded audit trail, oldest first
}

// ringState is one immutable topology snapshot the router fans out
// over. Every query loads exactly one ringState at entry and never sees
// a partial swap.
type ringState struct {
	shards     []shardmap.Shard // sorted by ID
	generation int64
	swappedAt  time.Time // zero until the first ApplyTopology
}

// SwapRecord is the audit record of one applied topology swap.
type SwapRecord struct {
	Generation    int64     `json:"generation"`
	AppliedAt     time.Time `json:"applied_at"`
	ShardsAdded   []string  `json:"shards_added,omitempty"`
	ShardsRemoved []string  `json:"shards_removed,omitempty"`
	ShardsMoved   []string  `json:"shards_moved,omitempty"` // same ID, new address
}

// maxSwapHistory bounds the audit trail kept in memory.
const maxSwapHistory = 64

// probeResult is the outcome of one background health probe.
type probeResult struct {
	err string // "" = ok
	at  time.Time
}

var (
	_ gateway.Searcher       = (*Router)(nil)
	_ gateway.StreamSearcher = (*Router)(nil)
)

// New builds a Router over the topology's shards. The topology is
// validated; the routing table (which database lives on which shard) is
// the shards' own concern — the router fans out to all of them.
func New(topo *shardmap.Topology, opts Options) (*Router, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	shards := sortedShards(topo)
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	breakers := opts.Breakers
	if breakers == nil {
		breakers = resilience.NewSet(resilience.BreakerOptions{}, opts.Metrics)
	}
	r := &Router{
		client:       client,
		timeout:      timeout,
		breakers:     breakers,
		reg:          opts.Metrics,
		tracer:       opts.Tracer,
		budget:       opts.Budget,
		requests:     opts.Metrics.Counter("router_requests_total"),
		errors:       opts.Metrics.Counter("router_errors_total"),
		shardCalls:   opts.Metrics.Counter("router_shard_calls_total"),
		shardErrors:  opts.Metrics.Counter("router_shard_errors_total"),
		shardSkips:   opts.Metrics.Counter("router_shard_skipped_total"),
		shardRetries: opts.Metrics.Counter("router_shard_retries_total"),
		dedupDrops:   opts.Metrics.Counter("router_dedup_dropped_total"),
		swaps:        opts.Metrics.Counter("router_topology_swaps_total"),
		lastProbe:    make(map[string]probeResult),
	}
	r.ring.Store(&ringState{shards: shards, generation: 1})
	opts.Metrics.Gauge("topology_generation").Set(1)
	// Pre-create the latency series so /metrics shows the schema at zero.
	opts.Metrics.Histogram("router_fanout_latency", nil)
	opts.Metrics.Histogram("router_merge_latency", nil)
	for _, d := range []struct{ name, help string }{
		{"router_requests_total", "Queries accepted by the cluster router."},
		{"router_errors_total", "Queries the router failed because no shard answered."},
		{"router_shard_calls_total", "Per-shard /v1/search calls issued by the router."},
		{"router_shard_errors_total", "Per-shard /v1/search calls that failed."},
		{"router_shard_skipped_total", "Per-shard calls held back by an open circuit breaker."},
		{"router_shard_retries_total", "Same-shard retries funded by the cluster retry budget."},
		{"router_dedup_dropped_total", "Merged results dropped as duplicate (database, doc id) pairs from replicated shards."},
		{"router_topology_swaps_total", "Topology snapshots swapped into the live ring."},
		{"topology_generation", "Process-local generation of the active topology snapshot."},
		{"router_fanout_latency", "Wall time of the scatter-gather over all shards, seconds."},
		{"router_merge_latency", "Wall time of the deterministic cluster merge, seconds."},
	} {
		opts.Metrics.Describe(d.name, d.help)
	}
	return r, nil
}

// sortedShards copies a topology's shards in sorted-ID order.
func sortedShards(topo *shardmap.Topology) []shardmap.Shard {
	shards := make([]shardmap.Shard, len(topo.Shards))
	copy(shards, topo.Shards)
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	return shards
}

// Breakers exposes the per-shard breaker set (for /debug/breakers).
func (r *Router) Breakers() *resilience.Set { return r.breakers }

// Shards returns the fan-out targets in sorted-ID order.
func (r *Router) Shards() []shardmap.Shard {
	shards := r.ring.Load().shards
	out := make([]shardmap.Shard, len(shards))
	copy(out, shards)
	return out
}

// Generation returns the generation of the active ring snapshot.
func (r *Router) Generation() int64 { return r.ring.Load().generation }

// ApplyTopology swaps a validated topology snapshot into the live ring.
// In-flight queries finish on the snapshot they loaded at entry; new
// queries fan out over the new one. Breaker state carries over for
// every surviving shard ID (including shards whose gateway address
// moved — the breaker describes the backend, not the socket); removed
// shards leave the breaker set and the probe-result map; added shards
// get a fresh breaker that starts closed on first use, so concurrent
// queries never skip a healthy newcomer and the merge stays
// bit-identical to a single process. The background prober, if running,
// is retargeted. Returns the swap's audit record.
func (r *Router) ApplyTopology(snap *shardmap.Snapshot) (*SwapRecord, error) {
	if snap == nil || snap.Topology == nil {
		return nil, errors.New("router: nil topology snapshot")
	}
	if err := snap.Topology.Validate(); err != nil {
		return nil, err
	}
	shards := sortedShards(snap.Topology)

	r.swapMu.Lock()
	old := r.ring.Load()
	rec := &SwapRecord{Generation: snap.Generation, AppliedAt: time.Now()}
	oldAddr := make(map[string]string, len(old.shards))
	for _, s := range old.shards {
		oldAddr[s.ID] = s.Addr
	}
	newIDs := make(map[string]bool, len(shards))
	for _, s := range shards {
		newIDs[s.ID] = true
		if addr, ok := oldAddr[s.ID]; !ok {
			rec.ShardsAdded = append(rec.ShardsAdded, s.ID)
		} else if addr != s.Addr {
			rec.ShardsMoved = append(rec.ShardsMoved, s.ID)
		}
	}
	for _, s := range old.shards {
		if !newIDs[s.ID] {
			rec.ShardsRemoved = append(rec.ShardsRemoved, s.ID)
		}
	}
	sort.Strings(rec.ShardsAdded)
	sort.Strings(rec.ShardsRemoved)
	sort.Strings(rec.ShardsMoved)

	r.ring.Store(&ringState{shards: shards, generation: snap.Generation, swappedAt: rec.AppliedAt})
	for _, id := range rec.ShardsRemoved {
		r.breakers.Remove(id)
		r.probeMu.Lock()
		delete(r.lastProbe, id)
		r.probeMu.Unlock()
	}
	r.swaps.Inc()
	r.reg.Gauge("topology_generation").Set(float64(snap.Generation))
	r.swapHistory = append(r.swapHistory, *rec)
	if len(r.swapHistory) > maxSwapHistory {
		r.swapHistory = r.swapHistory[len(r.swapHistory)-maxSwapHistory:]
	}
	r.swapMu.Unlock()

	r.proberMu.Lock()
	p := r.prober
	r.proberMu.Unlock()
	if p != nil {
		p.SetTargets(r.ProbeTargets())
	}
	return rec, nil
}

// SwapHistory returns the bounded audit trail of applied topology
// swaps, oldest first.
func (r *Router) SwapHistory() []SwapRecord {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	out := make([]SwapRecord, len(r.swapHistory))
	copy(out, r.swapHistory)
	return out
}

// TopologyStatus reports the active generation and last swap time for
// /v1/healthz (gateway.Options.Topology).
func (r *Router) TopologyStatus() *wire.TopologyStatus {
	ring := r.ring.Load()
	st := &wire.TopologyStatus{Generation: ring.generation}
	if !ring.swappedAt.IsZero() {
		st.LastSwapUnixMs = ring.swappedAt.UnixMilli()
	}
	return st
}

// TopologyHandler serves the router's view of the live ring: active
// generation, fan-out targets, and the swap audit trail.
func (r *Router) TopologyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ring := r.ring.Load()
		type shardInfo struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		}
		resp := struct {
			Generation     int64        `json:"generation"`
			LastSwapUnixMs int64        `json:"last_swap_unix_ms,omitempty"`
			Shards         []shardInfo  `json:"shards"`
			Swaps          []SwapRecord `json:"swaps,omitempty"`
		}{Generation: ring.generation, Swaps: r.SwapHistory()}
		if !ring.swappedAt.IsZero() {
			resp.LastSwapUnixMs = ring.swappedAt.UnixMilli()
		}
		for _, s := range ring.shards {
			resp.Shards = append(resp.Shards, shardInfo{ID: s.ID, Addr: s.Addr})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// ProbeTargets returns one health-probe target per shard, keyed like
// the per-shard breakers, pinging the shard gateway's /v1/healthz.
// Every probe's outcome is remembered for ShardHealth.
func (r *Router) ProbeTargets() []resilience.ProbeTarget {
	shards := r.ring.Load().shards
	out := make([]resilience.ProbeTarget, len(shards))
	for i, s := range shards {
		id, addr := s.ID, s.Addr
		out[i] = resilience.ProbeTarget{Name: id, Ping: func(ctx context.Context) error {
			err := r.ping(ctx, addr)
			res := probeResult{at: time.Now()}
			if err != nil {
				res.err = err.Error()
			}
			r.probeMu.Lock()
			r.lastProbe[id] = res
			r.probeMu.Unlock()
			return err
		}}
	}
	return out
}

// ShardHealth summarizes every shard's health as the router sees it:
// the breaker state gating its traffic plus the latest background probe
// outcome. Wire it into gateway.Options.ShardHealth so the router's
// /v1/healthz answers for the whole fleet behind it. (The prober only
// probes non-closed breakers, so a shard that never failed reports no
// probe result — absence of evidence is health here.)
func (r *Router) ShardHealth() []wire.ShardHealth {
	shards := r.ring.Load().shards
	out := make([]wire.ShardHealth, len(shards))
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	for i, s := range shards {
		state := r.breakers.Get(s.ID).State().String()
		sh := wire.ShardHealth{
			ID:      s.ID,
			Addr:    s.Addr,
			Breaker: state,
			Healthy: state != "open",
		}
		if p, ok := r.lastProbe[s.ID]; ok {
			sh.LastProbe = p.err
			if p.err == "" {
				sh.LastProbe = "ok"
			}
			sh.LastProbeUnixMs = p.at.UnixMilli()
		}
		out[i] = sh
	}
	return out
}

// StartHealthProbes launches a background prober that re-admits
// recovered shards. Returns the prober; call Stop on shutdown.
func (r *Router) StartHealthProbes(opts resilience.ProberOptions) *resilience.Prober {
	if opts.Metrics == nil {
		opts.Metrics = r.reg
	}
	p := resilience.NewProber(r.breakers, r.ProbeTargets(), opts)
	r.proberMu.Lock()
	r.prober = p
	r.proberMu.Unlock()
	p.Start()
	return p
}

func (r *Router) ping(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+gateway.PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: shard %s health: HTTP %d", addr, resp.StatusCode)
	}
	return nil
}

// shardReply is one shard's answer (or failure).
type shardReply struct {
	shard   string
	reply   *gateway.SearchReply
	err     error
	skipped bool // breaker held the call back
}

// SearchExplained implements gateway.Searcher: scatter to every shard,
// gather, merge. It errors only when no shard produced an answer.
func (r *Router) SearchExplained(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error) {
	return r.searchExplained(ctx, query, maxDBs, perDB, nil)
}

// SearchExplainedObserved implements gateway.StreamSearcher for the
// cluster plane: the scatter consumes each shard's NDJSON event stream
// instead of its blocking reply, re-merging progress cluster-wide as it
// arrives (see streamMerger), and the returned response — built by the
// same merge over the same shard replies — is bit-identical to
// SearchExplained's. A nil obs is SearchExplained.
func (r *Router) SearchExplainedObserved(ctx context.Context, query string, maxDBs, perDB int, obs repro.SearchEvents) (*repro.SearchResponse, error) {
	return r.searchExplained(ctx, query, maxDBs, perDB, obs)
}

func (r *Router) searchExplained(ctx context.Context, query string, maxDBs, perDB int, obs repro.SearchEvents) (*repro.SearchResponse, error) {
	r.requests.Inc()
	start := time.Now()
	attrs := []telemetry.Attr{
		telemetry.String("query", query),
		telemetry.Int("max_dbs", maxDBs),
		telemetry.Int("per_db", perDB)}
	var span *telemetry.Span
	// Join the caller's trace when one was propagated (the gateway puts
	// the extracted context in ctx); otherwise this fan-out roots it.
	if remote := telemetry.RemoteFromContext(ctx); remote.Valid() {
		span = r.tracer.SpanWithRemoteParent("router.search", remote, attrs...)
	} else {
		span = r.tracer.Span("router.search", attrs...)
	}
	defer span.End()

	if _, ok := ctx.Deadline(); !ok && r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}

	// One ring snapshot per query: a topology swap mid-flight never
	// changes this query's fan-out set.
	shards := r.ring.Load().shards
	sm := newStreamMerger(obs)
	replies := make([]shardReply, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		replies[i].shard = s.ID
		b := r.breakers.Get(s.ID)
		if !b.Allow() {
			replies[i].skipped = true
			r.shardSkips.Inc()
			span.Event("router.shard_skipped", telemetry.String("shard", s.ID))
			continue
		}
		wg.Add(1)
		go func(i int, s shardmap.Shard, b *resilience.Breaker) {
			defer wg.Done()
			r.shardCalls.Inc()
			var reply *gateway.SearchReply
			var err error
			if sm != nil {
				// Streamed scatter: progress frames re-merge as they
				// arrive. No budget retry — replaying half a consumed
				// stream would double-narrate the shard's progress; a
				// failed shard costs coverage exactly as a blocking
				// failure after retry would.
				reply, err = r.callShardStream(ctx, span, i, s, query, maxDBs, perDB, sm)
			} else {
				reply, err = r.callShard(ctx, span, s, query, maxDBs, perDB)
				if err != nil && r.budget != nil && ctx.Err() == nil && !wire.IsShed(err) && r.budget.TrySpend() {
					// One budget-funded retry against the same shard; the
					// breaker records only the final outcome.
					r.shardRetries.Inc()
					span.Event("router.shard_retry", telemetry.String("shard", s.ID))
					reply, err = r.callShard(ctx, span, s, query, maxDBs, perDB)
				}
			}
			if err == nil {
				r.budget.RecordSuccess()
			}
			replies[i].reply, replies[i].err = reply, err
			switch {
			case err == nil:
				b.Record(true)
			case ctx.Err() != nil || wire.IsShed(err):
				// The caller gave up, or the shard shed under load:
				// neither is evidence the shard is down.
				b.RecordNeutral()
			default:
				b.Record(false)
			}
			if err != nil {
				r.shardErrors.Inc()
				span.Event("router.shard_error",
					telemetry.String("shard", s.ID),
					telemetry.String("error", err.Error()))
			}
		}(i, s, b)
	}
	wg.Wait()
	fanout := time.Since(start)
	r.reg.Histogram("router_fanout_latency", nil).ObserveExemplar(fanout.Seconds(), span.Context().TraceID)

	tMerge := time.Now()
	resp, ok := r.merge(replies, query)
	r.reg.Histogram("router_merge_latency", nil).Observe(time.Since(tMerge).Seconds())
	if !ok {
		r.errors.Inc()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		errs := make([]error, 0, len(replies))
		for _, sr := range replies {
			if sr.err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", sr.shard, sr.err))
			} else if sr.skipped {
				errs = append(errs, fmt.Errorf("%s: breaker open", sr.shard))
			}
		}
		return nil, fmt.Errorf("router: no shard answered: %w", errors.Join(errs...))
	}
	resp.Elapsed = time.Since(start)
	resp.Stages.Fanout = fanout.Seconds()
	resp.Stages.Merge = time.Since(tMerge).Seconds()
	if id := span.Context().TraceID; id != "" {
		resp.TraceID = id
	}
	return resp, nil
}

// callShard runs one shard's /v1/search call and decodes the reply.
func (r *Router) callShard(ctx context.Context, span *telemetry.Span, s shardmap.Shard, query string, maxDBs, perDB int) (*gateway.SearchReply, error) {
	q := url.Values{}
	q.Set("q", query)
	if maxDBs > 0 {
		q.Set("k", strconv.Itoa(maxDBs))
	}
	if perDB > 0 {
		q.Set("perdb", strconv.Itoa(perDB))
	}
	u := "http://" + s.Addr + gateway.PathSearch + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	telemetry.Inject(span.Context(), req.Header)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wire.DecodeError(resp)
	}
	var reply gateway.SearchReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("decoding shard %s reply: %w", s.ID, err)
	}
	return &reply, nil
}

// merge combines the shard rankings into a single response, reproducing
// the in-process fan-out's deterministic order exactly. Provenance
// (terms, scorer, selections, cache flags) comes from the first
// successful shard in sorted-ID order — selections are identical on
// every shard by the shrinkage invariant, so any shard's copy is the
// cluster's.
func (r *Router) merge(replies []shardReply, query string) (*repro.SearchResponse, bool) {
	resp := &repro.SearchResponse{Query: query, CacheHit: true, SelectionCacheHit: true, Collapsed: true}
	var results []repro.Result
	answered := 0
	for _, sr := range replies {
		if sr.reply == nil {
			continue
		}
		rep := sr.reply
		if answered == 0 {
			resp.TraceID = rep.TraceID
			resp.Terms = rep.Terms
			resp.Scorer = rep.Scorer
			for _, s := range rep.Selections {
				resp.Selections = append(resp.Selections, repro.Selection{
					Database: s.Database, Score: s.Score, Shrinkage: s.Shrinkage})
			}
			if rep.Stages != nil {
				resp.Stages.Cache = rep.Stages.Cache
				resp.Stages.Selection = rep.Stages.Selection
			}
		}
		answered++
		// The cluster answer is cached/collapsed only if every shard's
		// share was.
		resp.CacheHit = resp.CacheHit && rep.ResultHit
		resp.SelectionCacheHit = resp.SelectionCacheHit && rep.SelectionHit
		resp.Collapsed = resp.Collapsed && rep.Collapsed
		for _, h := range rep.Results {
			results = append(results, repro.Result{Database: h.Database, DocID: h.DocID, Score: h.Score})
		}
	}
	if answered == 0 {
		return nil, false
	}
	resp.Results = sortDedup(results, r.dedupDrops)
	return resp, true
}

// sortDedup applies the cluster merge's tail in place: the in-process
// merge's exact tie-break (score descending, then database name, then
// doc id), then first-wins deduplication of (database, doc id) pairs —
// replicated databases are owned by several shards and arrive once per
// owner with identical scores. drops, when non-nil, counts the
// duplicates removed (the final merge feeds router_dedup_dropped_total;
// streamed partial merges pass nil so re-merging the same replicas per
// progress frame does not inflate the counter).
func sortDedup(results []repro.Result, drops *telemetry.Counter) []repro.Result {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		if results[i].Database != results[j].Database {
			return results[i].Database < results[j].Database
		}
		return results[i].DocID < results[j].DocID
	})
	seen := make(map[resultKey]bool, len(results))
	merged := results[:0]
	for _, h := range results {
		k := resultKey{h.Database, h.DocID}
		if seen[k] {
			drops.Inc()
			continue
		}
		seen[k] = true
		merged = append(merged, h)
	}
	return merged
}

type resultKey struct {
	db string
	id int
}

// streamMerger re-merges per-shard progress frames into cluster-wide
// observer events. Selection frames are identical on every shard (the
// shrinkage invariant), so the first one becomes the cluster's;
// node_result frames are deduplicated by database (replicas report the
// same node) and out-of-scope frames dropped (the owning shard reports
// the real outcome); each shard merge_update replaces that shard's
// partial, and the cluster partial — concat, sort, dedup, exactly the
// final merge's tail — is re-emitted after every change.
type streamMerger struct {
	obs repro.SearchEvents

	mu       sync.Mutex
	total    int             // len(selections), once the first selection lands
	selected bool            // selection forwarded
	nodeSeen map[string]bool // database → node_result forwarded
	partials map[int][]repro.Result
}

// newStreamMerger returns nil for a nil observer, so the blocking path
// pays nothing.
func newStreamMerger(obs repro.SearchEvents) *streamMerger {
	if obs == nil {
		return nil
	}
	return &streamMerger{
		obs:      obs,
		nodeSeen: make(map[string]bool),
		partials: make(map[int][]repro.Result),
	}
}

func (sm *streamMerger) onSelection(sel gateway.StreamSelection) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.selected {
		return
	}
	sm.selected = true
	sm.total = len(sel.Selections)
	sels := make([]repro.Selection, 0, len(sel.Selections))
	for _, s := range sel.Selections {
		sels = append(sels, repro.Selection{
			Database: s.Database, Score: s.Score, Shrinkage: s.Shrinkage})
	}
	sm.obs.Selection(sels, sel.Terms, sel.Scorer)
}

func (sm *streamMerger) onNodeResult(nr gateway.StreamNodeResult) {
	if nr.OutOfScope {
		return
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.nodeSeen[nr.Database] {
		return
	}
	sm.nodeSeen[nr.Database] = true
	sm.obs.NodeResult(repro.NodeEvent{
		Database:       nr.Database,
		Results:        nr.Results,
		LatencySeconds: nr.LatencySeconds,
		Error:          nr.Error,
		BreakerOpen:    nr.BreakerOpen,
		Unavailable:    nr.Unavailable,
		Completed:      len(sm.nodeSeen),
		Total:          sm.total,
	})
}

// onPartial replaces one shard's latest partial merge and re-emits the
// cluster partial over every shard's current state.
func (sm *streamMerger) onPartial(shard int, results []gateway.Result) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	part := make([]repro.Result, 0, len(results))
	for _, h := range results {
		part = append(part, repro.Result{Database: h.Database, DocID: h.DocID, Score: h.Score})
	}
	sm.partials[shard] = part
	var all []repro.Result
	for _, p := range sm.partials {
		all = append(all, p...)
	}
	sm.obs.MergeUpdate(sortDedup(all, nil))
}

// callShardStream runs one shard's /v1/search/stream call in NDJSON,
// feeding progress frames through the merger and returning the reply
// carried by the shard's terminal frame — the byte-identical payload
// callShard would have decoded from /v1/search.
func (r *Router) callShardStream(ctx context.Context, span *telemetry.Span, idx int, s shardmap.Shard, query string, maxDBs, perDB int, sm *streamMerger) (*gateway.SearchReply, error) {
	q := url.Values{}
	q.Set("q", query)
	if maxDBs > 0 {
		q.Set("k", strconv.Itoa(maxDBs))
	}
	if perDB > 0 {
		q.Set("perdb", strconv.Itoa(perDB))
	}
	q.Set("format", "ndjson")
	u := "http://" + s.Addr + gateway.PathSearchStream + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	telemetry.Inject(span.Context(), req.Header)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wire.DecodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxStreamFrame)
	var final *gateway.SearchReply
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f evtstream.Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return nil, fmt.Errorf("shard %s stream: malformed frame: %w", s.ID, err)
		}
		switch f.Type {
		case evtstream.TypeSelection:
			var sel gateway.StreamSelection
			if err := json.Unmarshal(f.Data, &sel); err == nil {
				sm.onSelection(sel)
			}
		case evtstream.TypeNodeResult:
			var nr gateway.StreamNodeResult
			if err := json.Unmarshal(f.Data, &nr); err == nil {
				sm.onNodeResult(nr)
			}
		case evtstream.TypeMergeUpdate:
			var mu gateway.StreamMergeUpdate
			if err := json.Unmarshal(f.Data, &mu); err == nil {
				sm.onPartial(idx, mu.Results)
			}
		case evtstream.TypeFinal:
			var reply gateway.SearchReply
			if err := json.Unmarshal(f.Data, &reply); err != nil {
				return nil, fmt.Errorf("shard %s stream: malformed final frame: %w", s.ID, err)
			}
			final = &reply
			sm.onPartial(idx, reply.Results)
		case evtstream.TypeError:
			var se gateway.StreamError
			if err := json.Unmarshal(f.Data, &se); err != nil {
				return nil, fmt.Errorf("shard %s stream: malformed error frame: %w", s.ID, err)
			}
			return nil, fmt.Errorf("shard %s stream error (%s): %s", s.ID, se.Code, se.Message)
		}
		// Heartbeats and unknown (newer-schema droppable) frames are
		// skipped: the stream contract keys on the critical types.
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("shard %s stream: %w", s.ID, err)
	}
	if final == nil {
		return nil, fmt.Errorf("shard %s stream ended without a terminal frame", s.ID)
	}
	return final, nil
}

// maxStreamFrame bounds one NDJSON frame read from a shard stream.
const maxStreamFrame = 8 << 20
