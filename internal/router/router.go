// Package router is the scatter-gather front of a sharded metasearcher
// cluster. A Router owns no summaries and makes no selection decisions:
// it fans each query out to every shard's gateway (each shard is a full
// metasearcher process that loaded the complete summary store but only
// its topology slice of live database connections), collects the
// per-shard rankings, and merges them deterministically into exactly
// the answer a single-process metasearcher would have produced.
//
// The merge identity rests on the shrinkage invariant documented on
// repro.LoadFiltered: every shard computes selection scores from the
// identical collection-wide statistics, so the per-document merged
// scores (selection score normalized over the selected set, discounted
// by in-database rank) are bit-identical across shards. The router then
// only has to concatenate, sort by the fan-out's exact tie-break
// (score descending, database ascending, doc id ascending), and drop
// duplicate (database, doc id) pairs — duplicates exist precisely when
// the topology's replication places one database on several shards.
//
// Shards are peers of the wire protocol's operational conventions: each
// has a circuit breaker (keyed by shard ID, on the router's
// resilience.Set), a shed (429) reply is backpressure rather than
// failure, and a background prober re-admits recovered shards. A query
// succeeds if at least one shard answers; shards the breaker holds back
// or that fail mid-query cost coverage (their databases go unranked),
// never availability.
//
// Router implements gateway.Searcher, so the standard gateway serves
// the cluster under the same /v1/search API a single process exposes.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options configures a Router.
type Options struct {
	// Client issues the shard HTTP calls (default: a client with
	// Timeout as its overall bound; the per-request context governs
	// cancellation either way).
	Client *http.Client
	// Timeout bounds each shard call when the incoming request carries
	// no deadline of its own (default 10s; zero keeps the default, use
	// a negative value for unbounded).
	Timeout time.Duration
	// Breakers tracks one circuit breaker per shard, keyed by shard ID.
	// Nil builds a private set with default BreakerOptions.
	Breakers *resilience.Set
	// Metrics receives the router_* series (may be nil).
	Metrics *telemetry.Registry
	// Tracer traces the scatter-gather (may be nil). Shard calls carry
	// the trace context in the standard propagation headers.
	Tracer *telemetry.Tracer
}

// Router fans queries out to every shard and merges the rankings. It
// implements gateway.Searcher; wrap it in gateway.New to serve HTTP.
type Router struct {
	shards   []shardmap.Shard // sorted by ID
	client   *http.Client
	timeout  time.Duration
	breakers *resilience.Set
	reg      *telemetry.Registry
	tracer   *telemetry.Tracer

	requests    *telemetry.Counter
	errors      *telemetry.Counter
	shardCalls  *telemetry.Counter
	shardErrors *telemetry.Counter
	shardSkips  *telemetry.Counter
	dedupDrops  *telemetry.Counter

	probeMu   sync.Mutex
	lastProbe map[string]probeResult // shard ID → latest background probe
}

// probeResult is the outcome of one background health probe.
type probeResult struct {
	err string // "" = ok
	at  time.Time
}

var _ gateway.Searcher = (*Router)(nil)

// New builds a Router over the topology's shards. The topology is
// validated; the routing table (which database lives on which shard) is
// the shards' own concern — the router fans out to all of them.
func New(topo *shardmap.Topology, opts Options) (*Router, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	shards := make([]shardmap.Shard, len(topo.Shards))
	copy(shards, topo.Shards)
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	breakers := opts.Breakers
	if breakers == nil {
		breakers = resilience.NewSet(resilience.BreakerOptions{}, opts.Metrics)
	}
	r := &Router{
		shards:      shards,
		client:      client,
		timeout:     timeout,
		breakers:    breakers,
		reg:         opts.Metrics,
		tracer:      opts.Tracer,
		requests:    opts.Metrics.Counter("router_requests_total"),
		errors:      opts.Metrics.Counter("router_errors_total"),
		shardCalls:  opts.Metrics.Counter("router_shard_calls_total"),
		shardErrors: opts.Metrics.Counter("router_shard_errors_total"),
		shardSkips:  opts.Metrics.Counter("router_shard_skipped_total"),
		dedupDrops:  opts.Metrics.Counter("router_dedup_dropped_total"),
		lastProbe:   make(map[string]probeResult),
	}
	// Pre-create the latency series so /metrics shows the schema at zero.
	opts.Metrics.Histogram("router_fanout_latency", nil)
	opts.Metrics.Histogram("router_merge_latency", nil)
	for _, d := range []struct{ name, help string }{
		{"router_requests_total", "Queries accepted by the cluster router."},
		{"router_errors_total", "Queries the router failed because no shard answered."},
		{"router_shard_calls_total", "Per-shard /v1/search calls issued by the router."},
		{"router_shard_errors_total", "Per-shard /v1/search calls that failed."},
		{"router_shard_skipped_total", "Per-shard calls held back by an open circuit breaker."},
		{"router_dedup_dropped_total", "Merged results dropped as duplicate (database, doc id) pairs from replicated shards."},
		{"router_fanout_latency", "Wall time of the scatter-gather over all shards, seconds."},
		{"router_merge_latency", "Wall time of the deterministic cluster merge, seconds."},
	} {
		opts.Metrics.Describe(d.name, d.help)
	}
	return r, nil
}

// Breakers exposes the per-shard breaker set (for /debug/breakers).
func (r *Router) Breakers() *resilience.Set { return r.breakers }

// Shards returns the fan-out targets in sorted-ID order.
func (r *Router) Shards() []shardmap.Shard {
	out := make([]shardmap.Shard, len(r.shards))
	copy(out, r.shards)
	return out
}

// ProbeTargets returns one health-probe target per shard, keyed like
// the per-shard breakers, pinging the shard gateway's /v1/healthz.
// Every probe's outcome is remembered for ShardHealth.
func (r *Router) ProbeTargets() []resilience.ProbeTarget {
	out := make([]resilience.ProbeTarget, len(r.shards))
	for i, s := range r.shards {
		id, addr := s.ID, s.Addr
		out[i] = resilience.ProbeTarget{Name: id, Ping: func(ctx context.Context) error {
			err := r.ping(ctx, addr)
			res := probeResult{at: time.Now()}
			if err != nil {
				res.err = err.Error()
			}
			r.probeMu.Lock()
			r.lastProbe[id] = res
			r.probeMu.Unlock()
			return err
		}}
	}
	return out
}

// ShardHealth summarizes every shard's health as the router sees it:
// the breaker state gating its traffic plus the latest background probe
// outcome. Wire it into gateway.Options.ShardHealth so the router's
// /v1/healthz answers for the whole fleet behind it. (The prober only
// probes non-closed breakers, so a shard that never failed reports no
// probe result — absence of evidence is health here.)
func (r *Router) ShardHealth() []wire.ShardHealth {
	out := make([]wire.ShardHealth, len(r.shards))
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	for i, s := range r.shards {
		state := r.breakers.Get(s.ID).State().String()
		sh := wire.ShardHealth{
			ID:      s.ID,
			Addr:    s.Addr,
			Breaker: state,
			Healthy: state != "open",
		}
		if p, ok := r.lastProbe[s.ID]; ok {
			sh.LastProbe = p.err
			if p.err == "" {
				sh.LastProbe = "ok"
			}
			sh.LastProbeUnixMs = p.at.UnixMilli()
		}
		out[i] = sh
	}
	return out
}

// StartHealthProbes launches a background prober that re-admits
// recovered shards. Returns the prober; call Stop on shutdown.
func (r *Router) StartHealthProbes(opts resilience.ProberOptions) *resilience.Prober {
	if opts.Metrics == nil {
		opts.Metrics = r.reg
	}
	p := resilience.NewProber(r.breakers, r.ProbeTargets(), opts)
	p.Start()
	return p
}

func (r *Router) ping(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+gateway.PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: shard %s health: HTTP %d", addr, resp.StatusCode)
	}
	return nil
}

// shardReply is one shard's answer (or failure).
type shardReply struct {
	shard   string
	reply   *gateway.SearchReply
	err     error
	skipped bool // breaker held the call back
}

// SearchExplained implements gateway.Searcher: scatter to every shard,
// gather, merge. It errors only when no shard produced an answer.
func (r *Router) SearchExplained(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error) {
	r.requests.Inc()
	start := time.Now()
	attrs := []telemetry.Attr{
		telemetry.String("query", query),
		telemetry.Int("max_dbs", maxDBs),
		telemetry.Int("per_db", perDB)}
	var span *telemetry.Span
	// Join the caller's trace when one was propagated (the gateway puts
	// the extracted context in ctx); otherwise this fan-out roots it.
	if remote := telemetry.RemoteFromContext(ctx); remote.Valid() {
		span = r.tracer.SpanWithRemoteParent("router.search", remote, attrs...)
	} else {
		span = r.tracer.Span("router.search", attrs...)
	}
	defer span.End()

	if _, ok := ctx.Deadline(); !ok && r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}

	replies := make([]shardReply, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		replies[i].shard = s.ID
		b := r.breakers.Get(s.ID)
		if !b.Allow() {
			replies[i].skipped = true
			r.shardSkips.Inc()
			span.Event("router.shard_skipped", telemetry.String("shard", s.ID))
			continue
		}
		wg.Add(1)
		go func(i int, s shardmap.Shard, b *resilience.Breaker) {
			defer wg.Done()
			r.shardCalls.Inc()
			reply, err := r.callShard(ctx, span, s, query, maxDBs, perDB)
			replies[i].reply, replies[i].err = reply, err
			switch {
			case err == nil:
				b.Record(true)
			case ctx.Err() != nil || wire.IsShed(err):
				// The caller gave up, or the shard shed under load:
				// neither is evidence the shard is down.
				b.RecordNeutral()
			default:
				b.Record(false)
			}
			if err != nil {
				r.shardErrors.Inc()
				span.Event("router.shard_error",
					telemetry.String("shard", s.ID),
					telemetry.String("error", err.Error()))
			}
		}(i, s, b)
	}
	wg.Wait()
	fanout := time.Since(start)
	r.reg.Histogram("router_fanout_latency", nil).ObserveExemplar(fanout.Seconds(), span.Context().TraceID)

	tMerge := time.Now()
	resp, ok := r.merge(replies, query)
	r.reg.Histogram("router_merge_latency", nil).Observe(time.Since(tMerge).Seconds())
	if !ok {
		r.errors.Inc()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		errs := make([]error, 0, len(replies))
		for _, sr := range replies {
			if sr.err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", sr.shard, sr.err))
			} else if sr.skipped {
				errs = append(errs, fmt.Errorf("%s: breaker open", sr.shard))
			}
		}
		return nil, fmt.Errorf("router: no shard answered: %w", errors.Join(errs...))
	}
	resp.Elapsed = time.Since(start)
	resp.Stages.Fanout = fanout.Seconds()
	resp.Stages.Merge = time.Since(tMerge).Seconds()
	if id := span.Context().TraceID; id != "" {
		resp.TraceID = id
	}
	return resp, nil
}

// callShard runs one shard's /v1/search call and decodes the reply.
func (r *Router) callShard(ctx context.Context, span *telemetry.Span, s shardmap.Shard, query string, maxDBs, perDB int) (*gateway.SearchReply, error) {
	q := url.Values{}
	q.Set("q", query)
	if maxDBs > 0 {
		q.Set("k", strconv.Itoa(maxDBs))
	}
	if perDB > 0 {
		q.Set("perdb", strconv.Itoa(perDB))
	}
	u := "http://" + s.Addr + gateway.PathSearch + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	telemetry.Inject(span.Context(), req.Header)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wire.DecodeError(resp)
	}
	var reply gateway.SearchReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("decoding shard %s reply: %w", s.ID, err)
	}
	return &reply, nil
}

// merge combines the shard rankings into a single response, reproducing
// the in-process fan-out's deterministic order exactly. Provenance
// (terms, scorer, selections, cache flags) comes from the first
// successful shard in sorted-ID order — selections are identical on
// every shard by the shrinkage invariant, so any shard's copy is the
// cluster's.
func (r *Router) merge(replies []shardReply, query string) (*repro.SearchResponse, bool) {
	resp := &repro.SearchResponse{Query: query, CacheHit: true, SelectionCacheHit: true, Collapsed: true}
	var results []repro.Result
	answered := 0
	for _, sr := range replies {
		if sr.reply == nil {
			continue
		}
		rep := sr.reply
		if answered == 0 {
			resp.TraceID = rep.TraceID
			resp.Terms = rep.Terms
			resp.Scorer = rep.Scorer
			for _, s := range rep.Selections {
				resp.Selections = append(resp.Selections, repro.Selection{
					Database: s.Database, Score: s.Score, Shrinkage: s.Shrinkage})
			}
			if rep.Stages != nil {
				resp.Stages.Cache = rep.Stages.Cache
				resp.Stages.Selection = rep.Stages.Selection
			}
		}
		answered++
		// The cluster answer is cached/collapsed only if every shard's
		// share was.
		resp.CacheHit = resp.CacheHit && rep.ResultHit
		resp.SelectionCacheHit = resp.SelectionCacheHit && rep.SelectionHit
		resp.Collapsed = resp.Collapsed && rep.Collapsed
		for _, h := range rep.Results {
			results = append(results, repro.Result{Database: h.Database, DocID: h.DocID, Score: h.Score})
		}
	}
	if answered == 0 {
		return nil, false
	}
	// The in-process merge's exact tie-break: score descending, then
	// database name, then doc id.
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		if results[i].Database != results[j].Database {
			return results[i].Database < results[j].Database
		}
		return results[i].DocID < results[j].DocID
	})
	// Replicated databases are owned by several shards and arrive once
	// per owner with identical scores; keep the first of each
	// (database, doc id) pair.
	seen := make(map[resultKey]bool, len(results))
	merged := results[:0]
	for _, h := range results {
		k := resultKey{h.Database, h.DocID}
		if seen[k] {
			r.dedupDrops.Inc()
			continue
		}
		seen[k] = true
		merged = append(merged, h)
	}
	resp.Results = merged
	return resp, true
}

type resultKey struct {
	db string
	id int
}
