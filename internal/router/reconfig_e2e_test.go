package router

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/gateway"
	"repro/internal/shardmap"
	"repro/internal/wire"
)

// The zero-downtime reconfiguration end-to-end test: steady query load
// runs through the router while one database's preferred replica is
// killed and the topology file is rewritten to drop it and add a
// replacement that sits behind a fault-injecting chaos proxy. The swap
// must lose zero queries, keep rankings bit-identical to the
// single-process baseline, put the replacement into live service, keep
// retry volume inside the cluster retry budget, and carry surviving
// replicas' breaker state across the swap.

func TestClusterReconfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full testbed and cluster")
	}
	dbs, lexicon := clusterTestbed(t, 4)

	// Offline build, shared by the baseline and every shard.
	builder := repro.New(clusterOptions(lexicon))
	for _, d := range dbs {
		if err := builder.AddDatabase(repro.NewLocalDatabaseFromTerms(d.name, d.docs), d.category); err != nil {
			t.Fatal(err)
		}
	}
	if err := builder.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stateFile := filepath.Join(dir, "state.json")
	if err := builder.SaveFile(stateFile); err != nil {
		t.Fatal(err)
	}

	// Two dbnode replicas per database. Replica 0 of dbs[0] is the one
	// the test kills; replica 1 of every database stays up throughout
	// (the baseline dials those, so it never notices).
	const numReplicas = 2
	replicaSrvs := make(map[string][]*httptest.Server, len(dbs))
	replicaAddrs := make(map[string][]string, len(dbs))
	for _, d := range dbs {
		for i := 0; i < numReplicas; i++ {
			srv := httptest.NewServer(wire.NewServer(
				repro.NewLocalDatabaseFromTerms(d.name, d.docs),
				wire.ServerOptions{Category: d.category}))
			t.Cleanup(srv.Close)
			replicaSrvs[d.name] = append(replicaSrvs[d.name], srv)
			replicaAddrs[d.name] = append(replicaAddrs[d.name], strings.TrimPrefix(srv.URL, "http://"))
		}
	}

	baseline := repro.New(clusterOptions(lexicon))
	for _, d := range dbs {
		rdb, err := repro.DialRemoteDatabase(context.Background(), replicaAddrs[d.name][1], repro.RemoteDatabaseOptions{
			Metrics: baseline.Metrics(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := baseline.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
	}
	if err := baseline.LoadFile(stateFile); err != nil {
		t.Fatal(err)
	}

	// The replacement replica for dbs[0]: a fresh dbnode behind a chaos
	// proxy injecting latency and a 25% error rate — below any breaker
	// threshold, but enough that the swap path must tolerate a flaky
	// newcomer without failing a single query (failover covers).
	replacement := httptest.NewServer(wire.NewServer(
		repro.NewLocalDatabaseFromTerms(dbs[0].name, dbs[0].docs),
		wire.ServerOptions{Category: dbs[0].category}))
	t.Cleanup(replacement.Close)
	proxy, err := chaos.New(replacement.URL, chaos.Options{
		Initial: chaos.Faults{LatencyMs: 2, ErrorRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)
	chaosAddr := strings.TrimPrefix(proxySrv.URL, "http://")

	// Topology v1 on disk, under a watcher — the same reconfiguration
	// path cmd/metasearch drives.
	topoFile := filepath.Join(dir, "topology.json")
	topo := &shardmap.Topology{
		Version: shardmap.TopologyVersion,
		Shards: []shardmap.Shard{
			{ID: "shard-00", Addr: "pending:0"},
			{ID: "shard-01", Addr: "pending:0"},
		},
	}
	for _, d := range dbs {
		topo.Databases = append(topo.Databases, shardmap.Database{
			Name:     d.name,
			Category: d.category,
			Replicas: replicaAddrs[d.name],
		})
	}

	// Boot the shards off topology v1 (addresses resolve as each shard
	// gateway comes up; the ring hashes only shard IDs).
	shardMs := make([]*repro.Metasearcher, len(topo.Shards))
	for i := range topo.Shards {
		assigns, err := topo.ShardAssignments(topo.Shards[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		sm := repro.New(clusterOptions(lexicon))
		keep := make(map[string]bool, len(assigns))
		for _, a := range assigns {
			rdb, err := repro.DialReplicatedDatabase(context.Background(), a.Replicas, repro.ReplicatedDatabaseOptions{
				Preferred: a.Preferred,
				Breakers:  sm.Breakers(),
				Metrics:   sm.Metrics(),
				Client:    repro.RemoteDatabaseOptions{Metrics: sm.Metrics(), Budget: sm.RetryBudget()},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.AddDatabase(rdb, rdb.Category()); err != nil {
				t.Fatal(err)
			}
			keep[a.Database] = true
		}
		if err := sm.LoadFileFiltered(stateFile, func(name string) bool { return keep[name] }); err != nil {
			t.Fatal(err)
		}
		shardMs[i] = sm
		// Health probes are the mechanism that earns a swapped-in
		// replica its traffic: its breaker is seeded half-open, and the
		// prober's successful trial closes it.
		stopProbes := sm.StartHealthProbes(25 * time.Millisecond)
		t.Cleanup(stopProbes)
		gw := httptest.NewServer(gateway.New(sm, gateway.Options{ShardID: topo.Shards[i].ID, Metrics: sm.Metrics()}))
		t.Cleanup(gw.Close)
		topo.Shards[i].Addr = strings.TrimPrefix(gw.URL, "http://")
	}
	if err := topo.SaveFile(topoFile); err != nil {
		t.Fatal(err)
	}
	watcher, err := shardmap.NewWatcher(topoFile, shardmap.WatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}

	rt, err := New(watcher.Snapshot().Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// One watcher feeds every plane, as in production (there each
	// process runs its own watcher over the shared file; the swap code
	// paths are identical). Shards reconcile replica sets; the router
	// swaps its ring.
	var swapReports sync.Map // shard index → *repro.TopologySwapReport
	for i, sm := range shardMs {
		i, sm := i, sm
		id := topo.Shards[i].ID
		watcher.Subscribe(func(snap *shardmap.Snapshot) {
			assigns, err := snap.Topology.ShardAssignments(id)
			if err != nil {
				t.Errorf("shard %s assignments at generation %d: %v", id, snap.Generation, err)
				return
			}
			ras := make([]repro.ReplicaAssignment, len(assigns))
			for j, a := range assigns {
				ras[j] = repro.ReplicaAssignment{
					Database: a.Database, Category: a.Category,
					Replicas: a.Replicas, Preferred: a.Preferred,
				}
			}
			rep, err := sm.ApplyReplicaAssignments(ras, repro.RemoteDatabaseOptions{Metrics: sm.Metrics()})
			if err != nil {
				t.Errorf("shard %s swap at generation %d: %v", id, snap.Generation, err)
				return
			}
			swapReports.Store(i, rep)
		})
	}
	watcher.Subscribe(func(snap *shardmap.Snapshot) {
		if _, err := rt.ApplyTopology(snap); err != nil {
			t.Errorf("router swap at generation %d: %v", snap.Generation, err)
		}
	})

	queries := []string{
		dbs[0].docs[0][0] + " " + dbs[0].docs[0][1],
		dbs[1].docs[0][0] + " " + dbs[1].docs[0][1],
		dbs[2].docs[0][0] + " " + dbs[2].docs[0][1],
		dbs[3].docs[0][0] + " " + dbs[3].docs[0][1],
	}

	// Steady load through the router across the whole reconfiguration.
	// Every query must succeed: a replica death and the swap both have
	// failover cover, so zero failed queries is a hard assertion.
	var (
		loadWG    sync.WaitGroup
		stop      = make(chan struct{})
		succeeded atomic.Int64
		failures  atomic.Int64
	)
	for g := 0; g < 4; g++ {
		loadWG.Add(1)
		go func(g int) {
			defer loadWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				if _, err := rt.SearchExplained(context.Background(), q, 3, 5); err != nil {
					failures.Add(1)
					t.Errorf("load query %q failed: %v", q, err)
				} else {
					succeeded.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)

	// Kill dbs[0]'s preferred replica mid-load...
	deadAddr := replicaAddrs[dbs[0].name][0]
	replicaSrvs[dbs[0].name][0].CloseClientConnections()
	replicaSrvs[dbs[0].name][0].Close()
	time.Sleep(100 * time.Millisecond)

	// ...then rewrite the topology: the dead replica is gone and the
	// chaos-proxied replacement is first in the list (so the owning
	// shard prefers it — the newcomer must take real traffic).
	next := *topo
	next.Databases = make([]shardmap.Database, len(topo.Databases))
	copy(next.Databases, topo.Databases)
	next.Databases[0].Replicas = []string{chaosAddr, replicaAddrs[dbs[0].name][1]}
	if err := next.SaveFile(topoFile); err != nil {
		t.Fatal(err)
	}
	// Beat filesystem mtime granularity so the stat-based watcher sees
	// the rewrite immediately.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(topoFile, future, future); err != nil {
		t.Fatal(err)
	}
	swapped, err := watcher.Poll()
	if err != nil || !swapped {
		t.Fatalf("watcher.Poll after rewrite: swapped=%v err=%v", swapped, err)
	}

	// Keep the load running on the new topology, then stop.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	loadWG.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d queries failed across the reconfiguration, want 0",
			failures.Load(), failures.Load()+succeeded.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("load loop issued no queries; the test exercised nothing")
	}

	if got := watcher.Generation(); got != 2 {
		t.Fatalf("watcher generation = %d, want 2", got)
	}
	if got := rt.Generation(); got != 2 {
		t.Fatalf("router generation = %d, want 2", got)
	}
	if st := rt.TopologyStatus(); st.Generation != 2 || st.LastSwapUnixMs == 0 {
		t.Fatalf("router TopologyStatus = %+v, want generation 2 with a swap timestamp", st)
	}

	// The owning shard's swap report records the replica exchange.
	var sawExchange bool
	swapReports.Range(func(_, v any) bool {
		rep := v.(*repro.TopologySwapReport)
		added, removed := rep.ReplicasAdded[dbs[0].name], rep.ReplicasRemoved[dbs[0].name]
		if len(added) == 1 && added[0] == chaosAddr && len(removed) == 1 && removed[0] == deadAddr {
			sawExchange = true
		}
		return true
	})
	if !sawExchange {
		t.Errorf("no shard's swap report shows %s exchanging %s for %s", dbs[0].name, deadAddr, chaosAddr)
	}

	// The replacement must enter live service: its half-open breaker
	// closes on the prober's first successful trial, after which the
	// owning shard prefers it (it is first in the new replica list).
	// Drive queries until the chaos proxy sees traffic.
	serveDeadline := time.Now().Add(10 * time.Second)
	for proxy.Stats().Proxied == 0 {
		if time.Now().After(serveDeadline) {
			t.Fatalf("chaos-proxied replacement replica never served traffic: %+v", proxy.Stats())
		}
		for _, q := range queries {
			if _, err := rt.SearchExplained(context.Background(), q, 3, 5); err != nil {
				t.Fatalf("post-swap query %q: %v", q, err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Rankings after the swap stay bit-identical to the single-process
	// baseline (the replacement serves the same database).
	for _, q := range queries {
		want, err := baseline.SearchExplained(context.Background(), q, 3, 5)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		got, err := rt.SearchExplained(context.Background(), q, 3, 5)
		if err != nil {
			t.Fatalf("cluster %q after swap: %v", q, err)
		}
		if !reflect.DeepEqual(want.Selections, got.Selections) {
			t.Errorf("selections diverge for %q after swap:\n single: %+v\ncluster: %+v", q, want.Selections, got.Selections)
		}
		if len(want.Results) == 0 {
			t.Fatalf("baseline returned no results for %q", q)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Errorf("rankings diverge for %q after swap:\n single: %+v\ncluster: %+v", q, want.Results, got.Results)
		}
	}

	// Breaker carryover and cleanup on the owning shard: the surviving
	// replica's breaker is still there, the dead replica's is gone once
	// its drain finishes, the newcomer's exists. Drain is asynchronous
	// (background goroutine polling in-flight counts), so wait briefly.
	deadKey := dbs[0].name + "@" + deadAddr
	deadline := time.Now().Add(5 * time.Second)
	for {
		names := make(map[string]bool)
		for _, b := range breakerNames(shardMs) {
			names[b] = true
		}
		if !names[deadKey] {
			if !names[dbs[0].name+"@"+chaosAddr] {
				t.Errorf("no breaker for the swapped-in replica %s@%s", dbs[0].name, chaosAddr)
			}
			if !names[dbs[0].name+"@"+replicaAddrs[dbs[0].name][1]] {
				t.Errorf("surviving replica's breaker did not carry over the swap")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("dead replica's breaker %s still present after drain deadline", deadKey)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Retry volume stays inside the cluster retry budget: per process,
	// retries + hedges ≤ ratio × successes + burst (defaults 0.2 / 10).
	for i, sm := range shardMs {
		reg := sm.Metrics()
		retries := reg.Counter("wire_client_retries_total").Value()
		hedges := reg.Counter("search_hedges_total").Value()
		succ := reg.Counter("wire_requests_total").Value() - reg.Counter("wire_request_errors_total").Value()
		bound := 0.2*float64(succ) + 10
		if float64(retries+hedges) > bound {
			t.Errorf("shard %d retry volume %d (retries %d + hedges %d) exceeds budget bound %.1f (successes %d)",
				i, retries+hedges, retries, hedges, bound, succ)
		}
	}
}

// breakerNames flattens every shard's breaker set into the keyed names.
func breakerNames(shardMs []*repro.Metasearcher) []string {
	var out []string
	for _, sm := range shardMs {
		for _, b := range sm.Breakers().Snapshot() {
			out = append(out, b.Database)
		}
	}
	return out
}
