package router

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/shardmap"
	"repro/internal/wire"
)

// The cluster end-to-end test: a 2-shard topology with 2 dbnode
// replicas per database must serve rankings bit-identical to a
// single-process metasearcher over the same save file, and keep serving
// them — without a single failed query — while one replica is down.

type clusterDB struct {
	name     string
	category string
	docs     [][]string
}

var (
	clusterOnce    sync.Once
	clusterDBs     []clusterDB
	clusterLexicon []string
	clusterErr     error
)

// clusterTestbed builds the TestScale Web testbed once and returns its
// first n databases in sanitized term space (the same mapping
// cmd/metasearch and cmd/dbnode apply).
func clusterTestbed(t testing.TB, n int) ([]clusterDB, []string) {
	t.Helper()
	clusterOnce.Do(func() {
		w, err := experiments.BuildWorld(experiments.Web, experiments.TestScale())
		if err != nil {
			clusterErr = err
			return
		}
		clusterLexicon = experiments.SanitizeAll(w.Lexicon)
		for _, db := range w.Bed.Databases {
			docs := make([][]string, db.Index.NumDocs())
			for id := range docs {
				docs[id] = experiments.SanitizeAll(db.Index.Doc(index.DocID(id)))
			}
			clusterDBs = append(clusterDBs, clusterDB{
				name:     db.Name,
				category: w.Bed.Tree.Node(db.Category).Name,
				docs:     docs,
			})
		}
	})
	if clusterErr != nil {
		t.Fatal(clusterErr)
	}
	if n > len(clusterDBs) {
		t.Fatalf("testbed has %d databases, need %d", len(clusterDBs), n)
	}
	return clusterDBs[:n], clusterLexicon
}

// clusterOptions disables the query caches so every search re-fans out:
// the replica-kill phase must exercise live failover, not cache hits.
func clusterOptions(lexicon []string) repro.Options {
	return repro.Options{
		SampleSize:    60,
		SeedLexicon:   lexicon,
		Seed:          1,
		KeepStopwords: true,
		NoStemming:    true,
		Cache:         repro.CacheConfig{Disable: true},
	}
}

func TestClusterMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full testbed and cluster")
	}
	dbs, lexicon := clusterTestbed(t, 4)

	// Offline build: summaries from in-process databases, saved once;
	// the baseline and every shard load this same file.
	builder := repro.New(clusterOptions(lexicon))
	for _, d := range dbs {
		if err := builder.AddDatabase(repro.NewLocalDatabaseFromTerms(d.name, d.docs), d.category); err != nil {
			t.Fatal(err)
		}
	}
	if err := builder.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	stateFile := filepath.Join(t.TempDir(), "state.json")
	if err := builder.SaveFile(stateFile); err != nil {
		t.Fatal(err)
	}

	// Every database runs as 2 identical dbnode replicas.
	const numReplicas = 2
	replicaSrvs := make(map[string][]*httptest.Server, len(dbs))
	replicaAddrs := make(map[string][]string, len(dbs))
	for _, d := range dbs {
		for i := 0; i < numReplicas; i++ {
			srv := httptest.NewServer(wire.NewServer(
				repro.NewLocalDatabaseFromTerms(d.name, d.docs),
				wire.ServerOptions{Category: d.category}))
			t.Cleanup(srv.Close)
			replicaSrvs[d.name] = append(replicaSrvs[d.name], srv)
			replicaAddrs[d.name] = append(replicaAddrs[d.name], strings.TrimPrefix(srv.URL, "http://"))
		}
	}

	// The single-process baseline: all databases live, the complete
	// save file, no sharding. It dials replica 1 of each database, so
	// killing replica 0 later hits only the cluster's preferred
	// replicas, never the baseline.
	baseline := repro.New(clusterOptions(lexicon))
	for _, d := range dbs {
		rdb, err := repro.DialRemoteDatabase(context.Background(), replicaAddrs[d.name][1], repro.RemoteDatabaseOptions{
			Metrics: baseline.Metrics(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := baseline.AddDatabase(rdb, rdb.Category()); err != nil {
			t.Fatal(err)
		}
	}
	if err := baseline.LoadFile(stateFile); err != nil {
		t.Fatal(err)
	}

	// The topology: 2 shards, each database on 1 owning shard, served
	// by its 2 replica processes.
	topo := &shardmap.Topology{
		Version: shardmap.TopologyVersion,
		// Addrs are placeholders until each shard's gateway is up; the
		// ring only hashes shard IDs, so assignments are already final.
		Shards: []shardmap.Shard{
			{ID: "shard-00", Addr: "pending:0"},
			{ID: "shard-01", Addr: "pending:0"},
		},
	}
	for _, d := range dbs {
		topo.Databases = append(topo.Databases, shardmap.Database{
			Name:     d.name,
			Category: d.category,
			Replicas: replicaAddrs[d.name],
		})
	}

	// Boot each shard: a full metasearcher whose live handles are
	// ReplicatedDatabases over its consistent-hash slice, loading the
	// complete save file scoped to that slice.
	shardMs := make([]*repro.Metasearcher, len(topo.Shards))
	for i := range topo.Shards {
		assigns, err := topo.ShardAssignments(topo.Shards[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(assigns) == 0 {
			t.Fatalf("shard %s owns no databases; the bounded-load ring should spread 4 dbs over 2 shards", topo.Shards[i].ID)
		}
		sm := repro.New(clusterOptions(lexicon))
		keep := make(map[string]bool, len(assigns))
		for _, a := range assigns {
			rdb, err := repro.DialReplicatedDatabase(context.Background(), a.Replicas, repro.ReplicatedDatabaseOptions{
				Preferred: a.Preferred,
				Breakers:  sm.Breakers(),
				Metrics:   sm.Metrics(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.AddDatabase(rdb, rdb.Category()); err != nil {
				t.Fatal(err)
			}
			keep[a.Database] = true
		}
		if err := sm.LoadFileFiltered(stateFile, func(name string) bool { return keep[name] }); err != nil {
			t.Fatal(err)
		}
		shardMs[i] = sm

		gw := httptest.NewServer(gateway.New(sm, gateway.Options{ShardID: topo.Shards[i].ID, Metrics: sm.Metrics()}))
		t.Cleanup(gw.Close)
		topo.Shards[i].Addr = strings.TrimPrefix(gw.URL, "http://")
	}

	rt, err := New(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		dbs[0].docs[0][0] + " " + dbs[0].docs[0][1],
		dbs[1].docs[0][0] + " " + dbs[1].docs[0][1],
		dbs[2].docs[0][0] + " " + dbs[2].docs[0][1],
		dbs[3].docs[0][0] + " " + dbs[3].docs[0][1],
	}

	assertIdentical := func(phase string) {
		t.Helper()
		for _, q := range queries {
			want, err := baseline.SearchExplained(context.Background(), q, 3, 5)
			if err != nil {
				t.Fatalf("%s: baseline %q: %v", phase, q, err)
			}
			got, err := rt.SearchExplained(context.Background(), q, 3, 5)
			if err != nil {
				t.Fatalf("%s: cluster %q: %v", phase, q, err)
			}
			if !reflect.DeepEqual(want.Selections, got.Selections) {
				t.Errorf("%s: selections diverge for %q:\n single: %+v\ncluster: %+v",
					phase, q, want.Selections, got.Selections)
			}
			if len(want.Results) == 0 {
				t.Fatalf("%s: baseline returned no results for %q; the query is not exercising the pipeline", phase, q)
			}
			if !reflect.DeepEqual(want.Results, got.Results) {
				t.Errorf("%s: rankings diverge for %q:\n single: %+v\ncluster: %+v",
					phase, q, want.Results, got.Results)
			}
			if !reflect.DeepEqual(want.Terms, got.Terms) || want.Scorer != got.Scorer {
				t.Errorf("%s: provenance diverges for %q: terms %v/%v scorer %q/%q",
					phase, q, want.Terms, got.Terms, want.Scorer, got.Scorer)
			}
		}
	}

	assertIdentical("all replicas up")

	// A shard that selected an out-of-scope database must have skipped
	// it (another shard served it) — that is what sharding divides.
	var outOfScope int64
	for _, sm := range shardMs {
		outOfScope += sm.Metrics().Counter("search_out_of_scope_total").Value()
	}
	if outOfScope == 0 {
		t.Error("no shard skipped an out-of-scope database; the scope filter is not engaged")
	}

	// Kill replica 0 of every database — with replication 1 every
	// shard's Preferred is 0, so every replicated call now meets a dead
	// preferred replica first. Queries must keep succeeding with
	// bit-identical rankings: failover to replica 1, zero failed
	// queries. (The baseline is unaffected; it dialed replica 1.)
	for _, d := range dbs {
		replicaSrvs[d.name][0].CloseClientConnections()
		replicaSrvs[d.name][0].Close()
	}
	assertIdentical("preferred replica down")

	// Enough extra rounds that every selected database's dead replica
	// accumulates MinSamples failures even when the retry budget
	// suppresses hedged duplicates.
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			if _, err := rt.SearchExplained(context.Background(), q, 3, 5); err != nil {
				t.Fatalf("preferred replica down, requery %q: %v", q, err)
			}
		}
	}

	var failovers, exhausted int64
	openReplica := false
	for _, sm := range shardMs {
		failovers += sm.Metrics().Counter("replica_failover_total").Value()
		exhausted += sm.Metrics().Counter("replica_exhausted_total").Value()
		for _, b := range sm.Breakers().Snapshot() {
			if strings.Contains(b.Database, "@") && b.State != "closed" {
				openReplica = true
			}
		}
	}
	if failovers == 0 {
		t.Error("no replica failover recorded although a replica of every database is down")
	}
	if exhausted != 0 {
		t.Errorf("replica_exhausted_total = %d; with one live replica per database no call should exhaust", exhausted)
	}
	if !openReplica {
		t.Error("no per-replica breaker left the closed state after repeated failures")
	}
}
