package router

import (
	"context"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
)

// snapshotFor wraps a topology the way shardmap.Watcher publishes it.
func snapshotFor(topo *shardmap.Topology, gen int64) *shardmap.Snapshot {
	return &shardmap.Snapshot{Topology: topo, Generation: gen, LoadedAt: time.Now()}
}

func setStates(s *resilience.Set) map[string]string {
	out := make(map[string]string)
	for _, snap := range s.Snapshot() {
		out[snap.Database] = snap.State
	}
	return out
}

func TestApplyTopologyCarriesBreakerState(t *testing.T) {
	a := newFakeShard(t, reply())
	b := newFakeShard(t, reply())
	reg := telemetry.NewRegistry()
	breakers := resilience.NewSet(resilience.BreakerOptions{Window: 4, MinSamples: 2}, reg)
	rt, err := New(testTopology(a, b), Options{Metrics: reg, Breakers: breakers})
	if err != nil {
		t.Fatal(err)
	}

	// Trip shard-a's breaker: the swap must not forget it.
	ba := breakers.Get("shard-a")
	for i := 0; i < 4; i++ {
		ba.Allow()
		ba.Record(false)
	}
	if got := ba.State(); got != resilience.Open {
		t.Fatalf("shard-a breaker = %v, want open", got)
	}

	// New topology: shard-a survives (same addr), shard-b is removed,
	// shard-c appears.
	c := newFakeShard(t, reply())
	next := testTopology(a, b)
	next.Shards = []shardmap.Shard{
		{ID: "shard-a", Addr: a.addr()},
		{ID: "shard-c", Addr: c.addr()},
	}
	rec, err := rt.ApplyTopology(snapshotFor(next, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ShardsAdded) != 1 || rec.ShardsAdded[0] != "shard-c" {
		t.Fatalf("ShardsAdded = %v, want [shard-c]", rec.ShardsAdded)
	}
	if len(rec.ShardsRemoved) != 1 || rec.ShardsRemoved[0] != "shard-b" {
		t.Fatalf("ShardsRemoved = %v, want [shard-b]", rec.ShardsRemoved)
	}
	if rt.Generation() != 2 {
		t.Fatalf("Generation = %d, want 2", rt.Generation())
	}

	states := setStates(breakers)
	if states["shard-a"] != "open" {
		t.Fatalf("surviving shard-a breaker = %q, want open (state must carry over)", states["shard-a"])
	}
	if _, ok := states["shard-b"]; ok {
		t.Fatal("removed shard-b breaker still in the set")
	}
	// An added shard's breaker must start closed, not half-open: a
	// half-open breaker admits a single trial, and concurrent queries
	// would skip the newcomer and lose its coverage.
	if got := breakers.Get("shard-c").State(); got != resilience.Closed {
		t.Fatalf("added shard-c breaker = %v, want closed", got)
	}

	// The live fan-out uses the new ring: shard-a is held back by its
	// carried-over open breaker, so only shard-c answers; shard-b must
	// see no traffic.
	before := b.calls.Load()
	if _, err := rt.SearchExplained(context.Background(), "q", 0, 0); err != nil {
		t.Fatalf("search after swap: %v", err)
	}
	if b.calls.Load() != before {
		t.Fatal("removed shard-b still receives fan-out traffic")
	}
	if c.calls.Load() == 0 {
		t.Fatal("added shard-c received no fan-out traffic")
	}

	st := rt.TopologyStatus()
	if st.Generation != 2 || st.LastSwapUnixMs == 0 {
		t.Fatalf("TopologyStatus = %+v, want generation 2 with a swap timestamp", st)
	}
	if hist := rt.SwapHistory(); len(hist) != 1 || hist[0].Generation != 2 {
		t.Fatalf("SwapHistory = %+v, want one record at generation 2", hist)
	}
	if got := reg.Counter("router_topology_swaps_total").Value(); got != 1 {
		t.Fatalf("router_topology_swaps_total = %v, want 1", got)
	}
	if got := reg.Gauge("topology_generation").Value(); got != 2 {
		t.Fatalf("topology_generation gauge = %v, want 2", got)
	}
}

func TestApplyTopologyMovedShardKeepsBreaker(t *testing.T) {
	a := newFakeShard(t, reply())
	breakers := resilience.NewSet(resilience.BreakerOptions{Window: 4, MinSamples: 2}, nil)
	rt, err := New(testTopology(a), Options{Breakers: breakers})
	if err != nil {
		t.Fatal(err)
	}
	ba := breakers.Get("shard-a")
	for i := 0; i < 4; i++ {
		ba.Allow()
		ba.Record(false)
	}

	// Same shard ID at a new address: the breaker describes the
	// backend, so its state survives the move.
	moved := newFakeShard(t, reply())
	next := testTopology(a)
	next.Shards[0].Addr = moved.addr()
	rec, err := rt.ApplyTopology(snapshotFor(next, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ShardsMoved) != 1 || rec.ShardsMoved[0] != "shard-a" {
		t.Fatalf("ShardsMoved = %v, want [shard-a]", rec.ShardsMoved)
	}
	if got := breakers.Get("shard-a").State(); got != resilience.Open {
		t.Fatalf("moved shard-a breaker = %v, want open", got)
	}
	if got := rt.Shards()[0].Addr; got != moved.addr() {
		t.Fatalf("ring addr = %q, want %q", got, moved.addr())
	}
}

func TestApplyTopologyRejectsInvalid(t *testing.T) {
	a := newFakeShard(t, reply())
	rt, err := New(testTopology(a), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ApplyTopology(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	bad := testTopology(a)
	bad.Shards = nil
	if _, err := rt.ApplyTopology(snapshotFor(bad, 2)); err == nil {
		t.Fatal("shardless topology accepted")
	}
	if rt.Generation() != 1 {
		t.Fatalf("Generation = %d after rejected swaps, want 1", rt.Generation())
	}
}

func TestBudgetFundedShardRetry(t *testing.T) {
	a := newFakeShard(t, reply())
	a.status.Store(500) // persistent transient failure
	reg := telemetry.NewRegistry()
	budget := resilience.NewBudget(resilience.BudgetOptions{Ratio: 0.2, Burst: 1, Metrics: reg})
	rt, err := New(testTopology(a), Options{Metrics: reg, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SearchExplained(context.Background(), "q", 0, 0); err == nil {
		t.Fatal("want error with the only shard failing")
	}
	// Burst of 1: the first query's failure funds exactly one retry,
	// the next query's cannot.
	if got := a.calls.Load(); got != 2 {
		t.Fatalf("shard calls = %d, want 2 (first attempt + one funded retry)", got)
	}
	if _, err := rt.SearchExplained(context.Background(), "q", 0, 0); err == nil {
		t.Fatal("want error with the only shard failing")
	}
	if got := a.calls.Load(); got != 3 {
		t.Fatalf("shard calls = %d, want 3 (budget exhausted, no second retry)", got)
	}
	if got := reg.Counter("router_shard_retries_total").Value(); got != 1 {
		t.Fatalf("router_shard_retries_total = %v, want 1", got)
	}
	if got := reg.Counter("retry_budget_exhausted_total").Value(); got == 0 {
		t.Fatal("retry_budget_exhausted_total = 0, want refusals counted")
	}
}
