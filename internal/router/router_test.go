package router

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// fakeShard serves a canned gateway.SearchReply (or a canned failure)
// at /v1/search, and healthy /v1/healthz.
type fakeShard struct {
	t     *testing.T
	reply gateway.SearchReply
	// status != 0 forces an error response with that code.
	status atomic.Int64
	calls  atomic.Int64
	srv    *httptest.Server
}

func newFakeShard(t *testing.T, reply gateway.SearchReply) *fakeShard {
	f := &fakeShard{t: t, reply: reply}
	mux := http.NewServeMux()
	mux.HandleFunc(gateway.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		if f.status.Load() != 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc(gateway.PathSearch, func(w http.ResponseWriter, r *http.Request) {
		f.calls.Add(1)
		if code := int(f.status.Load()); code != 0 {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			wire.WriteError(w, code, wire.CodeUnavailable, "shard unhappy")
			return
		}
		json.NewEncoder(w).Encode(f.reply)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func testTopology(shards ...*fakeShard) *shardmap.Topology {
	topo := &shardmap.Topology{Version: shardmap.TopologyVersion}
	for i, f := range shards {
		topo.Shards = append(topo.Shards, shardmap.Shard{
			ID:   "shard-" + string(rune('a'+i)),
			Addr: f.addr(),
		})
	}
	// One database per shard keeps Validate happy; the router itself
	// never consults the assignment.
	for i := range shards {
		topo.Databases = append(topo.Databases, shardmap.Database{
			Name:     "db-" + string(rune('a'+i)) + ".example",
			Replicas: []string{"127.0.0.1:1"},
		})
	}
	return topo
}

func reply(results ...gateway.Result) gateway.SearchReply {
	return gateway.SearchReply{
		TraceID: "trace-1",
		Query:   "q",
		Terms:   []string{"q"},
		Scorer:  "cori",
		Selections: []gateway.Selection{
			{Database: "db-a.example", Score: 0.9, Shrinkage: true},
			{Database: "db-b.example", Score: 0.5},
		},
		Results: results,
	}
}

func TestMergeOrderAndTieBreaks(t *testing.T) {
	// Shard b's results interleave with shard a's; ties on score must
	// break by database name then doc id, regardless of arrival shard.
	a := newFakeShard(t, reply(
		gateway.Result{Database: "db-a.example", DocID: 2, Score: 0.9},
		gateway.Result{Database: "db-a.example", DocID: 7, Score: 0.45},
	))
	b := newFakeShard(t, reply(
		gateway.Result{Database: "db-b.example", DocID: 1, Score: 0.9},
		gateway.Result{Database: "db-b.example", DocID: 3, Score: 0.45},
		gateway.Result{Database: "db-a.example", DocID: 1, Score: 0.45},
	))
	rt, err := New(testTopology(a, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.SearchExplained(context.Background(), "q", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		db string
		id int
	}{
		{"db-a.example", 2}, // 0.9, db-a < db-b
		{"db-b.example", 1}, // 0.9
		{"db-a.example", 1}, // 0.45, doc 1 < doc 7
		{"db-a.example", 7},
		{"db-b.example", 3},
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d: %+v", len(resp.Results), len(want), resp.Results)
	}
	for i, w := range want {
		if resp.Results[i].Database != w.db || resp.Results[i].DocID != w.id {
			t.Errorf("results[%d] = %s/%d, want %s/%d",
				i, resp.Results[i].Database, resp.Results[i].DocID, w.db, w.id)
		}
	}
	// Provenance comes from the first shard in sorted-ID order.
	if resp.Scorer != "cori" || len(resp.Selections) != 2 || resp.Selections[0].Database != "db-a.example" {
		t.Errorf("provenance not adopted from first shard: %+v", resp)
	}
	if len(resp.Terms) != 1 || resp.Terms[0] != "q" {
		t.Errorf("terms = %v, want [q]", resp.Terms)
	}
}

func TestMergeDedupesReplicatedResults(t *testing.T) {
	// Both shards own db-a (replication 2): its hits arrive twice with
	// identical scores and must merge to one copy each.
	shared := []gateway.Result{
		{Database: "db-a.example", DocID: 1, Score: 0.8},
		{Database: "db-a.example", DocID: 2, Score: 0.4},
	}
	a := newFakeShard(t, reply(shared...))
	b := newFakeShard(t, reply(append([]gateway.Result{
		{Database: "db-b.example", DocID: 9, Score: 0.6},
	}, shared...)...))
	reg := telemetry.NewRegistry()
	rt, err := New(testTopology(a, b), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.SearchExplained(context.Background(), "q", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3 after dedup: %+v", len(resp.Results), resp.Results)
	}
	if reg.Counter("router_dedup_dropped_total").Value() != 2 {
		t.Errorf("dedup_dropped = %d, want 2", reg.Counter("router_dedup_dropped_total").Value())
	}
}

func TestPartialShardFailureKeepsServing(t *testing.T) {
	a := newFakeShard(t, reply(gateway.Result{Database: "db-a.example", DocID: 1, Score: 0.7}))
	b := newFakeShard(t, reply(gateway.Result{Database: "db-b.example", DocID: 2, Score: 0.5}))
	b.status.Store(http.StatusInternalServerError)
	reg := telemetry.NewRegistry()
	rt, err := New(testTopology(a, b), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.SearchExplained(context.Background(), "q", 3, 10)
	if err != nil {
		t.Fatalf("partial failure must not fail the query: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Database != "db-a.example" {
		t.Fatalf("expected only shard a's results, got %+v", resp.Results)
	}
	if reg.Counter("router_shard_errors_total").Value() != 1 {
		t.Errorf("shard_errors = %d, want 1", reg.Counter("router_shard_errors_total").Value())
	}
}

func TestAllShardsFailingErrors(t *testing.T) {
	a := newFakeShard(t, reply())
	b := newFakeShard(t, reply())
	a.status.Store(http.StatusInternalServerError)
	b.status.Store(http.StatusInternalServerError)
	rt, err := New(testTopology(a, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SearchExplained(context.Background(), "q", 3, 10); err == nil {
		t.Fatal("expected an error when every shard fails")
	}
}

func TestBreakerShortCircuitsFailingShard(t *testing.T) {
	a := newFakeShard(t, reply(gateway.Result{Database: "db-a.example", DocID: 1, Score: 0.7}))
	b := newFakeShard(t, reply())
	b.status.Store(http.StatusInternalServerError)
	reg := telemetry.NewRegistry()
	breakers := resilience.NewSet(resilience.BreakerOptions{
		Window: 4, MinSamples: 3, FailureThreshold: 0.5, Cooldown: time.Hour,
	}, reg)
	rt, err := New(testTopology(a, b), Options{Metrics: reg, Breakers: breakers})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := rt.SearchExplained(context.Background(), "q", 3, 10); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if st := breakers.Get("shard-b").State(); st != resilience.Open {
		t.Fatalf("shard-b breaker = %v, want Open", st)
	}
	before := b.calls.Load()
	if _, err := rt.SearchExplained(context.Background(), "q", 3, 10); err != nil {
		t.Fatal(err)
	}
	if b.calls.Load() != before {
		t.Error("open breaker did not short-circuit the failing shard")
	}
	if reg.Counter("router_shard_skipped_total").Value() == 0 {
		t.Error("router_shard_skipped_total did not count the short-circuit")
	}
}

func TestShedDoesNotTripBreaker(t *testing.T) {
	a := newFakeShard(t, reply(gateway.Result{Database: "db-a.example", DocID: 1, Score: 0.7}))
	b := newFakeShard(t, reply())
	b.status.Store(http.StatusTooManyRequests)
	reg := telemetry.NewRegistry()
	breakers := resilience.NewSet(resilience.BreakerOptions{
		Window: 4, MinSamples: 3, FailureThreshold: 0.5, Cooldown: time.Hour,
	}, reg)
	rt, err := New(testTopology(a, b), Options{Metrics: reg, Breakers: breakers})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := rt.SearchExplained(context.Background(), "q", 3, 10); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if st := breakers.Get("shard-b").State(); st != resilience.Closed {
		t.Fatalf("sheds tripped shard-b's breaker (state %v); they are backpressure, not failure", st)
	}
}

func TestProbeTargetsRecoverShard(t *testing.T) {
	a := newFakeShard(t, reply())
	rt, err := New(testTopology(a), Options{})
	if err != nil {
		t.Fatal(err)
	}
	targets := rt.ProbeTargets()
	if len(targets) != 1 || targets[0].Name != "shard-a" {
		t.Fatalf("targets = %+v", targets)
	}
	if err := targets[0].Ping(context.Background()); err != nil {
		t.Errorf("healthy shard ping failed: %v", err)
	}
	a.status.Store(http.StatusServiceUnavailable)
	if err := targets[0].Ping(context.Background()); err == nil {
		t.Error("draining shard ping succeeded")
	}
}

func TestCacheFlagsAreConjunctions(t *testing.T) {
	hit := reply(gateway.Result{Database: "db-a.example", DocID: 1, Score: 0.7})
	hit.ResultHit = true
	cold := reply(gateway.Result{Database: "db-b.example", DocID: 2, Score: 0.5})
	a := newFakeShard(t, hit)
	b := newFakeShard(t, cold)
	rt, err := New(testTopology(a, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.SearchExplained(context.Background(), "q", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("CacheHit true although one shard fanned out")
	}
}
