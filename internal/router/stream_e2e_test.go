package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/evtstream"
	"repro/internal/gateway"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// The streaming end-to-end test: with one shard's dbnodes behind a
// chaos latency proxy, a stream through the router must deliver the
// selection frame first, the fast shard's node results well before the
// delayed final frame, and a final frame identical to the blocking
// endpoint's answer; and a client that disconnects mid-stream must
// release the fan-out on every shard (search_inflight drains to zero).

// streamFrame is one received frame with its arrival time.
type streamFrame struct {
	typ  string
	at   time.Duration
	data json.RawMessage
}

// readStream consumes an NDJSON stream to completion.
func readStream(t *testing.T, baseURL, q string) []streamFrame {
	t.Helper()
	start := time.Now()
	resp, err := http.Get(streamURL(baseURL, q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	var frames []streamFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var f evtstream.Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, streamFrame{typ: f.Type, at: time.Since(start), data: f.Data})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

func streamURL(baseURL, q string) string {
	return baseURL + gateway.PathSearchStream + "?" + url.Values{
		"q": {q}, "k": {"3"}, "perdb": {"5"}, "format": {"ndjson"},
	}.Encode()
}

// normalizeReply strips the per-request fields (trace id, timings) so
// two requests for the same query compare on ranking and provenance.
func normalizeReply(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var rep gateway.SearchReply
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	rep.TraceID = ""
	rep.ElapsedSeconds = 0
	rep.Stages = nil
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fetchBlockingRaw(t *testing.T, baseURL, q string) json.RawMessage {
	t.Helper()
	resp, err := http.Get(baseURL + gateway.PathSearch + "?" + url.Values{
		"q": {q}, "k": {"3"}, "perdb": {"5"},
	}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blocking status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestClusterStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full testbed and cluster")
	}
	dbs, lexicon := clusterTestbed(t, 4)

	builder := repro.New(clusterOptions(lexicon))
	for _, d := range dbs {
		if err := builder.AddDatabase(repro.NewLocalDatabaseFromTerms(d.name, d.docs), d.category); err != nil {
			t.Fatal(err)
		}
	}
	if err := builder.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	stateFile := filepath.Join(t.TempDir(), "state.json")
	if err := builder.SaveFile(stateFile); err != nil {
		t.Fatal(err)
	}

	// One dbnode per database.
	directAddr := make(map[string]string, len(dbs))
	for _, d := range dbs {
		srv := httptest.NewServer(wire.NewServer(
			repro.NewLocalDatabaseFromTerms(d.name, d.docs),
			wire.ServerOptions{Category: d.category}))
		t.Cleanup(srv.Close)
		directAddr[d.name] = strings.TrimPrefix(srv.URL, "http://")
	}

	topo := &shardmap.Topology{
		Version: shardmap.TopologyVersion,
		Shards: []shardmap.Shard{
			{ID: "shard-00", Addr: "pending:0"},
			{ID: "shard-01", Addr: "pending:0"},
		},
	}
	for _, d := range dbs {
		topo.Databases = append(topo.Databases, shardmap.Database{
			Name: d.name, Category: d.category, Replicas: []string{directAddr[d.name]},
		})
	}

	// Every dbnode on shard-01's slice goes behind a chaos latency
	// proxy: that shard's fan-out stalls, so its node results — and the
	// final merge — arrive long after the fast shard's frames.
	const chaosDelay = 250 * time.Millisecond
	delayed, err := topo.ShardAssignments("shard-01")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range delayed {
		p, err := chaos.New("http://"+directAddr[a.Database], chaos.Options{
			Initial: chaos.Faults{LatencyMs: int(chaosDelay.Milliseconds())},
		})
		if err != nil {
			t.Fatal(err)
		}
		proxy := httptest.NewServer(p)
		t.Cleanup(proxy.Close)
		for i := range topo.Databases {
			if topo.Databases[i].Name == a.Database {
				topo.Databases[i].Replicas = []string{strings.TrimPrefix(proxy.URL, "http://")}
			}
		}
	}

	shardMs := make([]*repro.Metasearcher, len(topo.Shards))
	for i := range topo.Shards {
		assigns, err := topo.ShardAssignments(topo.Shards[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		sm := repro.New(clusterOptions(lexicon))
		keep := make(map[string]bool, len(assigns))
		for _, a := range assigns {
			rdb, err := repro.DialReplicatedDatabase(context.Background(), a.Replicas, repro.ReplicatedDatabaseOptions{
				Preferred: a.Preferred,
				Breakers:  sm.Breakers(),
				Metrics:   sm.Metrics(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.AddDatabase(rdb, rdb.Category()); err != nil {
				t.Fatal(err)
			}
			keep[a.Database] = true
		}
		if err := sm.LoadFileFiltered(stateFile, func(name string) bool { return keep[name] }); err != nil {
			t.Fatal(err)
		}
		shardMs[i] = sm
		gw := httptest.NewServer(gateway.New(sm, gateway.Options{ShardID: topo.Shards[i].ID, Metrics: sm.Metrics()}))
		t.Cleanup(gw.Close)
		topo.Shards[i].Addr = strings.TrimPrefix(gw.URL, "http://")
	}

	rt, err := New(topo, Options{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	rgw := httptest.NewServer(gateway.New(rt, gateway.Options{Metrics: telemetry.NewRegistry()}))
	t.Cleanup(rgw.Close)

	q := dbs[0].docs[0][0] + " " + dbs[0].docs[0][1]

	t.Run("frame ordering and final identity", func(t *testing.T) {
		frames := readStream(t, rgw.URL, q)
		if len(frames) == 0 {
			t.Fatal("stream produced no frames")
		}
		if frames[0].typ != evtstream.TypeSelection {
			t.Fatalf("first frame = %q, want selection", frames[0].typ)
		}
		var firstNode, final time.Duration
		var sawMerge bool
		var finalData json.RawMessage
		for _, f := range frames {
			switch f.typ {
			case evtstream.TypeNodeResult:
				if firstNode == 0 {
					firstNode = f.at
				}
			case evtstream.TypeMergeUpdate:
				sawMerge = true
			case evtstream.TypeFinal:
				final = f.at
				finalData = f.data
			}
		}
		if firstNode == 0 || final == 0 {
			t.Fatalf("stream missing node_result or final; frames: %+v", frameTypes(frames))
		}
		if !sawMerge {
			t.Errorf("stream carried no merge_update; frames: %+v", frameTypes(frames))
		}
		// The fast shard's first node result must beat the chaos-delayed
		// final by most of the injected latency.
		if final-firstNode < chaosDelay/2 {
			t.Errorf("first node_result at %v, final at %v: streaming bought < %v of early delivery",
				firstNode, final, chaosDelay/2)
		}

		// The final frame must be the blocking endpoint's answer — same
		// ranking, selections, terms, scorer — on the router plane...
		got := normalizeReply(t, finalData)
		want := normalizeReply(t, fetchBlockingRaw(t, rgw.URL, q))
		if !bytes.Equal(got, want) {
			t.Errorf("router streamed final != blocking:\n stream: %s\n block:  %s", got, want)
		}

		// ...and on the shard plane.
		shardURL := "http://" + topo.Shards[0].Addr
		sFrames := readStream(t, shardURL, q)
		var sFinal json.RawMessage
		for _, f := range sFrames {
			if f.typ == evtstream.TypeFinal {
				sFinal = f.data
			}
		}
		if sFinal == nil {
			t.Fatalf("shard stream has no final frame; frames: %+v", frameTypes(sFrames))
		}
		sGot := normalizeReply(t, sFinal)
		sWant := normalizeReply(t, fetchBlockingRaw(t, shardURL, q))
		if !bytes.Equal(sGot, sWant) {
			t.Errorf("shard streamed final != blocking:\n stream: %s\n block:  %s", sGot, sWant)
		}
	})

	t.Run("disconnect cancels fan-out", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL(rgw.URL, q), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		// Read the first frame so the stream is live, then wait until
		// the delayed shard is mid-fan-out before hanging up.
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadBytes('\n'); err != nil {
			t.Fatal(err)
		}
		delayedMs := shardMs[1]
		if err := waitFor(2*time.Second, func() bool {
			return delayedMs.Metrics().Gauge("search_inflight").Value() >= 1
		}); err != nil {
			t.Fatal("delayed shard never entered a search while the stream was open")
		}
		cancel()

		for i, sm := range shardMs {
			g := sm.Metrics().Gauge("search_inflight")
			if err := waitFor(5*time.Second, func() bool { return g.Value() == 0 }); err != nil {
				t.Errorf("shard %d search_inflight = %v after client disconnect, want 0", i, g.Value())
			}
		}
	})
}

func frameTypes(frames []streamFrame) []string {
	out := make([]string, len(frames))
	for i, f := range frames {
		out[i] = f.typ
	}
	return out
}

func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("condition not met within %v", d)
}
