// Package buildinfo derives a human-readable version string for this
// build, used wherever the process identifies itself to the outside
// world (the wire client's User-Agent, operational endpoints). It reads
// the toolchain-stamped module and VCS metadata, so no release process
// has to remember to bump a constant.
package buildinfo

import "runtime/debug"

// Version returns the build's version: the module version for released
// builds, the (possibly dirty-marked) VCS revision for source builds,
// or "dev" when the binary carries no build info (e.g. some test
// binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
