// Package freqest implements the paper's frequency-estimation technique
// (Appendix A) together with the "sample–resample" database size
// estimation of Si & Callan that it relies on (Section 5.2).
//
// During sampling, Mandelbrot laws f = β·r^α are fitted to the sample's
// rank/document-frequency curve at several sample sizes |S| (package
// sampling records these as checkpoints). Appendix A observes that α
// and log β grow roughly logarithmically with |S|:
//
//	α      = A1·log|S| + A2        (Equation 4a)
//	log β  = B1·log|S| + B2        (Equation 4b)
//
// Fitting A1, A2, B1, B2 by regression and substituting the estimated
// database size |D̂| for |S| extrapolates the law to the full database,
// giving the estimated document frequency of the sample word of rank r:
//
//	log f = (A1·log|D̂| + A2)·log r + B1·log|D̂| + B2   (Equation 5)
package freqest

import (
	"errors"
	"math"
	"sort"

	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/summary"
	"repro/internal/zipf"
)

// Estimator holds the fitted regression constants of Equations 4a/4b.
type Estimator struct {
	A1, A2 float64 // alpha = A1*log|S| + A2
	B1, B2 float64 // log(beta) = B1*log|S| + B2
}

// FitCheckpoints regresses the Mandelbrot parameters recorded during
// sampling against log sample size. With a single checkpoint the
// parameters are treated as size-independent (A1 = B1 = 0), which
// degrades gracefully to using the sample's own law.
func FitCheckpoints(cps []sampling.Checkpoint) (Estimator, error) {
	if len(cps) == 0 {
		return Estimator{}, errors.New("freqest: no checkpoints")
	}
	if len(cps) == 1 {
		return Estimator{
			A2: cps[0].Law.Alpha,
			B2: math.Log(cps[0].Law.Beta),
		}, nil
	}
	logS := make([]float64, len(cps))
	alphas := make([]float64, len(cps))
	logBetas := make([]float64, len(cps))
	for i, cp := range cps {
		logS[i] = math.Log(float64(cp.Size))
		alphas[i] = cp.Law.Alpha
		logBetas[i] = math.Log(cp.Law.Beta)
	}
	a1, a2, err := stats.LinearRegression(logS, alphas)
	if err != nil {
		// All checkpoints at the same size: fall back to constants.
		last := cps[len(cps)-1]
		return Estimator{A2: last.Law.Alpha, B2: math.Log(last.Law.Beta)}, nil
	}
	b1, b2, err := stats.LinearRegression(logS, logBetas)
	if err != nil {
		last := cps[len(cps)-1]
		return Estimator{A2: last.Law.Alpha, B2: math.Log(last.Law.Beta)}, nil
	}
	return Estimator{A1: a1, A2: a2, B1: b1, B2: b2}, nil
}

// LawAt extrapolates the Mandelbrot law to a collection of size n
// (Equations 4a/4b with |S| := n).
func (e Estimator) LawAt(n float64) zipf.Mandelbrot {
	if n < 1 {
		n = 1
	}
	logN := math.Log(n)
	return zipf.Mandelbrot{
		Alpha: e.A1*logN + e.A2,
		Beta:  math.Exp(e.B1*logN + e.B2),
	}
}

// EstimateSize implements sample–resample: for words whose true
// document frequency df(w) the database reported as a query match
// count, with s_w sample documents containing w out of |S|, each word
// yields the estimate |D̂| = df(w)·|S|/s_w. The median over the usable
// words is returned, which is robust to the heavy-tailed per-word
// noise. Dedicated resample probes (frequent sample words queried after
// sampling) are preferred: sampling-phase query words are
// self-selecting — their own query pulled their documents into the
// sample, deflating the estimate toward |S|.
func EstimateSize(sample *sampling.Sample, s *summary.Summary) (float64, error) {
	n := s.SampleSize
	if n == 0 {
		return 0, errors.New("freqest: summary has no sample")
	}
	type cand struct {
		word string
		sw   int
	}
	var cands []cand
	for w, matches := range sample.ResampleDF {
		if matches <= 0 {
			continue
		}
		if sw := s.SampleDF(w); sw >= 1 {
			cands = append(cands, cand{w, sw})
		}
	}
	if len(cands) == 0 {
		for w, matches := range sample.QueryDF {
			if matches <= 0 {
				continue
			}
			if sw := s.SampleDF(w); sw >= 2 {
				cands = append(cands, cand{w, sw})
			}
		}
	}
	if len(cands) == 0 {
		for w, matches := range sample.QueryDF {
			if matches <= 0 {
				continue
			}
			if sw := s.SampleDF(w); sw >= 1 {
				cands = append(cands, cand{w, sw})
			}
		}
	}
	if len(cands) == 0 {
		// No usable resample words: the best available estimate is the
		// sample itself.
		return float64(n), nil
	}
	ests := make([]float64, len(cands))
	for i, c := range cands {
		ests[i] = float64(sample.QueryDF[c.word]) * float64(n) / float64(c.sw)
	}
	sort.Float64s(ests)
	med := ests[len(ests)/2]
	if len(ests)%2 == 0 {
		med = (med + ests[len(ests)/2-1]) / 2
	}
	if med < float64(n) {
		med = float64(n) // a database is at least as large as its sample
	}
	return med, nil
}

// Apply produces a refined copy of the sample summary s: the database
// size is set to dbSize and every word's p̂(w|D) is recomputed from the
// extrapolated Mandelbrot law (Equation 5), with the word's rank taken
// from the sample as Appendix A prescribes. Estimated document
// frequencies are clipped to [0, dbSize]; term-frequency probabilities
// are unaffected (they are scale-free). The word-frequency ranking is
// preserved, since f = β·r^α is monotone in r.
func Apply(s *summary.Summary, est Estimator, dbSize float64) *summary.Summary {
	out := s.Clone()
	if dbSize < 1 || len(s.Words) == 0 {
		return out
	}
	law := est.LawAt(dbSize)
	// Rank sample words by decreasing sample document frequency,
	// breaking ties alphabetically for determinism.
	words := make([]string, 0, len(s.Words))
	for w := range s.Words {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		di, dj := s.Words[words[i]].SampleDF, s.Words[words[j]].SampleDF
		if di != dj {
			return di > dj
		}
		return words[i] < words[j]
	})
	out.NumDocs = dbSize
	// Scale the collection word count with the size estimate.
	if s.SampleSize > 0 {
		out.CW = s.CW / float64(s.SampleSize) * dbSize
	}
	for r, w := range words {
		f := law.Freq(r + 1)
		if f > dbSize {
			f = dbSize
		}
		if f < 0 {
			f = 0
		}
		st := out.Words[w]
		st.P = f / dbSize
		out.Words[w] = st
	}
	return out
}

// Refine is the full Appendix A pipeline: fit the checkpoint
// regressions, estimate the database size by sample–resample, and apply
// the extrapolated law to the summary.
func Refine(s *summary.Summary, sample *sampling.Sample) (*summary.Summary, error) {
	est, err := FitCheckpoints(sample.Checkpoints)
	if err != nil {
		return nil, err
	}
	size, err := EstimateSize(sample, s)
	if err != nil {
		return nil, err
	}
	return Apply(s, est, size), nil
}
