package freqest

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/sampling"
	"repro/internal/summary"
	"repro/internal/synth"
	"repro/internal/zipf"

	"repro/internal/hierarchy"
)

func TestFitCheckpointsRecoverLogLaws(t *testing.T) {
	// Construct checkpoints that obey Equations 4a/4b exactly.
	truth := Estimator{A1: 0.05, A2: -1.4, B1: 0.9, B2: 0.3}
	var cps []sampling.Checkpoint
	for _, size := range []int{50, 100, 150, 200, 250, 300} {
		law := truth.LawAt(float64(size))
		cps = append(cps, sampling.Checkpoint{Size: size, Law: law})
	}
	est, err := FitCheckpoints(cps)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"A1": {est.A1, truth.A1}, "A2": {est.A2, truth.A2},
		"B1": {est.B1, truth.B1}, "B2": {est.B2, truth.B2},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, pair[0], pair[1])
		}
	}
}

func TestFitCheckpointsDegenerateCases(t *testing.T) {
	if _, err := FitCheckpoints(nil); err == nil {
		t.Error("no checkpoints accepted")
	}
	one := []sampling.Checkpoint{{Size: 100, Law: zipf.Mandelbrot{Alpha: -1.2, Beta: 50}}}
	est, err := FitCheckpoints(one)
	if err != nil {
		t.Fatal(err)
	}
	law := est.LawAt(10000)
	if math.Abs(law.Alpha+1.2) > 1e-9 || math.Abs(law.Beta-50) > 1e-6 {
		t.Errorf("single checkpoint should extrapolate as constant, got %+v", law)
	}
	// Duplicate sizes degrade to constants rather than failing.
	dup := []sampling.Checkpoint{
		{Size: 100, Law: zipf.Mandelbrot{Alpha: -1.0, Beta: 40}},
		{Size: 100, Law: zipf.Mandelbrot{Alpha: -1.1, Beta: 44}},
	}
	if _, err := FitCheckpoints(dup); err != nil {
		t.Errorf("duplicate-size checkpoints: %v", err)
	}
}

func TestEstimateSizeExact(t *testing.T) {
	// A word with true df 400 seen in 40 of 100 sample docs implies a
	// 1000-document database.
	docs := make([][]string, 100)
	for i := range docs {
		if i < 40 {
			docs[i] = []string{"probe", "filler"}
		} else {
			docs[i] = []string{"filler"}
		}
	}
	s := summary.FromSample(docs)
	sample := &sampling.Sample{QueryDF: map[string]int{"probe": 400}}
	got, err := EstimateSize(sample, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1000) > 1e-9 {
		t.Errorf("EstimateSize = %v, want 1000", got)
	}
}

func TestEstimateSizeNeverBelowSample(t *testing.T) {
	docs := [][]string{{"w"}, {"w"}}
	s := summary.FromSample(docs)
	sample := &sampling.Sample{QueryDF: map[string]int{"w": 1}} // implies 1 < |S|
	got, err := EstimateSize(sample, s)
	if err != nil {
		t.Fatal(err)
	}
	if got < 2 {
		t.Errorf("EstimateSize = %v, want >= sample size 2", got)
	}
}

func TestEstimateSizeNoProbes(t *testing.T) {
	docs := [][]string{{"a"}, {"b"}}
	s := summary.FromSample(docs)
	sample := &sampling.Sample{QueryDF: map[string]int{}}
	got, err := EstimateSize(sample, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("fallback EstimateSize = %v, want |S| = 2", got)
	}
	if _, err := EstimateSize(sample, &summary.Summary{}); err == nil {
		t.Error("summary without sample accepted")
	}
}

func TestApplyPreservesRankingAndScalesSize(t *testing.T) {
	docs := [][]string{
		{"top", "mid", "rare"},
		{"top", "mid"},
		{"top"},
	}
	s := summary.FromSample(docs)
	est := Estimator{A2: -1.0, B2: math.Log(500)} // f = 500/r regardless of size
	out := Apply(s, est, 1000)
	if out.NumDocs != 1000 {
		t.Errorf("NumDocs = %v", out.NumDocs)
	}
	if s.NumDocs != 3 {
		t.Error("Apply must not mutate its input")
	}
	if !(out.P("top") > out.P("mid") && out.P("mid") > out.P("rare")) {
		t.Errorf("ranking not preserved: %v %v %v", out.P("top"), out.P("mid"), out.P("rare"))
	}
	// f(1) = 500 -> P = 0.5.
	if math.Abs(out.P("top")-0.5) > 1e-9 {
		t.Errorf("P(top) = %v, want 0.5", out.P("top"))
	}
	// Ptf untouched.
	if out.Ptf("top") != s.Ptf("top") {
		t.Error("Ptf should be unchanged")
	}
	// SampleSize retained for the adaptive algorithm.
	if out.SampleSize != 3 {
		t.Errorf("SampleSize = %d", out.SampleSize)
	}
	// CW scaled by 1000/3.
	want := s.CW / 3 * 1000
	if math.Abs(out.CW-want) > 1e-9 {
		t.Errorf("CW = %v, want %v", out.CW, want)
	}
}

func TestApplyClipsFrequencies(t *testing.T) {
	docs := [][]string{{"a"}, {"a"}}
	s := summary.FromSample(docs)
	est := Estimator{A2: -0.1, B2: math.Log(1e9)} // absurdly large beta
	out := Apply(s, est, 100)
	if out.P("a") > 1 {
		t.Errorf("P exceeded 1: %v", out.P("a"))
	}
}

func TestRefineEndToEndImprovesSizeEstimate(t *testing.T) {
	// Sample a 1200-doc synthetic database with QBS and check that the
	// refined summary's size estimate is much closer to the truth than
	// the raw sample size, and that head-word p̂ estimates are sane.
	tree := hierarchy.MustNew(hierarchy.Spec{
		Name:     "Root",
		Children: []hierarchy.Spec{{Name: "Health", Children: []hierarchy.Spec{{Name: "Heart"}}}},
	})
	g, err := synth.NewGenerator(synth.Config{
		Tree: tree, Seed: 5,
		GlobalVocabSize: 800, CategoryVocabBase: 600,
		PrivateVocabSize: 80, DocLenMean: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	heart, _ := tree.Lookup("Heart")
	rng := rand.New(rand.NewSource(3))
	src := g.NewDocSource(heart, nil, rng)
	const dbSize = 1200
	b := index.NewBuilder(dbSize)
	var buf []string
	for i := 0; i < dbSize; i++ {
		buf = src.GenDoc(rng, buf)
		b.Add(buf)
	}
	ix := b.Build()
	lex := make([]string, 120)
	for i := range lex {
		lex[i] = g.GlobalVocab().Word(i)
	}
	sample, err := sampling.QBS(context.Background(), sampling.IndexSearcher{Ix: ix}, sampling.QBSConfig{
		TargetDocs: 150, SeedLexicon: lex, Seed: 17, CheckpointEvery: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := summary.FromSample(sample.Docs)
	refined, err := Refine(raw, sample)
	if err != nil {
		t.Fatal(err)
	}
	truth := summary.FromIndex(ix)

	rawErr := math.Abs(raw.NumDocs - truth.NumDocs)
	refErr := math.Abs(refined.NumDocs - truth.NumDocs)
	if refErr >= rawErr {
		t.Errorf("size estimate not improved: raw err %v, refined err %v (est %v)",
			rawErr, refErr, refined.NumDocs)
	}
	// Head-word probability error should not blow up after refinement.
	var rawSSE, refSSE float64
	for _, w := range raw.TopWords(30) {
		dr := raw.P(w) - truth.P(w)
		df := refined.P(w) - truth.P(w)
		rawSSE += dr * dr
		refSSE += df * df
	}
	// Equation 5 is known to overestimate the very head of the curve
	// (the paper notes high-ranked words "tend to have largely
	// overestimated frequencies" without the sample-based fit; even
	// with it the top few ranks clip). Allow a bounded degradation.
	if refSSE > rawSSE*10 {
		t.Errorf("refined head-word probabilities much worse: raw SSE %v, refined %v", rawSSE, refSSE)
	}
}

func TestLawAtGrowsWithCollectionSize(t *testing.T) {
	// Larger collections have larger absolute head frequencies: with
	// positive B1 (the empirical regime of Equation 4b), beta grows
	// with n, so f(r) at fixed rank grows too.
	est := Estimator{A1: -0.05, A2: -0.5, B1: 1.0, B2: 0.0}
	prev := 0.0
	for _, n := range []float64{100, 1000, 10000, 100000} {
		f1 := est.LawAt(n).Freq(1)
		if f1 <= prev {
			t.Errorf("f(1) at n=%v is %v, not growing", n, f1)
		}
		prev = f1
	}
	// Degenerate n is clamped.
	if got := est.LawAt(0); got.Beta != est.LawAt(1).Beta {
		t.Errorf("LawAt(0) should clamp to n=1")
	}
}

func TestApplyEmptySummary(t *testing.T) {
	s := summary.FromSample(nil)
	out := Apply(s, Estimator{A2: -1, B2: 1}, 100)
	if out.Len() != 0 {
		t.Errorf("empty summary gained words: %d", out.Len())
	}
	// dbSize < 1 is a no-op clone.
	s2 := summary.FromSample([][]string{{"a"}})
	out2 := Apply(s2, Estimator{A2: -1, B2: 1}, 0)
	if out2.NumDocs != s2.NumDocs || out2.P("a") != s2.P("a") {
		t.Error("degenerate dbSize should leave the summary unchanged")
	}
}

func TestEstimateSizePrefersResampleProbes(t *testing.T) {
	// QueryDF suggests a tiny database (self-selected words), but the
	// dedicated resample probes indicate a much larger one; the
	// resample evidence must win.
	docs := make([][]string, 100)
	for i := range docs {
		docs[i] = []string{"head"}
		if i < 4 {
			docs[i] = []string{"head", "rare"}
		}
	}
	s := summary.FromSample(docs)
	sample := &sampling.Sample{
		QueryDF:    map[string]int{"rare": 4, "head": 2000},
		ResampleDF: map[string]int{"head": 2000},
	}
	got, err := EstimateSize(sample, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2000 {
		t.Errorf("EstimateSize = %v, want 2000 (resample-probe based)", got)
	}
}
