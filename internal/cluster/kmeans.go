// Package cluster implements K-means clustering of documents over
// TF-IDF feature vectors. The paper's TREC4 and TREC6 testbeds are
// "separated into disjoint databases via clustering using the K-means
// algorithm, as specified in [Xu & Croft]" (Section 5.1), so that "by
// construction, the documents in each database are on roughly the same
// topic". This package provides that substrate.
//
// Documents are featurized over the F most document-frequent terms of
// the collection (F configurable); each document becomes a sparse
// L2-normalized TF-IDF vector and K-means maximizes cosine similarity
// (spherical K-means), which is the standard choice for text.
package cluster

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// SparseVec is an L2-normalized sparse feature vector with strictly
// increasing feature indexes.
type SparseVec struct {
	Idx []int32
	Val []float32
}

// Config controls clustering.
type Config struct {
	K          int   // number of clusters
	Features   int   // size of the feature vocabulary (top-df terms); default 1500
	MaxIter    int   // maximum Lloyd iterations; default 12
	Seed       int64 // RNG seed for centroid initialization
	MinShift   int   // stop when fewer than MinShift docs change cluster; default max(1, nDocs/1000)
	SampleInit int   // number of docs sampled for k-means++ init; default 4096
}

// Result reports a clustering.
type Result struct {
	Assign []int // cluster id per document
	Sizes  []int // documents per cluster
	Iters  int   // Lloyd iterations performed
}

// Corpus is the minimal view of a document collection the clusterer
// needs. It intentionally matches internal/index.Index's shape, but is
// declared here so cluster has no dependency on the index package.
type Corpus interface {
	NumDocs() int
	// DocTermCounts calls fn with (term, count) for every distinct term
	// of document d.
	DocTermCounts(d int, fn func(term string, count int))
	// ForEachTerm iterates the collection vocabulary with document
	// frequencies.
	ForEachTerm(fn func(term string, df int))
}

// KMeans clusters the corpus documents into cfg.K topical groups.
func KMeans(c Corpus, cfg Config) (*Result, error) {
	n := c.NumDocs()
	if cfg.K <= 0 {
		return nil, errors.New("cluster: K must be positive")
	}
	if n < cfg.K {
		return nil, errors.New("cluster: fewer documents than clusters")
	}
	if cfg.Features <= 0 {
		cfg.Features = 1500
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 12
	}
	if cfg.MinShift <= 0 {
		cfg.MinShift = n / 1000
		if cfg.MinShift < 1 {
			cfg.MinShift = 1
		}
	}
	if cfg.SampleInit <= 0 {
		cfg.SampleInit = 4096
	}

	feats := selectFeatures(c, cfg.Features)
	vecs := vectorize(c, feats)
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := initPlusPlus(vecs, cfg.K, cfg.SampleInit, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	dim := len(feats.idf)
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		shifted := 0
		for d := range vecs {
			best, bestSim := 0, float32(math.Inf(-1))
			for k := range centroids {
				s := dot(vecs[d], centroids[k])
				if s > bestSim {
					bestSim, best = s, k
				}
			}
			if assign[d] != best {
				assign[d] = best
				shifted++
			}
		}
		if shifted < cfg.MinShift && iters > 0 {
			iters++
			break
		}
		centroids = recompute(vecs, assign, cfg.K, dim, rng)
	}

	sizes := make([]int, cfg.K)
	for _, a := range assign {
		sizes[a]++
	}
	return &Result{Assign: assign, Sizes: sizes, Iters: iters}, nil
}

// features maps terms to feature indexes and holds per-feature IDF.
type features struct {
	index map[string]int32
	idf   []float32
}

// selectFeatures picks the top-f terms by document frequency, skipping
// terms that appear in more than half of all documents (they carry no
// topical signal and would wash out the cosine).
func selectFeatures(c Corpus, f int) *features {
	type tdf struct {
		term string
		df   int
	}
	n := c.NumDocs()
	var all []tdf
	c.ForEachTerm(func(term string, df int) {
		if df > n/2 || df < 2 {
			return
		}
		all = append(all, tdf{term, df})
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].term < all[j].term
	})
	if f > len(all) {
		f = len(all)
	}
	fs := &features{index: make(map[string]int32, f), idf: make([]float32, f)}
	for i := 0; i < f; i++ {
		fs.index[all[i].term] = int32(i)
		fs.idf[i] = float32(math.Log(1 + float64(n)/float64(all[i].df)))
	}
	return fs
}

// vectorize builds the normalized sparse TF-IDF vector of every document.
func vectorize(c Corpus, fs *features) []SparseVec {
	n := c.NumDocs()
	vecs := make([]SparseVec, n)
	for d := 0; d < n; d++ {
		var idx []int32
		var val []float32
		c.DocTermCounts(d, func(term string, count int) {
			fi, ok := fs.index[term]
			if !ok {
				return
			}
			idx = append(idx, fi)
			val = append(val, float32(1+math.Log(float64(count)))*fs.idf[fi])
		})
		sortSparse(idx, val)
		normalize(val)
		vecs[d] = SparseVec{Idx: idx, Val: val}
	}
	return vecs
}

func sortSparse(idx []int32, val []float32) {
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	idx2 := make([]int32, len(idx))
	val2 := make([]float32, len(val))
	for i, o := range order {
		idx2[i], val2[i] = idx[o], val[o]
	}
	copy(idx, idx2)
	copy(val, val2)
}

func normalize(val []float32) {
	var s float64
	for _, v := range val {
		s += float64(v) * float64(v)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range val {
		val[i] *= inv
	}
}

// dot computes the inner product of a sparse vector with a dense centroid.
func dot(v SparseVec, centroid []float32) float32 {
	var s float32
	for i, ix := range v.Idx {
		s += v.Val[i] * centroid[ix]
	}
	return s
}

// initPlusPlus seeds centroids with k-means++ over a document sample.
func initPlusPlus(vecs []SparseVec, k, sample int, rng *rand.Rand) [][]float32 {
	n := len(vecs)
	cand := make([]int, 0, sample)
	if n <= sample {
		for i := 0; i < n; i++ {
			cand = append(cand, i)
		}
	} else {
		seen := make(map[int]bool, sample)
		for len(cand) < sample {
			i := rng.Intn(n)
			if !seen[i] {
				seen[i] = true
				cand = append(cand, i)
			}
		}
	}
	dim := 0
	for _, v := range vecs {
		for _, ix := range v.Idx {
			if int(ix) >= dim {
				dim = int(ix) + 1
			}
		}
	}
	centroids := make([][]float32, 0, k)
	toDense := func(v SparseVec) []float32 {
		c := make([]float32, dim)
		for i, ix := range v.Idx {
			c[ix] = v.Val[i]
		}
		return c
	}
	first := cand[rng.Intn(len(cand))]
	centroids = append(centroids, toDense(vecs[first]))
	// Distance of candidate to nearest centroid, in cosine-dissimilarity.
	minDist := make([]float64, len(cand))
	for i := range minDist {
		minDist[i] = 1
	}
	for len(centroids) < k {
		last := centroids[len(centroids)-1]
		var total float64
		for i, d := range cand {
			dis := 1 - float64(dot(vecs[d], last))
			if dis < 0 {
				dis = 0
			}
			if dis < minDist[i] {
				minDist[i] = dis
			}
			total += minDist[i] * minDist[i]
		}
		var pick int
		if total <= 0 {
			pick = cand[rng.Intn(len(cand))]
		} else {
			u := rng.Float64() * total
			acc := 0.0
			pick = cand[len(cand)-1]
			for i, d := range cand {
				acc += minDist[i] * minDist[i]
				if acc >= u {
					pick = d
					break
				}
			}
		}
		centroids = append(centroids, toDense(vecs[pick]))
	}
	return centroids
}

// recompute averages member vectors into new normalized centroids;
// empty clusters are reseeded from a random document.
func recompute(vecs []SparseVec, assign []int, k, dim int, rng *rand.Rand) [][]float32 {
	centroids := make([][]float32, k)
	counts := make([]int, k)
	for i := range centroids {
		centroids[i] = make([]float32, dim)
	}
	for d, a := range assign {
		c := centroids[a]
		counts[a]++
		v := vecs[d]
		for i, ix := range v.Idx {
			c[ix] += v.Val[i]
		}
	}
	for ki := range centroids {
		if counts[ki] == 0 {
			d := rng.Intn(len(vecs))
			v := vecs[d]
			for i, ix := range v.Idx {
				centroids[ki][ix] = v.Val[i]
			}
		}
		normalize(centroids[ki])
	}
	return centroids
}
