package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// fakeCorpus is a trivial in-memory Corpus for tests.
type fakeCorpus struct {
	docs []map[string]int
}

func (f *fakeCorpus) NumDocs() int { return len(f.docs) }

func (f *fakeCorpus) DocTermCounts(d int, fn func(string, int)) {
	for t, c := range f.docs[d] {
		fn(t, c)
	}
}

func (f *fakeCorpus) ForEachTerm(fn func(string, int)) {
	df := map[string]int{}
	for _, doc := range f.docs {
		for t := range doc {
			df[t]++
		}
	}
	for t, d := range df {
		fn(t, d)
	}
}

// topicalCorpus builds nTopics well-separated topics with docsPer docs
// each; every topic has its own vocabulary of 30 words.
func topicalCorpus(nTopics, docsPer int, seed int64) (*fakeCorpus, []int) {
	rng := rand.New(rand.NewSource(seed))
	var c fakeCorpus
	var truth []int
	for topic := 0; topic < nTopics; topic++ {
		for d := 0; d < docsPer; d++ {
			doc := map[string]int{}
			for w := 0; w < 20; w++ {
				doc[fmt.Sprintf("t%dw%d", topic, rng.Intn(30))]++
			}
			// A couple of shared words so vocabularies overlap a bit.
			doc[fmt.Sprintf("shared%d", rng.Intn(5))]++
			c.docs = append(c.docs, doc)
			truth = append(truth, topic)
		}
	}
	return &c, truth
}

func TestKMeansRecoversTopics(t *testing.T) {
	c, truth := topicalCorpus(5, 40, 11)
	res, err := KMeans(c, Config{K: 5, Seed: 3, Features: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Measure purity: for each cluster, the dominant true topic's share.
	counts := map[[2]int]int{}
	for d, a := range res.Assign {
		counts[[2]int{a, truth[d]}]++
	}
	clusterTotal := map[int]int{}
	clusterBest := map[int]int{}
	for k, v := range counts {
		clusterTotal[k[0]] += v
		if v > clusterBest[k[0]] {
			clusterBest[k[0]] = v
		}
	}
	var pure, total int
	for k := range clusterTotal {
		pure += clusterBest[k]
		total += clusterTotal[k]
	}
	purity := float64(pure) / float64(total)
	if purity < 0.9 {
		t.Errorf("purity = %v, want >= 0.9 on well-separated topics", purity)
	}
}

func TestKMeansAssignsEveryDoc(t *testing.T) {
	c, _ := topicalCorpus(3, 25, 2)
	res, err := KMeans(c, Config{K: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != c.NumDocs() {
		t.Fatalf("assigned %d of %d docs", len(res.Assign), c.NumDocs())
	}
	var sum int
	for k, s := range res.Sizes {
		if s < 0 {
			t.Errorf("cluster %d has negative size", k)
		}
		sum += s
	}
	if sum != c.NumDocs() {
		t.Errorf("sizes sum to %d, want %d", sum, c.NumDocs())
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 7 {
			t.Fatalf("assignment out of range: %d", a)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	c, _ := topicalCorpus(4, 30, 5)
	r1, err := KMeans(c, Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(c, Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	c, _ := topicalCorpus(1, 3, 1)
	if _, err := KMeans(c, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KMeans(c, Config{K: 10}); err == nil {
		t.Error("K > nDocs accepted")
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	c, _ := topicalCorpus(2, 10, 3)
	res, err := KMeans(c, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != c.NumDocs() {
		t.Errorf("K=1 should hold all docs, got %d", res.Sizes[0])
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	c, _ := topicalCorpus(2, 3, 7) // 6 docs
	res, err := KMeans(c, Config{K: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 6 {
		t.Fatal("wrong assignment length")
	}
}

func TestSelectFeaturesSkipsUbiquitousAndHapax(t *testing.T) {
	c := &fakeCorpus{}
	for i := 0; i < 10; i++ {
		doc := map[string]int{"everywhere": 1}
		if i < 5 {
			doc["useful"] = 2
		}
		doc[fmt.Sprintf("hapax%d", i)] = 1
		c.docs = append(c.docs, doc)
	}
	fs := selectFeatures(c, 100)
	if _, ok := fs.index["everywhere"]; ok {
		t.Error("term in >50% of docs should be excluded")
	}
	if _, ok := fs.index["hapax3"]; ok {
		t.Error("df=1 term should be excluded")
	}
	if _, ok := fs.index["useful"]; !ok {
		t.Error("mid-df term should be a feature")
	}
}

func TestDotAndNormalize(t *testing.T) {
	v := SparseVec{Idx: []int32{0, 2}, Val: []float32{3, 4}}
	normalize(v.Val)
	centroid := []float32{1, 0, 0}
	got := dot(v, centroid)
	if got < 0.59 || got > 0.61 { // 3/5
		t.Errorf("dot = %v, want 0.6", got)
	}
	// Zero vector survives normalize.
	zero := []float32{0, 0}
	normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("normalize of zero vector should be a no-op")
	}
}

func BenchmarkKMeans(b *testing.B) {
	c, _ := topicalCorpus(10, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(c, Config{K: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKMeansStopsEarlyWhenStable(t *testing.T) {
	// With well-separated topics the assignment stabilizes long before
	// MaxIter; the iteration count must reflect early termination.
	c, _ := topicalCorpus(3, 40, 21)
	res, err := KMeans(c, Config{K: 3, Seed: 5, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 50 {
		t.Errorf("no early stop: %d iterations", res.Iters)
	}
}

func TestKMeansRespectsMaxIter(t *testing.T) {
	c, _ := topicalCorpus(4, 20, 22)
	res, err := KMeans(c, Config{K: 4, Seed: 2, MaxIter: 1, MinShift: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 1 {
		t.Errorf("iters = %d, want <= 1", res.Iters)
	}
}
