package textproc

import (
	"strings"
	"testing"
	"unicode"
)

func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "caresses", "hypertension", "flies", "agreed",
		"ll", "sses", "eed", "ing", "ational", "zzzz", "bbbbbbbb",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Stem(s) // must not panic
		if len(out) > len(s)+1 {
			t.Errorf("Stem(%q) grew to %q", s, out)
		}
		// Pure a-z inputs must stay pure a-z.
		pure := true
		for i := 0; i < len(s); i++ {
			if s[i] < 'a' || s[i] > 'z' {
				pure = false
				break
			}
		}
		if pure && len(s) > 2 {
			for i := 0; i < len(out); i++ {
				if out[i] < 'a' || out[i] > 'z' {
					t.Errorf("Stem(%q) = %q contains non a-z", s, out)
				}
			}
		}
	})
}

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "a,b;c", "naïve café", "x86_64!", strings.Repeat("a", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Error("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Errorf("token %q contains separator rune %q", tok, r)
				}
			}
		}
	})
}
