package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

// Vectors from Porter's original paper and the canonical reference
// implementation's test data.
var porterVectors = map[string]string{
	"caresses":       "caress",
	"ponies":         "poni",
	"ties":           "ti",
	"caress":         "caress",
	"cats":           "cat",
	"feed":           "feed",
	"agreed":         "agre",
	"plastered":      "plaster",
	"bled":           "bled",
	"motoring":       "motor",
	"sing":           "sing",
	"conflated":      "conflat",
	"troubled":       "troubl",
	"sized":          "size",
	"hopping":        "hop",
	"tanned":         "tan",
	"falling":        "fall",
	"hissing":        "hiss",
	"fizzed":         "fizz",
	"failing":        "fail",
	"filing":         "file",
	"happy":          "happi",
	"sky":            "sky",
	"relational":     "relat",
	"conditional":    "condit",
	"rational":       "ration",
	"valenci":        "valenc",
	"digitizer":      "digit",
	"conformabli":    "conform",
	"radicalli":      "radic",
	"differentli":    "differ",
	"vileli":         "vile",
	"analogousli":    "analog",
	"vietnamization": "vietnam",
	"predication":    "predic",
	"operator":       "oper",
	"feudalism":      "feudal",
	"decisiveness":   "decis",
	"hopefulness":    "hope",
	"callousness":    "callous",
	"formaliti":      "formal",
	"sensitiviti":    "sensit",
	"sensibiliti":    "sensibl",
	"triplicate":     "triplic",
	"formative":      "form",
	"formalize":      "formal",
	"electriciti":    "electr",
	"electrical":     "electr",
	"hopeful":        "hope",
	"goodness":       "good",
	"revival":        "reviv",
	"allowance":      "allow",
	"inference":      "infer",
	"airliner":       "airlin",
	"gyroscopic":     "gyroscop",
	"adjustable":     "adjust",
	"defensible":     "defens",
	"irritant":       "irrit",
	"replacement":    "replac",
	"adjustment":     "adjust",
	"dependent":      "depend",
	"adoption":       "adopt",
	"homologou":      "homolog",
	"communism":      "commun",
	"activate":       "activ",
	"angulariti":     "angular",
	"homologous":     "homolog",
	"effective":      "effect",
	"bowdlerize":     "bowdler",
	"probate":        "probat",
	"rate":           "rate",
	"cease":          "ceas",
	"controll":       "control",
	"roll":           "roll",
	"computers":      "comput",
	"computing":      "comput",
	"computation":    "comput",
	"hypertension":   "hypertens",
	"databases":      "databas",
	"selection":      "select",
	"shrinkage":      "shrinkag",
}

func TestStemVectors(t *testing.T) {
	for in, want := range porterVectors {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be", "ox"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlpha(t *testing.T) {
	for _, w := range []string{"abc123", "foo-bar", "héllo", "x86", "running2"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged (non a-z input)", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should usually change nothing further for these
	// representative words. (Porter is not idempotent in general; these
	// vectors are chosen from fixed points.)
	for _, w := range []string{"comput", "select", "hyperten", "motor", "cat"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, expected fixed point", w, got)
		}
	}
}

func TestStemNeverPanicsAndShrinks(t *testing.T) {
	f := func(s string) bool {
		out := Stem(strings.ToLower(s))
		return len(out) <= len(s)+1 // step1b may append an 'e'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStemMatchesQueryToDocument(t *testing.T) {
	// The paper's motivation for stemming: query [computers] should
	// match documents containing "computing".
	if Stem("computers") != Stem("computing") {
		t.Errorf("computers and computing should share a stem")
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "computers", "hypertension", "adjustment", "cats"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
