package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"blood-pressure & hypertension", []string{"blood", "pressure", "hypertension"}},
		{"", nil},
		{"   \t\n ", nil},
		{"x", []string{"x"}},
		{"TREC-4 queries 201-250", []string{"trec", "4", "queries", "201", "250"}},
		{"p(w|D)=0.05", []string{"p", "w", "d", "0", "05"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("naïve café — résumé")
	want := []string{"naïve", "café", "résumé"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize unicode = %v, want %v", got, want)
	}
}

func TestTokenizeTruncatesLongTokens(t *testing.T) {
	long := strings.Repeat("a", 500)
	got := Tokenize(long)
	if len(got) != 1 || len(got[0]) != MaxTokenLen {
		t.Errorf("long token not truncated to %d: got len %d", MaxTokenLen, len(got[0]))
	}
}

func TestTokenizeAllLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeNoSeparatorsInTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || strings.ContainsAny(tok, " \t\n.,;!?") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "a"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"hypertension", "database", "algorithm", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestStopwordsReturnsCopy(t *testing.T) {
	a := Stopwords()
	a[0] = "MUTATED"
	b := Stopwords()
	if b[0] == "MUTATED" {
		t.Error("Stopwords() exposes internal slice")
	}
}

func TestAnalyzePipeline(t *testing.T) {
	got := Analyze("The patients were computing their blood pressures.", DefaultOptions)
	want := []string{"patient", "comput", "blood", "pressur"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
}

func TestFilterOptions(t *testing.T) {
	toks := []string{"the", "computing", "of", "ab", "a"}

	noStem := Filter(toks, Options{RemoveStopwords: true, Stem: false, MinLength: 0})
	if !reflect.DeepEqual(noStem, []string{"computing", "ab"}) {
		t.Errorf("stopword-only filter = %v", noStem)
	}

	minLen := Filter(toks, Options{MinLength: 3})
	if !reflect.DeepEqual(minLen, []string{"the", "computing"}) {
		t.Errorf("minlength filter = %v", minLen)
	}

	passthrough := Filter(toks, Options{})
	if !reflect.DeepEqual(passthrough, toks) {
		t.Errorf("passthrough filter = %v", passthrough)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("The quick brown fox jumps over the lazy dog. ", 50)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	text := strings.Repeat("Databases selected for hypertension queries using shrinkage. ", 40)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(text, DefaultOptions)
	}
}
