// Package textproc provides the text-processing substrate used throughout
// the system: tokenization, stopword removal, and Porter stemming.
//
// The paper's evaluation pipeline (Section 5) indexes documents with
// Jakarta Lucene after stripping markup, eliminates stopwords, and stems
// both document and query words ("so that a query [computers] matches
// documents with word 'computing'"). This package reproduces that
// pipeline with a stdlib-only implementation.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits raw text into lowercase word tokens. A token is a
// maximal run of letters or digits; anything else is a separator.
// Tokens longer than MaxTokenLen runes are truncated (defensive against
// pathological inputs such as base64 blobs in crawled pages).
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/6)
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			tokens = append(tokens, normalizeToken(text[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, normalizeToken(text[start:]))
	}
	return tokens
}

// MaxTokenLen bounds the rune length of a single token.
const MaxTokenLen = 64

func normalizeToken(tok string) string {
	tok = strings.ToLower(tok)
	if len(tok) > MaxTokenLen {
		// Truncate on a rune boundary.
		n := 0
		for i := range tok {
			n++
			if n > MaxTokenLen {
				return tok[:i]
			}
		}
	}
	return tok
}

// Options configures the full analysis pipeline.
type Options struct {
	// RemoveStopwords drops tokens found in the stopword list.
	RemoveStopwords bool
	// Stem applies the Porter stemmer to each surviving token.
	Stem bool
	// MinLength drops tokens shorter than this many bytes (after
	// stemming). Zero means no minimum.
	MinLength int
}

// DefaultOptions mirror the configuration the paper reports results for:
// stopword elimination and stemming enabled.
var DefaultOptions = Options{RemoveStopwords: true, Stem: true, MinLength: 2}

// Analyze runs the full pipeline — tokenize, stop, stem — over raw text.
func Analyze(text string, opt Options) []string {
	return Filter(Tokenize(text), opt)
}

// Filter applies stopword removal and stemming to pre-tokenized input.
// The input slice is not modified.
func Filter(tokens []string, opt Options) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if opt.RemoveStopwords && IsStopword(t) {
			continue
		}
		if opt.Stem {
			t = Stem(t)
		}
		if len(t) < opt.MinLength {
			continue
		}
		out = append(out, t)
	}
	return out
}
