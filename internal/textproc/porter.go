package textproc

// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping",
// Program 14(3), 1980). This is a complete implementation of the
// original five-step algorithm, operating on lowercase ASCII words.
// Words containing non a-z bytes are returned unchanged.

// Stem returns the Porter stem of a lowercase word.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	s := &stemState{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemState struct {
	b []byte
	// j marks the end of the stem during condition evaluation.
	j int
}

// isConsonant reports whether b[i] is a consonant per Porter's definition:
// a letter other than a,e,i,o,u, and 'y' when preceded by... (y is a
// consonant when it is the first letter or follows a vowel; a vowel when
// it follows a consonant).
func (s *stemState) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[0..j].
func (s *stemState) measure() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemState) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[i-1..i] is a double consonant.
func (s *stemState) doubleConsonant(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.isConsonant(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant and the
// second consonant is not w, x or y. Used to restore a trailing 'e'.
func (s *stemState) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether b ends with suffix; if so it sets j to the last
// index of the stem preceding the suffix.
func (s *stemState) ends(suffix string) bool {
	n := len(s.b)
	l := len(suffix)
	if l > n {
		return false
	}
	if string(s.b[n-l:]) != suffix {
		return false
	}
	s.j = n - l - 1
	return true
}

// setTo replaces the current suffix (everything after j) with repl.
func (s *stemState) setTo(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
}

// replace applies setTo when the measure of the stem is positive.
func (s *stemState) replace(repl string) {
	if s.measure() > 0 {
		s.setTo(repl)
	}
}

// step1a handles plurals: sses -> ss, ies -> i, ss -> ss, s -> "".
func (s *stemState) step1a() {
	if s.b[len(s.b)-1] != 's' {
		return
	}
	switch {
	case s.ends("sses"):
		s.b = s.b[:len(s.b)-2]
	case s.ends("ies"):
		s.setTo("i")
	case len(s.b) >= 2 && s.b[len(s.b)-2] != 's':
		s.b = s.b[:len(s.b)-1]
	}
}

// step1b handles past tenses and gerunds: eed, ed, ing.
func (s *stemState) step1b() {
	if s.ends("eed") {
		if s.measure() > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	}
	if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.b = s.b[:s.j+1]
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleConsonant(len(s.b) - 1):
			last := s.b[len(s.b)-1]
			if last != 'l' && last != 's' && last != 'z' {
				s.b = s.b[:len(s.b)-1]
			}
		default:
			s.j = len(s.b) - 1
			if s.measure() == 1 && s.cvc(len(s.b)-1) {
				s.b = append(s.b, 'e')
			}
		}
	}
}

// step1c turns terminal y to i when there is a vowel in the stem.
func (s *stemState) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0.
func (s *stemState) step2() {
	if len(s.b) < 3 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		if s.ends("ational") {
			s.replace("ate")
		} else if s.ends("tional") {
			s.replace("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.replace("ence")
		} else if s.ends("anci") {
			s.replace("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.replace("ize")
		}
	case 'l':
		if s.ends("bli") {
			s.replace("ble")
		} else if s.ends("alli") {
			s.replace("al")
		} else if s.ends("entli") {
			s.replace("ent")
		} else if s.ends("eli") {
			s.replace("e")
		} else if s.ends("ousli") {
			s.replace("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.replace("ize")
		} else if s.ends("ation") {
			s.replace("ate")
		} else if s.ends("ator") {
			s.replace("ate")
		}
	case 's':
		if s.ends("alism") {
			s.replace("al")
		} else if s.ends("iveness") {
			s.replace("ive")
		} else if s.ends("fulness") {
			s.replace("ful")
		} else if s.ends("ousness") {
			s.replace("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.replace("al")
		} else if s.ends("iviti") {
			s.replace("ive")
		} else if s.ends("biliti") {
			s.replace("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.replace("log")
		}
	}
}

// step3 deals with -ic-, -full, -ness etc.
func (s *stemState) step3() {
	switch s.b[len(s.b)-1] {
	case 'e':
		if s.ends("icate") {
			s.replace("ic")
		} else if s.ends("ative") {
			s.replace("")
		} else if s.ends("alize") {
			s.replace("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.replace("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.replace("ic")
		} else if s.ends("ful") {
			s.replace("")
		}
	case 's':
		if s.ends("ness") {
			s.replace("")
		}
	}
}

// step4 removes -ant, -ence etc. when m > 1.
func (s *stemState) step4() {
	if len(s.b) < 2 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.measure() > 1 {
		s.b = s.b[:s.j+1]
	}
}

// step5a removes a final -e when m > 1 (or m == 1 and not cvc).
func (s *stemState) step5a() {
	s.j = len(s.b) - 1
	if s.b[len(s.b)-1] == 'e' {
		m := s.measure()
		if m > 1 || (m == 1 && !s.cvc(len(s.b)-2)) {
			s.b = s.b[:len(s.b)-1]
		}
	}
}

// step5b maps -ll to -l when m > 1.
func (s *stemState) step5b() {
	s.j = len(s.b) - 1
	if s.b[len(s.b)-1] == 'l' && s.doubleConsonant(len(s.b)-1) && s.measure() > 1 {
		s.b = s.b[:len(s.b)-1]
	}
}
