package textproc

// stopwordList is a compact English stopword list in the spirit of the
// SMART system's list used by classical IR engines. It covers function
// words, auxiliaries, and other terms that carry no topical signal for
// database selection.
var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "almost",
	"alone", "along", "already", "also", "although", "always", "am",
	"among", "an", "and", "another", "any", "anybody", "anyone",
	"anything", "anywhere", "are", "aren", "around", "as", "at", "back",
	"be", "became", "because", "become", "becomes", "been", "before",
	"behind", "being", "below", "between", "beyond", "both", "but", "by",
	"came", "can", "cannot", "come", "could", "did", "do", "does",
	"doing", "done", "down", "during", "each", "either", "else",
	"enough", "even", "ever", "every", "everybody", "everyone",
	"everything", "everywhere", "few", "find", "first", "for", "four",
	"from", "full", "further", "get", "give", "go", "had", "has", "have",
	"having", "he", "her", "here", "herself", "him", "himself", "his",
	"how", "however", "i", "if", "in", "indeed", "instead", "into", "is",
	"isn", "it", "its", "itself", "just", "keep", "last", "least",
	"less", "let", "like", "likely", "made", "many", "may", "me",
	"might", "mine", "more", "most", "mostly", "much", "must", "my",
	"myself", "neither", "never", "nevertheless", "next", "no", "nobody",
	"none", "nor", "not", "nothing", "now", "nowhere", "of", "off",
	"often", "on", "once", "one", "only", "onto", "or", "other",
	"others", "otherwise", "our", "ours", "ourselves", "out", "over",
	"own", "part", "per", "perhaps", "put", "rather", "same", "see",
	"seem", "seemed", "seeming", "seems", "several", "she", "should",
	"since", "so", "some", "somebody", "someone", "something",
	"sometime", "sometimes", "somewhere", "still", "such", "take",
	"than", "that", "the", "their", "theirs", "them", "themselves",
	"then", "there", "therefore", "these", "they", "this", "those",
	"though", "three", "through", "throughout", "thru", "thus", "to",
	"together", "too", "toward", "towards", "two", "under", "until",
	"up", "upon", "us", "used", "using", "very", "was", "we", "well",
	"were", "what", "whatever", "when", "whenever", "where", "wherever",
	"whether", "which", "while", "who", "whoever", "whole", "whom",
	"whose", "why", "will", "with", "within", "without", "would", "yet",
	"you", "your", "yours", "yourself", "yourselves",
}

var stopwords = func() map[string]struct{} {
	m := make(map[string]struct{}, len(stopwordList))
	for _, w := range stopwordList {
		m[w] = struct{}{}
	}
	return m
}()

// IsStopword reports whether the (lowercase) token is on the stopword list.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}

// Stopwords returns a copy of the stopword list, for callers (such as the
// synthetic corpus generator) that need to seed documents with realistic
// function words.
func Stopwords() []string {
	out := make([]string, len(stopwordList))
	copy(out, stopwordList)
	return out
}
