// Package index implements the full-text search substrate that plays the
// role of Jakarta Lucene in the paper's evaluation (Section 5.1). It
// provides exactly what the samplers and the metasearcher need from a
// remote database's search interface: the number of matches for a query,
// ranked retrieval of the top documents, and document fetch. It also
// exposes exact collection statistics, which the evaluation uses to
// compute the "perfect" content summaries S(D).
package index

import (
	"fmt"
	"sort"
)

// DocID identifies a document within one Index.
type DocID int32

// posting records one (document, term frequency) pair.
type posting struct {
	doc DocID
	tf  int32
}

// termInfo aggregates the statistics for one term.
type termInfo struct {
	postings []posting
	totalTF  int64
}

// Builder accumulates documents and produces an immutable Index.
// Builders are not safe for concurrent use; built Indexes are.
type Builder struct {
	vocab map[string]int32 // term -> term id
	terms []string
	infos []termInfo
	docs  [][]int32 // per doc: term ids, duplicates preserved, in first-seen order per doc
	total int64     // total token count over all docs
}

// NewBuilder returns an empty Builder. sizeHint is the expected number
// of documents (0 is fine).
func NewBuilder(sizeHint int) *Builder {
	return &Builder{
		vocab: make(map[string]int32, 1024),
		docs:  make([][]int32, 0, sizeHint),
	}
}

// Add indexes one document given as a slice of analyzed terms and
// returns its DocID. Term order within the document is not significant
// for any consumer, so Add stores each distinct term once with its count
// (run-length form reconstructed by Doc).
func (b *Builder) Add(terms []string) DocID {
	id := DocID(len(b.docs))
	counts := make(map[int32]int32, len(terms))
	order := make([]int32, 0, len(terms))
	for _, t := range terms {
		tid, ok := b.vocab[t]
		if !ok {
			tid = int32(len(b.terms))
			b.vocab[t] = tid
			b.terms = append(b.terms, t)
			b.infos = append(b.infos, termInfo{})
		}
		if counts[tid] == 0 {
			order = append(order, tid)
		}
		counts[tid]++
	}
	// Store the doc as interleaved (termID, count) pairs to keep memory
	// proportional to distinct terms.
	stored := make([]int32, 0, 2*len(order))
	for _, tid := range order {
		c := counts[tid]
		stored = append(stored, tid, c)
		info := &b.infos[tid]
		info.postings = append(info.postings, posting{doc: id, tf: c})
		info.totalTF += int64(c)
		b.total += int64(c)
	}
	b.docs = append(b.docs, stored)
	return id
}

// Build finalizes the index. The Builder must not be used afterwards.
func (b *Builder) Build() *Index {
	ix := &Index{
		vocab: b.vocab,
		terms: b.terms,
		infos: b.infos,
		docs:  b.docs,
		total: b.total,
	}
	b.vocab, b.terms, b.infos, b.docs = nil, nil, nil, nil
	return ix
}

// Index is an immutable inverted index over a document collection.
// All methods are safe for concurrent use.
type Index struct {
	vocab map[string]int32
	terms []string
	infos []termInfo
	docs  [][]int32
	total int64
}

// NumDocs returns the number of documents in the collection (|D|).
func (ix *Index) NumDocs() int { return len(ix.docs) }

// NumTerms returns the size of the collection vocabulary (distinct terms).
func (ix *Index) NumTerms() int { return len(ix.terms) }

// CollectionTokens returns the total number of token occurrences, the
// cw(D) statistic used by CORI.
func (ix *Index) CollectionTokens() int64 { return ix.total }

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	tid, ok := ix.vocab[term]
	if !ok {
		return 0
	}
	return len(ix.infos[tid].postings)
}

// TermFreq returns the total number of occurrences of term, tf(w, D).
func (ix *Index) TermFreq(term string) int64 {
	tid, ok := ix.vocab[term]
	if !ok {
		return 0
	}
	return ix.infos[tid].totalTF
}

// Doc reconstructs the terms of a document (each distinct term repeated
// by its in-document frequency). It panics if id is out of range.
func (ix *Index) Doc(id DocID) []string {
	stored := ix.docs[id]
	var n int32
	for i := 1; i < len(stored); i += 2 {
		n += stored[i]
	}
	out := make([]string, 0, n)
	for i := 0; i < len(stored); i += 2 {
		term := ix.terms[stored[i]]
		for c := int32(0); c < stored[i+1]; c++ {
			out = append(out, term)
		}
	}
	return out
}

// DocDistinctTerms returns the distinct terms of a document.
func (ix *Index) DocDistinctTerms(id DocID) []string {
	stored := ix.docs[id]
	out := make([]string, 0, len(stored)/2)
	for i := 0; i < len(stored); i += 2 {
		out = append(out, ix.terms[stored[i]])
	}
	return out
}

// DocLen returns the number of tokens in a document.
func (ix *Index) DocLen(id DocID) int {
	stored := ix.docs[id]
	var n int
	for i := 1; i < len(stored); i += 2 {
		n += int(stored[i])
	}
	return n
}

// ForEachTerm calls fn for every term in the vocabulary with its
// document frequency and total term frequency. Iteration order is the
// term-id (first-indexed) order and is deterministic for a given build.
func (ix *Index) ForEachTerm(fn func(term string, df int, tf int64)) {
	for tid, term := range ix.terms {
		info := &ix.infos[tid]
		fn(term, len(info.postings), info.totalTF)
	}
}

// Result is one ranked search hit.
type Result struct {
	Doc   DocID
	Score float64
}

// Search evaluates a conjunctive (boolean AND) query and returns the
// total number of matching documents together with the top `limit`
// matches ranked by a TF-IDF score. Duplicate query terms are ignored.
// A query with no terms, or with any term absent from the collection,
// matches nothing.
func (ix *Index) Search(query []string, limit int) (matches int, top []Result) {
	tids := ix.lookupAll(query)
	if tids == nil {
		return 0, nil
	}
	docs := ix.intersect(tids)
	matches = len(docs)
	if limit <= 0 || matches == 0 {
		return matches, nil
	}
	results := make([]Result, len(docs))
	for i, d := range docs {
		results[i] = Result{Doc: d, Score: ix.score(d, tids)}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
	if limit < len(results) {
		results = results[:limit]
	}
	return matches, results
}

// SearchAny evaluates a disjunctive (boolean OR) query: documents
// containing at least one query term, ranked by summed TF-IDF. ReDDE's
// centralized-sample retrieval uses this. Duplicate query terms are
// ignored; terms absent from the vocabulary contribute nothing.
func (ix *Index) SearchAny(query []string, limit int) (matches int, top []Result) {
	if len(query) == 0 || limit < 0 {
		return 0, nil
	}
	seen := make(map[int32]bool, len(query))
	scores := make(map[DocID]float64)
	n := float64(len(ix.docs))
	for _, q := range query {
		tid, ok := ix.vocab[q]
		if !ok || seen[tid] {
			continue
		}
		seen[tid] = true
		info := &ix.infos[tid]
		idf := logIDF(n, float64(len(info.postings)))
		for _, p := range info.postings {
			scores[p.doc] += float64(p.tf) * idf
		}
	}
	matches = len(scores)
	if limit == 0 || matches == 0 {
		return matches, nil
	}
	results := make([]Result, 0, len(scores))
	for d, s := range scores {
		results = append(results, Result{Doc: d, Score: s})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
	if limit < len(results) {
		results = results[:limit]
	}
	return matches, results
}

// MatchCount returns the number of documents matching the conjunctive
// query without materializing ranked results. For a single-term query
// this is the term's document frequency.
func (ix *Index) MatchCount(query []string) int {
	tids := ix.lookupAll(query)
	if tids == nil {
		return 0
	}
	if len(tids) == 1 {
		return len(ix.infos[tids[0]].postings)
	}
	return len(ix.intersect(tids))
}

// lookupAll maps the query terms to term ids, deduplicating. It returns
// nil if the query is empty or any term is missing from the vocabulary.
func (ix *Index) lookupAll(query []string) []int32 {
	if len(query) == 0 {
		return nil
	}
	tids := make([]int32, 0, len(query))
	seen := make(map[int32]bool, len(query))
	for _, q := range query {
		tid, ok := ix.vocab[q]
		if !ok {
			return nil
		}
		if !seen[tid] {
			seen[tid] = true
			tids = append(tids, tid)
		}
	}
	return tids
}

// intersect returns the sorted DocIDs present in every term's postings.
func (ix *Index) intersect(tids []int32) []DocID {
	// Process rarest-first to keep the candidate set small.
	sorted := make([]int32, len(tids))
	copy(sorted, tids)
	sort.Slice(sorted, func(i, j int) bool {
		return len(ix.infos[sorted[i]].postings) < len(ix.infos[sorted[j]].postings)
	})
	base := ix.infos[sorted[0]].postings
	cur := make([]DocID, len(base))
	for i, p := range base {
		cur[i] = p.doc
	}
	for _, tid := range sorted[1:] {
		ps := ix.infos[tid].postings
		out := cur[:0]
		i, j := 0, 0
		for i < len(cur) && j < len(ps) {
			switch {
			case cur[i] < ps[j].doc:
				i++
			case cur[i] > ps[j].doc:
				j++
			default:
				out = append(out, cur[i])
				i++
				j++
			}
		}
		cur = out
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// score computes a TF-IDF score of doc for the given query term ids.
func (ix *Index) score(doc DocID, tids []int32) float64 {
	stored := ix.docs[doc]
	var s float64
	n := float64(len(ix.docs))
	for _, tid := range tids {
		var tf int32
		for i := 0; i < len(stored); i += 2 {
			if stored[i] == tid {
				tf = stored[i+1]
				break
			}
		}
		if tf == 0 {
			continue
		}
		df := float64(len(ix.infos[tid].postings))
		s += float64(tf) * logIDF(n, df)
	}
	return s
}

// CountDocsWithAtLeast returns the number of documents that contain at
// least r distinct terms from the given set. It is used to evaluate the
// relevance predicate of the synthetic workloads exactly (the role of
// the human relevance judge). Terms absent from the vocabulary simply
// never match; duplicate terms count once.
func (ix *Index) CountDocsWithAtLeast(terms []string, r int) int {
	if r <= 0 {
		return len(ix.docs)
	}
	seen := make(map[int32]bool, len(terms))
	var tids []int32
	for _, t := range terms {
		tid, ok := ix.vocab[t]
		if ok && !seen[tid] {
			seen[tid] = true
			tids = append(tids, tid)
		}
	}
	if len(tids) < r {
		return 0
	}
	counts := make(map[DocID]int)
	for _, tid := range tids {
		for _, p := range ix.infos[tid].postings {
			counts[p.doc]++
		}
	}
	var n int
	for _, c := range counts {
		if c >= r {
			n++
		}
	}
	return n
}

// String summarizes the index for debugging.
func (ix *Index) String() string {
	return fmt.Sprintf("index{docs: %d, terms: %d, tokens: %d}", len(ix.docs), len(ix.terms), ix.total)
}
