package index

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func buildIndex(docs ...string) *Index {
	b := NewBuilder(len(docs))
	for _, d := range docs {
		b.Add(strings.Fields(d))
	}
	return b.Build()
}

func TestEmptyIndex(t *testing.T) {
	ix := NewBuilder(0).Build()
	if ix.NumDocs() != 0 || ix.NumTerms() != 0 || ix.CollectionTokens() != 0 {
		t.Errorf("empty index has nonzero stats: %v", ix)
	}
	if m, r := ix.Search([]string{"x"}, 10); m != 0 || r != nil {
		t.Errorf("empty index search returned %d, %v", m, r)
	}
}

func TestBasicStats(t *testing.T) {
	ix := buildIndex(
		"blood pressure blood",
		"blood hypertension",
		"algorithm",
	)
	if ix.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.NumTerms() != 4 {
		t.Errorf("NumTerms = %d, want 4", ix.NumTerms())
	}
	if ix.CollectionTokens() != 6 {
		t.Errorf("CollectionTokens = %d, want 6", ix.CollectionTokens())
	}
	if df := ix.DocFreq("blood"); df != 2 {
		t.Errorf("DocFreq(blood) = %d, want 2", df)
	}
	if tf := ix.TermFreq("blood"); tf != 3 {
		t.Errorf("TermFreq(blood) = %d, want 3", tf)
	}
	if df := ix.DocFreq("missing"); df != 0 {
		t.Errorf("DocFreq(missing) = %d", df)
	}
}

func TestDocReconstruction(t *testing.T) {
	ix := buildIndex("a b a c")
	got := ix.Doc(0)
	sort.Strings(got)
	want := []string{"a", "a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Doc(0) = %v, want %v", got, want)
	}
	if l := ix.DocLen(0); l != 4 {
		t.Errorf("DocLen = %d, want 4", l)
	}
	distinct := ix.DocDistinctTerms(0)
	sort.Strings(distinct)
	if !reflect.DeepEqual(distinct, []string{"a", "b", "c"}) {
		t.Errorf("DocDistinctTerms = %v", distinct)
	}
}

func TestSearchConjunctive(t *testing.T) {
	ix := buildIndex(
		"blood pressure",
		"blood hypertension pressure",
		"hypertension treatment",
	)
	m, top := ix.Search([]string{"blood", "pressure"}, 10)
	if m != 2 {
		t.Errorf("matches = %d, want 2", m)
	}
	if len(top) != 2 {
		t.Fatalf("len(top) = %d, want 2", len(top))
	}
	// Query term missing from vocabulary -> zero matches.
	if m, _ := ix.Search([]string{"blood", "unicorn"}, 10); m != 0 {
		t.Errorf("missing-term query matched %d docs", m)
	}
	// Empty query matches nothing.
	if m, _ := ix.Search(nil, 10); m != 0 {
		t.Errorf("empty query matched %d docs", m)
	}
	// Duplicate terms behave like the deduplicated query.
	m2, _ := ix.Search([]string{"blood", "blood"}, 10)
	if m2 != 2 {
		t.Errorf("duplicate-term query matches = %d, want 2", m2)
	}
}

func TestSearchLimitAndMatchesIndependent(t *testing.T) {
	b := NewBuilder(0)
	for i := 0; i < 20; i++ {
		b.Add([]string{"common"})
	}
	ix := b.Build()
	m, top := ix.Search([]string{"common"}, 4)
	if m != 20 {
		t.Errorf("matches = %d, want 20", m)
	}
	if len(top) != 4 {
		t.Errorf("len(top) = %d, want 4", len(top))
	}
	m, top = ix.Search([]string{"common"}, 0)
	if m != 20 || top != nil {
		t.Errorf("limit 0: matches=%d top=%v", m, top)
	}
}

func TestSearchRanking(t *testing.T) {
	// A document mentioning the query term more often should rank higher.
	ix := buildIndex(
		"cancer",
		"cancer cancer cancer",
		"cancer cancer",
	)
	_, top := ix.Search([]string{"cancer"}, 3)
	if top[0].Doc != 1 || top[1].Doc != 2 || top[2].Doc != 0 {
		t.Errorf("ranking by tf wrong: %v", top)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := buildIndex("x", "x", "x")
	_, a := ix.Search([]string{"x"}, 3)
	_, b := ix.Search([]string{"x"}, 3)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic results: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Score == a[i].Score && a[i-1].Doc >= a[i].Doc {
			t.Errorf("ties not broken by DocID: %v", a)
		}
	}
}

func TestMatchCount(t *testing.T) {
	ix := buildIndex(
		"a b c",
		"a b",
		"a",
	)
	if m := ix.MatchCount([]string{"a"}); m != 3 {
		t.Errorf("MatchCount(a) = %d", m)
	}
	if m := ix.MatchCount([]string{"a", "b"}); m != 2 {
		t.Errorf("MatchCount(a,b) = %d", m)
	}
	if m := ix.MatchCount([]string{"a", "b", "c"}); m != 1 {
		t.Errorf("MatchCount(a,b,c) = %d", m)
	}
	if m := ix.MatchCount([]string{"z"}); m != 0 {
		t.Errorf("MatchCount(z) = %d", m)
	}
}

func TestCountDocsWithAtLeast(t *testing.T) {
	ix := buildIndex(
		"a b c",
		"a b",
		"a",
		"d",
	)
	terms := []string{"a", "b", "c"}
	if n := ix.CountDocsWithAtLeast(terms, 1); n != 3 {
		t.Errorf("r=1: %d, want 3", n)
	}
	if n := ix.CountDocsWithAtLeast(terms, 2); n != 2 {
		t.Errorf("r=2: %d, want 2", n)
	}
	if n := ix.CountDocsWithAtLeast(terms, 3); n != 1 {
		t.Errorf("r=3: %d, want 1", n)
	}
	if n := ix.CountDocsWithAtLeast(terms, 4); n != 0 {
		t.Errorf("r=4: %d, want 0", n)
	}
	if n := ix.CountDocsWithAtLeast(terms, 0); n != 4 {
		t.Errorf("r=0: %d, want all docs", n)
	}
	// Duplicates in the term set count once.
	if n := ix.CountDocsWithAtLeast([]string{"a", "a", "b"}, 2); n != 2 {
		t.Errorf("dup terms r=2: %d, want 2", n)
	}
}

func TestForEachTermConsistency(t *testing.T) {
	ix := buildIndex("a a b", "b c", "a")
	var vocab []string
	var totalTF int64
	ix.ForEachTerm(func(term string, df int, tf int64) {
		vocab = append(vocab, term)
		totalTF += tf
		if got := ix.DocFreq(term); got != df {
			t.Errorf("DocFreq(%s) = %d, ForEachTerm says %d", term, got, df)
		}
		if got := ix.TermFreq(term); got != tf {
			t.Errorf("TermFreq(%s) = %d, ForEachTerm says %d", term, got, tf)
		}
	})
	if len(vocab) != ix.NumTerms() {
		t.Errorf("ForEachTerm visited %d terms, want %d", len(vocab), ix.NumTerms())
	}
	if totalTF != ix.CollectionTokens() {
		t.Errorf("sum tf = %d, want %d", totalTF, ix.CollectionTokens())
	}
}

// Property: for random collections, DocFreq(w) equals the number of
// docs whose reconstruction contains w, and single-term MatchCount
// equals DocFreq.
func TestIndexInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocabulary := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nDocs := 1 + r.Intn(30)
		b := NewBuilder(nDocs)
		raw := make([][]string, nDocs)
		for i := 0; i < nDocs; i++ {
			n := 1 + r.Intn(10)
			doc := make([]string, n)
			for j := range doc {
				doc[j] = vocabulary[r.Intn(len(vocabulary))]
			}
			raw[i] = doc
			b.Add(doc)
		}
		ix := b.Build()
		for _, w := range vocabulary {
			want := 0
			for _, doc := range raw {
				for _, t := range doc {
					if t == w {
						want++
						break
					}
				}
			}
			if ix.DocFreq(w) != want {
				return false
			}
			if ix.MatchCount([]string{w}) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := make([]string, 5000)
	for i := range vocab {
		vocab[i] = "w" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	}
	doc := make([]string, 150)
	b.ReportAllocs()
	builder := NewBuilder(b.N)
	for i := 0; i < b.N; i++ {
		for j := range doc {
			doc[j] = vocab[rng.Intn(len(vocab))]
		}
		builder.Add(doc)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := make([]string, 2000)
	for i := range vocab {
		vocab[i] = "term" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	}
	builder := NewBuilder(10000)
	doc := make([]string, 100)
	for i := 0; i < 10000; i++ {
		for j := range doc {
			doc[j] = vocab[rng.Intn(len(vocab))]
		}
		builder.Add(doc)
	}
	ix := builder.Build()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search([]string{vocab[i%len(vocab)], vocab[(i*7)%len(vocab)]}, 10)
	}
}

func TestSearchAnyDisjunctive(t *testing.T) {
	ix := buildIndex(
		"blood pressure",
		"blood",
		"goal match",
		"pressure",
	)
	m, top := ix.SearchAny([]string{"blood", "goal"}, 10)
	if m != 3 {
		t.Errorf("matches = %d, want 3", m)
	}
	if len(top) != 3 {
		t.Fatalf("len(top) = %d", len(top))
	}
	// Unknown terms contribute nothing; empty query matches nothing.
	if m, _ := ix.SearchAny([]string{"unicorn"}, 5); m != 0 {
		t.Errorf("unknown term matched %d", m)
	}
	if m, _ := ix.SearchAny(nil, 5); m != 0 {
		t.Errorf("empty query matched %d", m)
	}
	// Limit zero still reports the match count.
	if m, top := ix.SearchAny([]string{"blood"}, 0); m != 2 || top != nil {
		t.Errorf("limit 0: %d, %v", m, top)
	}
}

func TestSearchAnyRanking(t *testing.T) {
	ix := buildIndex(
		"blood goal",        // both terms
		"blood blood blood", // high tf on one term
		"goal",
	)
	_, top := ix.SearchAny([]string{"blood", "goal"}, 3)
	if len(top) != 3 {
		t.Fatalf("len(top) = %d", len(top))
	}
	// Both orderings are plausible depending on idf; just require
	// deterministic, positive, non-increasing scores.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Errorf("scores not sorted: %v", top)
		}
	}
	_, again := ix.SearchAny([]string{"blood", "goal"}, 3)
	if !reflect.DeepEqual(top, again) {
		t.Error("SearchAny nondeterministic")
	}
}
