package index

import "math"

// logIDF is the classic smoothed inverse document frequency,
// log(1 + N/df). It is strictly positive for df <= N, so conjunctive
// matches always outrank non-matches.
func logIDF(n, df float64) float64 {
	if df <= 0 {
		return 0
	}
	return math.Log(1 + n/df)
}
