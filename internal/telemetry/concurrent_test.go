package telemetry

import (
	"io"
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantile pins the interpolated bucket-quantile estimate.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{0.1, 0.2, 0.4})
	// 10 observations in (0.1, 0.2], 10 in (0.2, 0.4].
	for i := 0; i < 10; i++ {
		h.Observe(0.15)
		h.Observe(0.3)
	}
	snap := reg.Snapshot().Histograms["h"]

	if got := snap.Quantile(0.5); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("p50 = %v, want 0.2 (upper edge of the first occupied bucket)", got)
	}
	// p75: rank 15 falls 5/10 into the (0.2, 0.4] bucket -> 0.3.
	if got := snap.Quantile(0.75); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("p75 = %v, want 0.3", got)
	}
	if got := snap.Quantile(1); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("p100 = %v, want 0.4", got)
	}

	// Observations above every bound land in +Inf and are reported as
	// the last finite bound (a histogram cannot say more).
	h.Observe(99)
	snap = reg.Snapshot().Histograms["h"]
	if got := snap.Quantile(1); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("p100 with +Inf observation = %v, want 0.4", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

// TestConcurrentObserveAndRender hammers one histogram and one quantile
// window from many writers while snapshots, Prometheus renders, and
// quantile reads run concurrently. Run under -race (make race / CI):
// its job is flushing out data races between the lock-free observe
// paths and the render paths.
func TestConcurrentObserveAndRender(t *testing.T) {
	reg := NewRegistry()
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := reg.Histogram("req_latency", nil)
			win := reg.Window("req_latency_window", 64)
			start := time.Now()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := float64(i%100) / 1000
				h.Observe(v)
				win.Observe(v)
				h.ObserveSince(start)
				reg.Counter("reqs").Inc()
				reg.Gauge("inflight").Add(1)
				reg.Gauge("inflight").Add(-1)
			}
		}(w)
	}

	// Readers: snapshots, text renders, and quantiles, racing the writers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				snap.WritePrometheus(io.Discard)
				if hs, ok := snap.Histograms["req_latency"]; ok {
					if q := hs.Quantile(0.99); q < 0 {
						t.Error("negative quantile")
						return
					}
				}
				reg.Window("req_latency_window", 64).Quantile(0.95)
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap := reg.Snapshot()
	hs := snap.Histograms["req_latency"]
	if hs.Count == 0 {
		t.Fatal("histogram recorded nothing")
	}
	var inBuckets int64
	for _, n := range hs.Counts {
		inBuckets += n
	}
	if inBuckets != hs.Count {
		t.Errorf("bucket counts sum to %d, total count %d", inBuckets, hs.Count)
	}
	if ws := snap.Windows["req_latency_window"]; ws.Count == 0 || ws.P99 < ws.P50 {
		t.Errorf("window snapshot = %+v", ws)
	}
}
