package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// series, histograms as cumulative _bucket{le="..."} series plus _sum
// and _count. Series with described help text get a # HELP line.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, escapeLabel(formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Windows) {
		ws := s.Windows[name]
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, qv := range []struct {
			q string
			v float64
		}{{"0.5", ws.P50}, {"0.95", ws.P95}, {"0.99", ws.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %s\n", name, escapeLabel(qv.q), formatFloat(qv.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, ws.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeHelp emits the # HELP line for name when help text was
// described; help text escapes backslash and newline per the exposition
// format.
func (s Snapshot) writeHelp(w io.Writer, name string) error {
	help, ok := s.Help[name]
	if !ok || help == "" {
		return nil
	}
	help = strings.ReplaceAll(help, `\`, `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	return err
}

// escapeLabel escapes a Prometheus label value: backslash, double
// quote, and newline must be backslash-escaped inside the quotes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteJSON renders the snapshot as JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Series counts the distinct exposed series: one per counter, one per
// gauge, one per histogram (its buckets expand on render), and one per
// window (its quantiles expand on render).
func (s Snapshot) Series() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms) + len(s.Windows)
}

// Summary renders an aligned, human-readable table of every metric, for
// end-of-run reports (cmd/experiments prints one per invocation).
func (s Snapshot) Summary() string {
	var b strings.Builder
	b.WriteString("telemetry summary\n")
	if s.Series() == 0 {
		b.WriteString("  (no metrics recorded)\n")
		return b.String()
	}
	width := 0
	for _, m := range []([]string){sortedKeys(s.Counters), sortedKeys(s.Gauges), sortedKeys(s.Histograms), sortedKeys(s.Windows)} {
		for _, name := range m {
			if len(name) > width {
				width = len(name)
			}
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "  %-*s  %d\n", width, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(&b, "  %-*s  count=%d sum=%s mean=%s\n",
			width, name, h.Count, formatFloat(h.Sum), formatFloat(mean))
	}
	for _, name := range sortedKeys(s.Windows) {
		ws := s.Windows[name]
		fmt.Fprintf(&b, "  %-*s  count=%d p50=%s p95=%s p99=%s\n",
			width, name, ws.Count, formatFloat(ws.P50), formatFloat(ws.P95), formatFloat(ws.P99))
	}
	return b.String()
}

// Handler serves the registry over HTTP: Prometheus text by default,
// JSON with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
}

// PublishExpvar exposes the registry's snapshot under the given name in
// the process-wide expvar namespace (served at /debug/vars). expvar
// panics on duplicate names, so publishing an already-taken name is
// silently skipped.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// formatFloat renders floats compactly ("0.005", "42", "1e+06"-free
// for the usual ranges) so the Prometheus text output stays readable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
