package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolving by name concurrently must yield one shared counter.
			c := r.Counter("shared_total")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("concurrent count = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Errorf("gauge = %v, want 2.25", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	// One observation per region: below first bound, exactly on a bound
	// (le is inclusive), between bounds, and above the last bound (+Inf).
	for _, v := range []float64{0.005, 0.01, 0.05, 0.1, 0.5, 1, 2} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat"]
	wantCounts := []int64{2, 2, 2, 1} // [<=0.01, <=0.1, <=1, +Inf] per-bucket
	if len(snap.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	if snap.Sum < 3.66 || snap.Sum > 3.67 {
		t.Errorf("sum = %v, want ~3.665", snap.Sum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 0.1, 0.01})
	h.Observe(0.05)
	snap := r.Snapshot().Histograms["h"]
	if snap.Bounds[0] != 0.01 || snap.Bounds[2] != 1 {
		t.Errorf("bounds not sorted: %v", snap.Bounds)
	}
	if snap.Counts[1] != 1 { // 0.01 < 0.05 <= 0.1
		t.Errorf("counts = %v, want observation in bucket 1", snap.Counts)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	if n := r.Snapshot().Series(); n != 0 {
		t.Errorf("nil registry has %d series", n)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("em_runs_total").Add(3)
	r.Gauge("em_iterations").Set(12)
	h := r.Histogram("search_latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Golden output: names sorted, histogram buckets cumulative.
	want := `# TYPE em_runs_total counter
em_runs_total 3
# TYPE em_iterations gauge
em_iterations 12
# TYPE search_latency histogram
search_latency_bucket{le="0.01"} 1
search_latency_bucket{le="0.1"} 2
search_latency_bucket{le="+Inf"} 3
search_latency_sum 5.055
search_latency_count 3
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(7)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	s := r.Snapshot().Summary()
	for _, want := range []string{"queries_total", "7", "lat", "count=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
