package telemetry

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeReconstruction(t *testing.T) {
	var cap Capture
	tr := NewTracer(&cap)

	root := tr.Span("build", Int("databases", 2))
	child := root.Child("sample", String("db", "a"))
	child.Event("sampling.round", Int("docs", 50))
	child.End(Int("queries", 10))
	sib := root.Child("shrink", String("db", "a"))
	sib.End()
	root.End()

	roots := cap.Tree()
	if len(roots) != 1 || roots[0].Name != "build" {
		t.Fatalf("roots = %+v", roots)
	}
	b := roots[0]
	if len(b.Children) != 2 || b.Children[0].Name != "sample" || b.Children[1].Name != "shrink" {
		t.Fatalf("children = %+v", b.Children)
	}
	s := b.Children[0]
	if len(s.Events) != 1 || s.Events[0].Name != "sampling.round" {
		t.Errorf("sample events = %+v", s.Events)
	}
	if v, ok := s.Events[0].Attr("docs").(int64); !ok || v != 50 {
		t.Errorf("docs attr = %v", s.Events[0].Attr("docs"))
	}
	if !s.Ended() || !b.Ended() {
		t.Error("spans not marked ended")
	}
	if got := cap.SpanNames(); strings.Join(got, ",") != "build,sample,shrink" {
		t.Errorf("span order = %v", got)
	}
	if cap.Find("shrink") == nil || cap.Find("nope") != nil {
		t.Error("Find misbehaves")
	}
}

func TestNilTracerAndSpanNoop(t *testing.T) {
	var tr *Tracer
	s := tr.Span("x")
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	// All of these must be safe no-ops.
	s.Event("e")
	s.End()
	if c := s.Child("y"); c != nil {
		t.Error("nil span produced a child")
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) != nil")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var cap Capture
	tr := NewTracer(&cap)
	root := tr.Span("build")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("sample")
			s.Event("tick")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	b := cap.Tree()[0]
	if len(b.Children) != 8 {
		t.Errorf("children = %d, want 8", len(b.Children))
	}
	for _, c := range b.Children {
		if len(c.Events) != 1 || !c.Ended() {
			t.Errorf("child incomplete: %+v", c)
		}
	}
}

func TestMultiObserverAndLogObserver(t *testing.T) {
	var cap Capture
	var logged strings.Builder
	logger := slog.New(slog.NewTextHandler(&logged, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := NewTracer(MultiObserver(&cap, NewLogObserver(logger), nil))
	s := tr.Span("search", String("query", "blood pressure"))
	s.Event("search.db_unavailable", String("db", "dead"))
	s.End(Int("results", 3))
	if len(cap.Events()) != 3 {
		t.Errorf("capture saw %d events, want 3", len(cap.Events()))
	}
	out := logged.String()
	for _, want := range []string{"search.db_unavailable", "db=dead", "duration="} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
