package telemetry

import (
	"sync/atomic"
	"time"
)

// Tracer creates spans and delivers their events to an Observer. A nil
// *Tracer is the disabled tracer: every method no-ops and returns nil
// spans, so instrumented code carries no conditionals.
type Tracer struct {
	obs Observer
	ids atomic.Uint64
	now func() time.Time
}

// NewTracer builds a tracer over obs. A nil observer yields a nil
// tracer (tracing disabled).
func NewTracer(obs Observer) *Tracer {
	if obs == nil {
		return nil
	}
	return &Tracer{obs: obs, now: time.Now}
}

// Span starts a root span.
func (t *Tracer) Span(name string, attrs ...Attr) *Span {
	return t.start(name, 0, attrs)
}

func (t *Tracer) start(name string, parent uint64, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.ids.Add(1), parent: parent, name: name, start: t.now()}
	t.obs.Observe(Event{
		Kind:   KindSpanStart,
		Name:   name,
		Span:   s.id,
		Parent: parent,
		Time:   s.start,
		Attrs:  attrs,
	})
	return s
}

// Span is one traced operation. A nil *Span no-ops on every method, so
// spans can be threaded through config structs unconditionally.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// Child starts a sub-span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id, attrs)
}

// Event records an instantaneous event within the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.obs.Observe(Event{
		Kind:   KindPoint,
		Name:   name,
		Span:   s.id,
		Parent: s.parent,
		Time:   s.t.now(),
		Attrs:  attrs,
	})
}

// End closes the span, reporting its duration. Attributes passed here
// annotate the end event (outcome counts, sizes, ...).
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.obs.Observe(Event{
		Kind:     KindSpanEnd,
		Name:     s.name,
		Span:     s.id,
		Parent:   s.parent,
		Time:     now,
		Duration: now.Sub(s.start),
		Attrs:    attrs,
	})
}
