package telemetry

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer creates spans and delivers their events to an Observer. A nil
// *Tracer is the disabled tracer: every method no-ops and returns nil
// spans, so instrumented code carries no conditionals.
//
// Every root span is assigned a fresh trace ID; children inherit it.
// Span IDs are offset by a per-tracer random base, so spans created by
// different processes (a metasearcher and its dbnodes) do not collide
// when their traces are joined via SpanWithRemoteParent.
type Tracer struct {
	obs  Observer
	ids  atomic.Uint64
	base uint64
	now  func() time.Time

	mu  sync.Mutex
	rng *rand.Rand
}

// NewTracer builds a tracer over obs. A nil observer yields a nil
// tracer (tracing disabled).
func NewTracer(obs Observer) *Tracer {
	if obs == nil {
		return nil
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return &Tracer{obs: obs, now: time.Now, rng: rng, base: rng.Uint64()}
}

// newTraceID draws a fresh 64-bit trace ID, rendered as 16 hex digits.
func (t *Tracer) newTraceID() string {
	t.mu.Lock()
	v := t.rng.Uint64()
	t.mu.Unlock()
	if v == 0 {
		v = 1
	}
	return fmt.Sprintf("%016x", v)
}

// Span starts a root span under a fresh trace ID.
func (t *Tracer) Span(name string, attrs ...Attr) *Span {
	return t.start(name, 0, "", attrs)
}

// SpanWithRemoteParent starts a span whose parent lives in another
// process: the span joins the remote trace and parents under the remote
// span ID, so observers that merge both processes' events see one tree.
// An invalid (zero) remote context yields an ordinary root span.
func (t *Tracer) SpanWithRemoteParent(name string, remote SpanContext, attrs ...Attr) *Span {
	return t.start(name, remote.SpanID, remote.TraceID, attrs)
}

func (t *Tracer) start(name string, parent uint64, trace string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	if trace == "" {
		trace = t.newTraceID()
	}
	s := &Span{
		t:      t,
		id:     t.base + t.ids.Add(1),
		parent: parent,
		trace:  trace,
		name:   name,
		start:  t.now(),
	}
	t.obs.Observe(Event{
		Kind:   KindSpanStart,
		Name:   name,
		Trace:  trace,
		Span:   s.id,
		Parent: parent,
		Time:   s.start,
		Attrs:  attrs,
	})
	return s
}

// Span is one traced operation. A nil *Span no-ops on every method, so
// spans can be threaded through config structs unconditionally.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	trace  string
	name   string
	start  time.Time
}

// SpanContext is the propagatable identity of a span: enough for a
// remote process to parent its own spans under this one. The zero value
// is "no context" (Valid reports false).
type SpanContext struct {
	// TraceID identifies the whole trace (16 lowercase hex digits).
	TraceID string
	// SpanID identifies this span within the trace.
	SpanID uint64
}

// Valid reports whether the context carries a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != 0 }

// Context returns the span's propagatable identity (zero for a nil
// span, i.e. when tracing is disabled).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace, SpanID: s.id}
}

// Child starts a sub-span in the same trace.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id, s.trace, attrs)
}

// Event records an instantaneous event within the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.obs.Observe(Event{
		Kind:   KindPoint,
		Name:   name,
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Time:   s.t.now(),
		Attrs:  attrs,
	})
}

// End closes the span, reporting its duration. Attributes passed here
// annotate the end event (outcome counts, sizes, ...).
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.obs.Observe(Event{
		Kind:     KindSpanEnd,
		Name:     s.name,
		Trace:    s.trace,
		Span:     s.id,
		Parent:   s.parent,
		Time:     now,
		Duration: now.Sub(s.start),
		Attrs:    attrs,
	})
}
