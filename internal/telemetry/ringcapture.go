package telemetry

import "sync"

// DefRingCaptureSize is the default RingCapture capacity: enough to
// hold the spans of the last few hundred queries in a serving process
// without unbounded growth.
const DefRingCaptureSize = 8192

// RingCapture is a bounded Observer for long-running servers: it keeps
// the most recent events in a fixed ring, overwriting the oldest, so a
// process can run under tracing forever and still export its recent
// spans to the cluster collector. Capture (unbounded) remains the tool
// for tests; RingCapture is the tool for production processes.
type RingCapture struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total int64
}

// NewRingCapture builds a ring holding the last size events (size <= 0
// selects DefRingCaptureSize).
func NewRingCapture(size int) *RingCapture {
	if size <= 0 {
		size = DefRingCaptureSize
	}
	return &RingCapture{buf: make([]Event, 0, size)}
}

// Observe implements Observer. Safe on a nil receiver.
func (r *RingCapture) Observe(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.full = true
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *RingCapture) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many events were ever observed (including ones the
// ring has since overwritten), so exporters can report drop counts.
func (r *RingCapture) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
