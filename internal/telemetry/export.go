package telemetry

import (
	"encoding/json"
	"net/http"
	"time"
)

// SpanExportVersion is the version stamped on /debug/export/spans
// envelopes. Consumers (the cluster collector) reject versions they do
// not understand; additive fields do not bump it.
const SpanExportVersion = 1

// Identity names one process in the cluster topology. The collector
// stamps every scraped metric and span with it, so fleet-wide views can
// still be sliced per instance, role, or shard.
type Identity struct {
	// Instance is the process's address or another unique name.
	Instance string `json:"instance"`
	// Role is the process's job: "router", "shard", "dbnode", ...
	Role string `json:"role"`
	// Shard is the shard the process belongs to, when it has one.
	Shard string `json:"shard,omitempty"`
}

// ExportedEvent is one trace event in wire form: Kind as its string
// name, attrs flattened to a map, duration in seconds. Span IDs stay
// uint64 — both ends are Go, so the decimal JSON round-trips exactly.
type ExportedEvent struct {
	Kind     string                 `json:"kind"`
	Name     string                 `json:"name"`
	Trace    string                 `json:"trace"`
	Span     uint64                 `json:"span"`
	Parent   uint64                 `json:"parent,omitempty"`
	Time     time.Time              `json:"time"`
	Duration float64                `json:"duration_seconds,omitempty"`
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
}

// ExportEvent converts an Event to its wire form.
func ExportEvent(e Event) ExportedEvent {
	out := ExportedEvent{
		Kind:     e.Kind.String(),
		Name:     e.Name,
		Trace:    e.Trace,
		Span:     e.Span,
		Parent:   e.Parent,
		Time:     e.Time,
		Duration: e.Duration.Seconds(),
	}
	if len(e.Attrs) > 0 {
		out.Attrs = make(map[string]interface{}, len(e.Attrs))
		for _, a := range e.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	return out
}

// Event converts the wire form back for observers that rebuild span
// trees (attr order is not preserved; nothing depends on it).
func (e ExportedEvent) Event() Event {
	ev := Event{
		Name:     e.Name,
		Trace:    e.Trace,
		Span:     e.Span,
		Parent:   e.Parent,
		Time:     e.Time,
		Duration: time.Duration(e.Duration * float64(time.Second)),
	}
	switch e.Kind {
	case "start":
		ev.Kind = KindSpanStart
	case "end":
		ev.Kind = KindSpanEnd
	default:
		ev.Kind = KindPoint
	}
	if len(e.Attrs) > 0 {
		ev.Attrs = make([]Attr, 0, len(e.Attrs))
		for k, v := range e.Attrs {
			ev.Attrs = append(ev.Attrs, Attr{Key: k, Value: v})
		}
	}
	return ev
}

// SpanExport is the /debug/export/spans envelope: the exporting
// process's identity plus its retained recent events, oldest first.
type SpanExport struct {
	Version int `json:"version"`
	Identity
	// Dropped counts events the ring overwrote before this export — a
	// non-zero value means the scrape interval is too long for the
	// process's span rate (or the ring too small).
	Dropped int64           `json:"dropped,omitempty"`
	Events  []ExportedEvent `json:"events"`
}

// ExportSpansHandler serves the process's recent spans from ring as a
// versioned SpanExport. ?trace=<id> filters to one trace (the
// collector's on-demand trace fetch).
func ExportSpansHandler(id Identity, ring *RingCapture) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		events := ring.Events()
		exp := SpanExport{
			Version:  SpanExportVersion,
			Identity: id,
			Dropped:  ring.Total() - int64(len(events)),
			Events:   make([]ExportedEvent, 0, len(events)),
		}
		trace := req.URL.Query().Get("trace")
		for _, e := range events {
			if trace != "" && e.Trace != trace {
				continue
			}
			exp.Events = append(exp.Events, ExportEvent(e))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(exp)
	})
}
