// Package telemetry instruments the metasearch pipeline with
// structured traces and runtime metrics, using only the standard
// library (log/slog for logging observers, expvar for /debug/vars
// exposition, net/http for the /metrics handler).
//
// Two complementary facilities:
//
//   - A Registry of named counters, gauges, and fixed-bucket latency
//     histograms. All updates are atomic (no locks on the hot path
//     after the first lookup), and the registry renders snapshots as
//     Prometheus text or JSON.
//   - A Tracer emitting span and point events to a pluggable Observer,
//     so the pipeline's phases (sampling, classification probing, EM
//     shrinkage, adaptive selection, search fan-out) are visible as a
//     span tree. Tests capture events with Capture; deployments log
//     them with NewLogObserver or drop them (nil Observer costs
//     nothing: a nil *Tracer and nil *Span no-op on every method).
//
// The probe queries a metasearcher sends are its operating cost — a
// federated search system budgets them per backend — so sampling and
// classification report every query issued, and the EM/Monte-Carlo
// machinery reports its convergence behavior, making the paper's
// Figures 2-3 observable at runtime.
package telemetry

import (
	"fmt"
	"time"
)

// Attr is one key/value annotation on a trace event.
type Attr struct {
	Key   string
	Value interface{}
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Kind discriminates trace events.
type Kind int

const (
	// KindSpanStart marks the beginning of a span.
	KindSpanStart Kind = iota
	// KindSpanEnd marks the end of a span; Duration is set.
	KindSpanEnd
	// KindPoint is an instantaneous event within a span.
	KindPoint
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSpanStart:
		return "start"
	case KindSpanEnd:
		return "end"
	case KindPoint:
		return "point"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one trace record delivered to an Observer. Span identifiers
// are unique per Tracer; Parent is zero for root spans. Observers
// rebuild the span tree from (Span, Parent) pairs — Capture does.
type Event struct {
	Kind     Kind
	Name     string
	Trace    string // trace id: shared by every span of one request, across processes
	Span     uint64 // id of the span this event belongs to
	Parent   uint64 // id of the enclosing span (0 = root)
	Time     time.Time
	Duration time.Duration // set on KindSpanEnd
	Attrs    []Attr
}

// Attr returns the value of the named attribute (nil if absent).
func (e Event) Attr(key string) interface{} {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Observer receives trace events. Implementations must be safe for
// concurrent use: BuildSummaries samples databases in parallel.
type Observer interface {
	Observe(Event)
}

// MultiObserver fans one event stream out to several observers.
func MultiObserver(obs ...Observer) Observer {
	flat := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}
