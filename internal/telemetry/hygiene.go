package telemetry

import (
	"fmt"
	"sort"
)

// Hygiene audits the snapshot's series against the repo's metric
// conventions and returns one human-readable problem per violation
// (empty means clean):
//
//   - every series must have help text (Registry.Describe),
//   - names must be snake_case ([a-z][a-z0-9_]*),
//   - a name must be registered as exactly one metric type (a counter
//     and a gauge sharing a name is almost always a typo'd lookup).
//
// The metric-hygiene test boots a full metasearcher and fails on any
// problem, so new series cannot land undocumented.
func (s Snapshot) Hygiene() []string {
	var problems []string
	types := map[string][]string{}
	for name := range s.Counters {
		types[name] = append(types[name], "counter")
	}
	for name := range s.Gauges {
		types[name] = append(types[name], "gauge")
	}
	for name := range s.Histograms {
		types[name] = append(types[name], "histogram")
	}
	for name := range s.Windows {
		types[name] = append(types[name], "window")
	}
	names := make([]string, 0, len(types))
	for name := range types {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !snakeCase(name) {
			problems = append(problems, fmt.Sprintf("%s: not snake_case (want [a-z][a-z0-9_]*)", name))
		}
		if s.Help[name] == "" {
			problems = append(problems, fmt.Sprintf("%s: no help text (call Registry.Describe)", name))
		}
		if ts := types[name]; len(ts) > 1 {
			sort.Strings(ts)
			problems = append(problems, fmt.Sprintf("%s: registered as %d metric types %v", name, len(ts), ts))
		}
	}
	return problems
}

// snakeCase reports whether name matches [a-z][a-z0-9_]* without
// consecutive or trailing underscores.
func snakeCase(name string) bool {
	if name == "" {
		return false
	}
	if name[0] < 'a' || name[0] > 'z' {
		return false
	}
	prevUnderscore := false
	for i := 1; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_':
			if prevUnderscore {
				return false
			}
			prevUnderscore = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevUnderscore = false
		default:
			return false
		}
	}
	return !prevUnderscore
}
