package telemetry

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Capture is an Observer that records every event, for tests and
// diagnostics. The zero value is ready to use.
type Capture struct {
	mu     sync.Mutex
	events []Event
}

// Observe implements Observer.
func (c *Capture) Observe(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything recorded so far, in arrival
// order.
func (c *Capture) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Reset discards all recorded events.
func (c *Capture) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// SpanNames returns the names of all started spans in start order.
func (c *Capture) SpanNames() []string {
	var out []string
	for _, e := range c.Events() {
		if e.Kind == KindSpanStart {
			out = append(out, e.Name)
		}
	}
	return out
}

// SpanNode is one reconstructed span with its point events and
// children, in start order.
type SpanNode struct {
	Name     string
	Start    Event
	End      Event // zero Kind==KindSpanStart means the span never ended
	Duration time.Duration
	Events   []Event
	Children []*SpanNode
}

// Ended reports whether an end event was recorded for the span.
func (n *SpanNode) Ended() bool { return n.End.Kind == KindSpanEnd }

// Tree reconstructs the span forest from the recorded events: root
// spans in start order, each with its children and point events.
func (c *Capture) Tree() []*SpanNode {
	byID := make(map[uint64]*SpanNode)
	var roots []*SpanNode
	for _, e := range c.Events() {
		switch e.Kind {
		case KindSpanStart:
			n := &SpanNode{Name: e.Name, Start: e}
			byID[e.Span] = n
			if parent := byID[e.Parent]; parent != nil {
				parent.Children = append(parent.Children, n)
			} else {
				roots = append(roots, n)
			}
		case KindSpanEnd:
			if n := byID[e.Span]; n != nil {
				n.End = e
				n.Duration = e.Duration
			}
		case KindPoint:
			if n := byID[e.Span]; n != nil {
				n.Events = append(n.Events, e)
			}
		}
	}
	return roots
}

// Find returns the first span with the given name, searching the
// reconstructed forest depth-first (nil if absent).
func (c *Capture) Find(name string) *SpanNode {
	var dfs func(ns []*SpanNode) *SpanNode
	dfs = func(ns []*SpanNode) *SpanNode {
		for _, n := range ns {
			if n.Name == name {
				return n
			}
			if hit := dfs(n.Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return dfs(c.Tree())
}

// logObserver forwards trace events to a slog.Logger: span ends at
// Debug with their duration, point events at Debug.
type logObserver struct {
	l *slog.Logger
}

// NewLogObserver builds an Observer that logs every span end and point
// event through l (nil l yields a nil Observer, disabling tracing).
func NewLogObserver(l *slog.Logger) Observer {
	if l == nil {
		return nil
	}
	return logObserver{l: l}
}

// Observe implements Observer.
func (o logObserver) Observe(e Event) {
	if e.Kind == KindSpanStart {
		return // the end event carries the same name plus the duration
	}
	args := make([]interface{}, 0, 2*len(e.Attrs)+8)
	if e.Trace != "" {
		args = append(args, "trace", e.Trace)
	}
	args = append(args, "span", e.Span)
	if e.Parent != 0 {
		args = append(args, "parent", e.Parent)
	}
	if e.Kind == KindSpanEnd {
		args = append(args, "duration", e.Duration)
	}
	for _, a := range e.Attrs {
		args = append(args, a.Key, a.Value)
	}
	o.l.LogAttrs(context.Background(), slog.LevelDebug, e.Name, slog.Group("", args...))
}
