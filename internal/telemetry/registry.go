package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (no-ops), so instrumented code never needs to
// check whether telemetry is enabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets is the default histogram layout for second-scale
// latencies, from 100µs to 10s.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Bucket bounds are upper
// inclusive limits ("le"), mirroring the Prometheus exposition model;
// observations above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    Gauge
	count  atomic.Int64

	exMu      sync.Mutex
	exemplars []Exemplar // sorted by Value descending, at most ExemplarCap
}

// Exemplar ties one concrete observation — typically a slow one — to
// the trace that produced it, so a tail-latency spike in a histogram
// links directly to a full distributed trace of an offending request.
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// ExemplarCap bounds how many exemplars a histogram retains; only the
// largest recent observations keep their trace IDs.
const ExemplarCap = 4

// ExemplarMaxAge is how long an exemplar may block smaller observations
// from replacing it. Without an age bound the all-time-slowest query
// would pin an exemplar whose trace has long been evicted from every
// span ring.
const ExemplarMaxAge = 5 * time.Minute

func newHistogram(bounds []float64) *Histogram {
	owned := make([]float64, len(bounds))
	copy(owned, bounds)
	sort.Float64s(owned)
	return &Histogram{bounds: owned, counts: make([]atomic.Int64, len(owned)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// ObserveExemplar records one value and, when traceID is non-empty,
// offers it as an exemplar: the histogram keeps the ExemplarCap largest
// recent observations with their trace IDs. An exemplar older than
// ExemplarMaxAge is replaced regardless of value, so the set tracks the
// current tail, not the process's all-time record.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	now := time.Now()
	h.exMu.Lock()
	defer h.exMu.Unlock()
	// Drop expired entries first — their traces are likely gone.
	kept := h.exemplars[:0]
	for _, e := range h.exemplars {
		if now.Sub(e.Time) <= ExemplarMaxAge {
			kept = append(kept, e)
		}
	}
	h.exemplars = kept
	h.exemplars = append(h.exemplars, Exemplar{Value: v, TraceID: traceID, Time: now})
	sort.SliceStable(h.exemplars, func(a, b int) bool { return h.exemplars[a].Value > h.exemplars[b].Value })
	if len(h.exemplars) > ExemplarCap {
		h.exemplars = h.exemplars[:ExemplarCap]
	}
}

// Exemplars returns a copy of the histogram's current exemplars, value
// descending.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	out := make([]Exemplar, len(h.exemplars))
	copy(out, h.exemplars)
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// DefWindowSize is the default sliding-window capacity: the last 1024
// observations, enough for stable tail quantiles without unbounded
// memory.
const DefWindowSize = 1024

// Window is a sliding-window reservoir over the last N observations,
// reporting order statistics (p50/p95/p99) that fixed-bucket histograms
// can only bound. A histogram answers "how many requests were slower
// than 25ms, ever"; a window answers "what is p99 right now". All
// methods are safe on a nil receiver.
type Window struct {
	mu    sync.Mutex
	buf   []float64
	next  int   // ring write position
	count int64 // total observations (len(buf) is min(count, cap))
	full  bool
}

func newWindow(size int) *Window {
	if size <= 0 {
		size = DefWindowSize
	}
	return &Window{buf: make([]float64, 0, size)}
}

// Observe records one value, evicting the oldest once the window is
// full.
func (w *Window) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.next] = v
		w.full = true
	}
	w.next = (w.next + 1) % cap(w.buf)
	w.count++
	w.mu.Unlock()
}

// ObserveSince records the elapsed time since start, in seconds.
func (w *Window) ObserveSince(start time.Time) {
	if w == nil {
		return
	}
	w.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (including evicted
// ones).
func (w *Window) Count() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Quantile returns the q-th quantile (0 <= q <= 1, nearest-rank) of the
// values currently in the window; an empty window yields 0.
func (w *Window) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	sorted := make([]float64, len(w.buf))
	copy(sorted, w.buf)
	w.mu.Unlock()
	sort.Float64s(sorted)
	return quantileOf(sorted, q)
}

// quantileOf computes the nearest-rank quantile of sorted values:
// the smallest value with at least ⌈q·N⌉ values at or below it.
func quantileOf(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(vals)))) - 1
	if i >= len(vals) {
		i = len(vals) - 1
	}
	if i < 0 {
		i = 0
	}
	return vals[i]
}

// Registry holds named metrics. Lookup takes a read lock; updates on
// the returned metric are lock-free (windows take a short internal
// lock), so hot paths resolve a metric once and hammer the pointer. All
// methods are safe on a nil receiver, returning nil metrics whose
// methods no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]*Window
	help     map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		windows:  make(map[string]*Window),
		help:     make(map[string]string),
	}
}

// Describe attaches help text to the named series, rendered as the
// Prometheus # HELP line and carried in snapshots. Every series a
// package registers should be described — the metric-hygiene check
// (Snapshot.Hygiene) fails series without help. Later calls overwrite.
func (r *Registry) Describe(name, help string) {
	if r == nil || help == "" {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Help returns the help text described for name ("" when absent).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select DefLatencyBuckets).
// Later calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Window returns the named sliding window, creating it with the given
// capacity on first use (size <= 0 selects DefWindowSize). Later calls
// return the existing window regardless of size.
func (r *Registry) Window(name string, size int) *Window {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	w := r.windows[name]
	r.mu.RUnlock()
	if w != nil {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w = r.windows[name]; w == nil {
		w = newWindow(size)
		r.windows[name] = w
	}
	return w
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the upper bucket limits; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	// Exemplars are the largest recent observations with their trace
	// IDs (value descending), linking the histogram's tail to full
	// distributed traces.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly within the bucket the rank falls in
// (the Prometheus histogram_quantile model). The +Inf bucket yields the
// last finite bound — a histogram cannot say more. An empty histogram
// yields 0. Fixed buckets make this an estimate; for exact order
// statistics over recent observations use a Window instead.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, n := range h.Counts {
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if n == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(n)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// WindowSnapshot is one sliding window's frozen quantiles.
type WindowSnapshot struct {
	// Count is the total number of observations (including ones that
	// have slid out of the window).
	Count int64 `json:"count"`
	// P50, P95, P99 are the quantiles over the current window contents.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Windows    map[string]WindowSnapshot    `json:"windows,omitempty"`
	// Help carries the described help text of the snapshot's series
	// (name → help), rendered as # HELP lines.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot copies the registry's current state. Individual metric reads
// are atomic; the snapshot as a whole is not (fine for exposition).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Windows:    map[string]WindowSnapshot{},
		Help:       map[string]string{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds:    h.bounds,
			Counts:    make([]int64, len(h.counts)),
			Sum:       h.Sum(),
			Count:     h.Count(),
			Exemplars: h.Exemplars(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	for name, w := range r.windows {
		snap.Windows[name] = w.snapshot()
	}
	for name, help := range r.help {
		snap.Help[name] = help
	}
	return snap
}

// snapshot freezes a window's quantiles with one sort.
func (w *Window) snapshot() WindowSnapshot {
	w.mu.Lock()
	sorted := make([]float64, len(w.buf))
	copy(sorted, w.buf)
	count := w.count
	w.mu.Unlock()
	sort.Float64s(sorted)
	return WindowSnapshot{
		Count: count,
		P50:   quantileOf(sorted, 0.50),
		P95:   quantileOf(sorted, 0.95),
		P99:   quantileOf(sorted, 0.99),
	}
}
