package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (no-ops), so instrumented code never needs to
// check whether telemetry is enabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets is the default histogram layout for second-scale
// latencies, from 100µs to 10s.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Bucket bounds are upper
// inclusive limits ("le"), mirroring the Prometheus exposition model;
// observations above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    Gauge
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	owned := make([]float64, len(bounds))
	copy(owned, bounds)
	sort.Float64s(owned)
	return &Histogram{bounds: owned, counts: make([]atomic.Int64, len(owned)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Registry holds named metrics. Lookup takes a read lock; updates on
// the returned metric are lock-free, so hot paths resolve a metric once
// and hammer the pointer. All methods are safe on a nil receiver,
// returning nil metrics whose methods no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select DefLatencyBuckets).
// Later calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the upper bucket limits; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Individual metric reads
// are atomic; the snapshot as a whole is not (fine for exposition).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: h.bounds,
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}
