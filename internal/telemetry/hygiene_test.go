package telemetry_test

// Fleet-wide metric hygiene: every series any serving component
// registers must carry help text, use snake_case, and keep one type per
// name. The test boots the real components (metasearcher pipeline,
// gateway, router, wire server/client, prober, cluster collector) the
// way the commands do and walks their registries, so adding a sloppy
// metric anywhere fails here, not in a dashboard.

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/gateway"
	"repro/internal/obscollector"
	"repro/internal/resilience"
	"repro/internal/router"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func TestFleetMetricHygiene(t *testing.T) {
	// A standalone metasearcher's registry: pipeline, cache, breaker,
	// replica, and (via gateway.New over it) gateway series.
	m := repro.New(repro.Options{
		SampleSize:    8,
		SeedLexicon:   []string{"alpha", "beta"},
		KeepStopwords: true,
		NoStemming:    true,
		Cache:         repro.CacheConfig{Size: 8},
	})
	gateway.New(m, gateway.Options{Metrics: m.Metrics()})
	wire.NewServer(repro.NewLocalDatabaseFromTerms("db", [][]string{{"alpha"}}),
		wire.ServerOptions{Metrics: m.Metrics()})
	wire.NewClient("127.0.0.1:0", wire.ClientOptions{Metrics: m.Metrics()})
	resilience.NewProber(m.Breakers(), nil, resilience.ProberOptions{Metrics: m.Metrics()})

	// The cluster router's registry.
	routerReg := telemetry.NewRegistry()
	topo := &shardmap.Topology{
		Version:   shardmap.TopologyVersion,
		Shards:    []shardmap.Shard{{ID: "shard-00", Addr: "127.0.0.1:0"}},
		Databases: []shardmap.Database{{Name: "db", Replicas: []string{"127.0.0.1:0"}}},
	}
	if _, err := router.New(topo, router.Options{
		Metrics:  routerReg,
		Breakers: resilience.NewSet(resilience.BreakerOptions{}, routerReg),
	}); err != nil {
		t.Fatal(err)
	}
	gateway.New(m, gateway.Options{Metrics: routerReg})

	// The collector's own registry.
	collectorReg := telemetry.NewRegistry()
	if _, err := obscollector.New(nil, obscollector.Options{Metrics: collectorReg}); err != nil {
		t.Fatal(err)
	}

	for _, reg := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"metasearcher", m.Metrics()},
		{"router", routerReg},
		{"collector", collectorReg},
	} {
		snap := reg.reg.Snapshot()
		if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Windows) == 0 {
			t.Fatalf("%s registry is empty; the test is not exercising real components", reg.name)
		}
		for _, problem := range snap.Hygiene() {
			t.Errorf("%s registry: %s", reg.name, problem)
		}
	}
}

// TestHygieneCatchesViolations proves the checker can actually fail:
// a registry with a help-less, CamelCased, type-colliding series must
// report all three problems.
func TestHygieneCatchesViolations(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("no_help_total")
	reg.Describe("BadName", "Described but CamelCase.")
	reg.Counter("BadName")
	reg.Describe("twice", "Registered as two types.")
	reg.Counter("twice")
	reg.Gauge("twice")
	reg.Describe("trailing_", "Trailing underscore.")
	reg.Counter("trailing_")
	reg.Describe("double__under", "Double underscore.")
	reg.Counter("double__under")

	problems := reg.Snapshot().Hygiene()
	for _, want := range []string{"no_help_total", "BadName", "twice", "trailing_", "double__under"} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("hygiene missed the %q violation; got %v", want, problems)
		}
	}
}
