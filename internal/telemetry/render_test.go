package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"0.005", "0.005"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"\\\"\n", `\\\"\n`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrometheusHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Buckets must be cumulative: 2 under 0.01, 3 under 0.1, 4 under 1,
	// 5 under +Inf.
	for _, want := range []string{
		`req_latency_bucket{le="0.01"} 2`,
		`req_latency_bucket{le="0.1"} 3`,
		`req_latency_bucket{le="1"} 4`,
		`req_latency_bucket{le="+Inf"} 5`,
		`req_latency_count 5`,
		"# TYPE req_latency histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	// The +Inf bucket must equal _count (exposition-format invariant).
	if !strings.Contains(out, `req_latency_bucket{le="+Inf"} 5`) || !strings.Contains(out, "req_latency_count 5") {
		t.Error("le=\"+Inf\" bucket must equal _count")
	}
}

func TestWindowQuantilesAcrossFormats(t *testing.T) {
	r := NewRegistry()
	w := r.Window("req_latency_window", 256)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}

	// Prometheus: summary type with quantile labels and a _count.
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE req_latency_window summary",
		`req_latency_window{quantile="0.5"} 50`,
		`req_latency_window{quantile="0.95"} 95`,
		`req_latency_window{quantile="0.99"} 99`,
		"req_latency_window_count 100",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, prom)
		}
	}

	// JSON: the windows map round-trips with all three quantiles.
	buf.Reset()
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Windows map[string]WindowSnapshot `json:"windows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ws, ok := snap.Windows["req_latency_window"]
	if !ok {
		t.Fatalf("JSON snapshot lacks the window: %s", buf.String())
	}
	if ws.Count != 100 || ws.P50 != 50 || ws.P95 != 95 || ws.P99 != 99 {
		t.Errorf("JSON window = %+v", ws)
	}

	// Summary: one aligned row per window.
	sum := r.Snapshot().Summary()
	if !strings.Contains(sum, "req_latency_window") ||
		!strings.Contains(sum, "count=100 p50=50 p95=95 p99=99") {
		t.Errorf("Summary missing window row:\n%s", sum)
	}

	// Series counts the window as one series.
	if got := r.Snapshot().Series(); got != 1 {
		t.Errorf("Series = %d, want 1", got)
	}
}

func TestSummaryEmptyRegistry(t *testing.T) {
	if got := NewRegistry().Snapshot().Summary(); !strings.Contains(got, "no metrics recorded") {
		t.Errorf("empty summary = %q", got)
	}
}
