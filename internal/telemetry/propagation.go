package telemetry

import (
	"context"
	"net/http"
	"strconv"
)

// Trace context crosses process boundaries as two HTTP headers: the
// trace ID and the ID of the span the request was issued under. A
// receiving process starts its handler span with SpanWithRemoteParent
// so both processes' events share one trace tree. A third header
// carries a per-attempt request ID, stamped fresh on every retry, so
// client attempt events reconcile one-to-one with server spans.
const (
	// HeaderTraceID carries SpanContext.TraceID.
	HeaderTraceID = "X-Trace-Id"
	// HeaderParentSpan carries SpanContext.SpanID as 16 hex digits.
	HeaderParentSpan = "X-Parent-Span"
	// HeaderRequestID carries the per-attempt request ID ("r17.2" is
	// the second retry of logical request 17).
	HeaderRequestID = "X-Request-Id"
)

// FormatSpanID renders a span ID for the wire (16 lowercase hex digits).
func FormatSpanID(id uint64) string {
	return strconv.FormatUint(id, 16)
}

// ParseSpanID parses a wire-format span ID; malformed input yields 0.
func ParseSpanID(s string) uint64 {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// Inject writes the span context into HTTP headers. Invalid contexts
// (tracing disabled) write nothing.
func Inject(sc SpanContext, h http.Header) {
	if !sc.Valid() {
		return
	}
	h.Set(HeaderTraceID, sc.TraceID)
	h.Set(HeaderParentSpan, FormatSpanID(sc.SpanID))
}

// Extract reads a span context from HTTP headers. Requests from
// untraced callers yield an invalid context (SpanWithRemoteParent then
// starts a fresh root span).
func Extract(h http.Header) SpanContext {
	return SpanContext{
		TraceID: h.Get(HeaderTraceID),
		SpanID:  ParseSpanID(h.Get(HeaderParentSpan)),
	}
}

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span, so layers that
// only see a context (the wire client under SearchContext's fan-out)
// can parent their work correctly. A nil span leaves ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil (every *Span
// method no-ops on nil, so callers use the result unconditionally).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// remoteCtxKey keys a remote parent span context in a context.Context.
type remoteCtxKey struct{}

// ContextWithRemote returns a context carrying a remote parent span
// context — the identity Extract pulled off an incoming request — so a
// downstream layer that roots its own span (SearchExplained) can join
// the caller's trace with SpanWithRemoteParent instead of minting a
// fresh trace ID. An invalid context leaves ctx unchanged.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// RemoteFromContext returns the remote parent span context carried by
// ctx (zero, i.e. !Valid(), when absent).
func RemoteFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(remoteCtxKey{}).(SpanContext)
	return sc
}
