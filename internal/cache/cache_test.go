package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestGetPutLRU(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Options{Name: "t", Capacity: 3, Shards: 1, Metrics: reg})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now the LRU entry; inserting "d" must evict it.
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["t_evictions_total"]; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := snap.Gauges["t_entries"]; got != 3 {
		t.Errorf("entries gauge = %v, want 3", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	c := New(Options{Name: "t", TTL: time.Minute, now: func() time.Time { return now }})
	c.Put("k", "v")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Error("expired entry returned")
	}
}

func TestGenerationInvalidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Options{Name: "t", Metrics: reg})
	c.Put("k", "v")
	c.Invalidate()
	if _, ok := c.Get("k"); ok {
		t.Error("stale-generation entry returned")
	}
	c.Put("k", "v2")
	if v, ok := c.Get("k"); !ok || v.(string) != "v2" {
		t.Errorf("post-invalidation Get = %v, %v", v, ok)
	}
	if got := reg.Snapshot().Counters["t_invalidations_total"]; got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
}

func TestDoCachesAndCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Options{Name: "t", Metrics: reg})
	loads := 0
	load := func() (interface{}, error) { loads++; return 42, nil }
	v, hit, collapsed, err := c.Do(context.Background(), "k", load)
	if err != nil || v.(int) != 42 || hit || collapsed {
		t.Fatalf("first Do = %v hit=%v collapsed=%v err=%v", v, hit, collapsed, err)
	}
	v, hit, _, err = c.Do(context.Background(), "k", load)
	if err != nil || v.(int) != 42 || !hit {
		t.Fatalf("second Do = %v hit=%v err=%v", v, hit, err)
	}
	if loads != 1 {
		t.Errorf("loader ran %d times, want 1", loads)
	}
	snap := reg.Snapshot()
	if snap.Counters["t_hits_total"] != 1 || snap.Counters["t_misses_total"] != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1",
			snap.Counters["t_hits_total"], snap.Counters["t_misses_total"])
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(Options{Name: "t"})
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, _, err := c.Do(context.Background(), "k", func() (interface{}, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("Do err = %v, want boom", err)
		}
	}
	if calls != 2 {
		t.Errorf("failed load cached: ran %d times, want 2", calls)
	}
}

func TestDoCollapsesConcurrentLoads(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Options{Name: "t", Metrics: reg})
	var loads atomic.Int64
	gate := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	var collapsedN atomic.Int64
	results := make([]interface{}, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, _, collapsed, err := c.Do(context.Background(), "k", func() (interface{}, error) {
				loads.Add(1)
				<-gate // hold the load open until all callers have queued
				return "answer", nil
			})
			if err != nil {
				t.Error(err)
			}
			if collapsed {
				collapsedN.Add(1)
			}
			results[i] = v
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the non-loader goroutines a moment to reach the collapse path,
	// then release the single loader.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Errorf("loader ran %d times, want 1", got)
	}
	if got := collapsedN.Load(); got != n-1 {
		t.Errorf("collapsed callers = %d, want %d", got, n-1)
	}
	for i, v := range results {
		if v != "answer" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	if got := reg.Snapshot().Counters["t_collapsed_total"]; got != n-1 {
		t.Errorf("collapsed counter = %d, want %d", got, n-1)
	}
}

func TestDoWaiterHonorsContext(t *testing.T) {
	c := New(Options{Name: "t"})
	gate := make(chan struct{})
	loaderIn := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (interface{}, error) {
			close(loaderIn)
			<-gate
			return 1, nil
		})
	}()
	<-loaderIn
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, collapsed, err := c.Do(ctx, "k", func() (interface{}, error) { return 2, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter err = %v, want deadline exceeded", err)
	}
	if !collapsed {
		t.Error("waiter not marked collapsed")
	}
	close(gate)
}

func TestInvalidationDuringLoadNotCached(t *testing.T) {
	c := New(Options{Name: "t"})
	v, _, _, err := c.Do(context.Background(), "k", func() (interface{}, error) {
		c.Invalidate() // summaries rebuilt while this load was in flight
		return "stale", nil
	})
	if err != nil || v.(string) != "stale" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("value loaded under an old generation was cached")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache hit")
	}
	c.Put("k", 1)
	c.Invalidate()
	if c.Len() != 0 || c.Generation() != 0 {
		t.Error("nil cache nonzero state")
	}
	v, hit, collapsed, err := c.Do(context.Background(), "k", func() (interface{}, error) { return 7, nil })
	if err != nil || v.(int) != 7 || hit || collapsed {
		t.Errorf("nil Do = %v hit=%v collapsed=%v err=%v", v, hit, collapsed, err)
	}
}

func TestShardedCapacity(t *testing.T) {
	c := New(Options{Name: "t", Capacity: 64, Shards: 8})
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if got := c.Len(); got > 64 {
		t.Errorf("Len = %d, want <= 64", got)
	}
}
