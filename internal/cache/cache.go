// Package cache is the query-serving cache behind the metasearcher's
// hot path: a sharded in-memory map with per-shard LRU eviction, TTL
// expiry, generation-keyed invalidation, and singleflight collapsing of
// concurrent identical loads.
//
// The selection decision of the paper depends only on the analyzed
// query terms and the current content summaries: between summary
// rebuilds it is a pure function, and therefore safe to cache. The
// generation counter encodes "which summaries": bumping it (on
// Save/Load/rebuild) marks every existing entry stale at once — an O(1)
// invalidation that never blocks readers behind a flush. Stale entries
// die lazily, evicted when next touched or when LRU pressure reaches
// them.
//
// Every cache reports its behavior through a telemetry.Registry under
// its own name prefix: <name>_hits_total, <name>_misses_total,
// <name>_evictions_total, <name>_collapsed_total,
// <name>_invalidations_total (counters), and <name>_entries,
// <name>_inflight_loads (gauges) — the same vocabulary the wire doc
// cache reports under wire_doc_cache_*.
package cache

import (
	"container/list"
	"context"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Options configures a Cache.
type Options struct {
	// Name prefixes the cache's metric series (e.g. "selection_cache" →
	// selection_cache_hits_total). Required when Metrics is set.
	Name string
	// Capacity bounds the total number of entries across all shards
	// (default 1024). The per-shard bound is Capacity/Shards, rounded up.
	Capacity int
	// Shards is the number of independently locked segments (default
	// 16). More shards mean less lock contention under concurrent load.
	Shards int
	// TTL bounds an entry's lifetime from insertion. 0 means entries
	// never expire (generation bumps and LRU pressure still evict them).
	TTL time.Duration
	// Metrics receives the cache's series (may be nil).
	Metrics *telemetry.Registry

	// now overrides the clock (tests).
	now func() time.Time
}

// Cache is a sharded LRU+TTL cache. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Cache never hits, never
// collapses, and Do just runs the loader), so callers can disable
// caching without conditionals.
type Cache struct {
	opts   Options
	shards []*shard
	seed   maphash.Seed
	gen    atomic.Uint64
	now    func() time.Time

	hits          *telemetry.Counter
	misses        *telemetry.Counter
	evictions     *telemetry.Counter
	collapses     *telemetry.Counter
	invalidations *telemetry.Counter
	entries       *telemetry.Gauge
	inflight      *telemetry.Gauge
}

type shard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	calls map[string]*call
	cap   int
}

type entry struct {
	key string
	val interface{}
	gen uint64
	exp time.Time // zero = no expiry
}

// call is one in-flight load that concurrent identical requests collapse
// onto. The done channel closes when the loader finishes, so waiters can
// honor their own context instead of being held hostage by the loader.
type call struct {
	done chan struct{}
	val  interface{}
	err  error
}

// New creates a cache. Metric series are registered immediately so an
// exposition endpoint shows them at zero before traffic arrives.
func New(opts Options) *Cache {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	if opts.Shards > opts.Capacity {
		opts.Shards = opts.Capacity
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	perShard := (opts.Capacity + opts.Shards - 1) / opts.Shards
	c := &Cache{
		opts: opts,
		seed: maphash.MakeSeed(),
		now:  opts.now,

		hits:          opts.Metrics.Counter(opts.Name + "_hits_total"),
		misses:        opts.Metrics.Counter(opts.Name + "_misses_total"),
		evictions:     opts.Metrics.Counter(opts.Name + "_evictions_total"),
		collapses:     opts.Metrics.Counter(opts.Name + "_collapsed_total"),
		invalidations: opts.Metrics.Counter(opts.Name + "_invalidations_total"),
		entries:       opts.Metrics.Gauge(opts.Name + "_entries"),
		inflight:      opts.Metrics.Gauge(opts.Name + "_inflight_loads"),
	}
	for _, d := range []struct{ suffix, help string }{
		{"_hits_total", "Lookups served from the " + opts.Name + " tier."},
		{"_misses_total", "Lookups the " + opts.Name + " tier could not serve."},
		{"_evictions_total", "Entries evicted from the " + opts.Name + " tier (LRU or expired)."},
		{"_collapsed_total", "Lookups that piggybacked on an identical in-flight load (" + opts.Name + ")."},
		{"_invalidations_total", "Generation bumps staling every " + opts.Name + " entry at once."},
		{"_entries", "Live entries in the " + opts.Name + " tier."},
		{"_inflight_loads", "Loads currently in flight for the " + opts.Name + " tier."},
	} {
		opts.Metrics.Describe(opts.Name+d.suffix, d.help)
	}
	c.shards = make([]*shard, opts.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{
			ll:    list.New(),
			byKey: make(map[string]*list.Element),
			calls: make(map[string]*call),
			cap:   perShard,
		}
	}
	return c
}

// shardFor hashes the key onto its shard.
func (c *Cache) shardFor(key string) *shard {
	return c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Generation returns the current generation. Entries inserted under an
// older generation are stale and will never be returned.
func (c *Cache) Generation() uint64 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// Invalidate bumps the generation, instantly staling every cached
// entry. O(1): nothing is scanned or freed eagerly, so queries racing
// the invalidation never block behind it. In-flight loads that began
// under the old generation still deliver their value to waiters, but it
// is not cached.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.gen.Add(1)
	c.invalidations.Inc()
}

// Get returns the cached value for key, if a live (current-generation,
// unexpired) entry exists.
func (c *Cache) Get(key string) (interface{}, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := c.getLocked(s, key)
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// getLocked looks key up in s, removing (and counting as evicted) a
// stale or expired entry it finds in the way. Caller holds s.mu.
func (c *Cache) getLocked(s *shard, key string) (interface{}, bool) {
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.gen != c.gen.Load() || (!e.exp.IsZero() && c.now().After(e.exp)) {
		c.removeLocked(s, el)
		return nil, false
	}
	s.ll.MoveToFront(el)
	return e.val, true
}

// Put inserts (or refreshes) one entry under the current generation,
// evicting from the LRU tail once the shard is over capacity.
func (c *Cache) Put(key string, v interface{}) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	c.putLocked(s, key, v, c.gen.Load())
	s.mu.Unlock()
}

// putLocked inserts under the given generation. Caller holds s.mu.
func (c *Cache) putLocked(s *shard, key string, v interface{}, gen uint64) {
	var exp time.Time
	if c.opts.TTL > 0 {
		exp = c.now().Add(c.opts.TTL)
	}
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*entry)
		e.val, e.gen, e.exp = v, gen, exp
		s.ll.MoveToFront(el)
		return
	}
	s.byKey[key] = s.ll.PushFront(&entry{key: key, val: v, gen: gen, exp: exp})
	c.entries.Add(1)
	for s.ll.Len() > s.cap {
		c.removeLocked(s, s.ll.Back())
	}
}

// removeLocked drops one element, counting the eviction. Caller holds
// s.mu.
func (c *Cache) removeLocked(s *shard, el *list.Element) {
	s.ll.Remove(el)
	delete(s.byKey, el.Value.(*entry).key)
	c.evictions.Inc()
	c.entries.Add(-1)
}

// Do returns the cached value for key, or runs load exactly once to
// produce it — concurrent Do calls for the same key collapse onto one
// in-flight load (singleflight) and all receive its value and error.
// The value is cached only when load
// succeeds and the generation has not been bumped since the load began
// (a load racing an invalidation must not resurrect pre-invalidation
// state).
//
// The returned flags describe how this call was answered: hit means the
// value came from the cache without any load; collapsed means this call
// waited on another caller's in-flight load. A waiter whose ctx ends
// before the load finishes returns ctx.Err() — the load itself keeps
// running under the loader's control, so one impatient waiter cannot
// cancel everyone's answer.
//
// On a nil *Cache, Do simply runs load.
func (c *Cache) Do(ctx context.Context, key string, load func() (interface{}, error)) (v interface{}, hit, collapsed bool, err error) {
	if c == nil {
		v, err = load()
		return v, false, false, err
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if v, ok := c.getLocked(s, key); ok {
		s.mu.Unlock()
		c.hits.Inc()
		return v, true, false, nil
	}
	c.misses.Inc()
	if cl, ok := s.calls[key]; ok {
		s.mu.Unlock()
		c.collapses.Inc()
		select {
		case <-cl.done:
			return cl.val, false, true, cl.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	s.calls[key] = cl
	gen := c.gen.Load()
	s.mu.Unlock()

	c.inflight.Add(1)
	cl.val, cl.err = load()
	c.inflight.Add(-1)

	s.mu.Lock()
	delete(s.calls, key)
	if cl.err == nil && gen == c.gen.Load() {
		c.putLocked(s, key, cl.val, gen)
	}
	s.mu.Unlock()
	close(cl.done)
	return cl.val, false, false, cl.err
}

// Len reports how many entries the cache currently holds (stale and
// expired entries that have not been touched since count too — they die
// lazily).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
