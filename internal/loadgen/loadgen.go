// Package loadgen is the workload engine: an open-loop load generator
// that drives the metasearcher (in process, or over HTTP through the
// gateway) at a configured request rate and measures what serving
// actually costs — achieved QPS, latency percentiles including the
// tail, and shed/hedge/breaker/cache rates.
//
// Two properties make the numbers honest:
//
//   - Open loop. Arrivals are a Poisson process at the configured rate,
//     generated ahead of time; a request fires at its scheduled instant
//     whether or not earlier requests have finished. A closed loop (N
//     workers in a request-response cycle) backs off exactly when the
//     server struggles, hiding the overload it was supposed to measure.
//
//   - Coordinated-omission-safe latency. A request's latency is
//     measured from its *scheduled* arrival, not from when the client
//     got around to sending it, so scheduler lag and queueing delay
//     count against the server's percentiles (the wrk2 correction).
//
// Query popularity is Zipfian — a few hot queries dominate, a long tail
// keeps the cache honest — and the full request schedule is generated
// deterministically from a seed into a Trace, a replayable JSON
// document: the same trace replays the same schedule, so two builds can
// be measured under identical workloads.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/zipf"
)

// TraceVersion identifies the trace file format.
const TraceVersion = 1

// Phase is one segment of the QPS profile: hold QPS for Duration.
// Ramps and bursts are sequences of phases ("50 QPS for 10s, then 500
// for 2s, then 50 again").
type Phase struct {
	// QPS is the mean arrival rate of this phase.
	QPS float64 `json:"qps"`
	// DurationSeconds is how long the phase lasts.
	DurationSeconds float64 `json:"duration_seconds"`
	// Burst groups arrivals into back-to-back volleys of this size:
	// volleys arrive as a Poisson process at QPS/Burst, each carrying
	// Burst simultaneous requests — the "thundering herd" shape that
	// singleflight collapsing and admission gates exist for. 0 or 1
	// means independent arrivals.
	Burst int `json:"burst,omitempty"`
}

// Spec configures trace generation.
type Spec struct {
	// Phases is the QPS profile, played in order.
	Phases []Phase `json:"phases"`
	// ZipfExponent skews query popularity (rank r drawn with
	// probability ∝ (r+1)^-s; default 1.1). Higher = hotter head =
	// higher cache-hit rates.
	ZipfExponent float64 `json:"zipf_exponent,omitempty"`
	// Seed drives arrivals and query choice. Same seed + same spec +
	// same workload ⇒ byte-identical trace.
	Seed int64 `json:"seed"`
}

// Event is one scheduled request.
type Event struct {
	// At is the scheduled arrival, in seconds since trace start.
	At float64 `json:"at"`
	// Query indexes Trace.Queries.
	Query int `json:"query"`
}

// Trace is a fully materialized, replayable request schedule.
type Trace struct {
	Version int  `json:"version"`
	Spec    Spec `json:"spec"`
	// Queries is the workload: the distinct query strings, hottest rank
	// first (popularity follows the spec's Zipf law over indices).
	Queries []string `json:"queries"`
	Events  []Event  `json:"events"`
}

// Duration is the total scheduled length of the trace's profile.
func (t *Trace) Duration() time.Duration {
	var s float64
	for _, p := range t.Spec.Phases {
		s += p.DurationSeconds
	}
	return time.Duration(s * float64(time.Second))
}

// TargetQPS is the profile's mean arrival rate (request-weighted).
func (t *Trace) TargetQPS() float64 {
	var reqs, secs float64
	for _, p := range t.Spec.Phases {
		reqs += p.QPS * p.DurationSeconds
		secs += p.DurationSeconds
	}
	if secs == 0 {
		return 0
	}
	return reqs / secs
}

// Generate materializes the request schedule for a workload: Poisson
// arrivals per phase, Zipfian query choice. Deterministic in
// (spec, queries).
func Generate(spec Spec, queries []string) (*Trace, error) {
	if len(queries) == 0 {
		return nil, errors.New("loadgen: workload has no queries")
	}
	if len(spec.Phases) == 0 {
		return nil, errors.New("loadgen: spec has no phases")
	}
	for i, p := range spec.Phases {
		if p.QPS <= 0 || p.DurationSeconds <= 0 {
			return nil, fmt.Errorf("loadgen: phase %d needs positive qps and duration, got %+v", i, p)
		}
	}
	s := spec.ZipfExponent
	if s == 0 {
		s = 1.1
	}
	sampler, err := zipf.NewSampler(len(queries), s, 0)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %v", err)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	tr := &Trace{Version: TraceVersion, Spec: spec, Queries: queries}
	offset := 0.0
	for _, p := range spec.Phases {
		burst := p.Burst
		if burst < 1 {
			burst = 1
		}
		// Volleys of `burst` requests arrive as a Poisson process whose
		// rate keeps the per-request QPS at p.QPS.
		volleyRate := p.QPS / float64(burst)
		end := offset + p.DurationSeconds
		at := offset
		for {
			at += rng.ExpFloat64() / volleyRate
			if at >= end {
				break
			}
			for j := 0; j < burst; j++ {
				tr.Events = append(tr.Events, Event{At: at, Query: sampler.Sample(rng)})
			}
		}
		offset = end
	}
	if len(tr.Events) == 0 {
		return nil, errors.New("loadgen: profile too short, no arrivals generated")
	}
	return tr, nil
}

// Encode writes the trace as JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("loadgen: malformed trace: %v", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("loadgen: trace version %d, want %d", t.Version, TraceVersion)
	}
	if len(t.Queries) == 0 || len(t.Events) == 0 {
		return nil, errors.New("loadgen: trace has no queries or events")
	}
	for i, ev := range t.Events {
		if ev.Query < 0 || ev.Query >= len(t.Queries) {
			return nil, fmt.Errorf("loadgen: event %d references query %d of %d", i, ev.Query, len(t.Queries))
		}
	}
	return &t, nil
}

// SaveFile writes the trace to a file; LoadFile reads one back.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace file written by SaveFile.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// ParseRamp parses a compact QPS profile like "50:5s,500:2s,50:5s"
// (qps:duration segments, played in order) into phases. An optional
// third field sets the burst size: "200:10s:20" groups that phase's
// arrivals into volleys of 20.
func ParseRamp(s string) ([]Phase, error) {
	var phases []Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("loadgen: bad ramp segment %q (want qps:duration[:burst])", part)
		}
		qps, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad qps in ramp segment %q", part)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("loadgen: bad duration in ramp segment %q", part)
		}
		burst := 0
		if len(fields) == 3 {
			if burst, err = strconv.Atoi(fields[2]); err != nil || burst < 0 {
				return nil, fmt.Errorf("loadgen: bad burst in ramp segment %q", part)
			}
		}
		phases = append(phases, Phase{QPS: qps, DurationSeconds: d.Seconds(), Burst: burst})
	}
	if len(phases) == 0 {
		return nil, errors.New("loadgen: empty ramp")
	}
	return phases, nil
}
