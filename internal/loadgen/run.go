package loadgen

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Options tunes a load run.
type Options struct {
	// Name labels the run in reports ("steady-100qps").
	Name string
	// MaxOutstanding caps in-flight requests, 0 = unlimited. When the
	// cap is hit a scheduled request is dropped (and counted), not
	// deferred — deferring would reintroduce coordinated omission.
	MaxOutstanding int
	// Registry, when set, is snapshotted before and after the run so
	// the report can attribute server-side deltas (hedges, breaker
	// opens, sheds, cache hits, per-stage latency percentiles) to this
	// run alone. Point it at the registry the driven Metasearcher and
	// gateway write to.
	Registry *telemetry.Registry
}

// LatencySummary is the client-observed latency distribution, in
// seconds, measured from each request's *scheduled* arrival time.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// Report is the outcome of one load run.
type Report struct {
	Name            string  `json:"name"`
	Driver          string  `json:"driver"`
	TargetQPS       float64 `json:"target_qps"`
	DurationSeconds float64 `json:"duration_seconds"`

	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Errors   int `json:"errors"`
	Shed     int `json:"shed"`
	// Dropped counts scheduled requests never sent because
	// MaxOutstanding was hit; they are client-side losses, not server
	// failures, and are excluded from latency.
	Dropped int `json:"dropped"`

	// AchievedQPS is requests actually issued over the wall-clock span
	// from first scheduled arrival to last completion.
	AchievedQPS float64 `json:"achieved_qps"`

	Latency LatencySummary `json:"latency_seconds"`

	// Rates are per-issued-request fractions: error, shed,
	// result_cache_hit, selection_cache_hit, collapsed, plus
	// server-side hedge / breaker_open rates when a Registry was given.
	Rates map[string]float64 `json:"rates"`

	// Server holds raw server-side counter deltas over the run
	// (present only when a Registry was given).
	Server map[string]int64 `json:"server_deltas,omitempty"`

	// Stages holds server-side per-stage latency percentiles (seconds)
	// estimated from the search_stage_* histogram deltas over the run:
	// keys like "selection.p50", "fanout.p99".
	Stages map[string]float64 `json:"stage_latency_seconds,omitempty"`
}

// serverCounters are the registry counters worth attributing to a run.
var serverCounters = []string{
	"search_requests_total",
	"search_hedges_total",
	"search_hedge_wins_total",
	"search_breaker_open_total",
	"search_sheds_total",
	"search_db_unavailable_total",
	"gateway_requests_total",
	"gateway_errors_total",
	"gateway_shed_total",
	"result_cache_hits_total",
	"result_cache_collapsed_total",
	"selection_cache_hits_total",
	// Cluster tier: the router's scatter-gather and the shards'
	// replica-aware fan-out (zero outside a cluster).
	"router_requests_total",
	"router_errors_total",
	"router_shard_calls_total",
	"router_shard_errors_total",
	"router_shard_skipped_total",
	"router_dedup_dropped_total",
	"search_out_of_scope_total",
	"replica_failover_total",
	"replica_exhausted_total",
}

// stageHistograms are the per-stage latency decomposition series kept by
// the search pipeline.
var stageHistograms = map[string]string{
	"cache":     "search_stage_cache_latency",
	"selection": "search_stage_selection_latency",
	"fanout":    "search_stage_fanout_latency",
	"merge":     "search_stage_merge_latency",
}

// Run replays the trace against the driver: open loop, every event
// fires at its scheduled offset from the run's start. Cancelling ctx
// stops scheduling new requests; in-flight ones finish.
func Run(ctx context.Context, tr *Trace, d Driver, opts Options) (*Report, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	before := snapshotOrZero(opts.Registry)

	var (
		mu                                         sync.Mutex
		latencies                                  []float64
		errs, shed, resultHits, selHits, collapsed int
	)
	var outstanding sync.WaitGroup
	var inflight chan struct{}
	if opts.MaxOutstanding > 0 {
		inflight = make(chan struct{}, opts.MaxOutstanding)
	}
	dropped := 0
	issued := 0

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

schedule:
	for _, ev := range tr.Events {
		due := start.Add(time.Duration(ev.At * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break schedule
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break schedule
		}
		if inflight != nil {
			select {
			case inflight <- struct{}{}:
			default:
				dropped++
				continue
			}
		}
		issued++
		q := tr.Queries[ev.Query]
		outstanding.Add(1)
		go func(due time.Time, q string) {
			defer outstanding.Done()
			if inflight != nil {
				defer func() { <-inflight }()
			}
			res := d.Do(ctx, q)
			// Latency from the scheduled arrival: queueing delay in the
			// client counts against the server, per wrk2.
			lat := time.Since(due).Seconds()
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lat)
			switch {
			case res.Shed:
				shed++
			case res.Err != nil:
				errs++
			default:
				if res.ResultHit {
					resultHits++
				}
				if res.SelectionHit {
					selHits++
				}
				if res.Collapsed {
					collapsed++
				}
			}
		}(due, q)
	}
	outstanding.Wait()
	wall := time.Since(start).Seconds()
	after := snapshotOrZero(opts.Registry)

	rep := &Report{
		Name:            opts.Name,
		Driver:          d.Name(),
		TargetQPS:       tr.TargetQPS(),
		DurationSeconds: wall,
		Requests:        issued,
		OK:              issued - errs - shed,
		Errors:          errs,
		Shed:            shed,
		Dropped:         dropped,
		Latency:         summarize(latencies),
		Rates:           map[string]float64{},
	}
	if wall > 0 {
		rep.AchievedQPS = float64(issued) / wall
	}
	if issued > 0 {
		n := float64(issued)
		rep.Rates["error"] = float64(errs) / n
		rep.Rates["shed"] = float64(shed) / n
		rep.Rates["result_cache_hit"] = float64(resultHits) / n
		rep.Rates["selection_cache_hit"] = float64(selHits) / n
		rep.Rates["collapsed"] = float64(collapsed) / n
	}

	if opts.Registry != nil {
		rep.Server = map[string]int64{}
		for _, name := range serverCounters {
			if d := after.Counters[name] - before.Counters[name]; d != 0 {
				rep.Server[name] = d
			}
		}
		searches := rep.Server["search_requests_total"]
		if searches > 0 {
			rep.Rates["hedge"] = float64(rep.Server["search_hedges_total"]) / float64(searches)
			rep.Rates["breaker_open"] = float64(rep.Server["search_breaker_open_total"]) / float64(searches)
		}
		rep.Stages = map[string]float64{}
		for stage, series := range stageHistograms {
			delta := subtractHistogram(after.Histograms[series], before.Histograms[series])
			if delta.Count == 0 {
				continue
			}
			rep.Stages[stage+".p50"] = delta.Quantile(0.50)
			rep.Stages[stage+".p95"] = delta.Quantile(0.95)
			rep.Stages[stage+".p99"] = delta.Quantile(0.99)
		}
	}
	return rep, nil
}

func snapshotOrZero(r *telemetry.Registry) telemetry.Snapshot {
	if r == nil {
		return telemetry.Snapshot{}
	}
	return r.Snapshot()
}

// subtractHistogram computes after − before bucket-wise, yielding the
// distribution of observations made between the two snapshots.
func subtractHistogram(after, before telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	if after.Count == 0 || len(after.Counts) == 0 {
		return telemetry.HistogramSnapshot{}
	}
	out := telemetry.HistogramSnapshot{
		Bounds: after.Bounds,
		Counts: make([]int64, len(after.Counts)),
		Sum:    after.Sum - before.Sum,
		Count:  after.Count - before.Count,
	}
	for i := range after.Counts {
		out.Counts[i] = after.Counts[i]
		if i < len(before.Counts) {
			out.Counts[i] -= before.Counts[i]
		}
	}
	if out.Count <= 0 {
		return telemetry.HistogramSnapshot{}
	}
	return out
}

// summarize computes the latency distribution (nearest-rank
// percentiles) over the run's samples.
func summarize(samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pct := func(q float64) float64 {
		i := int(q*float64(len(sorted)) + 0.5)
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencySummary{
		Mean: sum / float64(len(sorted)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P95:  pct(0.95),
		P99:  pct(0.99),
		P999: pct(0.999),
		Max:  sorted[len(sorted)-1],
	}
}

// Format renders the report as a human-readable block.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load run %q (%s driver)\n", r.Name, r.Driver)
	fmt.Fprintf(&b, "  target %.1f QPS, achieved %.1f QPS over %.2fs\n", r.TargetQPS, r.AchievedQPS, r.DurationSeconds)
	fmt.Fprintf(&b, "  requests %d  ok %d  errors %d  shed %d  dropped %d\n", r.Requests, r.OK, r.Errors, r.Shed, r.Dropped)
	fmt.Fprintf(&b, "  latency  p50 %.1fms  p90 %.1fms  p95 %.1fms  p99 %.1fms  p99.9 %.1fms  max %.1fms\n",
		r.Latency.P50*1e3, r.Latency.P90*1e3, r.Latency.P95*1e3, r.Latency.P99*1e3, r.Latency.P999*1e3, r.Latency.Max*1e3)
	keys := make([]string, 0, len(r.Rates))
	for k := range r.Rates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  rate %-20s %6.2f%%\n", k, r.Rates[k]*100)
	}
	if len(r.Stages) > 0 {
		stages := []string{"cache", "selection", "fanout", "merge"}
		for _, s := range stages {
			if p50, ok := r.Stages[s+".p50"]; ok {
				fmt.Fprintf(&b, "  stage %-12s p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
					s, p50*1e3, r.Stages[s+".p95"]*1e3, r.Stages[s+".p99"]*1e3)
			}
		}
	}
	return b.String()
}
