package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro"
)

// Result is the outcome of one request as seen by the client.
type Result struct {
	// Err is set when the request failed (transport error, non-2xx
	// other than shed, malformed body).
	Err error
	// Status is the HTTP status code when known (0 for in-process).
	Status int
	// Shed reports the server refused the request under load (429).
	Shed bool
	// ResultHit, SelectionHit, Collapsed mirror the gateway/search
	// cache-disposition flags for hit-rate accounting.
	ResultHit    bool
	SelectionHit bool
	Collapsed    bool
}

// Driver issues one request against some serving surface.
type Driver interface {
	// Name identifies the driver in reports ("inproc", "http").
	Name() string
	// Do issues the query and classifies the outcome.
	Do(ctx context.Context, query string) Result
}

// Searcher is the in-process serving surface (satisfied by
// *repro.Metasearcher).
type Searcher interface {
	SearchExplained(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error)
}

// SearcherDriver calls SearchExplained directly, measuring the serving
// pipeline without HTTP overhead.
type SearcherDriver struct {
	S      Searcher
	MaxDBs int
	PerDB  int
}

// Name implements Driver.
func (d *SearcherDriver) Name() string { return "inproc" }

// Do implements Driver.
func (d *SearcherDriver) Do(ctx context.Context, query string) Result {
	resp, err := d.S.SearchExplained(ctx, query, d.MaxDBs, d.PerDB)
	if err != nil {
		return Result{Err: err}
	}
	return Result{
		ResultHit:    resp.CacheHit,
		SelectionHit: resp.SelectionCacheHit,
		Collapsed:    resp.Collapsed,
	}
}

// HTTPDriver drives the gateway's /v1/search endpoint, exercising the
// full serving path: admission gate, caches, selection, fan-out.
type HTTPDriver struct {
	// BaseURL is the gateway root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to http.DefaultClient. Give it a generous
	// Timeout and Transport.MaxIdleConnsPerHost for high QPS.
	Client *http.Client
	MaxDBs int
	PerDB  int
}

// Name implements Driver.
func (d *HTTPDriver) Name() string { return "http" }

// httpReply is the subset of the gateway's search reply the runner
// accounts for.
type httpReply struct {
	ResultHit    bool `json:"result_hit"`
	SelectionHit bool `json:"selection_hit"`
	Collapsed    bool `json:"collapsed"`
}

// httpError is the gateway's error envelope.
type httpError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Do implements Driver.
func (d *HTTPDriver) Do(ctx context.Context, query string) Result {
	q := url.Values{"q": {query}}
	if d.MaxDBs > 0 {
		q.Set("k", strconv.Itoa(d.MaxDBs))
	}
	if d.PerDB > 0 {
		q.Set("perdb", strconv.Itoa(d.PerDB))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.BaseURL+"/v1/search?"+q.Encode(), nil)
	if err != nil {
		return Result{Err: err}
	}
	client := d.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return Result{Err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		return Result{Status: resp.StatusCode, Shed: true}
	}
	if resp.StatusCode != http.StatusOK {
		var envelope httpError
		json.NewDecoder(resp.Body).Decode(&envelope)
		msg := envelope.Error.Message
		if msg == "" {
			msg = resp.Status
		}
		return Result{Status: resp.StatusCode, Err: fmt.Errorf("gateway: %s", msg)}
	}
	var reply httpReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return Result{Status: resp.StatusCode, Err: fmt.Errorf("gateway: malformed reply: %v", err)}
	}
	return Result{
		Status:       resp.StatusCode,
		ResultHit:    reply.ResultHit,
		SelectionHit: reply.SelectionHit,
		Collapsed:    reply.Collapsed,
	}
}
