package loadgen

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

var testQueries = []string{"heart attack", "world cup", "gene therapy", "stock market", "deep sea"}

func testSpec(seed int64) Spec {
	return Spec{
		Phases: []Phase{{QPS: 200, DurationSeconds: 2}, {QPS: 50, DurationSeconds: 1, Burst: 5}},
		Seed:   seed,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testSpec(42), testQueries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec(42), testQueries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and spec produced different traces")
	}
	c, err := Generate(testSpec(43), testQueries)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	a, err := Generate(testSpec(7), testQueries)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace changed across encode/decode")
	}
}

func TestDecodeRejectsBadTraces(t *testing.T) {
	for name, body := range map[string]string{
		"wrong version": `{"version":99,"queries":["a"],"events":[{"at":0.1,"query":0}]}`,
		"no queries":    `{"version":1,"queries":[],"events":[{"at":0.1,"query":0}]}`,
		"bad index":     `{"version":1,"queries":["a"],"events":[{"at":0.1,"query":3}]}`,
		"not json":      `garbage`,
	} {
		if _, err := Decode(bytes.NewBufferString(body)); err == nil {
			t.Errorf("%s: Decode accepted a malformed trace", name)
		}
	}
}

func TestGenerateSchedule(t *testing.T) {
	tr, err := Generate(testSpec(1), testQueries)
	if err != nil {
		t.Fatal(err)
	}
	dur := tr.Duration().Seconds()
	if dur != 3 {
		t.Fatalf("Duration = %vs, want 3s", dur)
	}
	prev := 0.0
	for i, ev := range tr.Events {
		if ev.At < prev {
			t.Fatalf("event %d at %v before previous %v: schedule not monotone", i, ev.At, prev)
		}
		if ev.At < 0 || ev.At >= dur {
			t.Fatalf("event %d at %v outside [0, %v)", i, ev.At, dur)
		}
		if ev.Query < 0 || ev.Query >= len(testQueries) {
			t.Fatalf("event %d references query %d", i, ev.Query)
		}
		prev = ev.At
	}
	// ~200*2 + 50*1 = 450 expected arrivals; Poisson noise stays well
	// within ±40% at this volume.
	if n := len(tr.Events); n < 270 || n > 630 {
		t.Fatalf("got %d events, expected around 450", n)
	}
	if got, want := tr.TargetQPS(), 450.0/3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("TargetQPS = %v, want %v", got, want)
	}
}

func TestGenerateZipfHeadSkew(t *testing.T) {
	tr, err := Generate(Spec{
		Phases:       []Phase{{QPS: 2000, DurationSeconds: 2}},
		ZipfExponent: 1.3,
		Seed:         9,
	}, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(testQueries))
	for _, ev := range tr.Events {
		counts[ev.Query]++
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Fatalf("rank 0 drawn %d times, last rank %d: no Zipf head skew", counts[0], counts[len(counts)-1])
	}
	if frac := float64(counts[0]) / float64(len(tr.Events)); frac < 0.35 {
		t.Fatalf("hottest query got %.0f%% of traffic, expected a dominant head", frac*100)
	}
}

func TestGenerateBurstVolleys(t *testing.T) {
	tr, err := Generate(Spec{
		Phases: []Phase{{QPS: 100, DurationSeconds: 2, Burst: 10}},
		Seed:   3,
	}, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events)%10 != 0 {
		t.Fatalf("%d events with burst 10: volleys are not whole", len(tr.Events))
	}
	// Every volley shares one arrival instant.
	for i := 0; i < len(tr.Events); i += 10 {
		for j := 1; j < 10; j++ {
			if tr.Events[i+j].At != tr.Events[i].At {
				t.Fatalf("volley at event %d not simultaneous", i)
			}
		}
	}
}

func TestParseRamp(t *testing.T) {
	phases, err := ParseRamp("50:5s, 500:2s:20 ,50:5s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		{QPS: 50, DurationSeconds: 5},
		{QPS: 500, DurationSeconds: 2, Burst: 20},
		{QPS: 50, DurationSeconds: 5},
	}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("ParseRamp = %+v, want %+v", phases, want)
	}
	for _, bad := range []string{"", "fast:1s", "50", "50:1s:x", "50:zero", "1:2:3:4"} {
		if _, err := ParseRamp(bad); err == nil {
			t.Errorf("ParseRamp(%q) accepted a bad ramp", bad)
		}
	}
}

// slowDriver answers every request after a fixed delay.
type slowDriver struct {
	delay time.Duration
	calls atomic.Int64
}

func (d *slowDriver) Name() string { return "slow" }

func (d *slowDriver) Do(ctx context.Context, query string) Result {
	d.calls.Add(1)
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
	}
	return Result{ResultHit: true}
}

// TestOpenLoopDoesNotBackOff is the coordinated-omission test: with
// 50ms of server latency and 100 QPS offered, a closed loop with a
// single connection would be capped at 20 QPS. The open-loop runner
// must keep issuing at the scheduled rate regardless of outstanding
// requests.
func TestOpenLoopDoesNotBackOff(t *testing.T) {
	tr, err := Generate(Spec{
		Phases: []Phase{{QPS: 100, DurationSeconds: 0.5}},
		Seed:   11,
	}, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	d := &slowDriver{delay: 50 * time.Millisecond}
	rep, err := Run(context.Background(), tr, d, Options{Name: "open-loop"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(tr.Events) {
		t.Fatalf("issued %d of %d scheduled requests", rep.Requests, len(tr.Events))
	}
	if rep.AchievedQPS < 40 {
		t.Fatalf("achieved %.1f QPS with 50ms server latency: runner is closing the loop", rep.AchievedQPS)
	}
	if rep.Latency.P50 < 0.045 {
		t.Fatalf("p50 %.1fms below the 50ms floor imposed by the driver", rep.Latency.P50*1e3)
	}
	if rep.Rates["result_cache_hit"] != 1 {
		t.Fatalf("result_cache_hit rate %.2f, want 1", rep.Rates["result_cache_hit"])
	}
}

// outcomeDriver cycles through canned outcomes.
type outcomeDriver struct {
	outcomes []Result
	n        atomic.Int64
}

func (d *outcomeDriver) Name() string { return "canned" }

func (d *outcomeDriver) Do(ctx context.Context, query string) Result {
	i := int(d.n.Add(1)-1) % len(d.outcomes)
	return d.outcomes[i]
}

func TestRunAccounting(t *testing.T) {
	tr, err := Generate(Spec{
		Phases: []Phase{{QPS: 400, DurationSeconds: 0.25}},
		Seed:   5,
	}, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	d := &outcomeDriver{outcomes: []Result{
		{ResultHit: true},
		{Shed: true, Status: 429},
		{Err: context.DeadlineExceeded, Status: 504},
		{Collapsed: true},
	}}
	rep, err := Run(context.Background(), tr, d, Options{Name: "accounting"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(tr.Events) {
		t.Fatalf("issued %d of %d", rep.Requests, len(tr.Events))
	}
	if rep.OK+rep.Errors+rep.Shed != rep.Requests {
		t.Fatalf("ok %d + errors %d + shed %d != requests %d", rep.OK, rep.Errors, rep.Shed, rep.Requests)
	}
	if rep.Errors == 0 || rep.Shed == 0 {
		t.Fatalf("outcome mix lost: errors %d shed %d", rep.Errors, rep.Shed)
	}
	wantShed := float64(rep.Shed) / float64(rep.Requests)
	if math.Abs(rep.Rates["shed"]-wantShed) > 1e-9 {
		t.Fatalf("shed rate %v, want %v", rep.Rates["shed"], wantShed)
	}
	if rep.Format() == "" {
		t.Fatal("empty formatted report")
	}
}

func TestRunHonorsMaxOutstanding(t *testing.T) {
	tr, err := Generate(Spec{
		Phases: []Phase{{QPS: 500, DurationSeconds: 0.3}},
		Seed:   17,
	}, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	d := &slowDriver{delay: 200 * time.Millisecond}
	rep, err := Run(context.Background(), tr, d, Options{Name: "capped", MaxOutstanding: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatal("a 4-deep cap against 200ms latency at 500 QPS must drop requests")
	}
	if rep.Requests+rep.Dropped != len(tr.Events) {
		t.Fatalf("requests %d + dropped %d != scheduled %d", rep.Requests, rep.Dropped, len(tr.Events))
	}
	if got := int(d.calls.Load()); got != rep.Requests {
		t.Fatalf("driver saw %d calls, report says %d", got, rep.Requests)
	}
}

func TestRunCancel(t *testing.T) {
	tr, err := Generate(Spec{
		Phases: []Phase{{QPS: 10, DurationSeconds: 30}},
		Seed:   23,
	}, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, tr, &slowDriver{delay: time.Millisecond}, Options{Name: "canceled"})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}
	if rep.Requests >= len(tr.Events) {
		t.Fatal("cancellation did not stop the schedule")
	}
}
