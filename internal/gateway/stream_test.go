package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/evtstream"
	"repro/internal/telemetry"
)

// fakeStreamSearcher narrates a canned event sequence before answering
// from the embedded fakeSearcher's canned response.
type fakeStreamSearcher struct {
	fakeSearcher
	events func(obs repro.SearchEvents)
}

func (f *fakeStreamSearcher) SearchExplainedObserved(ctx context.Context, query string, maxDBs, perDB int, obs repro.SearchEvents) (*repro.SearchResponse, error) {
	if f.events != nil {
		f.events(obs)
	} else if obs != nil {
		obs.Selection([]repro.Selection{{Database: "db-a", Score: 2, Shrinkage: true}}, []string{"whale"}, "cori")
		obs.NodeResult(repro.NodeEvent{Database: "db-a", Results: 1, Completed: 1, Total: 1})
		obs.MergeUpdate([]repro.Result{{Database: "db-a", DocID: 3, Score: 0.5}})
	}
	return f.fakeSearcher.SearchExplained(ctx, query, maxDBs, perDB)
}

func TestStreamSSE(t *testing.T) {
	s := &fakeStreamSearcher{}
	reg := telemetry.NewRegistry()
	g := New(s, Options{Metrics: reg, StreamHeartbeat: -1})

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", PathSearchStream+"?q=white+whale&k=2&perdb=7", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := evtstream.ParseSSE(rec.Body.String())
	var types []string
	for _, f := range frames {
		types = append(types, f.Type)
	}
	want := []string{
		evtstream.TypeSelection, evtstream.TypeNodeResult,
		evtstream.TypeMergeUpdate, evtstream.TypeFinal}
	if len(types) != len(want) {
		t.Fatalf("frame types %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("frame types %v, want %v", types, want)
		}
	}

	var sel StreamSelection
	if err := json.Unmarshal(frames[0].Data, &sel); err != nil {
		t.Fatalf("selection payload: %v", err)
	}
	if sel.Scorer != "cori" || len(sel.Selections) != 1 || sel.Selections[0].Database != "db-a" {
		t.Errorf("selection payload = %+v", sel)
	}
	var nr StreamNodeResult
	if err := json.Unmarshal(frames[1].Data, &nr); err != nil {
		t.Fatalf("node_result payload: %v", err)
	}
	if nr.Database != "db-a" || nr.Completed != 1 || nr.Total != 1 {
		t.Errorf("node_result payload = %+v", nr)
	}

	// The final frame must be byte-identical to the blocking endpoint's
	// body for the same query (the canned response is deterministic).
	blocking := httptest.NewRecorder()
	g.ServeHTTP(blocking, httptest.NewRequest("GET", PathSearch+"?q=white+whale&k=2&perdb=7", nil))
	wantBody := bytes.TrimSuffix(blocking.Body.Bytes(), []byte("\n"))
	if !bytes.Equal([]byte(frames[3].Data), wantBody) {
		t.Errorf("final frame differs from blocking body:\nstream:   %s\nblocking: %s",
			frames[3].Data, wantBody)
	}

	if got := reg.Counter("stream_requests_total").Value(); got != 1 {
		t.Errorf("stream_requests_total = %d, want 1", got)
	}
}

func TestStreamNDJSON(t *testing.T) {
	s := &fakeStreamSearcher{}
	g := New(s, Options{StreamHeartbeat: -1})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", PathSearchStream+"?q=whale&format=ndjson", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(rec.Body)
	var last evtstream.Frame
	n := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 4 || last.Type != evtstream.TypeFinal {
		t.Fatalf("got %d frames ending in %q, want 4 ending in final", n, last.Type)
	}
}

// A search failure arrives as a terminal error frame with the blocking
// endpoint's code vocabulary (the 200 status is already committed).
func TestStreamError(t *testing.T) {
	s := &fakeStreamSearcher{events: func(repro.SearchEvents) {}}
	s.hook = func(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error) {
		return nil, errors.New("no live databases")
	}
	g := New(s, Options{StreamHeartbeat: -1})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", PathSearchStream+"?q=whale", nil))
	frames := evtstream.ParseSSE(rec.Body.String())
	if len(frames) != 1 || frames[0].Type != evtstream.TypeError {
		t.Fatalf("frames = %+v, want one error frame", frames)
	}
	var se StreamError
	if err := json.Unmarshal(frames[0].Data, &se); err != nil {
		t.Fatalf("error payload: %v", err)
	}
	if se.Code != "unavailable" || !strings.Contains(se.Message, "no live databases") {
		t.Errorf("error payload = %+v", se)
	}
}

// A Searcher without the streaming capability answers 501.
func TestStreamNotImplemented(t *testing.T) {
	g := New(&fakeSearcher{}, Options{})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", PathSearchStream+"?q=whale", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", rec.Code)
	}
}

// Unknown GET parameters fail loudly, naming the offender — on both the
// blocking and the streaming endpoint.
func TestUnknownQueryParamRejected(t *testing.T) {
	g := New(&fakeStreamSearcher{}, Options{})
	cases := []struct {
		url  string
		want string
	}{
		{PathSearch + "?q=whale&timeot=2s", "timeot"},
		{PathSearch + "?q=whale&kk=2&zz=1", "kk, zz"},
		{PathSearchStream + "?q=whale&formt=ndjson", "formt"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest("GET", c.url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.url, rec.Code)
			continue
		}
		env := decodeError(t, rec)
		if !strings.Contains(env.Error.Message, c.want) {
			t.Errorf("%s: error %q does not name %q", c.url, env.Error.Message, c.want)
		}
	}
	// format stays stream-only: the blocking endpoint rejects it.
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", PathSearch+"?q=whale&format=ndjson", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("blocking endpoint accepted format=, want 400 (got %d)", rec.Code)
	}
}
