package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// fakeSearcher records the calls it receives and answers from a canned
// response (or an injected hook).
type fakeSearcher struct {
	mu    sync.Mutex
	calls []searchCall
	hook  func(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error)
}

type searchCall struct {
	query        string
	maxDBs       int
	perDB        int
	hadDeadline  bool
	deadlineLeft time.Duration
}

func (f *fakeSearcher) SearchExplained(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error) {
	c := searchCall{query: query, maxDBs: maxDBs, perDB: perDB}
	if dl, ok := ctx.Deadline(); ok {
		c.hadDeadline = true
		c.deadlineLeft = time.Until(dl)
	}
	f.mu.Lock()
	f.calls = append(f.calls, c)
	f.mu.Unlock()
	if f.hook != nil {
		return f.hook(ctx, query, maxDBs, perDB)
	}
	return &repro.SearchResponse{
		TraceID:    "trace-1",
		Query:      query,
		Terms:      []string{"whale"},
		Scorer:     "cori",
		Selections: []repro.Selection{{Database: "db-a", Score: 2, Shrinkage: true}},
		Results:    []repro.Result{{Database: "db-a", DocID: 3, Score: 0.5}},
		CacheHit:   true,
		Elapsed:    5 * time.Millisecond,
	}, nil
}

func (f *fakeSearcher) lastCall(t *testing.T) searchCall {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.calls) == 0 {
		t.Fatal("searcher was never called")
	}
	return f.calls[len(f.calls)-1]
}

func decodeReply(t *testing.T, rec *httptest.ResponseRecorder) SearchReply {
	t.Helper()
	var reply SearchReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatalf("decoding reply: %v\nbody: %s", err, rec.Body.String())
	}
	return reply
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) wire.ErrorEnvelope {
	t.Helper()
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("decoding error envelope: %v\nbody: %s", err, rec.Body.String())
	}
	return env
}

func TestSearchGet(t *testing.T) {
	s := &fakeSearcher{}
	g := New(s, Options{})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=white+whale&k=2&perdb=7", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	call := s.lastCall(t)
	if call.query != "white whale" || call.maxDBs != 2 || call.perDB != 7 {
		t.Errorf("searcher got %+v, want query=%q k=2 perdb=7", call, "white whale")
	}
	reply := decodeReply(t, rec)
	if reply.TraceID != "trace-1" || !reply.ResultHit || reply.Scorer != "cori" {
		t.Errorf("reply = %+v", reply)
	}
	if len(reply.Results) != 1 || reply.Results[0].Database != "db-a" || reply.Results[0].DocID != 3 {
		t.Errorf("results = %+v", reply.Results)
	}
	if len(reply.Selections) != 1 || !reply.Selections[0].Shrinkage {
		t.Errorf("selections = %+v", reply.Selections)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "trace-1" {
		t.Errorf("X-Trace-Id = %q", got)
	}
}

func TestSearchPost(t *testing.T) {
	s := &fakeSearcher{}
	g := New(s, Options{})
	body := `{"query": "moby dick", "k": 4, "per_db": 2}`
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/search", strings.NewReader(body)))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	call := s.lastCall(t)
	if call.query != "moby dick" || call.maxDBs != 4 || call.perDB != 2 {
		t.Errorf("searcher got %+v", call)
	}
}

func TestSearchDefaults(t *testing.T) {
	s := &fakeSearcher{}
	g := New(s, Options{DefaultMaxDBs: 5, DefaultPerDB: 9})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	call := s.lastCall(t)
	if call.maxDBs != 5 || call.perDB != 9 {
		t.Errorf("defaults not applied: %+v", call)
	}
	if call.hadDeadline {
		t.Error("request carried a deadline despite none configured")
	}
}

func TestSearchBadRequests(t *testing.T) {
	for _, tc := range []struct {
		name   string
		method string
		target string
		body   string
	}{
		{"missing query", "GET", "/v1/search", ""},
		{"bad k", "GET", "/v1/search?q=x&k=two", ""},
		{"zero k", "GET", "/v1/search?q=x&k=0", ""},
		{"negative perdb", "GET", "/v1/search?q=x&perdb=-1", ""},
		{"bad timeout", "GET", "/v1/search?q=x&timeout=fast", ""},
		{"negative timeout", "GET", "/v1/search?q=x&timeout=-1s", ""},
		{"malformed json", "POST", "/v1/search", "{"},
		{"blank query", "POST", "/v1/search", `{"query": "   "}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := &fakeSearcher{}
			g := New(s, Options{})
			rec := httptest.NewRecorder()
			g.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body)))
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			if env := decodeError(t, rec); env.Error.Code != wire.CodeBadRequest {
				t.Errorf("error code = %q", env.Error.Code)
			}
			if len(s.calls) != 0 {
				t.Error("searcher was called for an invalid request")
			}
		})
	}
}

func TestTimeoutParam(t *testing.T) {
	s := &fakeSearcher{}
	g := New(s, Options{MaxDeadline: time.Minute})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x&timeout=250ms", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	call := s.lastCall(t)
	if !call.hadDeadline || call.deadlineLeft > 250*time.Millisecond {
		t.Errorf("deadline not applied from timeout param: %+v", call)
	}
}

func TestTimeoutCappedByMaxDeadline(t *testing.T) {
	s := &fakeSearcher{}
	g := New(s, Options{MaxDeadline: 100 * time.Millisecond})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x&timeout=1h", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	call := s.lastCall(t)
	if !call.hadDeadline || call.deadlineLeft > 100*time.Millisecond {
		t.Errorf("MaxDeadline did not cap the client timeout: %+v", call)
	}
}

func TestDefaultDeadline(t *testing.T) {
	s := &fakeSearcher{}
	g := New(s, Options{DefaultDeadline: 200 * time.Millisecond})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x", nil))
	if call := s.lastCall(t); !call.hadDeadline || call.deadlineLeft > 200*time.Millisecond {
		t.Errorf("default deadline not applied: %+v", call)
	}
}

func TestDeadlineExceededIs504(t *testing.T) {
	s := &fakeSearcher{hook: func(ctx context.Context, _ string, _, _ int) (*repro.SearchResponse, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	g := New(s, Options{DefaultDeadline: 10 * time.Millisecond})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body.String())
	}
	if env := decodeError(t, rec); env.Error.Code != CodeDeadline {
		t.Errorf("error code = %q, want %q", env.Error.Code, CodeDeadline)
	}
}

func TestSearchErrorIs503(t *testing.T) {
	s := &fakeSearcher{hook: func(context.Context, string, int, int) (*repro.SearchResponse, error) {
		return nil, errNoNodes
	}}
	g := New(s, Options{})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if env := decodeError(t, rec); env.Error.Code != wire.CodeUnavailable {
		t.Errorf("error code = %q", env.Error.Code)
	}
}

var errNoNodes = &noNodesError{}

type noNodesError struct{}

func (*noNodesError) Error() string { return "no live database connections" }

func TestAdmissionGate(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	s := &fakeSearcher{hook: func(ctx context.Context, q string, _, _ int) (*repro.SearchResponse, error) {
		entered <- struct{}{}
		<-release
		return &repro.SearchResponse{Query: q}, nil
	}}
	reg := telemetry.NewRegistry()
	g := New(s, Options{MaxInflight: 1, RetryAfter: 3, Metrics: reg})

	done := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=slow", nil))
		done <- rec
	}()
	<-entered // the slow request owns the only slot

	// Second request is shed...
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=shed", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want 3", got)
	}
	if env := decodeError(t, rec); env.Error.Code != wire.CodeOverloaded {
		t.Errorf("error code = %q", env.Error.Code)
	}
	if got := reg.Counter("gateway_shed_total").Value(); got != 1 {
		t.Errorf("gateway_shed_total = %d, want 1", got)
	}

	// ...but healthz sees through the gate.
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz under load = %d, want 200", rec.Code)
	}
	var health wire.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Inflight != 1 || health.MaxInflight != 1 {
		t.Errorf("health = %+v, want inflight=1 max=1", health)
	}

	close(release)
	if slow := <-done; slow.Code != http.StatusOK {
		t.Errorf("slow request = %d, want 200", slow.Code)
	}
}

// TestRequestAccounting pins the success/error latency split: 2xx
// responses record into gateway_latency (+ the quantile window), sheds
// and errors into gateway_error_latency only, and the inflight gauge
// returns to zero.
func TestRequestAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := &fakeSearcher{}
	g := New(s, Options{Metrics: reg})

	// One success, one 400, one 503.
	g.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/search?q=x", nil))
	g.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/search?q=", nil))
	s.hook = func(context.Context, string, int, int) (*repro.SearchResponse, error) {
		return nil, errNoNodes
	}
	g.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/search?q=x", nil))

	snap := reg.Snapshot()
	if got := snap.Histograms["gateway_latency"].Count; got != 1 {
		t.Errorf("gateway_latency count = %d, want 1 (successes only)", got)
	}
	if got := snap.Histograms["gateway_error_latency"].Count; got != 2 {
		t.Errorf("gateway_error_latency count = %d, want 2 (the 400 and the 503)", got)
	}
	if got := snap.Windows["gateway_latency_window"].Count; got != 1 {
		t.Errorf("gateway_latency_window count = %d, want 1", got)
	}
	if got := snap.Gauges["gateway_requests_inflight"]; got != 0 {
		t.Errorf("gateway_requests_inflight = %v, want 0 after requests finish", got)
	}
}

// TestShedRecordsErrorLatencyAndSLO drives a shed through the gate and
// checks it lands in the error histogram and burns SLO availability
// budget, while the success window stays clean.
func TestShedRecordsErrorLatencyAndSLO(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	s := &fakeSearcher{hook: func(ctx context.Context, q string, _, _ int) (*repro.SearchResponse, error) {
		entered <- struct{}{}
		<-release
		return &repro.SearchResponse{Query: q}, nil
	}}
	reg := telemetry.NewRegistry()
	tracker := slo.New(slo.Config{})
	g := New(s, Options{MaxInflight: 1, Metrics: reg, SLO: tracker})

	done := make(chan struct{})
	go func() {
		g.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/search?q=slow", nil))
		close(done)
	}()
	<-entered
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=shed", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Error("shed response carries no X-Trace-Id")
	}
	traced := httptest.NewRequest("GET", "/v1/search?q=shed", nil)
	traced.Header.Set(telemetry.HeaderTraceID, "cafe0000cafe0000")
	rec2 := httptest.NewRecorder()
	g.ServeHTTP(rec2, traced)
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec2.Code)
	}
	if got := rec2.Header().Get("X-Trace-Id"); got != "cafe0000cafe0000" {
		t.Errorf("shed of a traced request answered trace %q, want the propagated one", got)
	}
	close(release)
	<-done

	snap := reg.Snapshot()
	if got := snap.Histograms["gateway_error_latency"].Count; got != 2 {
		t.Errorf("gateway_error_latency count = %d, want 2 (the sheds)", got)
	}
	if got := snap.Histograms["gateway_latency"].Count; got != 1 {
		t.Errorf("gateway_latency count = %d, want 1 (the slow success)", got)
	}

	rep := tracker.Report()
	for _, o := range rep.Objectives {
		if o.Name != "availability" {
			continue
		}
		if o.TotalSinceStart != 3 || o.BadSinceStart != 2 {
			t.Errorf("slo availability = total %d bad %d, want 3/2", o.TotalSinceStart, o.BadSinceStart)
		}
		return
	}
	t.Fatal("availability objective missing from SLO report")
}

// TestReplyCarriesStages checks the per-stage decomposition reaches the
// JSON reply.
func TestReplyCarriesStages(t *testing.T) {
	s := &fakeSearcher{hook: func(ctx context.Context, q string, _, _ int) (*repro.SearchResponse, error) {
		return &repro.SearchResponse{
			Query:  q,
			Stages: repro.SearchStages{Cache: 0.001, Selection: 0.002, Fanout: 0.003, Merge: 0.004},
		}, nil
	}}
	g := New(s, Options{})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/search?q=x", nil))
	reply := decodeReply(t, rec)
	if reply.Stages == nil {
		t.Fatal("reply has no stages_seconds")
	}
	want := StageSeconds{Cache: 0.001, Selection: 0.002, Fanout: 0.003, Merge: 0.004}
	if *reply.Stages != want {
		t.Errorf("stages = %+v, want %+v", *reply.Stages, want)
	}
}

func TestHealthzReportsTopology(t *testing.T) {
	g := New(&fakeSearcher{}, Options{
		Topology: func() *wire.TopologyStatus {
			return &wire.TopologyStatus{Generation: 7, LastSwapUnixMs: 1234}
		},
	})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	var up wire.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		t.Fatal(err)
	}
	if up.Topology == nil || up.Topology.Generation != 7 || up.Topology.LastSwapUnixMs != 1234 {
		t.Errorf("healthz topology = %+v, want generation 7 at 1234", up.Topology)
	}
}

func TestHealthzDraining(t *testing.T) {
	g := New(&fakeSearcher{}, Options{ShardID: "shard-00"})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	var up wire.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		t.Fatal(err)
	}
	if up.Version == "" {
		t.Error("healthz advertises no build version")
	}
	if up.ShardID != "shard-00" {
		t.Errorf("healthz shard_id = %q, want shard-00", up.ShardID)
	}

	g.SetDraining(true)
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", rec.Code)
	}
	var health wire.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining || health.Status != "draining" {
		t.Errorf("health = %+v", health)
	}
}

func TestUnknownPathIs404(t *testing.T) {
	g := New(&fakeSearcher{}, Options{})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/search?q=x", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}

// Every gateway error path must stamp X-Trace-Id (echoing the caller's
// propagated id when the request arrived traced), so failed requests
// are as traceable as served ones — not just the 429 shed path.
func TestErrorResponsesCarryTraceID(t *testing.T) {
	boom := &fakeSearcher{hook: func(context.Context, string, int, int) (*repro.SearchResponse, error) {
		return nil, context.DeadlineExceeded
	}}
	cases := []struct {
		name       string
		gateway    *Gateway
		req        *http.Request
		wantStatus int
	}{
		{
			name:       "bad request",
			gateway:    New(&fakeSearcher{}, Options{}),
			req:        httptest.NewRequest("GET", "/v1/search", nil), // no query
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "deadline exceeded",
			gateway:    New(boom, Options{}),
			req:        httptest.NewRequest("GET", "/v1/search?q=x", nil),
			wantStatus: http.StatusGatewayTimeout,
		},
		{
			name: "searcher failure",
			gateway: New(&fakeSearcher{hook: func(context.Context, string, int, int) (*repro.SearchResponse, error) {
				return nil, context.Canceled
			}}, Options{}),
			req:        httptest.NewRequest("GET", "/v1/search?q=x", nil),
			wantStatus: http.StatusServiceUnavailable,
		},
		{
			name: "panic to 500",
			gateway: New(&fakeSearcher{hook: func(context.Context, string, int, int) (*repro.SearchResponse, error) {
				panic("kaboom")
			}}, Options{}),
			req:        httptest.NewRequest("GET", "/v1/search?q=x", nil),
			wantStatus: http.StatusInternalServerError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			tc.gateway.ServeHTTP(rec, tc.req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			if rec.Header().Get("X-Trace-Id") == "" {
				t.Errorf("%s response carries no X-Trace-Id", tc.name)
			}
		})
		t.Run(tc.name+" echoes caller trace", func(t *testing.T) {
			req := tc.req.Clone(tc.req.Context())
			req.Header.Set(telemetry.HeaderTraceID, "caller-trace")
			rec := httptest.NewRecorder()
			tc.gateway.ServeHTTP(rec, req)
			if got := rec.Header().Get("X-Trace-Id"); got != "caller-trace" {
				t.Errorf("%s: X-Trace-Id = %q, want the caller's %q", tc.name, got, "caller-trace")
			}
		})
	}
}
