// Package gateway is the query-serving HTTP front end of a
// metasearcher: the piece that turns the library's SearchExplained call
// into a service. It speaks a small JSON API —
//
//	GET  /v1/search?q=...&k=...&perdb=...&timeout=...
//	POST /v1/search   {"query": ..., "k": ..., "per_db": ..., "timeout": ...}
//	GET  /v1/search/stream?q=...  (SSE, or NDJSON via format=ndjson/Accept)
//	GET  /v1/healthz  (200 ok / 503 draining, exempt from the gate)
//
// — returning the merged ranking together with its provenance: the
// selected databases, the analyzed terms, the trace id (also in the
// X-Trace-Id response header), and how the answer was produced (cold
// fan-out, result-cache hit, or collapsed onto a concurrent identical
// query).
//
// /v1/search/stream delivers the same search incrementally (see
// internal/evtstream for the framing): a selection frame as soon as the
// database ranking lands, a node_result frame per fan-out answer, a
// merge_update frame with the re-ranked partial merge after each, and a
// terminal final frame whose payload is the byte-identical SearchReply
// the blocking endpoint would have returned. Unknown query parameters
// are rejected with a 400 naming the parameter, on both endpoints.
//
// The gateway borrows the operational conventions of the wire protocol
// (internal/wire): errors are the same ErrorEnvelope shape, overload is
// shed with 429 + Retry-After (code "overloaded") by the same
// admission-gate pattern a database node uses, and graceful shutdown
// flips /v1/healthz to 503 while in-flight requests drain.
package gateway

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/evtstream"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Paths of the gateway endpoints.
const (
	PathSearch       = "/v1/search"
	PathSearchStream = "/v1/search/stream"
	PathHealthz      = "/v1/healthz"
)

// CodeDeadline marks a search that ran out of its per-request deadline
// (HTTP 504). The envelope shape is wire.ErrorEnvelope, like every
// other gateway error.
const CodeDeadline = "deadline_exceeded"

// maxBodyBytes bounds how much of a POST body the gateway reads.
const maxBodyBytes = 1 << 20

// Searcher is the slice of *repro.Metasearcher the gateway serves.
type Searcher interface {
	SearchExplained(ctx context.Context, query string, maxDBs, perDB int) (*repro.SearchResponse, error)
}

// StreamSearcher is a Searcher that can narrate a search's progress —
// the capability behind /v1/search/stream. *repro.Metasearcher and the
// cluster router both implement it; a Searcher without it answers the
// stream endpoint with 501.
type StreamSearcher interface {
	Searcher
	SearchExplainedObserved(ctx context.Context, query string, maxDBs, perDB int, obs repro.SearchEvents) (*repro.SearchResponse, error)
}

// Options configures a Gateway.
type Options struct {
	// DefaultMaxDBs and DefaultPerDB apply when a request omits k /
	// perdb (defaults 3 and 10).
	DefaultMaxDBs int
	DefaultPerDB  int
	// DefaultDeadline bounds requests that carry no timeout parameter
	// (zero = unbounded). MaxDeadline caps what a client may ask for
	// (zero = uncapped).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxInflight is the admission gate: past this many in-flight
	// search requests, further ones are shed with 429 + Retry-After.
	// Zero or negative means unlimited. /v1/healthz is exempt.
	MaxInflight int
	// RetryAfter is the backoff (seconds) advertised on shed responses
	// (default 1).
	RetryAfter int
	// StreamQueue bounds each stream connection's frame queue and
	// StreamHeartbeat sets its idle-heartbeat interval; zero values take
	// the evtstream defaults (64 frames, 5s), negative StreamHeartbeat
	// disables heartbeats.
	StreamQueue     int
	StreamHeartbeat time.Duration
	// Metrics receives gateway_requests_total, gateway_errors_total,
	// gateway_shed_total, the gateway_requests_inflight gauge, and the
	// latency series (may be nil). Successful responses record into
	// gateway_latency (histogram) and gateway_latency_window
	// (p50/p95/p99); shed and error responses record into the separate
	// gateway_error_latency histogram, so a load-shedding burst of
	// instant 429s cannot drag the success-latency percentiles down.
	Metrics *telemetry.Registry
	// SLO, when non-nil, receives every search request's outcome
	// (latency + failure verdict) for error-budget tracking; serve its
	// Handler at /debug/slo. A 429 or a 5xx counts against
	// availability; 4xx client errors do not.
	SLO *slo.Tracker
	// Version is advertised in /v1/healthz (defaults to the build's
	// version string) so rollouts can confirm which build answers.
	Version string
	// ShardID names this process's topology shard in /v1/healthz when
	// it serves a cluster slice ("" for a standalone metasearcher or
	// the cluster router).
	ShardID string
	// ShardHealth, when non-nil, is polled on every /v1/healthz and its
	// result reported in the response's "shards" field. The cluster
	// router wires its per-shard breaker/probe summary here, so one
	// health call answers "is the fleet behind this router healthy",
	// not just "is this process alive".
	ShardHealth func() []wire.ShardHealth
	// Topology, when non-nil, is polled on every /v1/healthz and its
	// result reported in the response's "topology" field: the active
	// topology generation and last-swap timestamp, so a rolling
	// reconfiguration can confirm which ring each process serves.
	Topology func() *wire.TopologyStatus
}

// Gateway serves the query API over a Searcher. Like wire.Node it
// exposes drain/inflight controls so cmd/metasearch can shut it down
// gracefully.
type Gateway struct {
	searcher Searcher
	opts     Options
	mux      http.Handler

	inflightN atomic.Int64
	draining  atomic.Bool

	requests *telemetry.Counter
	errors   *telemetry.Counter
	shed     *telemetry.Counter
	inflight *telemetry.Gauge
}

// New builds a Gateway over s.
func New(s Searcher, opts Options) *Gateway {
	if opts.DefaultMaxDBs <= 0 {
		opts.DefaultMaxDBs = 3
	}
	if opts.DefaultPerDB <= 0 {
		opts.DefaultPerDB = 10
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 1
	}
	if opts.Version == "" {
		opts.Version = buildinfo.Version()
	}
	g := &Gateway{searcher: s, opts: opts,
		requests: opts.Metrics.Counter("gateway_requests_total"),
		errors:   opts.Metrics.Counter("gateway_errors_total"),
		shed:     opts.Metrics.Counter("gateway_shed_total"),
		inflight: opts.Metrics.Gauge("gateway_requests_inflight"),
	}
	// Pre-create the latency series so /metrics shows the full schema
	// (at zero) before traffic arrives.
	opts.Metrics.Histogram("gateway_latency", nil)
	opts.Metrics.Histogram("gateway_error_latency", nil)
	opts.Metrics.Window("gateway_latency_window", 0)
	for _, d := range []struct{ name, help string }{
		{"gateway_requests_total", "Search requests accepted by the gateway (health checks excluded)."},
		{"gateway_errors_total", "Search requests answered with an error envelope (4xx/5xx, sheds excluded)."},
		{"gateway_shed_total", "Search requests shed with 429 by the admission gate."},
		{"gateway_requests_inflight", "Search requests currently being served."},
		{"gateway_latency", "End-to-end latency of successful (2xx) search responses, seconds."},
		{"gateway_error_latency", "End-to-end latency of shed and error responses, seconds."},
		{"gateway_latency_window", "Sliding-window p50/p95/p99 of successful search latency, seconds."},
	} {
		opts.Metrics.Describe(d.name, d.help)
	}
	evtstream.RegisterMetrics(opts.Metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSearch, g.search)
	mux.HandleFunc("POST "+PathSearch, g.search)
	mux.HandleFunc("GET "+PathSearchStream, g.stream)
	g.mux = mux
	return g
}

// SetDraining marks the gateway as draining (or not). A draining
// gateway keeps serving in-flight requests — http.Server.Shutdown waits
// for them — but answers /v1/healthz with 503 so load balancers steer
// new traffic elsewhere before the listener closes.
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

// Draining reports whether the gateway is draining.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Inflight reports how many search requests are being served right now
// (health checks excluded).
func (g *Gateway) Inflight() int64 { return g.inflightN.Load() }

// errSeq feeds errorTraceID; the process-unique prefix keeps ids from
// two gateways distinct without coordination.
var (
	errBase = func() uint64 {
		var b [8]byte
		crand.Read(b[:])
		return binary.BigEndian.Uint64(b[:])
	}()
	errSeq atomic.Uint64
)

// errorTraceID picks the trace id an error response (shed, 500, any
// failure envelope) is stamped with: the caller's propagated id when
// the request arrived traced (the cluster router traces its fan-out),
// otherwise a fresh process-unique id. Every gateway answer — success
// or failure — carries X-Trace-Id, so failed requests are as traceable
// as served ones.
func errorTraceID(r *http.Request) string {
	if id := r.Header.Get(telemetry.HeaderTraceID); id != "" {
		return id
	}
	return fmt.Sprintf("%016x", errBase+errSeq.Add(1))
}

// statusWriter records the response status so request accounting can
// tell successes from sheds and errors.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher, which per-frame stream flushing depends on.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ServeHTTP counts requests, applies the admission gate, converts
// handler panics into 500 envelopes, and records the outcome: latency
// into the success or error histogram by final status, and the verdict
// into the SLO tracker.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == PathHealthz {
		g.healthz(w, r)
		return
	}
	g.requests.Inc()
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	cur := g.inflightN.Add(1)
	g.inflight.Add(1)
	defer func() {
		g.inflightN.Add(-1)
		g.inflight.Add(-1)
		g.record(sw, start)
	}()
	if g.opts.MaxInflight > 0 && cur > int64(g.opts.MaxInflight) {
		g.shed.Inc()
		// A shed request never reaches the search pipeline, so no trace
		// exists yet; stamp one anyway (echoing the caller's when the
		// request arrived traced) so a client-reported 429 is greppable
		// in the access log like any other answer.
		sw.Header().Set("X-Trace-Id", errorTraceID(r))
		sw.Header().Set("Retry-After", strconv.Itoa(g.opts.RetryAfter))
		wire.WriteError(sw, http.StatusTooManyRequests, wire.CodeOverloaded,
			fmt.Sprintf("gateway at capacity (%d in flight, max %d)", cur, g.opts.MaxInflight))
		return
	}
	defer func() {
		if p := recover(); p != nil {
			g.fail(sw, r, http.StatusInternalServerError, wire.CodeInternal,
				fmt.Sprintf("panic serving %s: %v", r.URL.Path, p))
		}
	}()
	g.mux.ServeHTTP(sw, r)
}

// record books one finished request: 2xx latencies go to the success
// histogram and quantile window, everything else to the error
// histogram (a burst of instant 429s must not pull p99 down). The
// request's trace id (every response carries one in X-Trace-Id) rides
// along as a histogram exemplar, so the latency tail links straight to
// assembled traces. The SLO verdict counts sheds and server errors as
// bad; 4xx client errors are correct behavior, not unavailability.
func (g *Gateway) record(sw *statusWriter, start time.Time) {
	status := sw.status()
	trace := sw.Header().Get("X-Trace-Id")
	elapsed := time.Since(start)
	sec := elapsed.Seconds()
	if status < http.StatusMultipleChoices {
		g.opts.Metrics.Histogram("gateway_latency", nil).ObserveExemplar(sec, trace)
		g.opts.Metrics.Window("gateway_latency_window", 0).Observe(sec)
	} else {
		g.opts.Metrics.Histogram("gateway_error_latency", nil).ObserveExemplar(sec, trace)
	}
	g.opts.SLO.Record(elapsed, status == http.StatusTooManyRequests || status >= http.StatusInternalServerError)
}

// fail writes an error envelope, stamped with a trace id (the caller's
// propagated one when present) so every failure is traceable.
func (g *Gateway) fail(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	g.errors.Inc()
	if w.Header().Get("X-Trace-Id") == "" {
		w.Header().Set("X-Trace-Id", errorTraceID(r))
	}
	wire.WriteError(w, status, code, msg)
}

func (g *Gateway) healthz(w http.ResponseWriter, r *http.Request) {
	resp := wire.HealthResponse{
		Status:      "ok",
		Inflight:    g.inflightN.Load(),
		MaxInflight: g.opts.MaxInflight,
		Version:     g.opts.Version,
		ShardID:     g.opts.ShardID,
	}
	if g.opts.ShardHealth != nil {
		resp.Shards = g.opts.ShardHealth()
	}
	if g.opts.Topology != nil {
		resp.Topology = g.opts.Topology()
	}
	w.Header().Set("Content-Type", "application/json")
	if g.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// searchRequest is the decoded form of either request shape.
type searchRequest struct {
	Query   string `json:"query"`
	K       int    `json:"k"`
	PerDB   int    `json:"per_db"`
	Timeout string `json:"timeout"`
}

// Selection is one selected database in the reply.
type Selection struct {
	Database  string  `json:"database"`
	Score     float64 `json:"score"`
	Shrinkage bool    `json:"shrinkage,omitempty"`
}

// Result is one merged hit in the reply.
type Result struct {
	Database string  `json:"database"`
	DocID    int     `json:"doc_id"`
	Score    float64 `json:"score"`
}

// SearchReply is the JSON body of a successful search response.
type SearchReply struct {
	// TraceID links the response to the query's trace and audit record;
	// it is also sent as the X-Trace-Id response header.
	TraceID string   `json:"trace_id,omitempty"`
	Query   string   `json:"query"`
	Terms   []string `json:"terms,omitempty"`
	Scorer  string   `json:"scorer,omitempty"`
	// Selections is the selected database set in rank order; Results the
	// merged ranking.
	Selections []Selection `json:"selections,omitempty"`
	Results    []Result    `json:"results,omitempty"`
	// ResultHit: the whole answer came from the result cache.
	// SelectionHit: only the selection decision was cached; the fan-out
	// ran. Collapsed: this request piggybacked on an identical
	// concurrent request's in-flight work.
	ResultHit    bool `json:"result_hit"`
	SelectionHit bool `json:"selection_hit,omitempty"`
	Collapsed    bool `json:"collapsed,omitempty"`
	// ElapsedSeconds is this request's end-to-end latency; Stages
	// decomposes the server-side share by pipeline stage.
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	Stages         *StageSeconds `json:"stages_seconds,omitempty"`
}

// StageSeconds is the per-stage latency decomposition of one answer:
// cache lookup → selection → fan-out → merge (each in seconds). For a
// cached or collapsed answer only the cache stage is nonzero.
type StageSeconds struct {
	Cache     float64 `json:"cache"`
	Selection float64 `json:"selection"`
	Fanout    float64 `json:"fanout"`
	Merge     float64 `json:"merge"`
}

func (g *Gateway) search(w http.ResponseWriter, r *http.Request) {
	req, err := g.parseRequest(r)
	if err != nil {
		g.fail(w, r, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}

	// Join the caller's trace when the request arrived traced (the
	// cluster router propagates its fan-out span): the searcher roots
	// its "search" span under the remote parent, so one trace covers
	// router, shard, and dbnode spans end to end.
	ctx := telemetry.ContextWithRemote(r.Context(), telemetry.Extract(r.Header))
	timeout, err := g.resolveTimeout(req.Timeout)
	if err != nil {
		g.fail(w, r, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	resp, err := g.searcher.SearchExplained(ctx, req.Query, req.K, req.PerDB)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			g.fail(w, r, http.StatusGatewayTimeout, CodeDeadline,
				fmt.Sprintf("search exceeded its deadline: %v", err))
		case errors.Is(err, context.Canceled):
			// The client went away; the status is for the access log.
			g.fail(w, r, http.StatusServiceUnavailable, wire.CodeUnavailable, "request canceled")
		default:
			g.fail(w, r, http.StatusServiceUnavailable, wire.CodeUnavailable, err.Error())
		}
		return
	}

	reply := buildReply(resp)
	if resp.TraceID != "" {
		w.Header().Set("X-Trace-Id", resp.TraceID)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// buildReply converts a search outcome into the wire reply. The stream
// endpoint's final frame and the blocking endpoint both go through this
// one function, which is what makes them bit-identical.
func buildReply(resp *repro.SearchResponse) SearchReply {
	reply := SearchReply{
		TraceID:        resp.TraceID,
		Query:          resp.Query,
		Terms:          resp.Terms,
		Scorer:         resp.Scorer,
		ResultHit:      resp.CacheHit,
		SelectionHit:   resp.SelectionCacheHit,
		Collapsed:      resp.Collapsed,
		ElapsedSeconds: resp.Elapsed.Seconds(),
		Stages: &StageSeconds{
			Cache:     resp.Stages.Cache,
			Selection: resp.Stages.Selection,
			Fanout:    resp.Stages.Fanout,
			Merge:     resp.Stages.Merge,
		},
	}
	for _, s := range resp.Selections {
		reply.Selections = append(reply.Selections, Selection{
			Database: s.Database, Score: s.Score, Shrinkage: s.Shrinkage})
	}
	for _, h := range resp.Results {
		reply.Results = append(reply.Results, Result{
			Database: h.Database, DocID: h.DocID, Score: h.Score})
	}
	return reply
}

// resolveTimeout turns a request's timeout parameter into the deadline
// to apply: the gateway default when absent, capped by MaxDeadline.
func (g *Gateway) resolveTimeout(s string) (time.Duration, error) {
	timeout := g.opts.DefaultDeadline
	if s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("timeout must be a positive duration like 500ms or 2s, got %q", s)
		}
		if g.opts.MaxDeadline > 0 && d > g.opts.MaxDeadline {
			d = g.opts.MaxDeadline
		}
		timeout = d
	}
	return timeout, nil
}

// StreamSelection is the payload of a stream's selection frame: the
// selected database set in rank order, with the analyzed terms and the
// scorer that ranked them.
type StreamSelection struct {
	Terms      []string    `json:"terms,omitempty"`
	Scorer     string      `json:"scorer,omitempty"`
	Selections []Selection `json:"selections"`
}

// StreamNodeResult is the payload of a node_result frame: one fan-out
// node's outcome, with completed/total progress.
type StreamNodeResult struct {
	Database       string  `json:"database"`
	Results        int     `json:"results"`
	LatencySeconds float64 `json:"latency_seconds"`
	Error          string  `json:"error,omitempty"`
	OutOfScope     bool    `json:"out_of_scope,omitempty"`
	BreakerOpen    bool    `json:"breaker_open,omitempty"`
	Unavailable    bool    `json:"unavailable,omitempty"`
	Completed      int     `json:"completed"`
	Total          int     `json:"total"`
}

// StreamMergeUpdate is the payload of a merge_update frame: the merged
// ranking over the fan-out slots completed so far, in final order.
type StreamMergeUpdate struct {
	Results []Result `json:"results"`
}

// StreamError is the payload of a terminal error frame. Streams commit
// to a 200 status on their first frame, so search failures arrive
// in-band with the same code vocabulary as blocking error envelopes.
type StreamError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// framePublisher adapts a stream connection's Publisher to the
// repro.SearchEvents observer the search pipeline narrates into.
type framePublisher struct {
	p *evtstream.Publisher
}

func (f framePublisher) Selection(sels []repro.Selection, terms []string, scorer string) {
	out := StreamSelection{Terms: terms, Scorer: scorer}
	for _, s := range sels {
		out.Selections = append(out.Selections, Selection{
			Database: s.Database, Score: s.Score, Shrinkage: s.Shrinkage})
	}
	f.p.Publish(evtstream.TypeSelection, out)
}

func (f framePublisher) NodeResult(ev repro.NodeEvent) {
	f.p.Publish(evtstream.TypeNodeResult, StreamNodeResult{
		Database:       ev.Database,
		Results:        ev.Results,
		LatencySeconds: ev.LatencySeconds,
		Error:          ev.Error,
		OutOfScope:     ev.OutOfScope,
		BreakerOpen:    ev.BreakerOpen,
		Unavailable:    ev.Unavailable,
		Completed:      ev.Completed,
		Total:          ev.Total,
	})
}

func (f framePublisher) MergeUpdate(results []repro.Result) {
	out := StreamMergeUpdate{Results: []Result{}}
	for _, h := range results {
		out.Results = append(out.Results, Result{
			Database: h.Database, DocID: h.DocID, Score: h.Score})
	}
	f.p.Publish(evtstream.TypeMergeUpdate, out)
}

// stream serves /v1/search/stream: the same search as the blocking
// endpoint, narrated frame by frame. The request headers commit to 200
// before the search runs, so failures arrive as terminal error frames.
// When the client hangs up, the request context's cancellation releases
// the fan-out workers.
func (g *Gateway) stream(w http.ResponseWriter, r *http.Request) {
	streamer, ok := g.searcher.(StreamSearcher)
	if !ok {
		g.fail(w, r, http.StatusNotImplemented, wire.CodeBadRequest,
			"streaming is not supported by this searcher")
		return
	}
	req, err := g.parseRequest(r, "format")
	if err != nil {
		g.fail(w, r, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	timeout, err := g.resolveTimeout(req.Timeout)
	if err != nil {
		g.fail(w, r, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	format := evtstream.Negotiate(r)

	ctx := telemetry.ContextWithRemote(r.Context(), telemetry.Extract(r.Header))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // client gone or stream done: release the fan-out
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	p := evtstream.NewPublisher(evtstream.Options{
		MaxQueue:  g.opts.StreamQueue,
		Heartbeat: g.opts.StreamHeartbeat,
		Metrics:   g.opts.Metrics,
	})
	go func() {
		resp, err := streamer.SearchExplainedObserved(ctx, req.Query, req.K, req.PerDB, framePublisher{p})
		if err != nil {
			g.errors.Inc()
			code := wire.CodeUnavailable
			msg := err.Error()
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				code = CodeDeadline
				msg = fmt.Sprintf("search exceeded its deadline: %v", err)
			case errors.Is(err, context.Canceled):
				msg = "request canceled"
			}
			p.Publish(evtstream.TypeError, StreamError{Code: code, Message: msg})
		} else {
			p.Publish(evtstream.TypeFinal, buildReply(resp))
		}
		p.Close()
	}()
	p.Serve(ctx, w, format)
}

// parseRequest decodes a search request from either shape: GET query
// parameters or a POST JSON body. GET requests may use only the known
// parameters (q, k, perdb, timeout, plus any endpoint-specific extras)
// — an unknown one is a 400 naming it, so a client misspelling
// `timeout` fails loudly instead of silently running unbounded.
func (g *Gateway) parseRequest(r *http.Request, extraParams ...string) (searchRequest, error) {
	req := searchRequest{K: g.opts.DefaultMaxDBs, PerDB: g.opts.DefaultPerDB}
	if r.Method == http.MethodPost {
		var body searchRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
		if err := dec.Decode(&body); err != nil {
			return req, fmt.Errorf("malformed search request: %v", err)
		}
		req.Query = body.Query
		req.Timeout = body.Timeout
		if body.K != 0 {
			req.K = body.K
		}
		if body.PerDB != 0 {
			req.PerDB = body.PerDB
		}
	} else {
		q := r.URL.Query()
		allowed := map[string]bool{"q": true, "k": true, "perdb": true, "timeout": true}
		for _, p := range extraParams {
			allowed[p] = true
		}
		var unknown []string
		for name := range q {
			if !allowed[name] {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return req, fmt.Errorf("unknown query parameter %q (valid: q, k, perdb, timeout)",
				strings.Join(unknown, ", "))
		}
		req.Query = q.Get("q")
		req.Timeout = q.Get("timeout")
		for _, p := range []struct {
			name string
			dst  *int
		}{{"k", &req.K}, {"perdb", &req.PerDB}} {
			if s := q.Get(p.name); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil {
					return req, fmt.Errorf("%s must be an integer, got %q", p.name, s)
				}
				*p.dst = n
			}
		}
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("search needs a query (q parameter or \"query\" field)")
	}
	if req.K <= 0 {
		return req, fmt.Errorf("k must be positive, got %d", req.K)
	}
	if req.PerDB <= 0 {
		return req, fmt.Errorf("perdb must be positive, got %d", req.PerDB)
	}
	return req, nil
}
