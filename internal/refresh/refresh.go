// Package refresh keeps a metasearcher's content summaries tracking the
// live databases they describe. The paper's premise is that a summary is
// a noisy estimate of a collection the metasearcher cannot see whole;
// this package adds the online half of that argument: a background
// manager that periodically draws a small fresh sample from each live
// node, measures how far the node's term distribution has drifted from
// the stored summary (smoothed Kullback-Leibler and Jensen-Shannon
// divergence over the term-frequency distributions), and — past a
// configured threshold — triggers a full rebuild of that node's summary
// plus its shrinkage ancestors, hot-swapped under traffic with a cache
// invalidation.
//
// The divergence test follows the similarity-of-texts literature
// (Altmann et al.): Jensen-Shannon divergence is symmetric and bounded
// by ln 2, so one threshold works across vocabulary sizes; the smoothed
// KL divergence is reported alongside for diagnosis (it is the quantity
// with the information-theoretic reading "bits wasted describing the
// node with the stale summary").
//
// The manager is deliberately decoupled from package repro: it drives
// any Target, so tests exercise drift logic against synthetic summaries
// without a live pipeline.
package refresh

import (
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/summary"
	"repro/internal/telemetry"
)

// Target is the slice of the metasearcher a Manager drives:
// enumerating refreshable nodes, reading stored summaries, drawing
// cheap fresh samples, and rebuilding on drift.
// *repro.Metasearcher implements it.
type Target interface {
	// RefreshableDatabases lists the nodes with live connections this
	// process may re-sample (a cluster shard lists only its slice),
	// sorted by name.
	RefreshableDatabases() []string
	// StoredSummary returns the node's current unshrunk content summary
	// (immutable once returned).
	StoredSummary(name string) (*summary.Summary, error)
	// ResampleSummary draws a fresh sample of about docs documents from
	// the live node and summarizes it, without touching stored state.
	ResampleSummary(ctx context.Context, name string, docs int) (*summary.Summary, error)
	// RebuildSummary re-samples the node at full size, recomputes its
	// summary and every shrinkage ancestor, and atomically swaps the new
	// state in, invalidating the query caches.
	RebuildSummary(ctx context.Context, name string) error
}

// Distribution extracts a summary's term distribution: each word's
// average within-document frequency (Ptf), normalized to sum to one.
// Ptf is the summary's estimate of p(w|D), which is exactly the
// distribution the drift test should compare.
func Distribution(s *summary.Summary) map[string]float64 {
	if s == nil {
		return nil
	}
	out := make(map[string]float64, len(s.Words))
	var total float64
	for w, info := range s.Words {
		if info.Ptf > 0 {
			out[w] = info.Ptf
			total += info.Ptf
		}
	}
	if total <= 0 {
		return out
	}
	for w := range out {
		out[w] /= total
	}
	return out
}

// SmoothedKL computes KL(p ‖ q) over the union vocabulary with an
// epsilon floor: every union term gets probability mass at least eps
// before renormalization, so terms seen in one sample but not the other
// — guaranteed with small samples — cost a large-but-finite penalty
// instead of +Inf. eps <= 0 selects 1e-9.
func SmoothedKL(p, q map[string]float64, eps float64) float64 {
	if eps <= 0 {
		eps = 1e-9
	}
	union := unionVocab(p, q)
	pv := make([]float64, len(union))
	qv := make([]float64, len(union))
	for i, w := range union {
		pv[i] = p[w] + eps
		qv[i] = q[w] + eps
	}
	kl, err := stats.KLDivergence(stats.Normalize(pv), stats.Normalize(qv))
	if err != nil {
		return math.NaN()
	}
	return kl
}

// JSDivergence computes the Jensen-Shannon divergence between two term
// distributions over their union vocabulary. Symmetric, finite without
// smoothing (the mixture is positive wherever either input is), and
// bounded by ln 2 ≈ 0.693 — identical distributions score 0, fully
// disjoint vocabularies score ln 2.
func JSDivergence(p, q map[string]float64) float64 {
	var js float64
	for _, w := range unionVocab(p, q) {
		pw, qw := p[w], q[w]
		m := (pw + qw) / 2
		if pw > 0 {
			js += 0.5 * pw * math.Log(pw/m)
		}
		if qw > 0 {
			js += 0.5 * qw * math.Log(qw/m)
		}
	}
	return js
}

// unionVocab returns the sorted union of both maps' keys. Sorting makes
// the float accumulation order deterministic.
func unionVocab(p, q map[string]float64) []string {
	seen := make(map[string]bool, len(p)+len(q))
	out := make([]string, 0, len(p)+len(q))
	for w := range p {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for w := range q {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// Options tunes a Manager.
type Options struct {
	// Interval is the background check period (default 60s).
	Interval time.Duration
	// Threshold is the Jensen-Shannon divergence past which a node's
	// summary is rebuilt (default 0.3; the useful range is (0, ln 2) —
	// small-sample noise against a same-corpus summary typically lands
	// well under 0.3, a topic change near ln 2).
	Threshold float64
	// SampleDocs is the size of the cheap drift-check sample (default
	// 50 — a fraction of the full build's sample, per the stratified
	// corpus-utility argument: a coarse estimate is enough to rank
	// "changed" against "unchanged").
	SampleDocs int
	// Eps is the SmoothedKL floor (default 1e-9).
	Eps float64
	// Metrics receives the refresh_* series (may be nil).
	Metrics *telemetry.Registry
	// Logger, when non-nil, receives drift detections and swap outcomes.
	Logger *slog.Logger
}

// NodeState is one node's refresh bookkeeping, as served at
// /debug/refresh.
type NodeState struct {
	Database  string    `json:"database"`
	Checks    int64     `json:"checks"`
	LastCheck time.Time `json:"last_check"`
	// LastJS and LastKL are the divergences of the latest check.
	LastJS float64 `json:"last_js_divergence"`
	LastKL float64 `json:"last_kl_divergence"`
	// Drifts counts threshold crossings; Swaps successful rebuilds.
	Drifts    int64     `json:"drifts"`
	Swaps     int64     `json:"swaps"`
	LastSwap  time.Time `json:"last_swap,omitzero"`
	LastError string    `json:"last_error,omitempty"`
}

// Manager periodically drift-checks every refreshable node and rebuilds
// the drifted ones. Safe for concurrent use; Start/Stop bracket the
// background loop, RunOnce drives one pass synchronously (tests, and
// operators poking /debug/refresh after a known content change).
type Manager struct {
	target Target
	opts   Options

	mu         sync.Mutex
	states     map[string]*NodeState
	generation int64

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewManager builds a Manager over target.
func NewManager(target Target, opts Options) *Manager {
	if opts.Interval <= 0 {
		opts.Interval = 60 * time.Second
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 0.3
	}
	if opts.SampleDocs <= 0 {
		opts.SampleDocs = 50
	}
	for _, c := range []struct{ name, help string }{
		{"refresh_checks_total", "Drift checks run against live nodes (one resample + divergence each)."},
		{"refresh_drift_detected_total", "Drift checks whose divergence crossed the rebuild threshold."},
		{"refresh_swaps_total", "Summary rebuilds hot-swapped into the serving state."},
		{"refresh_errors_total", "Drift checks or rebuilds that failed (node unreachable, sampling error)."},
	} {
		opts.Metrics.Counter(c.name)
		opts.Metrics.Describe(c.name, c.help)
	}
	opts.Metrics.Gauge("refresh_generation")
	opts.Metrics.Describe("refresh_generation", "Monotonic count of summary swaps applied by the refresh manager.")
	return &Manager{
		target: target,
		opts:   opts,
		states: make(map[string]*NodeState),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Generation returns how many summary swaps this manager has applied.
func (m *Manager) Generation() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.generation
}

// RunOnce drift-checks every refreshable node and rebuilds the drifted
// ones, returning how many summaries were swapped. Per-node failures
// are recorded (refresh_errors_total, NodeState.LastError) and do not
// stop the pass; the returned error is ctx's, if it expired mid-pass.
func (m *Manager) RunOnce(ctx context.Context) (int, error) {
	swapped := 0
	for _, name := range m.target.RefreshableDatabases() {
		if err := ctx.Err(); err != nil {
			return swapped, err
		}
		if m.checkOne(ctx, name) {
			swapped++
		}
	}
	return swapped, nil
}

// checkOne runs one node's drift check, rebuilding on threshold. True
// means a swap was applied.
func (m *Manager) checkOne(ctx context.Context, name string) bool {
	reg := m.opts.Metrics
	reg.Counter("refresh_checks_total").Inc()
	st := m.state(name)

	stored, err := m.target.StoredSummary(name)
	if err == nil {
		var fresh *summary.Summary
		fresh, err = m.target.ResampleSummary(ctx, name, m.opts.SampleDocs)
		if err == nil {
			p := Distribution(stored)
			q := Distribution(fresh)
			js := JSDivergence(p, q)
			kl := SmoothedKL(p, q, m.opts.Eps)
			m.mu.Lock()
			st.Checks++
			st.LastCheck = time.Now()
			st.LastJS = js
			st.LastKL = kl
			st.LastError = ""
			m.mu.Unlock()
			if js <= m.opts.Threshold {
				return false
			}
			reg.Counter("refresh_drift_detected_total").Inc()
			m.mu.Lock()
			st.Drifts++
			m.mu.Unlock()
			if m.opts.Logger != nil {
				m.opts.Logger.Info("summary drift detected, rebuilding",
					"db", name, "js_divergence", js, "kl_divergence", kl,
					"threshold", m.opts.Threshold)
			}
			if err = m.target.RebuildSummary(ctx, name); err == nil {
				reg.Counter("refresh_swaps_total").Inc()
				m.mu.Lock()
				st.Swaps++
				st.LastSwap = time.Now()
				m.generation++
				gen := m.generation
				m.mu.Unlock()
				reg.Gauge("refresh_generation").Set(float64(gen))
				if m.opts.Logger != nil {
					m.opts.Logger.Info("summary rebuilt and swapped",
						"db", name, "refresh_generation", gen)
				}
				return true
			}
		}
	}
	reg.Counter("refresh_errors_total").Inc()
	m.mu.Lock()
	st.LastError = err.Error()
	m.mu.Unlock()
	if m.opts.Logger != nil {
		m.opts.Logger.Warn("summary refresh failed", "db", name, "error", err)
	}
	return false
}

// state returns (creating if needed) a node's bookkeeping record.
func (m *Manager) state(name string) *NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[name]
	if !ok {
		st = &NodeState{Database: name}
		m.states[name] = st
	}
	return st
}

// Start launches the background check loop. Call Stop on shutdown.
// Idempotent: a second Start is a no-op.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.opts.Interval)
		defer ticker.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-m.stop
			cancel() // release an in-flight pass's sampling immediately
		}()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.RunOnce(ctx)
			}
		}
	}()
}

// Stop halts the background loop and waits for an in-flight pass to
// finish. Idempotent; a no-op if Start never ran.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// Snapshot returns every node's state, sorted by database name.
func (m *Manager) Snapshot() []NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeState, 0, len(m.states))
	for _, st := range m.states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Database < out[j].Database })
	return out
}

// Handler serves the manager's state as JSON (mount at /debug/refresh).
func (m *Manager) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		gen := m.generation
		m.mu.Unlock()
		resp := struct {
			Generation      int64       `json:"generation"`
			IntervalSeconds float64     `json:"interval_seconds"`
			Threshold       float64     `json:"threshold"`
			SampleDocs      int         `json:"sample_docs"`
			Nodes           []NodeState `json:"nodes"`
		}{
			Generation:      gen,
			IntervalSeconds: m.opts.Interval.Seconds(),
			Threshold:       m.opts.Threshold,
			SampleDocs:      m.opts.SampleDocs,
			Nodes:           m.Snapshot(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
