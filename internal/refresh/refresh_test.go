package refresh

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/summary"
	"repro/internal/telemetry"
)

// dist builds a summary whose Ptf distribution is exactly the given
// term weights.
func dist(words map[string]float64) *summary.Summary {
	s := &summary.Summary{NumDocs: 10, Words: make(map[string]summary.Word)}
	for w, p := range words {
		s.Words[w] = summary.Word{P: 0.5, Ptf: p, SampleDF: 1}
	}
	return s
}

// KL pinned against hand-computed values.
func TestSmoothedKLPinned(t *testing.T) {
	cases := []struct {
		name string
		p, q map[string]float64
		eps  float64
		want float64
		tol  float64
	}{
		// KL(p‖q) = 0.5·ln(0.5/0.25) + 0.5·ln(0.5/0.75) = 0.5·ln(4/3)
		{"half-vs-quarter", map[string]float64{"a": 0.5, "b": 0.5},
			map[string]float64{"a": 0.25, "b": 0.75}, 1e-12,
			0.5 * math.Log(4.0/3.0), 1e-9},
		{"identical", map[string]float64{"a": 0.3, "b": 0.7},
			map[string]float64{"a": 0.3, "b": 0.7}, 1e-12, 0, 1e-9},
		// Disjoint vocabularies: the stored term's mass is explained only
		// by the floor, so KL ≈ ln(1/eps) = ln(1e6).
		{"disjoint", map[string]float64{"a": 1},
			map[string]float64{"b": 1}, 1e-6,
			math.Log(1e6), 0.01},
	}
	for _, c := range cases {
		if got := SmoothedKL(c.p, c.q, c.eps); math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: SmoothedKL = %v, want %v ± %v", c.name, got, c.want, c.tol)
		}
	}
}

func TestJSDivergence(t *testing.T) {
	same := map[string]float64{"a": 0.4, "b": 0.6}
	if got := JSDivergence(same, same); got != 0 {
		t.Errorf("JS(p, p) = %v, want 0", got)
	}
	p := map[string]float64{"a": 1}
	q := map[string]float64{"b": 1}
	if got := JSDivergence(p, q); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("JS(disjoint) = %v, want ln 2 = %v", got, math.Ln2)
	}
	// Symmetry, on an asymmetric pair.
	x := map[string]float64{"a": 0.9, "b": 0.1}
	y := map[string]float64{"a": 0.2, "b": 0.5, "c": 0.3}
	if d1, d2 := JSDivergence(x, y), JSDivergence(y, x); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("JS not symmetric: %v vs %v", d1, d2)
	}
	// Bounded by ln 2.
	if got := JSDivergence(x, y); got <= 0 || got >= math.Ln2 {
		t.Errorf("JS(x, y) = %v, want in (0, ln 2)", got)
	}
}

func TestDistributionNormalizes(t *testing.T) {
	d := Distribution(dist(map[string]float64{"a": 2, "b": 6}))
	if math.Abs(d["a"]-0.25) > 1e-12 || math.Abs(d["b"]-0.75) > 1e-12 {
		t.Errorf("Distribution = %v, want a:0.25 b:0.75", d)
	}
	if Distribution(nil) != nil {
		t.Error("Distribution(nil) != nil")
	}
}

// fakeTarget serves canned stored/fresh summaries and records rebuilds.
// A rebuild adopts the fresh summary, so the node stops drifting.
type fakeTarget struct {
	mu       sync.Mutex
	stored   map[string]*summary.Summary
	fresh    map[string]*summary.Summary
	rebuilds []string
	errOn    string // ResampleSummary fails for this node
}

func (f *fakeTarget) RefreshableDatabases() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for name := range f.stored {
		out = append(out, name)
	}
	// map order is fine for tests that sort expectations themselves; keep
	// deterministic anyway
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (f *fakeTarget) StoredSummary(name string) (*summary.Summary, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stored[name], nil
}

func (f *fakeTarget) ResampleSummary(_ context.Context, name string, _ int) (*summary.Summary, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if name == f.errOn {
		return nil, errors.New("node unreachable")
	}
	return f.fresh[name], nil
}

func (f *fakeTarget) RebuildSummary(_ context.Context, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rebuilds = append(f.rebuilds, name)
	f.stored[name] = f.fresh[name]
	return nil
}

func driftTarget() *fakeTarget {
	med := map[string]float64{"cancer": 0.4, "patient": 0.4, "drug": 0.2}
	return &fakeTarget{
		stored: map[string]*summary.Summary{
			"stable":  dist(med),
			"drifted": dist(med),
		},
		fresh: map[string]*summary.Summary{
			"stable":  dist(med),
			"drifted": dist(map[string]float64{"football": 0.5, "league": 0.5}),
		},
	}
}

// A node mutated past the threshold triggers rebuild + generation bump;
// the unchanged node never swaps, over repeated passes.
func TestManagerDrift(t *testing.T) {
	ft := driftTarget()
	reg := telemetry.NewRegistry()
	mgr := NewManager(ft, Options{Threshold: 0.3, Metrics: reg})

	swapped, err := mgr.RunOnce(context.Background())
	if err != nil || swapped != 1 {
		t.Fatalf("RunOnce = (%d, %v), want (1, nil)", swapped, err)
	}
	if len(ft.rebuilds) != 1 || ft.rebuilds[0] != "drifted" {
		t.Fatalf("rebuilds = %v, want [drifted]", ft.rebuilds)
	}
	if got := mgr.Generation(); got != 1 {
		t.Errorf("Generation = %d, want 1", got)
	}
	if got := reg.Counter("refresh_drift_detected_total").Value(); got != 1 {
		t.Errorf("refresh_drift_detected_total = %d, want 1", got)
	}
	if got := reg.Counter("refresh_swaps_total").Value(); got != 1 {
		t.Errorf("refresh_swaps_total = %d, want 1", got)
	}

	// Second pass: the rebuilt node now matches its live contents, the
	// stable node still does — nothing swaps.
	swapped, err = mgr.RunOnce(context.Background())
	if err != nil || swapped != 0 {
		t.Fatalf("second RunOnce = (%d, %v), want (0, nil)", swapped, err)
	}
	if got := mgr.Generation(); got != 1 {
		t.Errorf("Generation after stable pass = %d, want 1", got)
	}
	if got := reg.Counter("refresh_checks_total").Value(); got != 4 {
		t.Errorf("refresh_checks_total = %d, want 4", got)
	}

	states := mgr.Snapshot()
	if len(states) != 2 {
		t.Fatalf("Snapshot has %d states, want 2", len(states))
	}
	for _, st := range states {
		switch st.Database {
		case "stable":
			if st.Swaps != 0 || st.Drifts != 0 {
				t.Errorf("stable node swapped: %+v", st)
			}
			if st.LastJS != 0 {
				t.Errorf("stable node JS = %v, want 0", st.LastJS)
			}
		case "drifted":
			if st.Swaps != 1 || st.Drifts != 1 || st.Checks != 2 {
				t.Errorf("drifted node state: %+v", st)
			}
		}
	}
}

// A failing node is recorded, does not swap, and does not stop the pass.
func TestManagerResampleError(t *testing.T) {
	ft := driftTarget()
	ft.errOn = "drifted"
	reg := telemetry.NewRegistry()
	mgr := NewManager(ft, Options{Threshold: 0.3, Metrics: reg})
	swapped, err := mgr.RunOnce(context.Background())
	if err != nil || swapped != 0 {
		t.Fatalf("RunOnce = (%d, %v), want (0, nil)", swapped, err)
	}
	if got := reg.Counter("refresh_errors_total").Value(); got != 1 {
		t.Errorf("refresh_errors_total = %d, want 1", got)
	}
	for _, st := range mgr.Snapshot() {
		if st.Database == "drifted" && st.LastError == "" {
			t.Error("failed node has no LastError")
		}
	}
	if len(ft.rebuilds) != 0 {
		t.Errorf("rebuilds = %v, want none", ft.rebuilds)
	}
}

func TestHandler(t *testing.T) {
	mgr := NewManager(driftTarget(), Options{Threshold: 0.3})
	mgr.RunOnce(context.Background())
	rec := httptest.NewRecorder()
	mgr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/refresh", nil))
	var resp struct {
		Generation int64       `json:"generation"`
		Threshold  float64     `json:"threshold"`
		Nodes      []NodeState `json:"nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding /debug/refresh: %v\n%s", err, rec.Body.String())
	}
	if resp.Generation != 1 || resp.Threshold != 0.3 || len(resp.Nodes) != 2 {
		t.Errorf("response = %+v", resp)
	}
}
