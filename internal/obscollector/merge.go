package obscollector

import (
	"sort"
	"time"

	"repro/internal/telemetry"
)

// GaugeRollup is one gauge across the fleet. Gauges do not sum
// meaningfully in general (an inflight count does, a vocabulary size
// does not), so the rollup reports the spread and leaves interpretation
// to the reader.
type GaugeRollup struct {
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Sum       float64 `json:"sum"`
	Instances int     `json:"instances"`
}

// Rollup is the cluster-wide aggregate of every member's snapshot:
// counters summed, equal-bounds histograms merged bucket-wise (their
// exemplars pooled and re-capped, so the cluster tail keeps its trace
// links), gauges as min/max/sum.
type Rollup struct {
	Counters   map[string]int64                       `json:"counters"`
	Gauges     map[string]GaugeRollup                 `json:"gauges"`
	Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
	// SkewedHistograms names histograms excluded from the rollup
	// because members disagreed on bucket bounds (merging those would
	// fabricate counts). Should be empty in a homogeneous fleet.
	SkewedHistograms []string          `json:"skewed_histograms,omitempty"`
	Help             map[string]string `json:"help,omitempty"`
}

// ClusterMetrics is the /debug/cluster/metrics payload: the rollup plus
// every member's own snapshot.
type ClusterMetrics struct {
	ScrapedAt time.Time        `json:"scraped_at"`
	Cluster   Rollup           `json:"cluster"`
	Instances []*InstanceState `json:"instances"`
}

// Aggregate builds the cluster rollup from the members' latest states.
// Members whose last scrape failed still contribute their stale
// snapshot (flagged via InstanceState.Err); members never scraped
// contribute nothing.
func Aggregate(states map[string]*InstanceState) ClusterMetrics {
	out := ClusterMetrics{
		ScrapedAt: time.Now(),
		Cluster: Rollup{
			Counters:   map[string]int64{},
			Gauges:     map[string]GaugeRollup{},
			Histograms: map[string]telemetry.HistogramSnapshot{},
			Help:       map[string]string{},
		},
	}
	skewed := map[string]bool{}
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := states[name]
		out.Instances = append(out.Instances, st)
		snap := st.Metrics
		for n, v := range snap.Counters {
			out.Cluster.Counters[n] += v
		}
		for n, v := range snap.Gauges {
			g, ok := out.Cluster.Gauges[n]
			if !ok {
				g = GaugeRollup{Min: v, Max: v}
			}
			if v < g.Min {
				g.Min = v
			}
			if v > g.Max {
				g.Max = v
			}
			g.Sum += v
			g.Instances++
			out.Cluster.Gauges[n] = g
		}
		for n, h := range snap.Histograms {
			if skewed[n] {
				continue
			}
			cur, ok := out.Cluster.Histograms[n]
			if !ok {
				out.Cluster.Histograms[n] = copyHistogram(h)
				continue
			}
			merged, ok := mergeHistograms(cur, h)
			if !ok {
				skewed[n] = true
				delete(out.Cluster.Histograms, n)
				continue
			}
			out.Cluster.Histograms[n] = merged
		}
		for n, help := range snap.Help {
			if out.Cluster.Help[n] == "" {
				out.Cluster.Help[n] = help
			}
		}
	}
	for n := range skewed {
		out.Cluster.SkewedHistograms = append(out.Cluster.SkewedHistograms, n)
	}
	sort.Strings(out.Cluster.SkewedHistograms)
	return out
}

func copyHistogram(h telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	out := telemetry.HistogramSnapshot{
		Bounds:    append([]float64(nil), h.Bounds...),
		Counts:    append([]int64(nil), h.Counts...),
		Sum:       h.Sum,
		Count:     h.Count,
		Exemplars: append([]telemetry.Exemplar(nil), h.Exemplars...),
	}
	return out
}

// mergeHistograms adds b into a bucket-wise. Reports false when the two
// disagree on bounds — counts from different layouts cannot be merged
// without fabricating data.
func mergeHistograms(a, b telemetry.HistogramSnapshot) (telemetry.HistogramSnapshot, bool) {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return a, false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return a, false
		}
	}
	for i := range b.Counts {
		a.Counts[i] += b.Counts[i]
	}
	a.Sum += b.Sum
	a.Count += b.Count
	a.Exemplars = mergeExemplars(a.Exemplars, b.Exemplars)
	return a, true
}

// mergeExemplars pools two exemplar sets and keeps the ExemplarCap
// largest, value descending — the cluster-wide tail.
func mergeExemplars(a, b []telemetry.Exemplar) []telemetry.Exemplar {
	out := append(append([]telemetry.Exemplar(nil), a...), b...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	if len(out) > telemetry.ExemplarCap {
		out = out[:telemetry.ExemplarCap]
	}
	return out
}
