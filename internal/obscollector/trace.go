package obscollector

import (
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/telemetry"
)

// TracePoint is one instantaneous event inside an assembled span.
type TracePoint struct {
	Name  string                 `json:"name"`
	Time  time.Time              `json:"time"`
	Attrs map[string]interface{} `json:"attrs,omitempty"`
}

// TraceSpan is one span of an assembled cross-process trace, annotated
// with the process it ran in.
type TraceSpan struct {
	Name     string             `json:"name"`
	Identity telemetry.Identity `json:"identity"`
	Span     uint64             `json:"span"`
	Parent   uint64             `json:"parent,omitempty"`
	Start    time.Time          `json:"start"`
	// DurationSeconds is zero when the span's end event was not
	// exported (still open, or overwritten in the member's ring) —
	// Ended distinguishes the two readings.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	Ended           bool    `json:"ended"`
	// Orphan marks a span whose parent id was not found in any
	// process's export: it is shown as a root, but the tree above it is
	// incomplete (usually the parent aged out of a ring).
	Orphan   bool                   `json:"orphan,omitempty"`
	Attrs    map[string]interface{} `json:"attrs,omitempty"`
	Events   []TracePoint           `json:"events,omitempty"`
	Children []*TraceSpan           `json:"children,omitempty"`
}

// AssembledTrace is one distributed trace stitched from every process's
// span export, plus the audit records that carry the same trace ID.
type AssembledTrace struct {
	TraceID string `json:"trace_id"`
	// Spans counts all spans; Orphans those whose parent was missing.
	// A fully assembled trace has len(Roots)==1 and Orphans==0.
	Spans   int          `json:"spans"`
	Orphans int          `json:"orphans"`
	Roots   []*TraceSpan `json:"roots"`
	// Processes are the distinct instances that contributed spans,
	// sorted.
	Processes []string `json:"processes"`
	// Queries are the audit records of this trace (the selection
	// evidence of every process that ran a selection for it).
	Queries []*audit.QueryRecord `json:"queries,omitempty"`
}

// AssembleTrace stitches the given trace from the members' latest
// exports. Span IDs are unique across processes (each tracer offsets
// them by a random 64-bit base), so events key directly by span ID.
// Returns nil when no process exported any event for the trace.
func AssembleTrace(traceID string, states map[string]*InstanceState) *AssembledTrace {
	type spanEvents struct {
		id    telemetry.Identity
		event telemetry.ExportedEvent
	}
	var all []spanEvents
	procSet := map[string]bool{}
	out := &AssembledTrace{TraceID: traceID}
	for _, st := range states {
		for _, e := range st.Spans {
			if e.Trace != traceID {
				continue
			}
			all = append(all, spanEvents{st.Identity, e})
			procSet[st.Identity.Instance] = true
		}
		for _, q := range st.Queries {
			if q.TraceID == traceID {
				out.Queries = append(out.Queries, q)
			}
		}
	}
	if len(all) == 0 {
		return nil
	}
	// Scrape order is arbitrary; sort by event time so siblings come
	// out in start order and point events in occurrence order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].event.Time.Before(all[j].event.Time) })

	nodes := map[uint64]*TraceSpan{}
	for _, se := range all {
		e := se.event
		switch e.Kind {
		case "start":
			n := nodes[e.Span]
			if n == nil {
				n = &TraceSpan{Span: e.Span}
				nodes[e.Span] = n
			}
			n.Name = e.Name
			n.Identity = se.id
			n.Parent = e.Parent
			n.Start = e.Time
			n.Attrs = e.Attrs
		case "end":
			n := nodes[e.Span]
			if n == nil {
				// End without start (start overwritten in the ring):
				// synthesize the span from what the end carries.
				n = &TraceSpan{Span: e.Span, Name: e.Name, Identity: se.id, Parent: e.Parent,
					Start: e.Time.Add(-time.Duration(e.Duration * float64(time.Second)))}
				nodes[e.Span] = n
			}
			n.DurationSeconds = e.Duration
			n.Ended = true
		case "point":
			n := nodes[e.Span]
			if n == nil {
				continue // the owning span is gone; nowhere to hang it
			}
			n.Events = append(n.Events, TracePoint{Name: e.Name, Time: e.Time, Attrs: e.Attrs})
		}
	}
	// Link children under parents; spans with a parent id that no
	// process exported become orphan roots.
	ids := make([]uint64, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return nodes[ids[i]].Start.Before(nodes[ids[j]].Start) })
	for _, id := range ids {
		n := nodes[id]
		if n.Parent == 0 {
			out.Roots = append(out.Roots, n)
			continue
		}
		if p := nodes[n.Parent]; p != nil {
			p.Children = append(p.Children, n)
			continue
		}
		n.Orphan = true
		out.Orphans++
		out.Roots = append(out.Roots, n)
	}
	out.Spans = len(nodes)
	for inst := range procSet {
		out.Processes = append(out.Processes, inst)
	}
	sort.Strings(out.Processes)
	sort.SliceStable(out.Queries, func(i, j int) bool { return out.Queries[i].Time.Before(out.Queries[j].Time) })
	return out
}

// TraceSummary is one known trace in the /debug/cluster/traces index.
type TraceSummary struct {
	TraceID   string    `json:"trace_id"`
	Spans     int       `json:"spans"`
	Processes int       `json:"processes"`
	Earliest  time.Time `json:"earliest"`
}

// KnownTraces lists every trace ID present in the members' span
// exports, newest first.
func KnownTraces(states map[string]*InstanceState) []TraceSummary {
	type agg struct {
		spans    map[uint64]bool
		procs    map[string]bool
		earliest time.Time
	}
	byTrace := map[string]*agg{}
	for _, st := range states {
		for _, e := range st.Spans {
			if e.Trace == "" || e.Kind != "start" {
				continue
			}
			a := byTrace[e.Trace]
			if a == nil {
				a = &agg{spans: map[uint64]bool{}, procs: map[string]bool{}, earliest: e.Time}
				byTrace[e.Trace] = a
			}
			a.spans[e.Span] = true
			a.procs[st.Identity.Instance] = true
			if e.Time.Before(a.earliest) {
				a.earliest = e.Time
			}
		}
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for id, a := range byTrace {
		out = append(out, TraceSummary{TraceID: id, Spans: len(a.spans), Processes: len(a.procs), Earliest: a.earliest})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Earliest.Equal(out[j].Earliest) {
			return out[i].Earliest.After(out[j].Earliest)
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}
