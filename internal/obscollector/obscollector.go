// Package obscollector is the cluster observability plane: one process
// that periodically scrapes every member of a sharded metasearcher
// fleet (router, shards, dbnode replicas) and serves a single debug
// surface over all of them.
//
// Three facilities, one scrape loop:
//
//   - Aggregated metrics. Every member's /metrics?format=json snapshot
//     is kept per instance and rolled up cluster-wide — counters
//     summed, equal-bounds histograms merged (exemplars kept from the
//     merged tail), gauges reported as min/max/sum — and served in
//     Prometheus text (instance/role/shard labels) and JSON at
//     /debug/cluster/metrics.
//   - Distributed trace assembly. Members export their recent spans
//     (telemetry.RingCapture via /debug/export/spans) and audit
//     records (/debug/export/queries); the collector stitches events
//     from all processes by trace ID into one cross-process span tree
//     at /debug/cluster/trace/{id}. Histogram exemplars in the
//     aggregated snapshot carry the trace IDs of the slowest recent
//     requests, so a tail-latency spike links directly to a full
//     fan-out trace.
//   - Continuous profiling. An opt-in sampler walks the fleet on a
//     rotation capturing pprof CPU and heap profiles into a bounded
//     on-disk set, indexed at /debug/cluster/profiles.
//
// The collector is read-only and stateless across restarts: everything
// it serves is reconstructed from member scrapes, so it can be killed
// and restarted freely (profiles on disk survive; in-memory state is
// re-scraped within one interval).
package obscollector

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
)

// Target is one fleet member the collector scrapes. BaseURL is the
// debug listener root ("http://host:port"); the collector appends the
// well-known paths (/metrics, /debug/export/spans, ...).
type Target struct {
	Identity telemetry.Identity
	BaseURL  string
}

// TargetsFromTopology derives the scrape set from the cluster's shared
// topology file: every shard (role "shard") and every dbnode replica of
// every database (role "dbnode", deduplicated — a replica serving under
// replication appears once). routerAddr, when non-empty, adds the
// router (role "router"). Addresses may be bare host:port.
func TargetsFromTopology(topo *shardmap.Topology, routerAddr string) []Target {
	var out []Target
	if routerAddr != "" {
		out = append(out, Target{
			Identity: telemetry.Identity{Instance: routerAddr, Role: "router"},
			BaseURL:  baseURL(routerAddr),
		})
	}
	for _, s := range topo.Shards {
		out = append(out, Target{
			Identity: telemetry.Identity{Instance: s.Addr, Role: "shard", Shard: s.ID},
			BaseURL:  baseURL(s.Addr),
		})
	}
	seen := make(map[string]bool)
	for _, db := range topo.Databases {
		for _, addr := range db.Replicas {
			if seen[addr] {
				continue
			}
			seen[addr] = true
			out = append(out, Target{
				Identity: telemetry.Identity{Instance: addr, Role: "dbnode"},
				BaseURL:  baseURL(addr),
			})
		}
	}
	return out
}

func baseURL(addr string) string {
	if len(addr) >= 7 && (addr[:7] == "http://" || (len(addr) >= 8 && addr[:8] == "https://")) {
		return addr
	}
	return "http://" + addr
}

// Options configures a Collector.
type Options struct {
	// Client issues the scrape calls (default http.DefaultClient with
	// Timeout as the per-scrape bound).
	Client *http.Client
	// Interval is the scrape period (default 5s).
	Interval time.Duration
	// Timeout bounds one member's whole scrape (default 3s).
	Timeout time.Duration
	// Metrics receives the collector's own collector_* series (may be
	// nil).
	Metrics *telemetry.Registry
	// Logger, when non-nil, logs scrape failures.
	Logger *slog.Logger
	// Profiles enables and tunes the continuous-profiling sampler.
	Profiles ProfileOptions
}

// InstanceState is the latest scrape of one fleet member.
type InstanceState struct {
	Identity  telemetry.Identity `json:"identity"`
	ScrapedAt time.Time          `json:"scraped_at"`
	// Err is the scrape failure, "" on success. A failed scrape keeps
	// the previous Metrics/Spans (stale beats absent for debugging a
	// member that just died).
	Err     string             `json:"err,omitempty"`
	Metrics telemetry.Snapshot `json:"metrics"`
	// Spans are the member's recent trace events (oldest first);
	// SpansDropped how many its ring overwrote before this scrape.
	Spans        []telemetry.ExportedEvent `json:"-"`
	SpansDropped int64                     `json:"spans_dropped,omitempty"`
	// Queries are the member's recent audit records (newest first;
	// empty for members without an audit ring, e.g. dbnodes).
	Queries []*audit.QueryRecord `json:"-"`
}

// Collector owns the scrape loop and the assembled state.
type Collector struct {
	opts   Options
	client *http.Client

	mu         sync.RWMutex
	targets    []Target
	generation int64                     // topology generation the targets derive from
	state      map[string]*InstanceState // key: Identity.Instance

	scrapes    *telemetry.Counter
	scrapeErrs *telemetry.Counter

	profiler *profiler

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a Collector over the targets. Call Start for the periodic
// loop, or ScrapeOnce for a single synchronous sweep (tests).
func New(targets []Target, opts Options) (*Collector, error) {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 3 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Collector{
		targets:    targets,
		opts:       opts,
		client:     client,
		state:      make(map[string]*InstanceState, len(targets)),
		scrapes:    opts.Metrics.Counter("collector_scrapes_total"),
		scrapeErrs: opts.Metrics.Counter("collector_scrape_errors_total"),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	opts.Metrics.Histogram("collector_scrape_latency", nil)
	for _, d := range []struct{ name, help string }{
		{"collector_scrapes_total", "Member scrapes attempted by the cluster collector."},
		{"collector_scrape_errors_total", "Member scrapes that failed (member kept its stale state)."},
		{"collector_scrape_latency", "Wall time of one full fleet sweep, seconds."},
		{"collector_profiles_total", "pprof profiles captured by the continuous-profiling sampler."},
		{"collector_profile_errors_total", "pprof profile captures that failed."},
	} {
		opts.Metrics.Describe(d.name, d.help)
	}
	if opts.Profiles.Enable {
		p, err := newProfiler(targets, client, opts)
		if err != nil {
			return nil, err
		}
		c.profiler = p
	}
	return c, nil
}

// Targets returns the scrape set.
func (c *Collector) Targets() []Target {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Target, len(c.targets))
	copy(out, c.targets)
	return out
}

// Generation returns the topology generation the current scrape set was
// derived from (0 until SetTargets is first called with one).
func (c *Collector) Generation() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// SetTargets swaps the scrape set — the collector's half of a topology
// reconfiguration. State of instances no longer targeted is dropped
// (their last scrapes describe members that left the fleet); surviving
// instances keep theirs, so a swap never blanks the debug surface. The
// profiling rotation, when enabled, follows the new set. generation
// records which topology generation produced the set.
func (c *Collector) SetTargets(targets []Target, generation int64) {
	next := make([]Target, len(targets))
	copy(next, targets)
	keep := make(map[string]bool, len(next))
	for _, t := range next {
		keep[t.Identity.Instance] = true
	}
	c.mu.Lock()
	c.targets = next
	c.generation = generation
	for inst := range c.state {
		if !keep[inst] {
			delete(c.state, inst)
		}
	}
	c.mu.Unlock()
	if c.profiler != nil {
		c.profiler.setTargets(next)
	}
}

// Start launches the periodic scrape loop (immediate first sweep) and,
// when enabled, the profiling rotation. Stop with Stop.
func (c *Collector) Start() {
	go func() {
		defer close(c.done)
		ctx := context.Background()
		c.ScrapeOnce(ctx)
		t := time.NewTicker(c.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.ScrapeOnce(ctx)
			}
		}
	}()
	if c.profiler != nil {
		c.profiler.start()
	}
}

// Stop halts the loops and waits for them to exit.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
	if c.profiler != nil {
		c.profiler.stopWait()
	}
}

// ScrapeOnce sweeps every target in parallel and installs the results.
// The target set is read once at entry: a concurrent SetTargets applies
// from the next sweep.
func (c *Collector) ScrapeOnce(ctx context.Context) {
	start := time.Now()
	targets := c.Targets()
	states := make([]*InstanceState, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			states[i] = c.scrapeTarget(ctx, t)
		}(i, t)
	}
	wg.Wait()
	c.mu.Lock()
	current := make(map[string]bool, len(c.targets))
	for _, t := range c.targets {
		current[t.Identity.Instance] = true
	}
	for _, st := range states {
		// A SetTargets mid-sweep may have dropped this instance; a
		// stale scrape must not resurrect it.
		if !current[st.Identity.Instance] {
			continue
		}
		if st.Err != "" {
			// Keep the previous successful payload under the new error
			// so operators still see the member's last known state.
			if prev, ok := c.state[st.Identity.Instance]; ok {
				st.Metrics = prev.Metrics
				st.Spans = prev.Spans
				st.SpansDropped = prev.SpansDropped
				st.Queries = prev.Queries
			}
		}
		c.state[st.Identity.Instance] = st
	}
	c.mu.Unlock()
	c.opts.Metrics.Histogram("collector_scrape_latency", nil).ObserveSince(start)
}

// scrapeTarget fetches one member's metrics, spans, and audit records.
// Spans and audit are best-effort (a member without the export
// endpoints still contributes metrics); metrics failure fails the
// scrape.
func (c *Collector) scrapeTarget(ctx context.Context, t Target) *InstanceState {
	c.scrapes.Inc()
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	st := &InstanceState{Identity: t.Identity, ScrapedAt: time.Now()}

	var snap telemetry.Snapshot
	if err := c.getJSON(ctx, t.BaseURL+"/metrics?format=json", &snap); err != nil {
		st.Err = err.Error()
		c.scrapeErrs.Inc()
		if c.opts.Logger != nil {
			c.opts.Logger.Warn("scrape failed", "instance", t.Identity.Instance, "err", err)
		}
		return st
	}
	st.Metrics = snap

	var spans telemetry.SpanExport
	if err := c.getJSON(ctx, t.BaseURL+"/debug/export/spans", &spans); err == nil {
		if spans.Version == telemetry.SpanExportVersion {
			st.Spans = spans.Events
			st.SpansDropped = spans.Dropped
		} else if c.opts.Logger != nil {
			c.opts.Logger.Warn("span export version mismatch",
				"instance", t.Identity.Instance, "got", spans.Version, "want", telemetry.SpanExportVersion)
		}
	}

	var queries audit.Export
	if err := c.getJSON(ctx, t.BaseURL+"/debug/export/queries", &queries); err == nil {
		if queries.Version == audit.ExportVersion {
			st.Queries = queries.Records
		}
	}
	return st
}

func (c *Collector) getJSON(ctx context.Context, url string, dst interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(dst)
}

// States returns the latest scrape of every member, keyed by instance.
func (c *Collector) States() map[string]*InstanceState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*InstanceState, len(c.state))
	for k, v := range c.state {
		out[k] = v
	}
	return out
}
