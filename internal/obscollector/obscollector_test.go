package obscollector

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
)

func TestTargetsFromTopology(t *testing.T) {
	topo := &shardmap.Topology{
		Shards: []shardmap.Shard{
			{ID: "shard-00", Addr: "127.0.0.1:8091"},
			{ID: "shard-01", Addr: "http://127.0.0.1:8092"},
		},
		Databases: []shardmap.Database{
			{Name: "db-a", Replicas: []string{"127.0.0.1:9301", "127.0.0.1:9302"}},
			{Name: "db-b", Replicas: []string{"127.0.0.1:9302", "127.0.0.1:9303"}},
		},
	}
	targets := TargetsFromTopology(topo, "127.0.0.1:8090")
	// Router + 2 shards + 3 distinct replicas (9302 serves two databases
	// but is one process).
	if len(targets) != 6 {
		t.Fatalf("got %d targets, want 6: %+v", len(targets), targets)
	}
	if targets[0].Identity.Role != "router" || targets[0].BaseURL != "http://127.0.0.1:8090" {
		t.Errorf("router target = %+v", targets[0])
	}
	if targets[1].Identity.Shard != "shard-00" || targets[1].Identity.Role != "shard" {
		t.Errorf("shard target = %+v", targets[1])
	}
	if targets[2].BaseURL != "http://127.0.0.1:8092" {
		t.Errorf("already-schemed shard addr mangled: %q", targets[2].BaseURL)
	}
	roles := map[string]int{}
	for _, tg := range targets {
		roles[tg.Identity.Role]++
	}
	if roles["dbnode"] != 3 {
		t.Errorf("dbnode targets = %d, want 3 (replica dedup)", roles["dbnode"])
	}

	if got := TargetsFromTopology(topo, ""); len(got) != 5 {
		t.Errorf("without router: %d targets, want 5", len(got))
	}
}

func histSnap(bounds []float64, counts []int64, sum float64, count int64, ex ...telemetry.Exemplar) telemetry.HistogramSnapshot {
	return telemetry.HistogramSnapshot{Bounds: bounds, Counts: counts, Sum: sum, Count: count, Exemplars: ex}
}

func TestAggregateRollup(t *testing.T) {
	bounds := []float64{0.1, 1}
	states := map[string]*InstanceState{
		"a": {
			Identity: telemetry.Identity{Instance: "a", Role: "shard", Shard: "shard-00"},
			Metrics: telemetry.Snapshot{
				Counters: map[string]int64{"requests_total": 3, "only_a_total": 7},
				Gauges:   map[string]float64{"inflight": 2},
				Histograms: map[string]telemetry.HistogramSnapshot{
					"latency": histSnap(bounds, []int64{1, 2, 0}, 0.9, 3,
						telemetry.Exemplar{Value: 0.8, TraceID: "trace-a"}),
				},
				Help: map[string]string{"requests_total": "Requests served."},
			},
		},
		"b": {
			Identity: telemetry.Identity{Instance: "b", Role: "shard", Shard: "shard-01"},
			Metrics: telemetry.Snapshot{
				Counters: map[string]int64{"requests_total": 5},
				Gauges:   map[string]float64{"inflight": 7},
				Histograms: map[string]telemetry.HistogramSnapshot{
					"latency": histSnap(bounds, []int64{0, 1, 1}, 3.1, 2,
						telemetry.Exemplar{Value: 2.5, TraceID: "trace-b"}),
				},
			},
		},
	}
	agg := Aggregate(states)
	if got := agg.Cluster.Counters["requests_total"]; got != 8 {
		t.Errorf("requests_total rollup = %d, want 8", got)
	}
	if got := agg.Cluster.Counters["only_a_total"]; got != 7 {
		t.Errorf("only_a_total rollup = %d, want 7", got)
	}
	g := agg.Cluster.Gauges["inflight"]
	if g.Min != 2 || g.Max != 7 || g.Sum != 9 || g.Instances != 2 {
		t.Errorf("inflight rollup = %+v", g)
	}
	h := agg.Cluster.Histograms["latency"]
	if !reflect.DeepEqual(h.Counts, []int64{1, 3, 1}) || h.Count != 5 || h.Sum != 4.0 {
		t.Errorf("latency rollup = %+v", h)
	}
	// Exemplars pool across members, value-descending.
	if len(h.Exemplars) != 2 || h.Exemplars[0].TraceID != "trace-b" || h.Exemplars[1].TraceID != "trace-a" {
		t.Errorf("merged exemplars = %+v", h.Exemplars)
	}
	if agg.Cluster.Help["requests_total"] != "Requests served." {
		t.Errorf("help not propagated: %q", agg.Cluster.Help["requests_total"])
	}
	// The source snapshots must not have been mutated by the merge.
	if states["a"].Metrics.Histograms["latency"].Counts[1] != 2 {
		t.Error("Aggregate mutated a member's snapshot")
	}
	if len(agg.Instances) != 2 || agg.Instances[0].Identity.Instance != "a" {
		t.Errorf("instances = %+v", agg.Instances)
	}
}

func TestAggregateSkewedHistograms(t *testing.T) {
	states := map[string]*InstanceState{
		"a": {Metrics: telemetry.Snapshot{Histograms: map[string]telemetry.HistogramSnapshot{
			"skew": histSnap([]float64{0.1, 1}, []int64{1, 0, 0}, 0.05, 1),
		}}},
		"b": {Metrics: telemetry.Snapshot{Histograms: map[string]telemetry.HistogramSnapshot{
			"skew": histSnap([]float64{0.5, 2}, []int64{1, 0, 0}, 0.3, 1),
		}}},
	}
	agg := Aggregate(states)
	if _, ok := agg.Cluster.Histograms["skew"]; ok {
		t.Error("bounds-mismatched histogram was merged anyway")
	}
	if !reflect.DeepEqual(agg.Cluster.SkewedHistograms, []string{"skew"}) {
		t.Errorf("SkewedHistograms = %v", agg.Cluster.SkewedHistograms)
	}
}

func TestExemplarMergeCap(t *testing.T) {
	var a, b []telemetry.Exemplar
	for i := 0; i < telemetry.ExemplarCap; i++ {
		a = append(a, telemetry.Exemplar{Value: float64(10 + i), TraceID: fmt.Sprintf("a%d", i)})
		b = append(b, telemetry.Exemplar{Value: float64(i), TraceID: fmt.Sprintf("b%d", i)})
	}
	out := mergeExemplars(a, b)
	if len(out) != telemetry.ExemplarCap {
		t.Fatalf("merged exemplars = %d, want cap %d", len(out), telemetry.ExemplarCap)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Value > out[i-1].Value {
			t.Fatalf("exemplars not value-descending: %+v", out)
		}
	}
	if out[0].Value != float64(10+telemetry.ExemplarCap-1) {
		t.Errorf("largest exemplar lost: %+v", out[0])
	}
}

// traceEvents builds a three-process trace: router root → shard child →
// dbnode grandchild, plus a point event on the shard span and an
// orphan whose parent no process exported.
func traceStates(traceID string) map[string]*InstanceState {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ev := func(kind, name string, span, parent uint64, at time.Duration, dur float64) telemetry.ExportedEvent {
		return telemetry.ExportedEvent{Kind: kind, Name: name, Trace: traceID,
			Span: span, Parent: parent, Time: t0.Add(at), Duration: dur}
	}
	return map[string]*InstanceState{
		"router": {
			Identity: telemetry.Identity{Instance: "router", Role: "router"},
			Spans: []telemetry.ExportedEvent{
				ev("start", "router.search", 1, 0, 0, 0),
				ev("end", "router.search", 1, 0, 40*time.Millisecond, 0.04),
			},
			Queries: []*audit.QueryRecord{{TraceID: traceID, Query: "q"}},
		},
		"shard": {
			Identity: telemetry.Identity{Instance: "shard", Role: "shard", Shard: "shard-00"},
			Spans: []telemetry.ExportedEvent{
				ev("start", "search", 100, 1, 5*time.Millisecond, 0),
				ev("point", "hedge", 100, 0, 12*time.Millisecond, 0),
				ev("end", "search", 100, 1, 30*time.Millisecond, 0.025),
				// Orphan: parent 999 was never exported.
				ev("start", "stray", 200, 999, 6*time.Millisecond, 0),
			},
		},
		"dbnode": {
			Identity: telemetry.Identity{Instance: "dbnode", Role: "dbnode"},
			Spans: []telemetry.ExportedEvent{
				ev("start", "wire.serve", 300, 100, 8*time.Millisecond, 0),
				ev("end", "wire.serve", 300, 100, 20*time.Millisecond, 0.012),
			},
		},
	}
}

func TestAssembleTrace(t *testing.T) {
	states := traceStates("t1")
	tr := AssembleTrace("t1", states)
	if tr == nil {
		t.Fatal("AssembleTrace returned nil")
	}
	if tr.Spans != 4 {
		t.Errorf("spans = %d, want 4", tr.Spans)
	}
	if tr.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", tr.Orphans)
	}
	if len(tr.Roots) != 2 {
		t.Fatalf("roots = %d, want 2 (true root + orphan)", len(tr.Roots))
	}
	if !reflect.DeepEqual(tr.Processes, []string{"dbnode", "router", "shard"}) {
		t.Errorf("processes = %v", tr.Processes)
	}
	root := tr.Roots[0]
	if root.Name != "router.search" || !root.Ended || root.Orphan {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "search" {
		t.Fatalf("root children = %+v", root.Children)
	}
	child := root.Children[0]
	if child.Identity.Shard != "shard-00" {
		t.Errorf("child identity = %+v", child.Identity)
	}
	if len(child.Events) != 1 || child.Events[0].Name != "hedge" {
		t.Errorf("child point events = %+v", child.Events)
	}
	if len(child.Children) != 1 || child.Children[0].Name != "wire.serve" || child.Children[0].Identity.Role != "dbnode" {
		t.Fatalf("grandchild = %+v", child.Children)
	}
	if !tr.Roots[1].Orphan || tr.Roots[1].Name != "stray" {
		t.Errorf("orphan root = %+v", tr.Roots[1])
	}
	if len(tr.Queries) != 1 || tr.Queries[0].TraceID != "t1" {
		t.Errorf("queries = %+v", tr.Queries)
	}

	if AssembleTrace("no-such-trace", states) != nil {
		t.Error("unknown trace should assemble to nil")
	}
}

func TestAssembleTraceEndWithoutStart(t *testing.T) {
	states := map[string]*InstanceState{
		"p": {
			Identity: telemetry.Identity{Instance: "p", Role: "shard"},
			Spans: []telemetry.ExportedEvent{{
				Kind: "end", Name: "search", Trace: "t2", Span: 5,
				Time: time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC), Duration: 0.5,
			}},
		},
	}
	tr := AssembleTrace("t2", states)
	if tr == nil || tr.Spans != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	s := tr.Roots[0]
	if !s.Ended || s.DurationSeconds != 0.5 {
		t.Errorf("synthesized span = %+v", s)
	}
	// Start is back-derived from end time minus duration.
	if want := time.Date(2026, 8, 8, 12, 0, 0, 500e6, time.UTC); !s.Start.Equal(want) {
		t.Errorf("synthesized start = %v, want %v", s.Start, want)
	}
}

func TestKnownTraces(t *testing.T) {
	states := traceStates("t1")
	later := traceStates("t9")
	// Shift t9's events later and merge both fleets' spans into one
	// state set under distinct instances.
	merged := map[string]*InstanceState{}
	for k, v := range states {
		merged[k] = v
	}
	for k, v := range later {
		for i := range v.Spans {
			v.Spans[i].Time = v.Spans[i].Time.Add(time.Hour)
		}
		merged[k+"-9"] = v
	}
	traces := KnownTraces(merged)
	if len(traces) != 2 {
		t.Fatalf("traces = %+v", traces)
	}
	if traces[0].TraceID != "t9" || traces[1].TraceID != "t1" {
		t.Errorf("traces not newest-first: %+v", traces)
	}
	if traces[1].Spans != 4 || traces[1].Processes != 3 {
		t.Errorf("t1 summary = %+v", traces[1])
	}
}

// fakeMember is an httptest fleet member serving a metrics snapshot and
// a span export.
func fakeMember(t *testing.T, snap telemetry.Snapshot, spans telemetry.SpanExport, fail *bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if fail != nil && *fail {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/debug/export/spans", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(spans)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestScrapeOnceKeepsStaleStateOnFailure(t *testing.T) {
	fail := false
	snap := telemetry.Snapshot{Counters: map[string]int64{"requests_total": 11}}
	spans := telemetry.SpanExport{Version: telemetry.SpanExportVersion,
		Events: []telemetry.ExportedEvent{{Kind: "start", Name: "s", Trace: "t", Span: 1}}}
	srv := fakeMember(t, snap, spans, &fail)

	reg := telemetry.NewRegistry()
	c, err := New([]Target{{Identity: telemetry.Identity{Instance: "m1", Role: "shard"}, BaseURL: srv.URL}},
		Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	c.ScrapeOnce(context.Background())
	st := c.States()["m1"]
	if st == nil || st.Err != "" {
		t.Fatalf("first scrape = %+v", st)
	}
	if st.Metrics.Counters["requests_total"] != 11 || len(st.Spans) != 1 {
		t.Fatalf("scraped state = %+v", st)
	}

	fail = true
	c.ScrapeOnce(context.Background())
	st = c.States()["m1"]
	if st.Err == "" {
		t.Fatal("failed scrape did not record an error")
	}
	// Stale beats absent: the previous payload survives under the error.
	if st.Metrics.Counters["requests_total"] != 11 || len(st.Spans) != 1 {
		t.Errorf("failed scrape dropped the stale payload: %+v", st)
	}
	if got := reg.Snapshot().Counters["collector_scrape_errors_total"]; got != 1 {
		t.Errorf("collector_scrape_errors_total = %d, want 1", got)
	}
}

func TestSetTargetsSwapsScrapeSet(t *testing.T) {
	snap := telemetry.Snapshot{Counters: map[string]int64{"requests_total": 1}}
	old := fakeMember(t, snap, telemetry.SpanExport{}, nil)
	fresh := fakeMember(t, snap, telemetry.SpanExport{}, nil)

	c, err := New([]Target{{Identity: telemetry.Identity{Instance: "old", Role: "dbnode"}, BaseURL: old.URL}},
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.ScrapeOnce(context.Background())
	if c.States()["old"] == nil {
		t.Fatal("initial target not scraped")
	}
	if c.Generation() != 0 {
		t.Fatalf("Generation = %d before any SetTargets, want 0", c.Generation())
	}

	c.SetTargets([]Target{{Identity: telemetry.Identity{Instance: "new", Role: "dbnode"}, BaseURL: fresh.URL}}, 2)
	if c.Generation() != 2 {
		t.Fatalf("Generation = %d, want 2", c.Generation())
	}
	// The departed member's state is dropped immediately...
	if c.States()["old"] != nil {
		t.Fatal("removed target's state survived the swap")
	}
	// ...and the next sweep scrapes only the new set.
	c.ScrapeOnce(context.Background())
	states := c.States()
	if states["old"] != nil {
		t.Fatal("removed target resurrected by a later sweep")
	}
	if st := states["new"]; st == nil || st.Err != "" {
		t.Fatalf("swapped-in target state = %+v, want a clean scrape", st)
	}
	if got := c.Targets(); len(got) != 1 || got[0].Identity.Instance != "new" {
		t.Fatalf("Targets = %+v, want only the swapped-in member", got)
	}
}

func TestScrapeRejectsVersionMismatch(t *testing.T) {
	snap := telemetry.Snapshot{Counters: map[string]int64{"x_total": 1}}
	spans := telemetry.SpanExport{Version: telemetry.SpanExportVersion + 1,
		Events: []telemetry.ExportedEvent{{Kind: "start", Name: "s", Trace: "t", Span: 1}}}
	srv := fakeMember(t, snap, spans, nil)
	c, err := New([]Target{{Identity: telemetry.Identity{Instance: "m1"}, BaseURL: srv.URL}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.ScrapeOnce(context.Background())
	st := c.States()["m1"]
	if st.Err != "" {
		t.Fatalf("metrics scrape should still succeed: %+v", st)
	}
	if len(st.Spans) != 0 {
		t.Error("spans from a future export version were accepted")
	}
}

func TestProfileIndexAndPrune(t *testing.T) {
	dir := t.TempDir()
	p := &profiler{opts: ProfileOptions{Dir: dir, Keep: 2}}
	// Instance names keep their dashes after sanitize; the index must
	// still split stamp/instance/kind correctly.
	files := []string{
		"20260808T120000-127.0.0.1_8091-cpu.pprof",
		"20260808T120100-127.0.0.1_8091-cpu.pprof",
		"20260808T120200-shard-00-cpu.pprof",
		"20260808T120000-shard-00-heap.pprof",
		"not-a-profile.txt",
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	idx := p.index()
	if len(idx) != 4 {
		t.Fatalf("index = %+v", idx)
	}
	// Newest first.
	if idx[0].File != "20260808T120200-shard-00-cpu.pprof" {
		t.Errorf("index[0] = %+v", idx[0])
	}
	if idx[0].Instance != "shard-00" || idx[0].Kind != "cpu" {
		t.Errorf("dashed instance parsed wrong: %+v", idx[0])
	}
	if want := time.Date(2026, 8, 8, 12, 2, 0, 0, time.UTC); !idx[0].Time.Equal(want) {
		t.Errorf("stamp parsed wrong: %v", idx[0].Time)
	}

	p.prune()
	idx = p.index()
	kinds := map[string]int{}
	for _, pi := range idx {
		kinds[pi.Kind]++
	}
	if kinds["cpu"] != 2 || kinds["heap"] != 1 {
		t.Errorf("after prune: %+v", idx)
	}
	for _, pi := range idx {
		if pi.File == "20260808T120000-127.0.0.1_8091-cpu.pprof" {
			t.Error("prune kept the oldest cpu profile")
		}
	}
}
