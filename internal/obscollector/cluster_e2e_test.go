package obscollector_test

// The collector end-to-end test: a live 2-shard cluster (router,
// shard metasearchers, dbnode wire servers — every "process" with its
// own registry, tracer, and span ring, exactly as the commands wire
// them) is scraped by a Collector, and the scraped state must satisfy
// the observability plane's contract:
//
//  1. /debug/cluster/metrics rollups equal the sum of the per-instance
//     scrapes (counters and merged histograms);
//  2. /debug/cluster/trace/{id} reassembles a hedged, retried query's
//     spans from every process into one rooted tree with no orphans;
//  3. a gateway-latency exemplar in the aggregated snapshot carries a
//     trace ID that resolves to such a tree.
//
// Run with -race: the fleet serves concurrent hedged fan-outs while
// the collector scrapes over HTTP.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/obscollector"
	"repro/internal/resilience"
	"repro/internal/router"
	"repro/internal/shardmap"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

type e2eDB struct {
	name     string
	category string
	docs     [][]string
}

func e2eTestbed(t *testing.T, n int) ([]e2eDB, []string) {
	t.Helper()
	w, err := experiments.BuildWorld(experiments.Web, experiments.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	lexicon := experiments.SanitizeAll(w.Lexicon)
	var dbs []e2eDB
	for _, db := range w.Bed.Databases[:n] {
		docs := make([][]string, db.Index.NumDocs())
		for id := range docs {
			docs[id] = experiments.SanitizeAll(db.Index.Doc(index.DocID(id)))
		}
		dbs = append(dbs, e2eDB{name: db.Name, category: w.Bed.Tree.Node(db.Category).Name, docs: docs})
	}
	return dbs, lexicon
}

func e2eOptions(lexicon []string, ring *telemetry.RingCapture) repro.Options {
	return repro.Options{
		SampleSize:    60,
		SeedLexicon:   lexicon,
		Seed:          1,
		KeepStopwords: true,
		NoStemming:    true,
		Observer:      ring,
		Cache:         repro.CacheConfig{Disable: true},
		// Hedge (nearly) every node call so the assembled trace includes
		// hedged duplicates.
		Resilience: repro.ResilienceOptions{HedgeAfter: time.Microsecond},
	}
}

// member serves one process's debug surface next to its payload routes,
// the way cmd/metasearch and cmd/dbnode assemble their muxes.
func member(t *testing.T, id telemetry.Identity, reg *telemetry.Registry, ring *telemetry.RingCapture, auditLog *audit.Log, payload map[string]http.Handler) (*httptest.Server, obscollector.Target) {
	t.Helper()
	mux := http.NewServeMux()
	for path, h := range payload {
		mux.Handle(path, h)
	}
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/export/spans", telemetry.ExportSpansHandler(id, ring))
	mux.Handle("/debug/export/queries", auditLog.ExportHandler(id.Instance, id.Role, id.Shard))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, obscollector.Target{Identity: id, BaseURL: srv.URL}
}

func TestCollectorClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full testbed and cluster")
	}
	dbs, lexicon := e2eTestbed(t, 4)

	// Offline summary build, shared by every shard.
	builder := repro.New(e2eOptions(lexicon, nil))
	for _, d := range dbs {
		if err := builder.AddDatabase(repro.NewLocalDatabaseFromTerms(d.name, d.docs), d.category); err != nil {
			t.Fatal(err)
		}
	}
	if err := builder.BuildSummaries(); err != nil {
		t.Fatal(err)
	}
	stateFile := filepath.Join(t.TempDir(), "state.json")
	if err := builder.SaveFile(stateFile); err != nil {
		t.Fatal(err)
	}

	var targets []obscollector.Target

	// One dbnode process per database; the first one can be armed to
	// fail exactly one wire request with a transient 503, forcing the
	// calling shard's wire client into a retry.
	var armed *wire.FailOnceHandler
	replicaAddrs := map[string][]string{}
	for i, d := range dbs {
		reg := telemetry.NewRegistry()
		ring := telemetry.NewRingCapture(0)
		id := telemetry.Identity{Instance: "dbnode-" + d.name, Role: "dbnode"}
		var payload http.Handler = wire.NewServer(
			repro.NewLocalDatabaseFromTerms(d.name, d.docs),
			wire.ServerOptions{Category: d.category, Metrics: reg, Tracer: telemetry.NewTracer(ring)})
		if i == 0 {
			armed = wire.FailOnce(payload)
			payload = armed
		}
		srv, target := member(t, id, reg, ring, nil, map[string]http.Handler{"/v1/": payload})
		replicaAddrs[d.name] = []string{strings.TrimPrefix(srv.URL, "http://")}
		targets = append(targets, target)
	}

	topo := &shardmap.Topology{
		Version: shardmap.TopologyVersion,
		Shards: []shardmap.Shard{
			{ID: "shard-00", Addr: "pending:0"},
			{ID: "shard-01", Addr: "pending:0"},
		},
	}
	for _, d := range dbs {
		topo.Databases = append(topo.Databases, shardmap.Database{
			Name: d.name, Category: d.category, Replicas: replicaAddrs[d.name]})
	}

	// Boot the shards: each a full metasearcher over its topology slice,
	// tracing into its own ring, fronted by its own gateway.
	for i := range topo.Shards {
		shID := topo.Shards[i].ID
		assigns, err := topo.ShardAssignments(shID)
		if err != nil {
			t.Fatal(err)
		}
		if len(assigns) == 0 {
			t.Fatalf("shard %s owns no databases", shID)
		}
		ring := telemetry.NewRingCapture(0)
		sm := repro.New(e2eOptions(lexicon, ring))
		keep := map[string]bool{}
		for _, a := range assigns {
			rdb, err := repro.DialReplicatedDatabase(context.Background(), a.Replicas, repro.ReplicatedDatabaseOptions{
				Preferred: a.Preferred,
				Breakers:  sm.Breakers(),
				Metrics:   sm.Metrics(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.AddDatabase(rdb, rdb.Category()); err != nil {
				t.Fatal(err)
			}
			keep[a.Database] = true
		}
		if err := sm.LoadFileFiltered(stateFile, func(name string) bool { return keep[name] }); err != nil {
			t.Fatal(err)
		}
		id := telemetry.Identity{Instance: shID, Role: "shard", Shard: shID}
		gw := gateway.New(sm, gateway.Options{ShardID: shID, Metrics: sm.Metrics()})
		srv, target := member(t, id, sm.Metrics(), ring, sm.Audit(), map[string]http.Handler{
			gateway.PathSearch:  gw,
			gateway.PathHealthz: gw,
		})
		topo.Shards[i].Addr = strings.TrimPrefix(srv.URL, "http://")
		targets = append(targets, target)
	}

	// Boot the router in front of them.
	routerReg := telemetry.NewRegistry()
	routerRing := telemetry.NewRingCapture(0)
	breakers := resilience.NewSet(resilience.BreakerOptions{}, routerReg)
	rt, err := router.New(topo, router.Options{
		Metrics:  routerReg,
		Tracer:   telemetry.NewTracer(routerRing),
		Breakers: breakers,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerID := telemetry.Identity{Instance: "router", Role: "router"}
	routerGW := gateway.New(rt, gateway.Options{Metrics: routerReg, ShardHealth: rt.ShardHealth})
	routerSrv, routerTarget := member(t, routerID, routerReg, routerRing, nil, map[string]http.Handler{
		gateway.PathSearch:  routerGW,
		gateway.PathHealthz: routerGW,
	})
	targets = append(targets, routerTarget)

	// Drive queries through the router's gateway. The last one runs with
	// the first dbnode armed to 503 exactly once, so its trace includes
	// a retried wire call.
	ask := func(q string) gateway.SearchReply {
		t.Helper()
		resp, err := http.Get(routerSrv.URL + gateway.PathSearch + "?q=" +
			strings.ReplaceAll(q, " ", "+") + "&k=3&perdb=5")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %q: HTTP %d", q, resp.StatusCode)
		}
		var reply gateway.SearchReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.TraceID == "" {
			t.Fatalf("search %q: no trace id in reply", q)
		}
		return reply
	}
	for _, d := range dbs {
		ask(d.docs[0][0] + " " + d.docs[0][1])
	}
	armed.Arm()
	retried := ask(dbs[0].docs[0][0] + " " + dbs[0].docs[0][1])
	if armed.Injected() == 0 {
		t.Fatal("armed failure was never injected; the retry path is not exercised")
	}

	// Scrape the fleet and serve the assembled view the way -collect
	// does.
	c, err := obscollector.New(targets, obscollector.Options{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	c.ScrapeOnce(context.Background())
	collectorSrv := httptest.NewServer(c.Handler())
	defer collectorSrv.Close()

	getJSON := func(path string, dst interface{}) int {
		t.Helper()
		resp, err := http.Get(collectorSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	var agg obscollector.ClusterMetrics
	if code := getJSON("/debug/cluster/metrics?format=json", &agg); code != http.StatusOK {
		t.Fatalf("cluster metrics: HTTP %d", code)
	}
	for _, st := range agg.Instances {
		if st.Err != "" {
			t.Fatalf("scrape of %s failed: %s", st.Identity.Instance, st.Err)
		}
	}

	// (1) Rollups equal the sum of per-instance scrapes.
	for _, counter := range []string{"gateway_requests_total", "wire_requests_total"} {
		var sum int64
		for _, st := range agg.Instances {
			sum += st.Metrics.Counters[counter]
		}
		if sum == 0 {
			t.Errorf("%s: no instance reported a nonzero value", counter)
		}
		if got := agg.Cluster.Counters[counter]; got != sum {
			t.Errorf("%s rollup = %d, want per-instance sum %d", counter, got, sum)
		}
	}
	var latCount, latInstances int64
	for _, st := range agg.Instances {
		if h, ok := st.Metrics.Histograms["gateway_latency"]; ok && h.Count > 0 {
			latCount += h.Count
			latInstances++
		}
	}
	if latInstances < 2 {
		t.Fatalf("gateway_latency observed on %d instances, want router + shards", latInstances)
	}
	merged := agg.Cluster.Histograms["gateway_latency"]
	if merged.Count != latCount {
		t.Errorf("gateway_latency rollup count = %d, want %d", merged.Count, latCount)
	}
	var bucketSum int64
	for _, n := range merged.Counts {
		bucketSum += n
	}
	if bucketSum != latCount {
		t.Errorf("gateway_latency rollup buckets sum to %d, want %d", bucketSum, latCount)
	}
	if agg.Cluster.Counters["search_hedges_total"] == 0 {
		t.Error("no hedge recorded although HedgeAfter is 1µs")
	}
	if agg.Cluster.Counters["wire_client_retries_total"] == 0 {
		t.Error("no wire retry recorded although a 503 was injected")
	}

	// (2) The retried query's spans reassemble into one rooted tree
	// spanning router, shard, and dbnode, with no orphans.
	assertAssembled := func(traceID, label string) *obscollector.AssembledTrace {
		t.Helper()
		var tr obscollector.AssembledTrace
		if code := getJSON("/debug/cluster/trace/"+traceID, &tr); code != http.StatusOK {
			t.Fatalf("%s: trace %s: HTTP %d", label, traceID, code)
		}
		if len(tr.Roots) != 1 {
			t.Fatalf("%s: trace %s has %d roots, want 1", label, traceID, len(tr.Roots))
		}
		if tr.Orphans != 0 {
			t.Errorf("%s: trace %s has %d orphan spans", label, traceID, tr.Orphans)
		}
		if len(tr.Processes) < 3 {
			t.Errorf("%s: trace %s spans %d processes (%v), want >= 3",
				label, traceID, len(tr.Processes), tr.Processes)
		}
		roles := map[string]bool{}
		var walk func(spans []*obscollector.TraceSpan)
		walk = func(spans []*obscollector.TraceSpan) {
			for _, s := range spans {
				roles[s.Identity.Role] = true
				walk(s.Children)
			}
		}
		walk(tr.Roots)
		for _, want := range []string{"router", "shard", "dbnode"} {
			if !roles[want] {
				t.Errorf("%s: trace %s has no span from a %s process", label, traceID, want)
			}
		}
		return &tr
	}
	tr := assertAssembled(retried.TraceID, "retried query")
	if len(tr.Queries) == 0 {
		t.Error("retried query's trace carries no audit records")
	}

	// (3) A latency exemplar in the aggregated snapshot resolves to the
	// same kind of fully assembled cross-process trace.
	if len(merged.Exemplars) == 0 {
		t.Fatal("merged gateway_latency carries no exemplars")
	}
	for i, ex := range merged.Exemplars {
		if ex.TraceID == "" {
			t.Fatalf("exemplar %d has no trace id: %+v", i, ex)
		}
	}
	assertAssembled(merged.Exemplars[0].TraceID, "exemplar")

	// The traces index knows the retried query's trace.
	var known []obscollector.TraceSummary
	getJSON("/debug/cluster/traces", &known)
	found := false
	for _, k := range known {
		if k.TraceID == retried.TraceID {
			found = true
			if k.Processes < 3 {
				t.Errorf("trace index reports %d processes for %s", k.Processes, k.TraceID)
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/cluster/traces", retried.TraceID)
	}

	// An unknown trace 404s with a JSON error.
	var errBody map[string]string
	if code := getJSON("/debug/cluster/trace/ffffffffffffffff", &errBody); code != http.StatusNotFound {
		t.Errorf("unknown trace: HTTP %d, want 404", code)
	}
}
