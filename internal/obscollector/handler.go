package obscollector

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the cluster debug surface:
//
//	GET /debug/cluster/metrics      — rollup + per-instance series
//	                                  (Prometheus text; ?format=json for
//	                                  the full ClusterMetrics document)
//	GET /debug/cluster/trace/{id}   — one assembled cross-process trace
//	GET /debug/cluster/traces       — index of known trace IDs
//	GET /debug/cluster/instances    — scrape status per member
//	GET /debug/cluster/profiles     — continuous-profiling index
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/cluster/metrics", c.serveMetrics)
	mux.HandleFunc("GET /debug/cluster/trace/{id}", c.serveTrace)
	mux.HandleFunc("GET /debug/cluster/traces", c.serveTraces)
	mux.HandleFunc("GET /debug/cluster/instances", c.serveInstances)
	mux.HandleFunc("GET /debug/cluster/profiles", c.serveProfiles)
	return mux
}

func (c *Collector) serveMetrics(w http.ResponseWriter, r *http.Request) {
	agg := Aggregate(c.States())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, agg)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeClusterPrometheus(w, agg)
}

func (c *Collector) serveTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := AssembleTrace(id, c.States())
	if tr == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{
			"error": fmt.Sprintf("no process exported spans for trace %s (evicted from every ring, or never existed)", id),
		})
		return
	}
	writeJSON(w, tr)
}

func (c *Collector) serveTraces(w http.ResponseWriter, r *http.Request) {
	traces := KnownTraces(c.States())
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	if len(traces) > n {
		traces = traces[:n]
	}
	writeJSON(w, traces)
}

func (c *Collector) serveInstances(w http.ResponseWriter, r *http.Request) {
	states := c.States()
	type instance struct {
		*InstanceState
		Spans   int `json:"spans"`
		Queries int `json:"queries"`
		Series  int `json:"series"`
	}
	out := make([]instance, 0, len(states))
	for _, st := range states {
		out = append(out, instance{st, len(st.Spans), len(st.Queries), st.Metrics.Series()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Identity.Instance < out[j].Identity.Instance })
	writeJSON(w, struct {
		TopologyGeneration int64      `json:"topology_generation"`
		Instances          []instance `json:"instances"`
	}{c.Generation(), out})
}

func (c *Collector) serveProfiles(w http.ResponseWriter, r *http.Request) {
	type profiles struct {
		Enabled bool          `json:"enabled"`
		Dir     string        `json:"dir,omitempty"`
		Files   []ProfileInfo `json:"files"`
	}
	out := profiles{Files: []ProfileInfo{}}
	if c.profiler != nil {
		out.Enabled = true
		out.Dir = c.profiler.opts.Dir
		if idx := c.profiler.index(); idx != nil {
			out.Files = idx
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeClusterPrometheus renders the aggregate in the exposition
// format: rollup counters and histograms as unlabeled series, gauges
// as {aggregate="min"|"max"|"sum"} series, and every member's counters
// and gauges as {instance,role,shard}-labeled series. Per-instance
// histograms are JSON-only (the labeled bucket fan-out would dwarf
// everything else).
func writeClusterPrometheus(w io.Writer, agg ClusterMetrics) {
	names := make([]string, 0, len(agg.Cluster.Counters))
	for n := range agg.Cluster.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeHelpType(w, agg, n, "counter")
		fmt.Fprintf(w, "%s %d\n", n, agg.Cluster.Counters[n])
		forEachInstance(agg, func(st *InstanceState, labels string) {
			if v, ok := st.Metrics.Counters[n]; ok {
				fmt.Fprintf(w, "%s{%s} %d\n", n, labels, v)
			}
		})
	}
	names = names[:0]
	for n := range agg.Cluster.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeHelpType(w, agg, n, "gauge")
		g := agg.Cluster.Gauges[n]
		fmt.Fprintf(w, "%s{aggregate=\"min\"} %s\n", n, formatFloat(g.Min))
		fmt.Fprintf(w, "%s{aggregate=\"max\"} %s\n", n, formatFloat(g.Max))
		fmt.Fprintf(w, "%s{aggregate=\"sum\"} %s\n", n, formatFloat(g.Sum))
		forEachInstance(agg, func(st *InstanceState, labels string) {
			if v, ok := st.Metrics.Gauges[n]; ok {
				fmt.Fprintf(w, "%s{%s} %s\n", n, labels, formatFloat(v))
			}
		})
	}
	names = names[:0]
	for n := range agg.Cluster.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeHelpType(w, agg, n, "histogram")
		h := agg.Cluster.Histograms[n]
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, formatFloat(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, h.Count, n, formatFloat(h.Sum), n, h.Count)
	}
}

func writeHelpType(w io.Writer, agg ClusterMetrics, name, typ string) {
	if help := agg.Cluster.Help[name]; help != "" {
		help = strings.ReplaceAll(help, `\`, `\\`)
		help = strings.ReplaceAll(help, "\n", `\n`)
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func forEachInstance(agg ClusterMetrics, f func(st *InstanceState, labels string)) {
	for _, st := range agg.Instances {
		labels := fmt.Sprintf("instance=%q,role=%q", st.Identity.Instance, st.Identity.Role)
		if st.Identity.Shard != "" {
			labels += fmt.Sprintf(",shard=%q", st.Identity.Shard)
		}
		f(st, labels)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
