package obscollector

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ProfileOptions tunes the opt-in continuous-profiling sampler.
type ProfileOptions struct {
	// Enable turns the sampler on (off by default: profiling costs the
	// profiled process CPU).
	Enable bool
	// Dir is where captured profiles land (required when enabled).
	Dir string
	// Interval is the pause between captures; each tick profiles ONE
	// fleet member, rotating through them, so the whole fleet is
	// covered every len(targets)*Interval (default 30s).
	Interval time.Duration
	// CPUSeconds is the length of each CPU profile (default 5).
	CPUSeconds int
	// Keep bounds on-disk retention: at most Keep profiles per kind
	// (cpu, heap) are kept, oldest deleted first (default 32).
	Keep int
}

// ProfileInfo is one retained profile in the /debug/cluster/profiles
// index.
type ProfileInfo struct {
	File     string    `json:"file"`
	Instance string    `json:"instance"`
	Kind     string    `json:"kind"` // "cpu" or "heap"
	Size     int64     `json:"size"`
	Time     time.Time `json:"time"`
}

// profiler rotates through the fleet capturing pprof profiles.
type profiler struct {
	targets []Target
	client  *http.Client
	opts    ProfileOptions
	logger  *slog.Logger

	captured *telemetry.Counter
	failures *telemetry.Counter

	mu   sync.Mutex
	next int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newProfiler(targets []Target, client *http.Client, opts Options) (*profiler, error) {
	po := opts.Profiles
	if po.Dir == "" {
		return nil, fmt.Errorf("obscollector: profiling enabled without a directory")
	}
	if err := os.MkdirAll(po.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obscollector: profile dir: %w", err)
	}
	if po.Interval <= 0 {
		po.Interval = 30 * time.Second
	}
	if po.CPUSeconds <= 0 {
		po.CPUSeconds = 5
	}
	if po.Keep <= 0 {
		po.Keep = 32
	}
	return &profiler{
		targets:  targets,
		client:   client,
		opts:     po,
		logger:   opts.Logger,
		captured: opts.Metrics.Counter("collector_profiles_total"),
		failures: opts.Metrics.Counter("collector_profile_errors_total"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

func (p *profiler) start() {
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.captureNext()
			}
		}
	}()
}

func (p *profiler) stopWait() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// setTargets swaps the rotation's member set (topology swap).
func (p *profiler) setTargets(targets []Target) {
	next := make([]Target, len(targets))
	copy(next, targets)
	p.mu.Lock()
	p.targets = next
	p.mu.Unlock()
}

// captureNext profiles the next member in rotation: one CPU profile and
// one heap snapshot, then prunes retention.
func (p *profiler) captureNext() {
	p.mu.Lock()
	if len(p.targets) == 0 {
		p.mu.Unlock()
		return
	}
	t := p.targets[p.next%len(p.targets)]
	p.next++
	p.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(p.opts.CPUSeconds)*time.Second+10*time.Second)
	defer cancel()
	now := time.Now().UTC()
	for kind, url := range map[string]string{
		"cpu":  fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", t.BaseURL, p.opts.CPUSeconds),
		"heap": t.BaseURL + "/debug/pprof/heap",
	} {
		if err := p.captureOne(ctx, kind, url, t, now); err != nil {
			p.failures.Inc()
			if p.logger != nil {
				p.logger.Warn("profile capture failed", "instance", t.Identity.Instance, "kind", kind, "err", err)
			}
			continue
		}
		p.captured.Inc()
	}
	p.prune()
}

func (p *profiler) captureOne(ctx context.Context, kind, url string, t Target, now time.Time) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	name := fmt.Sprintf("%s-%s-%s.pprof", now.Format("20060102T150405"), sanitize(t.Identity.Instance), kind)
	f, err := os.CreateTemp(p.opts.Dir, name+".tmp")
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, io.LimitReader(resp.Body, 256<<20)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), filepath.Join(p.opts.Dir, name))
}

// sanitize maps an instance name to a safe filename fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// prune enforces Keep per kind, deleting oldest first (filenames sort
// chronologically by construction).
func (p *profiler) prune() {
	byKind := map[string][]string{}
	for _, pi := range p.index() {
		byKind[pi.Kind] = append(byKind[pi.Kind], pi.File)
	}
	for _, files := range byKind {
		sort.Strings(files)
		for len(files) > p.opts.Keep {
			os.Remove(filepath.Join(p.opts.Dir, files[0]))
			files = files[1:]
		}
	}
}

// index lists the retained profiles.
func (p *profiler) index() []ProfileInfo {
	entries, err := os.ReadDir(p.opts.Dir)
	if err != nil {
		return nil
	}
	var out []ProfileInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pprof") {
			continue
		}
		// <stamp>-<instance>-<kind>.pprof; the instance may itself
		// contain dashes, so split at the first and last one.
		base := strings.TrimSuffix(name, ".pprof")
		i := strings.Index(base, "-")
		j := strings.LastIndex(base, "-")
		if i < 0 || j <= i {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		ts, _ := time.Parse("20060102T150405", base[:i])
		out = append(out, ProfileInfo{
			File:     name,
			Instance: base[i+1 : j],
			Kind:     base[j+1:],
			Size:     info.Size(),
			Time:     ts,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File > out[j].File })
	return out
}
