package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSampler(10, 0, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewSampler(10, 1, -1); err == nil {
		t.Error("c<0 accepted")
	}
}

func TestSamplerProbsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		s, err := NewSampler(n, 0.5+rng.Float64()*2, rng.Float64()*5)
		if err != nil {
			return false
		}
		var sum float64
		for r := 0; r < n; r++ {
			p := s.Prob(r)
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSamplerProbMonotoneDecreasing(t *testing.T) {
	s, err := NewSampler(100, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 100; r++ {
		if s.Prob(r) > s.Prob(r-1)+1e-15 {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", r, s.Prob(r), r-1, s.Prob(r-1))
		}
	}
	if s.Prob(-1) != 0 || s.Prob(100) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestSamplerEmpiricalMatchesTheoretical(t *testing.T) {
	s, err := NewSampler(50, 1.2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const draws = 200000
	counts := make([]int, 50)
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	for r := 0; r < 10; r++ {
		emp := float64(counts[r]) / draws
		th := s.Prob(r)
		if math.Abs(emp-th) > 0.01 {
			t.Errorf("rank %d: empirical %v vs theoretical %v", r, emp, th)
		}
	}
}

func TestSamplerZipfHeadHeavy(t *testing.T) {
	// The defining property the paper leans on: a few head words carry
	// most of the mass, and the tail is huge but individually rare.
	s, err := NewSampler(10000, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var head float64
	for r := 0; r < 100; r++ {
		head += s.Prob(r)
	}
	if head < 0.5 {
		t.Errorf("top-1%% of ranks carry %v of mass, expected majority", head)
	}
	if s.Prob(9999) > 1e-4 {
		t.Errorf("tail word too frequent: %v", s.Prob(9999))
	}
}

func TestRankFrequencies(t *testing.T) {
	counts := map[string]int{"a": 10, "b": 5, "c": 5, "d": 1}
	rf := RankFrequencies(counts)
	if len(rf) != 4 {
		t.Fatalf("len = %d", len(rf))
	}
	wantFreqs := []float64{10, 5, 5, 1}
	for i, p := range rf {
		if p.Rank != i+1 || p.Freq != wantFreqs[i] {
			t.Errorf("point %d = %+v", i, p)
		}
	}
}

func TestFitRecoversExactLaw(t *testing.T) {
	truth := Mandelbrot{Alpha: -1.3, Beta: 5000}
	var pts []RankFreq
	for r := 1; r <= 200; r++ {
		pts = append(pts, RankFreq{Rank: r, Freq: truth.Freq(r)})
	}
	fit, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-truth.Alpha) > 1e-9 || math.Abs(fit.Beta-truth.Beta)/truth.Beta > 1e-9 {
		t.Errorf("fit = %+v, want %+v", fit, truth)
	}
}

func TestFitSkipsZeroFrequencies(t *testing.T) {
	pts := []RankFreq{
		{Rank: 1, Freq: 100},
		{Rank: 2, Freq: 0}, // must be skipped, log(0) undefined
		{Rank: 3, Freq: 33.3},
		{Rank: 10, Freq: 10},
	}
	if _, err := Fit(pts); err != nil {
		t.Fatalf("Fit with zero-frequency point: %v", err)
	}
}

func TestFitErrorsOnInsufficientData(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([]RankFreq{{Rank: 1, Freq: 5}}); err == nil {
		t.Error("single-point fit accepted")
	}
}

func TestFitCountsOnGeneratedCorpus(t *testing.T) {
	// Generate word occurrences from a known Zipf law and verify the
	// fitted alpha is in a plausible range. Sampled counts are noisy at
	// the tail, so the fit is biased; we only require the right regime.
	s, err := NewSampler(2000, 1.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	counts := make(map[string]int)
	for i := 0; i < 300000; i++ {
		counts[fmt.Sprintf("w%d", s.Sample(rng))]++
	}
	fit, err := FitCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha > -0.5 || fit.Alpha < -2.0 {
		t.Errorf("fitted alpha = %v, want in [-2.0, -0.5]", fit.Alpha)
	}
	if fit.Beta <= 0 {
		t.Errorf("fitted beta = %v", fit.Beta)
	}
}

func TestFreqPowerLawGamma(t *testing.T) {
	// Pure Zipf alpha = -1 gives the classic gamma = -2.
	if g := FreqPowerLawGamma(-1); math.Abs(g+2) > 1e-12 {
		t.Errorf("gamma(-1) = %v", g)
	}
	if g := FreqPowerLawGamma(-0.5); math.Abs(g+3) > 1e-12 {
		t.Errorf("gamma(-0.5) = %v", g)
	}
	if g := FreqPowerLawGamma(0); g != -2 {
		t.Errorf("gamma(0) = %v, want fallback -2", g)
	}
	// Degenerate fits are clamped into the sane range.
	if g := FreqPowerLawGamma(0.3); g != -1.2 { // would be +2.33
		t.Errorf("gamma(positive alpha) = %v, want clamp to -1.2", g)
	}
	if g := FreqPowerLawGamma(-0.02); g != -6 { // would be -51
		t.Errorf("gamma(flat curve) = %v, want clamp to -6", g)
	}
	if g := FreqPowerLawGamma(-2); g != -1.5 {
		t.Errorf("gamma(-2) = %v, want -1.5", g)
	}
}

func TestMandelbrotFreqDecreasing(t *testing.T) {
	m := Mandelbrot{Alpha: -1.2, Beta: 1000}
	prev := math.Inf(1)
	for r := 1; r <= 100; r++ {
		f := m.Freq(r)
		if f >= prev {
			t.Fatalf("Freq not strictly decreasing at rank %d", r)
		}
		prev = f
	}
}

func BenchmarkSample(b *testing.B) {
	s, err := NewSampler(50000, 1.05, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

func BenchmarkFit(b *testing.B) {
	truth := Mandelbrot{Alpha: -1.1, Beta: 900}
	pts := make([]RankFreq, 5000)
	for r := range pts {
		pts[r] = RankFreq{Rank: r + 1, Freq: truth.Freq(r + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(pts)
	}
}

func TestFitBalancedMatchesExactLaw(t *testing.T) {
	truth := Mandelbrot{Alpha: -0.9, Beta: 2000}
	var pts []RankFreq
	for r := 1; r <= 5000; r++ {
		pts = append(pts, RankFreq{Rank: r, Freq: truth.Freq(r)})
	}
	fit, err := FitBalanced(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-truth.Alpha) > 0.01 || math.Abs(fit.Beta-truth.Beta)/truth.Beta > 0.05 {
		t.Errorf("balanced fit = %+v, want %+v", fit, truth)
	}
}

func TestFitBalancedResistsTailSaturation(t *testing.T) {
	// Realistic sample curve: the head follows the law but the tail
	// saturates at frequency 1 for thousands of ranks. The ordinary
	// fit overestimates the head badly; the balanced fit must not.
	truth := Mandelbrot{Alpha: -1.0, Beta: 300}
	var pts []RankFreq
	for r := 1; r <= 5000; r++ {
		f := truth.Freq(r)
		if f < 1 {
			f = 1
		}
		pts = append(pts, RankFreq{Rank: r, Freq: f})
	}
	plain, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := FitBalanced(pts)
	if err != nil {
		t.Fatal(err)
	}
	plainHeadErr := math.Abs(plain.Freq(1) - 300)
	balHeadErr := math.Abs(balanced.Freq(1) - 300)
	if balHeadErr >= plainHeadErr {
		t.Errorf("balanced fit no better at head: plain err %v, balanced err %v", plainHeadErr, balHeadErr)
	}
	if balHeadErr > 200 {
		t.Errorf("balanced head estimate off by %v (f(1)=%v, want ~300)", balHeadErr, balanced.Freq(1))
	}
}

func TestFitBalancedSmallInputFallsBack(t *testing.T) {
	pts := []RankFreq{{1, 100}, {2, 50}, {3, 33}}
	a, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitBalanced(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("small input should use the plain fit: %+v vs %+v", a, b)
	}
}
