// Package zipf implements the power-law word-frequency machinery the
// paper builds on. Zipf's law is why document samples miss words
// (Section 1); Mandelbrot's generalization f = β·(r+c)^α underlies the
// Appendix A frequency-estimation technique; and the frequency-domain
// power law ("approximately c·f^γ words have frequency f", Appendix B,
// with γ = 1/α − 1) gives the prior for the adaptive selection
// algorithm's score-distribution estimation.
package zipf

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// Sampler draws ranks 0..n-1 with probability proportional to
// (rank+1+c)^(-s), i.e., a Mandelbrot-distributed categorical sampler.
// It precomputes the cumulative distribution and samples by binary
// search, so draws cost O(log n). Samplers are safe for concurrent use
// once built (the caller supplies the *rand.Rand per draw).
type Sampler struct {
	cdf []float64
}

// NewSampler builds a sampler over n ranks with Zipf-Mandelbrot
// exponent s > 0 and shift c >= 0. The canonical Zipf distribution is
// s = 1, c = 0.
func NewSampler(n int, s, c float64) (*Sampler, error) {
	if n <= 0 {
		return nil, errors.New("zipf: need at least one rank")
	}
	if s <= 0 {
		return nil, errors.New("zipf: exponent must be positive")
	}
	if c < 0 {
		return nil, errors.New("zipf: shift must be non-negative")
	}
	cdf := make([]float64, n)
	var sum float64
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1)+c, -s)
		cdf[r] = sum
	}
	inv := 1 / sum
	for r := range cdf {
		cdf[r] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Sampler{cdf: cdf}, nil
}

// N returns the number of ranks.
func (s *Sampler) N() int { return len(s.cdf) }

// Sample draws one rank in [0, N) using rng.
func (s *Sampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(s.cdf, u)
}

// Prob returns the probability of drawing rank r.
func (s *Sampler) Prob(r int) float64 {
	if r < 0 || r >= len(s.cdf) {
		return 0
	}
	if r == 0 {
		return s.cdf[0]
	}
	return s.cdf[r] - s.cdf[r-1]
}

// RankFreq is one point of a rank-frequency curve: the 1-based Rank of
// a word by decreasing frequency, and its frequency (count).
type RankFreq struct {
	Rank int
	Freq float64
}

// RankFrequencies converts word counts into a rank-frequency curve
// sorted by decreasing frequency (ties broken deterministically by the
// iteration-independent count value; rank assignment among equal counts
// is arbitrary but frequencies are what matter for fitting).
func RankFrequencies(counts map[string]int) []RankFreq {
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	out := make([]RankFreq, len(freqs))
	for i, f := range freqs {
		out[i] = RankFreq{Rank: i + 1, Freq: float64(f)}
	}
	return out
}

// Mandelbrot holds the parameters of the simplified Mandelbrot law
// f = Beta * r^Alpha used by Appendix A (frequency f of the word with
// rank r; Alpha < 0 for real text).
type Mandelbrot struct {
	Alpha float64
	Beta  float64
}

// Freq evaluates the law at 1-based rank r.
func (m Mandelbrot) Freq(r int) float64 {
	return m.Beta * math.Pow(float64(r), m.Alpha)
}

// Fit estimates Alpha and Beta by least squares on the log-log
// rank-frequency curve: log f = log β + α·log r. Points with zero
// frequency are skipped. At least two usable points are required.
func Fit(points []RankFreq) (Mandelbrot, error) {
	xs := make([]float64, 0, len(points))
	ys := make([]float64, 0, len(points))
	for _, p := range points {
		if p.Freq <= 0 || p.Rank <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.Rank)))
		ys = append(ys, math.Log(p.Freq))
	}
	slope, intercept, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return Mandelbrot{}, err
	}
	return Mandelbrot{Alpha: slope, Beta: math.Exp(intercept)}, nil
}

// FitCounts is a convenience wrapper fitting directly from word counts.
func FitCounts(counts map[string]int) (Mandelbrot, error) {
	return Fit(RankFrequencies(counts))
}

// FitBalanced fits the law on a logarithmically subsampled set of rank
// points: every rank up to 10, then geometrically spaced ranks (ratio
// 1.25). An ordinary least-squares fit over all ranks is dominated by
// the huge low-frequency tail — thousands of rank points with frequency
// 1 — which badly overestimates the head frequencies; balancing the
// rank decades keeps the fitted curve faithful at both ends. This
// matters for the Appendix A extrapolation, whose head estimates would
// otherwise saturate.
func FitBalanced(points []RankFreq) (Mandelbrot, error) {
	if len(points) <= 12 {
		return Fit(points)
	}
	var sel []RankFreq
	next := 1.0
	for _, p := range points {
		if float64(p.Rank) >= next || p.Rank <= 10 {
			sel = append(sel, p)
			for next <= float64(p.Rank) {
				if next < 10 {
					next++
				} else {
					next *= 1.25
				}
			}
		}
	}
	return Fit(sel)
}

// FitCountsBalanced fits directly from word counts with balanced ranks.
func FitCountsBalanced(counts map[string]int) (Mandelbrot, error) {
	return FitBalanced(RankFrequencies(counts))
}

// FreqPowerLawGamma converts the rank-domain exponent α to the
// frequency-domain exponent γ of the power law "c·f^γ words have
// frequency f" via γ = 1/α − 1 (Appendix B; Adamic's ranking tutorial).
// For real text α < 0, so γ < −1 (pure Zipf α = −1 gives the classic
// γ = −2). Degenerate fits — flat or inverted rank curves from tiny or
// pathological vocabularies — would produce γ ≥ −1 or even positive γ,
// inverting the Appendix B prior, so the result is clamped to the
// empirically sane range [−6, −1.2].
func FreqPowerLawGamma(alpha float64) float64 {
	const (
		minGamma = -6
		maxGamma = -1.2
	)
	if alpha == 0 {
		return -2
	}
	g := 1/alpha - 1
	if g < minGamma {
		return minGamma
	}
	if g > maxGamma {
		return maxGamma
	}
	return g
}
