// Package core implements the paper's primary contribution: shrinkage
// over a topic hierarchy for database content summaries (Section 3).
//
// Databases classified under similar topics have related content
// summaries, so the incomplete, sample-derived summary of a database D
// can be "shrunk" towards the summaries of the categories D is
// classified under. The shrunk summary
//
//	p̂R(w|D) = λ_{m+1}·p̂(w|D) + Σ_{i=0..m} λ_i·p̂(w|C_i)   (Equation 2)
//
// mixes D's own summary with the summaries of its ancestor categories
// C1 ⊃ C2 ⊃ ... ⊃ Cm (Definition 4) and a uniform dummy category C0,
// with mixture weights λ computed per database by expectation
// maximization (Figure 2).
package core

import (
	"repro/internal/hierarchy"
	"repro/internal/summary"
)

// Classified pairs a database's (approximate) content summary with the
// category it is classified under.
type Classified struct {
	Name     string
	Category hierarchy.NodeID
	Sum      *summary.Summary
}

// Weighting selects how database summaries aggregate into category
// summaries (Definition 3).
type Weighting int

const (
	// SizeWeighted is Equation 1: each database weighted by |D̂|.
	SizeWeighted Weighting = iota
	// EqualWeighted is the footnote-5 alternative: every database
	// weighted equally regardless of size. The paper found the two
	// "virtually identical"; the ablation harness compares them.
	EqualWeighted
)

// catAgg accumulates the weighted sums of one category's subtree.
type catAgg struct {
	sumPW   map[string]float64 // Σ weight_D · p̂(w|D)
	sumPtfW map[string]float64 // Σ tokenWeight_D · p̂tf(w|D)
	weight  float64            // Σ weight_D   (denominator for P)
	tokens  float64            // Σ tokenWeight_D (denominator for Ptf)
	docs    float64            // Σ |D̂| (category "size" for selection)
	nDBs    int
}

func newCatAgg() *catAgg {
	return &catAgg{
		sumPW:   make(map[string]float64),
		sumPtfW: make(map[string]float64),
	}
}

// CategorySummaries holds, for every category C, the aggregate of the
// content summaries of all databases classified under C's subtree
// (db(C) of Definition 3). It is immutable after construction and safe
// for concurrent use.
type CategorySummaries struct {
	tree      *hierarchy.Tree
	weighting Weighting
	aggs      []*catAgg // indexed by NodeID
	vocab     int       // |V|: union vocabulary size (for the uniform C0)
}

// BuildCategorySummaries aggregates the classified database summaries
// up the hierarchy. A database classified under C contributes to C and
// to every ancestor of C, per Definition 3.
func BuildCategorySummaries(tree *hierarchy.Tree, dbs []Classified, w Weighting) *CategorySummaries {
	cs := &CategorySummaries{
		tree:      tree,
		weighting: w,
		aggs:      make([]*catAgg, tree.Len()),
	}
	for i := range cs.aggs {
		cs.aggs[i] = newCatAgg()
	}
	for _, db := range dbs {
		for _, anc := range tree.Path(db.Category) {
			cs.addTo(cs.aggs[anc], db.Sum)
		}
	}
	cs.vocab = len(cs.aggs[hierarchy.Root].sumPW)
	return cs
}

// addTo accumulates one database summary into an aggregate.
func (cs *CategorySummaries) addTo(agg *catAgg, s *summary.Summary) {
	pw, tw := cs.weights(s)
	for w, st := range s.Words {
		agg.sumPW[w] += pw * st.P
		agg.sumPtfW[w] += tw * st.Ptf
	}
	agg.weight += pw
	agg.tokens += tw
	agg.docs += s.NumDocs
	agg.nDBs++
}

// weights returns the aggregation weights of one database under the
// configured Weighting.
func (cs *CategorySummaries) weights(s *summary.Summary) (pWeight, tfWeight float64) {
	if cs.weighting == EqualWeighted {
		return 1, 1
	}
	return s.NumDocs, s.CW
}

// Tree returns the hierarchy.
func (cs *CategorySummaries) Tree() *hierarchy.Tree { return cs.tree }

// VocabSize returns |V|, the union vocabulary size across all database
// summaries; the uniform category C0 assigns every word probability
// 1/|V|.
func (cs *CategorySummaries) VocabSize() int { return cs.vocab }

// UniformP returns p̂(w|C0), the probability the dummy uniform category
// assigns to every word.
func (cs *CategorySummaries) UniformP() float64 {
	if cs.vocab == 0 {
		return 0
	}
	return 1 / float64(cs.vocab)
}

// Databases returns the number of databases aggregated under category c.
func (cs *CategorySummaries) Databases(c hierarchy.NodeID) int { return cs.aggs[c].nDBs }

// Summary materializes the category content summary Ŝ(C) of
// Definition 3 (Equation 1, or its equal-weight variant): for each word,
// the aggregate probability over db(C). NumDocs is the total (estimated)
// document count of the category's databases, which hierarchical
// selection uses as the category's size.
func (cs *CategorySummaries) Summary(c hierarchy.NodeID) *summary.Summary {
	agg := cs.aggs[c]
	out := &summary.Summary{
		NumDocs: agg.docs,
		CW:      agg.tokens,
		Words:   make(map[string]summary.Word, len(agg.sumPW)),
	}
	if cs.weighting == EqualWeighted && agg.tokens > 0 {
		// Token denominator is nDBs under equal weighting; keep CW as
		// an absolute token estimate anyway by rescaling below.
		out.CW = agg.docs // best-effort size proxy; CW unused for categories under equal weighting
	}
	if agg.weight == 0 {
		return out
	}
	for w, pw := range agg.sumPW {
		word := summary.Word{P: pw / agg.weight}
		if agg.tokens > 0 {
			word.Ptf = agg.sumPtfW[w] / agg.tokens
		}
		out.Words[w] = word
	}
	return out
}

// levelStats gives O(1) access to the effective (overlap-subtracted)
// category probabilities for one level of a database's path: the data
// of db(C_i) minus the data already counted at level i+1 (and minus the
// database's own summary at the deepest level), as Section 3.2
// prescribes to keep the mixture components disjoint.
type levelStats struct {
	agg      *catAgg // aggregate at C_i
	subPW    map[string]float64
	subPtfW  map[string]float64
	subW     float64
	subT     float64
	excluded *summary.Summary // the database's own summary (deepest level only)
	exPW     float64          // its P weight
	exTW     float64          // its Ptf weight
}

// p returns the effective p̂(w|C_i).
func (l *levelStats) p(w string) float64 {
	den := l.agg.weight - l.subW - l.exPW
	if den <= 0 {
		return 0
	}
	num := l.agg.sumPW[w]
	if l.subPW != nil {
		num -= l.subPW[w]
	}
	if l.excluded != nil {
		num -= l.exPW * l.excluded.P(w)
	}
	p := num / den
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ptf returns the effective p̂tf(w|C_i).
func (l *levelStats) ptf(w string) float64 {
	den := l.agg.tokens - l.subT - l.exTW
	if den <= 0 {
		return 0
	}
	num := l.agg.sumPtfW[w]
	if l.subPtfW != nil {
		num -= l.subPtfW[w]
	}
	if l.excluded != nil {
		num -= l.exTW * l.excluded.Ptf(w)
	}
	p := num / den
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// empty reports whether the level has no data left after subtraction.
func (l *levelStats) empty() bool { return l.agg.weight-l.subW-l.exPW <= 0 }

// levels builds the per-level effective views for a database classified
// under cat. Level i covers db(C_i) \ db(C_{i+1}), and the deepest
// level excludes the database itself.
func (cs *CategorySummaries) levels(db Classified) []*levelStats {
	path := cs.tree.Path(db.Category)
	out := make([]*levelStats, len(path))
	exPW, exTW := cs.weights(db.Sum)
	for i, c := range path {
		l := &levelStats{agg: cs.aggs[c]}
		if i+1 < len(path) {
			child := cs.aggs[path[i+1]]
			l.subPW = child.sumPW
			l.subPtfW = child.sumPtfW
			l.subW = child.weight
			l.subT = child.tokens
		} else {
			l.excluded = db.Sum
			l.exPW = exPW
			l.exTW = exTW
		}
		out[i] = l
	}
	return out
}
