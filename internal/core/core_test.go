package core

import (
	"math"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/summary"
)

// tinyTree: Root -> Health -> {Heart}; Root -> Sports.
func tinyTree() *hierarchy.Tree {
	return hierarchy.MustNew(hierarchy.Spec{
		Name: "Root",
		Children: []hierarchy.Spec{
			{Name: "Health", Children: []hierarchy.Spec{{Name: "Heart"}}},
			{Name: "Sports"},
		},
	})
}

// mkSum builds a summary with the given size and word probabilities
// (Ptf mirrors P for simplicity unless overridden).
func mkSum(numDocs float64, words map[string]float64) *summary.Summary {
	s := &summary.Summary{
		NumDocs:    numDocs,
		CW:         numDocs * 10,
		SampleSize: int(numDocs),
		Words:      make(map[string]summary.Word, len(words)),
	}
	for w, p := range words {
		s.Words[w] = summary.Word{P: p, Ptf: p / 2, SampleDF: int(p * numDocs)}
	}
	return s
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestCategorySummaryEquation1(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	health, _ := tree.Lookup("Health")
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(100, map[string]float64{"hypertension": 0.2, "blood": 0.5})}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(300, map[string]float64{"blood": 0.1})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)

	heartSum := cs.Summary(heart)
	// p̂(blood|Heart) = (0.5*100 + 0.1*300) / 400 = 0.2
	if got := heartSum.P("blood"); !approx(got, 0.2, 1e-12) {
		t.Errorf("P(blood|Heart) = %v, want 0.2", got)
	}
	// p̂(hypertension|Heart) = 0.2*100/400 = 0.05
	if got := heartSum.P("hypertension"); !approx(got, 0.05, 1e-12) {
		t.Errorf("P(hypertension|Heart) = %v, want 0.05", got)
	}
	if heartSum.NumDocs != 400 {
		t.Errorf("category size = %v, want 400", heartSum.NumDocs)
	}
	// Health aggregates the same two databases (no other children).
	healthSum := cs.Summary(health)
	if got := healthSum.P("blood"); !approx(got, 0.2, 1e-12) {
		t.Errorf("P(blood|Health) = %v", got)
	}
	if cs.Databases(heart) != 2 || cs.Databases(hierarchy.Root) != 2 {
		t.Error("database counts wrong")
	}
}

func TestCategorySummaryEqualWeighted(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Category: heart, Sum: mkSum(100, map[string]float64{"blood": 0.5})}
	d2 := Classified{Category: heart, Sum: mkSum(300, map[string]float64{"blood": 0.1})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, EqualWeighted)
	// Equal weighting: (0.5 + 0.1)/2 = 0.3 regardless of sizes.
	if got := cs.Summary(heart).P("blood"); !approx(got, 0.3, 1e-12) {
		t.Errorf("equal-weighted P = %v, want 0.3", got)
	}
}

func TestUniformCategory(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Category: heart, Sum: mkSum(10, map[string]float64{"a": 1, "b": 0.5})}
	d2 := Classified{Category: heart, Sum: mkSum(10, map[string]float64{"b": 0.5, "c": 0.1, "d": 0.1})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	if cs.VocabSize() != 4 {
		t.Errorf("VocabSize = %d, want 4", cs.VocabSize())
	}
	if !approx(cs.UniformP(), 0.25, 1e-12) {
		t.Errorf("UniformP = %v", cs.UniformP())
	}
}

func TestShrinkageRecoversMissingWord(t *testing.T) {
	// Example 3 of the paper: "hypertension" is missing from D1's
	// sample-based summary but appears in sibling D2's; shrinking
	// p̂(hypertension|D1) towards D2's value captures the actual
	// nonzero probability.
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(200, map[string]float64{
		"blood": 0.4, "artery": 0.3, "pressure": 0.2,
	})}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(200, map[string]float64{
		"blood": 0.35, "artery": 0.25, "hypertension": 0.17,
	})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})

	if got := d1.Sum.P("hypertension"); got != 0 {
		t.Fatalf("test setup: D1 already has hypertension")
	}
	got := shrunk.P("hypertension")
	if got <= 0 {
		t.Fatalf("shrinkage did not recover the missing word")
	}
	if got >= 0.17 {
		t.Errorf("recovered p = %v should stay below the sibling's 0.17", got)
	}
	// Shared words keep sensible estimates.
	if p := shrunk.P("blood"); p < 0.3 || p > 0.45 {
		t.Errorf("P(blood) = %v, want near D1's 0.4", p)
	}
}

func TestShrinkLambdasSumToOneAndDatabaseDominates(t *testing.T) {
	// Table 2 of the paper: the database's own weight is usually the
	// highest, with the most specific category next.
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Name: "AIDS.org", Category: heart, Sum: mkSum(500, map[string]float64{
		"blood": 0.4, "artery": 0.3, "pressure": 0.25, "heartrate": 0.15, "valve": 0.1,
	})}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(500, map[string]float64{
		"blood": 0.1, "stent": 0.2, "valve": 0.05, "cardio": 0.4,
	})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})

	ls := shrunk.Lambdas()
	// Components: Uniform, Root, Health, Heart, AIDS.org.
	if len(ls) != 5 {
		t.Fatalf("lambda components = %d, want 5", len(ls))
	}
	if ls[0].Component != "Uniform" || ls[len(ls)-1].Component != "AIDS.org" {
		t.Errorf("component order wrong: %v", ls)
	}
	var sum float64
	maxIdx := 0
	for i, l := range ls {
		if l.Weight < 0 || l.Weight > 1 {
			t.Errorf("lambda %s = %v out of range", l.Component, l.Weight)
		}
		sum += l.Weight
		if l.Weight > ls[maxIdx].Weight {
			maxIdx = i
		}
	}
	if !approx(sum, 1, 1e-9) {
		t.Errorf("lambdas sum to %v", sum)
	}
	if ls[maxIdx].Component != "AIDS.org" {
		t.Errorf("dominant component = %s, want the database itself", ls[maxIdx].Component)
	}
	if shrunk.EMIterations() == 0 {
		t.Error("EM did not iterate")
	}
}

func TestOverlapSubtraction(t *testing.T) {
	// The Heart-level component for D1 must exclude D1's own data, and
	// the Health-level component must exclude all Heart data. With only
	// D1 under Heart and D3 directly irrelevant (Sports), Heart's
	// effective summary for D1 is empty and Health's too.
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	sports, _ := tree.Lookup("Sports")
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(100, map[string]float64{"blood": 0.5})}
	d3 := Classified{Name: "D3", Category: sports, Sum: mkSum(100, map[string]float64{"goal": 0.6})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d3}, SizeWeighted)
	levels := cs.levels(d1)
	// Path: Root, Health, Heart -> 3 levels.
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	// Heart level (i=2): only D1 is under Heart, and D1 is excluded.
	if !levels[2].empty() {
		t.Error("Heart level should be empty after excluding D1")
	}
	if p := levels[2].p("blood"); p != 0 {
		t.Errorf("Heart-level P(blood) = %v, want 0", p)
	}
	// Health level (i=1): Health subtree minus Heart subtree = nothing.
	if !levels[1].empty() {
		t.Error("Health level should be empty after subtracting Heart")
	}
	// Root level (i=0): Root minus Health = D3 only.
	if p := levels[0].p("goal"); !approx(p, 0.6, 1e-12) {
		t.Errorf("Root-level P(goal) = %v, want 0.6 (D3 only)", p)
	}
	if p := levels[0].p("blood"); p != 0 {
		t.Errorf("Root-level P(blood) = %v, want 0 (D1 subtracted)", p)
	}
}

func TestShrunkViewInterfaceAndBounds(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(100, map[string]float64{"blood": 0.5, "artery": 0.2})}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(150, map[string]float64{"blood": 0.3, "valve": 0.4})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})

	var v summary.View = shrunk
	if v.DocCount() != 100 {
		t.Errorf("DocCount = %v", v.DocCount())
	}
	if v.WordCount() != d1.Sum.CW {
		t.Errorf("WordCount = %v", v.WordCount())
	}
	for _, w := range []string{"blood", "artery", "valve", "nonexistent"} {
		p := v.P(w)
		ptf := v.Ptf(w)
		if p < 0 || p > 1 || ptf < 0 || ptf > 1 {
			t.Errorf("probabilities out of range for %s: p=%v ptf=%v", w, p, ptf)
		}
	}
	// Every word of any summary gets non-zero probability (the uniform
	// component guarantees it), including words D1 never saw.
	if v.P("valve") <= 0 {
		t.Error("sibling word has zero probability")
	}
	if v.P("nonexistent") <= 0 {
		t.Error("uniform component should give unseen words non-zero probability")
	}
}

func TestMaterializeRoundRule(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	// D1 is large so that sibling words with modest p̂R survive rounding.
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(1000, map[string]float64{"blood": 0.5})}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(1000, map[string]float64{"blood": 0.4, "valve": 0.3})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})
	mat := shrunk.Materialize(1)

	if !mat.Contains("blood") {
		t.Error("own word dropped")
	}
	if !mat.Contains("valve") {
		t.Errorf("sibling word not materialized (p̂R = %v, eff df = %v)",
			shrunk.P("valve"), shrunk.P("valve")*1000)
	}
	// Every materialized word satisfies the round rule.
	for w, st := range mat.Words {
		if int(mat.NumDocs*st.P+0.5) < 1 {
			t.Errorf("word %s with eff df < 1 kept", w)
		}
		if !approx(st.P, shrunk.P(w), 1e-12) {
			t.Errorf("materialized P differs from lazy P for %s", w)
		}
	}
	if mat.NumDocs != 1000 || mat.SampleSize != 1000 {
		t.Errorf("size fields wrong: %v/%d", mat.NumDocs, mat.SampleSize)
	}
}

func TestShrinkDeterministic(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(100, map[string]float64{"a": 0.5, "b": 0.2, "c": 0.1})}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(100, map[string]float64{"a": 0.4, "d": 0.3})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	s1 := Shrink(cs, d1, ShrinkOptions{})
	s2 := Shrink(cs, d1, ShrinkOptions{})
	for i := range s1.lambdas {
		if s1.lambdas[i] != s2.lambdas[i] {
			t.Fatal("EM is nondeterministic")
		}
	}
}

func TestShrinkRootClassifiedDatabase(t *testing.T) {
	// A database classified at the root still shrinks (toward the
	// uniform component and the root-level category of other databases).
	tree := tinyTree()
	sports, _ := tree.Lookup("Sports")
	d1 := Classified{Name: "D1", Category: hierarchy.Root, Sum: mkSum(100, map[string]float64{"misc": 0.5})}
	d2 := Classified{Name: "D2", Category: sports, Sum: mkSum(100, map[string]float64{"goal": 0.6})}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})
	ls := shrunk.Lambdas()
	if len(ls) != 3 { // Uniform, Root, D1
		t.Fatalf("components = %d, want 3", len(ls))
	}
	if shrunk.P("goal") <= 0 {
		t.Error("root-level sibling word not recovered")
	}
}

func TestShrinkSingletonWorld(t *testing.T) {
	// Only one database anywhere: every category level is empty after
	// subtraction; the mixture degenerates to uniform + database.
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(100, map[string]float64{"a": 0.5})}
	cs := BuildCategorySummaries(tree, []Classified{d1}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})
	ls := shrunk.Lambdas()
	var catWeight float64
	for _, l := range ls[1 : len(ls)-1] {
		catWeight += l.Weight
	}
	if catWeight > 1e-6 {
		t.Errorf("empty category levels got weight %v", catWeight)
	}
	if p := shrunk.P("a"); p <= 0.4 {
		t.Errorf("P(a) = %v, should remain close to 0.5", p)
	}
}

func TestMaterializeMinEffDF(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	// D1 and D2 share most vocabulary with D1's probabilities a noisy
	// version of D2's (the sampled-summary regime where EM gives the
	// category real weight), plus sibling-only words with graded
	// probabilities so the two thresholds keep different word sets.
	w1 := map[string]float64{"blood": 0.5}
	w2 := map[string]float64{"blood": 0.4}
	for i := 0; i < 200; i++ {
		base := 0.05 + 0.3*float64(i)/200
		noise := 0.4
		if i%2 == 0 {
			noise = 1.5
		}
		w1["shared"+itoa(i)] = base * noise
		w2["shared"+itoa(i)] = base
		w2["sib"+itoa(i)] = 0.002 * float64(i+1) // eff df in D1 spans ~0.5..100+
	}
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(1000, w1)}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(1000, w2)}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	shrunk := Shrink(cs, d1, ShrinkOptions{})
	loose := shrunk.Materialize(1)
	strict := shrunk.Materialize(20)
	if len(strict.Words) >= len(loose.Words) {
		t.Errorf("stricter threshold kept more words: %d vs %d", len(strict.Words), len(loose.Words))
	}
}

func BenchmarkShrink(b *testing.B) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	words1 := make(map[string]float64, 2000)
	words2 := make(map[string]float64, 2000)
	for i := 0; i < 2000; i++ {
		w := "w" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		words1[w+"x"] = 1 / float64(i+2)
		words2[w+"y"] = 1 / float64(i+2)
	}
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(1000, words1)}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(1000, words2)}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shrink(cs, d1, ShrinkOptions{})
	}
}
