package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/summary"
)

// randomClassified builds a random pair of sibling databases plus one
// cross-topic database from a seeded generator.
func randomWorld(seed int64) (*CategorySummaries, []Classified) {
	rng := rand.New(rand.NewSource(seed))
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	sports, _ := tree.Lookup("Sports")

	mk := func(cat, n int) Classified {
		words := map[string]float64{}
		vocab := 20 + rng.Intn(200)
		for i := 0; i < vocab; i++ {
			w := "w" + itoa(cat*1000+rng.Intn(300))
			words[w] = math.Min(1, rng.Float64())
		}
		var c Classified
		c.Name = "db" + itoa(n)
		if cat == 0 {
			c.Category = heart
		} else {
			c.Category = sports
		}
		c.Sum = mkSum(float64(50+rng.Intn(1000)), words)
		return c
	}
	dbs := []Classified{mk(0, 1), mk(0, 2), mk(1, 3)}
	return BuildCategorySummaries(tree, dbs, SizeWeighted), dbs
}

// Property: λ is a probability distribution and p̂R stays in [0, 1] for
// every word of every component, for arbitrary random worlds.
func TestShrinkProbabilityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		cs, dbs := randomWorld(seed)
		for _, db := range dbs {
			sh := Shrink(cs, db, ShrinkOptions{})
			var sum float64
			for _, l := range sh.Lambdas() {
				if l.Weight < -1e-12 || l.Weight > 1+1e-12 {
					return false
				}
				sum += l.Weight
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			// Spot-check p̂R bounds over the database's own words and a
			// few foreign ones.
			for w := range db.Sum.Words {
				p := sh.P(w)
				if p < 0 || p > 1 {
					return false
				}
			}
			for _, w := range []string{"w1", "w1005", "nonexistent"} {
				if p := sh.P(w); p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: p̂R is a convex combination, so it never exceeds the
// largest component probability for that word.
func TestShrinkConvexCombination(t *testing.T) {
	f := func(seed int64) bool {
		cs, dbs := randomWorld(seed)
		db := dbs[0]
		sh := Shrink(cs, db, ShrinkOptions{})
		levels := cs.levels(db)
		for w := range db.Sum.Words {
			max := cs.UniformP()
			if p := db.Sum.P(w); p > max {
				max = p
			}
			for _, l := range levels {
				if p := l.p(w); p > max {
					max = p
				}
			}
			if sh.P(w) > max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the materialized summary agrees with the lazy view on every
// word it keeps, and keeps exactly the words passing the round rule.
func TestMaterializeAgreesWithLazy(t *testing.T) {
	f := func(seed int64) bool {
		cs, dbs := randomWorld(seed)
		db := dbs[1]
		sh := Shrink(cs, db, ShrinkOptions{})
		mat := sh.Materialize(1)
		for w, st := range mat.Words {
			if math.Abs(st.P-sh.P(w)) > 1e-12 {
				return false
			}
			if int(mat.NumDocs*st.P+0.5) < 1 {
				return false
			}
		}
		// Every word of the database's own summary that passes the
		// rule must be present.
		for w := range db.Sum.Words {
			if int(db.Sum.NumDocs*sh.P(w)+0.5) >= 1 && !mat.Contains(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: aggregation is order-independent.
func TestBuildCategorySummariesOrderIndependent(t *testing.T) {
	cs1, dbs := randomWorld(77)
	tree := cs1.Tree()
	rev := make([]Classified, len(dbs))
	for i, db := range dbs {
		rev[len(dbs)-1-i] = db
	}
	cs2 := BuildCategorySummaries(tree, rev, SizeWeighted)
	for _, id := range tree.All() {
		s1, s2 := cs1.Summary(id), cs2.Summary(id)
		if s1.NumDocs != s2.NumDocs || s1.Len() != s2.Len() {
			t.Fatalf("category %v differs across orders", id)
		}
		for w, st := range s1.Words {
			if math.Abs(st.P-s2.Words[w].P) > 1e-12 {
				t.Fatalf("category %v word %s differs", id, w)
			}
		}
	}
}

// Property: shrinking twice with identical inputs is deterministic, and
// the shrunk Ptf stays a valid probability too.
func TestShrinkPtfBounds(t *testing.T) {
	f := func(seed int64) bool {
		cs, dbs := randomWorld(seed)
		sh := Shrink(cs, dbs[0], ShrinkOptions{})
		for w := range dbs[0].Sum.Words {
			if p := sh.Ptf(w); p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

var _ = summary.Summary{} // keep the import for mkSum's package
