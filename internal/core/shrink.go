package core

import (
	"sort"

	"repro/internal/summary"
	"repro/internal/telemetry"
)

// ShrinkOptions tunes the EM computation of the mixture weights.
type ShrinkOptions struct {
	// Epsilon is the convergence threshold on the largest λ change per
	// iteration (default 1e-3, the "small ε" of Figure 2).
	Epsilon float64
	// MaxIter caps EM iterations (default 100).
	MaxIter int
	// Span receives a shrink.em trace event per run (iterations to
	// convergence, λ extremes, overlap-subtraction stats); Metrics
	// receives the EM counters and the em_iterations gauge. Both may be
	// nil.
	Span    *telemetry.Span
	Metrics *telemetry.Registry
}

func (o ShrinkOptions) withDefaults() ShrinkOptions {
	if o.Epsilon == 0 {
		o.Epsilon = 1e-3
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	return o
}

// Lambda reports one mixture component's weight, for display in the
// style of the paper's Table 2.
type Lambda struct {
	Component string // "Uniform", category name, or the database name
	Weight    float64
}

// ShrunkSummary is the shrinkage-based content summary R̂(D) of
// Definition 4. It evaluates p̂R(w|D) lazily over the union vocabulary,
// so database selection can consult it per query word without
// materializing hundreds of thousands of entries; Materialize produces
// an explicit summary for evaluation.
//
// ShrunkSummary implements summary.View and is safe for concurrent use.
type ShrunkSummary struct {
	db       Classified
	levels   []*levelStats
	lambdas  []float64 // indexed: [0]=uniform C0, [1..m]=path levels, [m+1]=database
	uniform  float64   // p̂(w|C0)
	emIters  int
	catNames []string
}

// Shrink computes the shrunk content summary of db: it builds the
// effective (overlap-subtracted) category summaries along db's
// classification path and runs the Figure 2 EM algorithm to find the
// mixture weights λ that make R̂(D) maximally similar to Ŝ(D) and to
// the category summaries.
func Shrink(cs *CategorySummaries, db Classified, opts ShrinkOptions) *ShrunkSummary {
	opts = opts.withDefaults()
	levels := cs.levels(db)
	m := len(levels) // path length (C1..Cm); components = m+2
	ss := &ShrunkSummary{
		db:      db,
		levels:  levels,
		uniform: cs.UniformP(),
	}
	ss.catNames = make([]string, m)
	for i, c := range cs.tree.Path(db.Category) {
		ss.catNames[i] = cs.tree.Node(c).Name
	}

	// Precompute, for every word of the database's own summary, the
	// per-level effective probabilities, so EM iterations are pure
	// array arithmetic.
	words := make([]string, 0, len(db.Sum.Words))
	for w := range db.Sum.Words {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic iteration
	nW := len(words)

	// Following the original shrinkage EM of McCallum et al., the λ
	// weights are estimated on held-out evidence by leave-one-out:
	// every observed (word, sample document) incidence is one
	// observation, weighted by the word's sample document frequency,
	// and the database component predicts each observation with that
	// observation removed — p̂loo(w|D) = p̂(w|D)·(s_w−1)/s_w. A word
	// seen in a single sample document therefore gets no support from
	// the database's own summary, and the EM must explain it with the
	// category summaries (or the uniform background), which is what
	// gives the ancestors their weight. Without leave-one-out the
	// database component trivially maximizes the fit to its own summary
	// and every other λi collapses to zero.
	weight := make([]float64, nW)
	loo := make([]float64, nW)
	for j, w := range words {
		weight[j] = 1
		st := db.Sum.Words[w]
		loo[j] = st.P
		if st.SampleDF > 0 {
			weight[j] = float64(st.SampleDF)
			loo[j] = st.P * float64(st.SampleDF-1) / float64(st.SampleDF)
		}
	}
	pw := make([][]float64, m+2)
	pw[0] = make([]float64, nW)
	for j := range pw[0] {
		pw[0][j] = ss.uniform
	}
	for i := 0; i < m; i++ {
		col := make([]float64, nW)
		for j, w := range words {
			col[j] = levels[i].p(w)
		}
		pw[i+1] = col
	}
	pw[m+1] = loo

	// Initialization step: uniform λ.
	nC := m + 2
	lambda := make([]float64, nC)
	for i := range lambda {
		lambda[i] = 1 / float64(nC)
	}

	beta := make([]float64, nC)
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// Expectation step: βi = Σ_w λi·p̂(w|Ci) / p̂R(w|D).
		for i := range beta {
			beta[i] = 0
		}
		for j := 0; j < nW; j++ {
			var pr float64
			for i := 0; i < nC; i++ {
				pr += lambda[i] * pw[i][j]
			}
			if pr <= 0 {
				continue
			}
			inv := weight[j] / pr
			for i := 0; i < nC; i++ {
				beta[i] += lambda[i] * pw[i][j] * inv
			}
		}
		// Maximization step: λi = βi / Σβj.
		var total float64
		for _, b := range beta {
			total += b
		}
		if total <= 0 {
			break
		}
		maxDelta := 0.0
		for i := range lambda {
			next := beta[i] / total
			if d := abs(next - lambda[i]); d > maxDelta {
				maxDelta = d
			}
			lambda[i] = next
		}
		if maxDelta < opts.Epsilon {
			iters++
			break
		}
	}
	ss.lambdas = lambda
	ss.emIters = iters

	// Telemetry: how hard the Figure 2 EM had to work, and what the
	// overlap subtraction of Section 3.2 left per level. emptyLevels
	// counts path levels with no data left once descendants (and the
	// database itself) are subtracted — those components are dead weight
	// the EM must drive to zero.
	if opts.Metrics != nil {
		opts.Metrics.Counter("em_runs_total").Inc()
		opts.Metrics.Counter("em_iterations_total").Add(int64(iters))
		opts.Metrics.Gauge("em_iterations").Set(float64(iters))
	}
	if opts.Span != nil {
		emptyLevels := 0
		for _, l := range levels {
			if l.empty() {
				emptyLevels++
			}
		}
		opts.Span.Event("shrink.em",
			telemetry.String("db", db.Name),
			telemetry.Int("iterations", iters),
			telemetry.Int("components", nC),
			telemetry.Int("path_levels", m),
			telemetry.Int("empty_levels", emptyLevels),
			telemetry.Float("lambda_uniform", lambda[0]),
			telemetry.Float("lambda_self", lambda[nC-1]))
	}
	return ss
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DocCount implements summary.View; the shrunk summary keeps the
// database's own size estimate.
func (ss *ShrunkSummary) DocCount() float64 { return ss.db.Sum.NumDocs }

// WordCount implements summary.View.
func (ss *ShrunkSummary) WordCount() float64 { return ss.db.Sum.CW }

// P returns the shrinkage-based estimate p̂R(w|D) of Equation 2.
func (ss *ShrunkSummary) P(w string) float64 {
	pr := ss.lambdas[0] * ss.uniform
	m := len(ss.levels)
	for i := 0; i < m; i++ {
		pr += ss.lambdas[i+1] * ss.levels[i].p(w)
	}
	pr += ss.lambdas[m+1] * ss.db.Sum.P(w)
	return pr
}

// Ptf returns the shrunk term-frequency probability, mixing the levels'
// tf-based estimates with the same λ weights (the LM adaptation of
// Section 5.3).
func (ss *ShrunkSummary) Ptf(w string) float64 {
	pr := ss.lambdas[0] * ss.uniform
	m := len(ss.levels)
	for i := 0; i < m; i++ {
		pr += ss.lambdas[i+1] * ss.levels[i].ptf(w)
	}
	pr += ss.lambdas[m+1] * ss.db.Sum.Ptf(w)
	return pr
}

// Base returns the unshrunk summary R̂(D) was built from.
func (ss *ShrunkSummary) Base() *summary.Summary { return ss.db.Sum }

// EMIterations reports how many EM iterations were run.
func (ss *ShrunkSummary) EMIterations() int { return ss.emIters }

// Lambdas returns the mixture weights with their component names, from
// the uniform dummy category down to the database itself (the layout of
// the paper's Table 2).
func (ss *ShrunkSummary) Lambdas() []Lambda {
	out := make([]Lambda, 0, len(ss.lambdas))
	out = append(out, Lambda{Component: "Uniform", Weight: ss.lambdas[0]})
	for i, name := range ss.catNames {
		out = append(out, Lambda{Component: name, Weight: ss.lambdas[i+1]})
	}
	name := ss.db.Name
	if name == "" {
		name = "Database"
	}
	out = append(out, Lambda{Component: name, Weight: ss.lambdas[len(ss.lambdas)-1]})
	return out
}

// Materialize produces an explicit summary holding every word whose
// estimated document count round(|D̂|·p̂R(w|D)) is at least minEffDF
// (the paper's evaluation uses 1: "we drop from the shrunk content
// summaries every word that is estimated to appear in less than one
// document", Section 6.1). Sample statistics (SampleDF, SampleSize) are
// carried over from the base summary so downstream consumers can still
// see the sampling evidence.
func (ss *ShrunkSummary) Materialize(minEffDF int) *summary.Summary {
	out := &summary.Summary{
		NumDocs:    ss.db.Sum.NumDocs,
		CW:         ss.db.Sum.CW,
		SampleSize: ss.db.Sum.SampleSize,
		Words:      make(map[string]summary.Word, 2*len(ss.db.Sum.Words)),
	}
	n := ss.db.Sum.NumDocs
	keep := func(w string) {
		if _, done := out.Words[w]; done {
			return
		}
		p := ss.P(w)
		if int(n*p+0.5) < minEffDF {
			return
		}
		out.Words[w] = summary.Word{
			P:        p,
			Ptf:      ss.Ptf(w),
			SampleDF: ss.db.Sum.SampleDF(w),
		}
	}
	for w := range ss.db.Sum.Words {
		keep(w)
	}
	for _, l := range ss.levels {
		if l.empty() {
			continue
		}
		for w := range l.agg.sumPW {
			keep(w)
		}
	}
	return out
}
