package core

import (
	"fmt"
	"testing"
)

// Analytically checkable EM case: one category level + db.
// 30 words with p_C = 5*p_D, 70 words with p_C = 0.1*p_D.
// MLE lambda_cat ~ 0.158 (solving the stationarity condition).
func TestEMNumeric(t *testing.T) {
	tree := tinyTree()
	heart, _ := tree.Lookup("Heart")
	w1 := map[string]float64{}
	w2 := map[string]float64{}
	for i := 0; i < 30; i++ {
		w1[fmt.Sprintf("hi%d", i)] = 0.01
		w2[fmt.Sprintf("hi%d", i)] = 0.05
	}
	for i := 0; i < 70; i++ {
		w1[fmt.Sprintf("lo%d", i)] = 0.01
		w2[fmt.Sprintf("lo%d", i)] = 0.001
	}
	d1 := Classified{Name: "D1", Category: heart, Sum: mkSum(1000, w1)}
	d2 := Classified{Name: "D2", Category: heart, Sum: mkSum(1000, w2)}
	cs := BuildCategorySummaries(tree, []Classified{d1, d2}, SizeWeighted)
	sh := Shrink(cs, d1, ShrinkOptions{Epsilon: 1e-9, MaxIter: 2000})
	for _, l := range sh.Lambdas() {
		fmt.Printf("%s = %.4f\n", l.Component, l.Weight)
	}
	fmt.Println("iters:", sh.EMIterations())
}
