package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRingAddGetRecent(t *testing.T) {
	l := NewLog(4)
	if l.Last() != nil || l.Len() != 0 {
		t.Fatal("fresh log should be empty")
	}
	for i := 1; i <= 6; i++ {
		id := l.Add(&QueryRecord{Query: fmt.Sprintf("q%d", i)})
		if id != uint64(i) {
			t.Fatalf("Add #%d returned id %d", i, id)
		}
	}
	if l.Len() != 6 {
		t.Fatalf("Len = %d, want 6", l.Len())
	}
	// ids 1 and 2 were evicted by 5 and 6 (capacity 4).
	for _, id := range []uint64{1, 2} {
		if l.Get(id) != nil {
			t.Errorf("Get(%d) should be evicted", id)
		}
	}
	for _, id := range []uint64{3, 4, 5, 6} {
		r := l.Get(id)
		if r == nil || r.ID != id {
			t.Errorf("Get(%d) = %+v, want record with that id", id, r)
		}
	}
	if r := l.Last(); r == nil || r.Query != "q6" {
		t.Errorf("Last = %+v, want q6", r)
	}
	recent := l.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent(10) returned %d records, want 4", len(recent))
	}
	for i, want := range []string{"q6", "q5", "q4", "q3"} {
		if recent[i].Query != want {
			t.Errorf("Recent[%d] = %s, want %s (newest first)", i, recent[i].Query, want)
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[0].Query != "q6" {
		t.Errorf("Recent(2) = %v", got)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	if id := l.Add(&QueryRecord{}); id != 0 {
		t.Errorf("nil Add returned %d", id)
	}
	l.SetSink(&bytes.Buffer{})
	if l.Get(1) != nil || l.Last() != nil || l.Recent(5) != nil || l.Len() != 0 {
		t.Error("nil log accessors should return zero values")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(8)
	l.SetSink(&buf)
	l.Add(&QueryRecord{Query: "alpha", Merged: 3})
	l.Add(&QueryRecord{Query: "beta", Error: "boom"})
	l.SetSink(nil)
	l.Add(&QueryRecord{Query: "gamma"}) // after detach: not written

	var lines []QueryRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("sink line is not JSON: %v", err)
		}
		lines = append(lines, r)
	}
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2", len(lines))
	}
	if lines[0].Query != "alpha" || lines[0].ID != 1 || lines[0].Merged != 3 {
		t.Errorf("line 0 = %+v", lines[0])
	}
	if lines[1].Query != "beta" || lines[1].Error != "boom" {
		t.Errorf("line 1 = %+v", lines[1])
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := NewLog(16)
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Add(&QueryRecord{Query: "q"})
			}
		}()
	}
	wg.Wait()
	if l.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*perWriter)
	}
	// Every surviving slot must hold a record whose ID maps back to it.
	recent := l.Recent(16)
	if len(recent) != 16 {
		t.Fatalf("Recent(16) = %d records", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].ID <= recent[i].ID {
			t.Fatalf("Recent not newest-first: %d then %d", recent[i-1].ID, recent[i].ID)
		}
	}
}

func TestHandlerListAndByID(t *testing.T) {
	l := NewLog(8)
	for i := 1; i <= 5; i++ {
		l.Add(&QueryRecord{Query: fmt.Sprintf("q%d", i), TraceID: "abc"})
	}
	h := l.Handler()

	// List, default size.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/queries", nil))
	if rw.Code != 200 {
		t.Fatalf("list status %d", rw.Code)
	}
	var list []QueryRecord
	if err := json.Unmarshal(rw.Body.Bytes(), &list); err != nil {
		t.Fatalf("list body: %v", err)
	}
	if len(list) != 5 || list[0].Query != "q5" {
		t.Fatalf("list = %d records, first %q", len(list), list[0].Query)
	}

	// List with ?n=2.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/queries?n=2", nil))
	list = nil
	json.Unmarshal(rw.Body.Bytes(), &list)
	if len(list) != 2 {
		t.Fatalf("?n=2 returned %d records", len(list))
	}

	// By id.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/queries/3", nil))
	if rw.Code != 200 {
		t.Fatalf("by-id status %d", rw.Code)
	}
	var rec QueryRecord
	if err := json.Unmarshal(rw.Body.Bytes(), &rec); err != nil {
		t.Fatalf("by-id body: %v", err)
	}
	if rec.ID != 3 || rec.Query != "q3" {
		t.Fatalf("by-id = %+v", rec)
	}

	// Missing id → 404.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/queries/99", nil))
	if rw.Code != 404 {
		t.Fatalf("missing id status %d, want 404", rw.Code)
	}

	// Empty log renders [] not null.
	empty := NewLog(2)
	rw = httptest.NewRecorder()
	empty.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/queries", nil))
	if got := strings.TrimSpace(rw.Body.String()); got != "[]" {
		t.Fatalf("empty list body = %q, want []", got)
	}
}

func TestFormat(t *testing.T) {
	r := &QueryRecord{
		ID: 7, Query: "oil spill", TraceID: "deadbeef01020304",
		Terms: []string{"oil", "spill"}, Scorer: "CORI", MaxDBs: 2, PerDB: 5,
		Candidates: []Candidate{
			{Database: "env", Score: 0.61, Selected: true, Shrinkage: true,
				MCMean: 0.55, MCStdDev: 0.7, MCSamples: 100,
				Lambdas: []Lambda{{Component: "category", Weight: 0.4}, {Component: "db", Weight: 0.6}}},
			{Database: "sports", Score: 0.11, MCMean: 0.12, MCStdDev: 0.01, MCSamples: 100},
		},
		Selected: []string{"env"},
		Nodes: []NodeCall{
			{Database: "env", LatencySeconds: 0.012, Attempts: 2, Retries: 1, Results: 5},
			{Database: "offline", Unavailable: true},
		},
		Merged:  5,
		TopHits: []Hit{{Database: "env", DocID: 42, Score: 0.9}},
	}
	var buf bytes.Buffer
	r.Format(&buf)
	out := buf.String()
	for _, want := range []string{
		"query #7", "oil spill", "trace=deadbeef01020304",
		"shrinkage fired for 1", "* env", "SHRUNK", "λ[category=0.400 db=0.600]",
		"unshrunk", "attempts=2 retries=1", "UNAVAILABLE", "env/42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	if r.ShrinkageCount() != 1 {
		t.Errorf("ShrinkageCount = %d", r.ShrinkageCount())
	}
	// Nil record must not panic.
	(*QueryRecord)(nil).Format(&buf)
}
