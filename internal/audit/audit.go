// Package audit records per-query selection evidence: for every
// metasearch query, one QueryRecord captures what the selection
// algorithm saw (per-database scores, Monte-Carlo score uncertainty,
// the shrink-or-not verdict with the λ mixture actually used), which
// databases were selected and queried, what each node call cost
// (latency, retries), and where the merged results came from. Records
// live in a bounded lock-free ring served at /debug/queries, and can
// additionally be appended as JSONL to an audit log.
//
// The paper's core contribution is a per-query, per-database decision
// (Figure 3: use the shrunk summary only when the score's standard
// deviation exceeds its mean); this package is the layer that makes
// that decision auditable after the fact.
package audit

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Lambda is one component of the shrinkage mixture actually used to
// score a database.
type Lambda struct {
	Component string  `json:"component"`
	Weight    float64 `json:"weight"`
}

// Candidate is the selection evidence for one database.
type Candidate struct {
	// Database names the candidate.
	Database string `json:"database"`
	// Score is s(q, D) under the summary view the decision chose.
	Score float64 `json:"score"`
	// Selected reports whether the database made the selected set.
	Selected bool `json:"selected"`
	// Shrinkage reports the adaptive verdict: whether the shrunk
	// summary was used for this query/database.
	Shrinkage bool `json:"shrinkage"`
	// MCMean and MCStdDev describe the Monte-Carlo estimated score
	// distribution the verdict was derived from (Section 4).
	MCMean   float64 `json:"mc_mean"`
	MCStdDev float64 `json:"mc_stddev"`
	// MCSamples is the number of d1..dn combinations examined.
	MCSamples int `json:"mc_samples"`
	// Lambdas is the shrinkage mixture actually used (nil when the
	// unshrunk summary was chosen).
	Lambdas []Lambda `json:"lambdas,omitempty"`
}

// NodeCall is what evaluating the query at one selected database cost.
type NodeCall struct {
	Database string `json:"database"`
	// LatencySeconds is the wall time of the query call, including any
	// client retries.
	LatencySeconds float64 `json:"latency_seconds"`
	// Attempts and Retries are the wire-level transport cost (zero for
	// in-process databases).
	Attempts int64 `json:"attempts,omitempty"`
	Retries  int64 `json:"retries,omitempty"`
	// Sheds is how many of those attempts the node's admission gate
	// rejected with 429 (backpressure, not failure).
	Sheds int64 `json:"sheds,omitempty"`
	// Results is how many documents the database returned.
	Results int `json:"results"`
	// Hedged reports that a hedge request was launched against this
	// node (its primary attempt outlived the hedge threshold); HedgeWon
	// that the hedge, not the primary, produced the answer.
	Hedged   bool `json:"hedged,omitempty"`
	HedgeWon bool `json:"hedge_won,omitempty"`
	// BreakerState is the node's circuit-breaker state when the call
	// was admitted ("closed", "half_open", "open"; empty when breakers
	// are disabled). BreakerOpen marks calls the breaker short-circuited
	// without touching the node — distinct from Unavailable, which means
	// the node was actually tried (or had no handle at all).
	BreakerState string `json:"breaker_state,omitempty"`
	BreakerOpen  bool   `json:"breaker_open,omitempty"`
	// Error is set when the call failed; Unavailable marks databases
	// skipped because no live handle (or no reachable node) existed.
	Error       string `json:"error,omitempty"`
	Unavailable bool   `json:"unavailable,omitempty"`
	// OutOfScope marks databases the selection ranked but this process
	// deliberately did not query because they live on another shard of
	// the cluster (see the shard-scoped load path). Not a failure: the
	// router merges their results from the shards that own them.
	OutOfScope bool `json:"out_of_scope,omitempty"`
}

// Hit is one merged result's provenance.
type Hit struct {
	Database string  `json:"database"`
	DocID    int     `json:"doc_id"`
	Score    float64 `json:"score"`
}

// QueryRecord is the full audit trail of one metasearch query.
type QueryRecord struct {
	// ID is the record's sequence number (1-based, monotonically
	// increasing per Log).
	ID uint64 `json:"id"`
	// TraceID links the record to the distributed trace of the same
	// query ("" when tracing is disabled).
	TraceID string `json:"trace_id,omitempty"`
	// Time is when the query arrived.
	Time time.Time `json:"time"`
	// Query is the raw query text; Terms the analyzed words actually
	// scored.
	Query string   `json:"query"`
	Terms []string `json:"terms,omitempty"`
	// Scorer names the base selection algorithm.
	Scorer string `json:"scorer,omitempty"`
	// MaxDBs and PerDB are the request's fan-out parameters.
	MaxDBs int `json:"max_dbs"`
	PerDB  int `json:"per_db"`
	// Candidates is the per-database selection evidence, in
	// registration order.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Selected is the selected set in rank order.
	Selected []string `json:"selected,omitempty"`
	// Nodes records the query evaluation at each selected database.
	Nodes []NodeCall `json:"nodes,omitempty"`
	// Merged is the total merged result count; TopHits the highest
	// ranked merged documents (capped).
	Merged  int   `json:"merged"`
	TopHits []Hit `json:"top_hits,omitempty"`
	// CacheHit reports that the whole answer came from the result cache:
	// no selection ran and no database was queried for this record.
	// Nodes is empty on such records — the fan-out evidence lives in the
	// earlier record that populated the cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// SelectionCacheHit reports that the selection step was served from
	// the selection cache (the fan-out still ran).
	SelectionCacheHit bool `json:"selection_cache_hit,omitempty"`
	// Collapsed reports that this query piggybacked on an identical
	// concurrent query's in-flight work (singleflight): it received the
	// same answer without issuing its own fan-out.
	Collapsed bool `json:"collapsed,omitempty"`
	// ElapsedSeconds is the end-to-end query latency.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Error is set when the query failed outright.
	Error string `json:"error,omitempty"`
}

// ShrinkageCount returns how many candidates used the shrunk summary.
func (r *QueryRecord) ShrinkageCount() int {
	n := 0
	for _, c := range r.Candidates {
		if c.Shrinkage {
			n++
		}
	}
	return n
}

// DefaultCapacity is the default ring size: enough recent queries to
// debug live traffic without unbounded growth.
const DefaultCapacity = 256

// Log is a bounded ring of the most recent QueryRecords. Writers are
// lock-free (an atomic sequence claims a slot, an atomic pointer
// publishes the record); readers see each slot atomically. An optional
// sink receives every record as one JSON line. All methods are safe on
// a nil receiver, so auditing can be disabled without conditionals.
type Log struct {
	seq   atomic.Uint64
	slots []slot

	sinkMu sync.Mutex
	sink   io.Writer
}

type slot struct {
	p atomic.Pointer[QueryRecord]
}

// NewLog creates a ring holding the last capacity records (capacity
// <= 0 selects DefaultCapacity).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{slots: make([]slot, capacity)}
}

// SetSink directs every subsequently added record to w as one JSON
// line (JSONL). Pass nil to stop. Writes are serialized; write errors
// are ignored (auditing must never fail a query).
func (l *Log) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.sinkMu.Lock()
	l.sink = w
	l.sinkMu.Unlock()
}

// Add assigns the record its sequence ID, publishes it in the ring
// (evicting the oldest record once full), appends it to the sink if one
// is set, and returns the ID.
func (l *Log) Add(r *QueryRecord) uint64 {
	if l == nil || r == nil {
		return 0
	}
	id := l.seq.Add(1)
	r.ID = id
	l.slots[int((id-1)%uint64(len(l.slots)))].p.Store(r)
	l.sinkMu.Lock()
	if l.sink != nil {
		if b, err := json.Marshal(r); err == nil {
			l.sink.Write(append(b, '\n'))
		}
	}
	l.sinkMu.Unlock()
	return id
}

// Len returns how many records were ever added.
func (l *Log) Len() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Get returns the record with the given ID, or nil if it never existed
// or has been evicted.
func (l *Log) Get(id uint64) *QueryRecord {
	if l == nil || id == 0 {
		return nil
	}
	r := l.slots[int((id-1)%uint64(len(l.slots)))].p.Load()
	if r == nil || r.ID != id {
		return nil
	}
	return r
}

// Last returns the most recent record (nil when empty). A racing
// writer may have claimed the next sequence number without having
// published yet; Last then falls back to the newest published record.
func (l *Log) Last() *QueryRecord {
	if l == nil {
		return nil
	}
	for id := l.seq.Load(); id > 0; id-- {
		if r := l.Get(id); r != nil {
			return r
		}
	}
	return nil
}

// Recent returns up to n records, newest first.
func (l *Log) Recent(n int) []*QueryRecord {
	if l == nil || n <= 0 {
		return nil
	}
	out := make([]*QueryRecord, 0, n)
	cur := l.seq.Load()
	for id := cur; id > 0 && len(out) < n; id-- {
		if cur-id >= uint64(len(l.slots)) {
			break // older slots have been overwritten
		}
		if r := l.Get(id); r != nil {
			out = append(out, r)
		}
	}
	return out
}
