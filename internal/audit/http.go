package audit

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// DefaultRecent is how many records the list endpoint returns when the
// request does not say.
const DefaultRecent = 20

// Handler serves the audit trail over HTTP:
//
//	GET <prefix>         — the most recent records, newest first
//	                       (?n=<count> adjusts how many)
//	GET <prefix>/<id>    — one record by sequence ID (404 when the ID
//	                       never existed or has been evicted)
//
// The handler keys on the final path segment: a numeric segment is a
// record ID, anything else is the list. Mount it at both
// "/debug/queries" and "/debug/queries/" so both forms resolve.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		last := r.URL.Path[strings.LastIndex(r.URL.Path, "/")+1:]
		if id, err := strconv.ParseUint(last, 10, 64); err == nil {
			rec := l.Get(id)
			if rec == nil {
				http.Error(w, `{"error":"no such query record (never existed or evicted)"}`, http.StatusNotFound)
				return
			}
			writeIndented(w, rec)
			return
		}
		n := DefaultRecent
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		recs := l.Recent(n)
		if recs == nil {
			recs = []*QueryRecord{} // render an empty list, not null
		}
		writeIndented(w, recs)
	})
}

func writeIndented(w http.ResponseWriter, v interface{}) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
