package audit

import (
	"fmt"
	"io"
	"strings"
)

// Format pretty-prints the record as an indented, human-readable
// explanation of the selection decision — what the -explain flag shows
// after each interactive query.
func (r *QueryRecord) Format(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "no query record")
		return
	}
	fmt.Fprintf(w, "query #%d %q", r.ID, r.Query)
	if r.TraceID != "" {
		fmt.Fprintf(w, "  trace=%s", r.TraceID)
	}
	fmt.Fprintf(w, "  (%.1fms)\n", r.ElapsedSeconds*1e3)
	if r.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", r.Error)
	}
	if r.CacheHit || r.SelectionCacheHit || r.Collapsed {
		var marks []string
		if r.CacheHit {
			marks = append(marks, "RESULT-HIT")
		}
		if r.SelectionCacheHit {
			marks = append(marks, "SELECTION-HIT")
		}
		if r.Collapsed {
			marks = append(marks, "COLLAPSED")
		}
		fmt.Fprintf(w, "  cache: %s\n", strings.Join(marks, " "))
	}
	if len(r.Terms) > 0 {
		fmt.Fprintf(w, "  terms: %s\n", strings.Join(r.Terms, " "))
	}
	if r.Scorer != "" {
		fmt.Fprintf(w, "  scorer: %s  (max_dbs=%d per_db=%d)\n", r.Scorer, r.MaxDBs, r.PerDB)
	}
	if len(r.Candidates) > 0 {
		fmt.Fprintf(w, "  selection (%d candidates, shrinkage fired for %d):\n",
			len(r.Candidates), r.ShrinkageCount())
		for _, c := range r.Candidates {
			mark := " "
			if c.Selected {
				mark = "*"
			}
			fmt.Fprintf(w, "   %s %-24s score=%-12.6g mc mean=%.6g sd=%.6g n=%d",
				mark, c.Database, c.Score, c.MCMean, c.MCStdDev, c.MCSamples)
			if c.Shrinkage {
				fmt.Fprintf(w, "  SHRUNK %s", formatLambdas(c.Lambdas))
			} else {
				fmt.Fprint(w, "  unshrunk")
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Nodes) > 0 {
		fmt.Fprintln(w, "  nodes:")
		for _, n := range r.Nodes {
			fmt.Fprintf(w, "    %-24s %7.1fms  results=%d", n.Database, n.LatencySeconds*1e3, n.Results)
			if n.Attempts > 0 {
				fmt.Fprintf(w, "  attempts=%d retries=%d", n.Attempts, n.Retries)
			}
			if n.Sheds > 0 {
				fmt.Fprintf(w, "  sheds=%d", n.Sheds)
			}
			if n.Hedged {
				fmt.Fprint(w, "  HEDGED")
				if n.HedgeWon {
					fmt.Fprint(w, "(won)")
				}
			}
			if n.BreakerState != "" && n.BreakerState != "closed" {
				fmt.Fprintf(w, "  breaker=%s", n.BreakerState)
			}
			if n.BreakerOpen {
				fmt.Fprint(w, "  BREAKER-OPEN")
			} else if n.OutOfScope {
				fmt.Fprint(w, "  OUT-OF-SCOPE")
			} else if n.Unavailable {
				fmt.Fprint(w, "  UNAVAILABLE")
			}
			if n.Error != "" {
				fmt.Fprintf(w, "  error=%s", n.Error)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "  merged: %d results", r.Merged)
	if len(r.TopHits) > 0 {
		fmt.Fprint(w, "; top hits:")
		for _, h := range r.TopHits {
			fmt.Fprintf(w, " %s/%d(%.4g)", h.Database, h.DocID, h.Score)
		}
	}
	fmt.Fprintln(w)
}

// formatLambdas renders a shrinkage mixture as "λ[comp=w ...]".
func formatLambdas(ls []Lambda) string {
	if len(ls) == 0 {
		return "λ[?]"
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%s=%.3f", l.Component, l.Weight)
	}
	return "λ[" + strings.Join(parts, " ") + "]"
}
