package audit

import (
	"encoding/json"
	"net/http"
)

// ExportVersion is the version stamped on /debug/export/queries
// envelopes. Consumers reject versions they do not understand; additive
// fields do not bump it.
const ExportVersion = 1

// Export is the /debug/export/queries envelope: the exporting process's
// identity plus its retained recent query records, newest first.
type Export struct {
	Version int `json:"version"`
	// Instance, Role, Shard mirror telemetry.Identity (duplicated here
	// to keep audit free of a telemetry dependency).
	Instance string `json:"instance"`
	Role     string `json:"role"`
	Shard    string `json:"shard,omitempty"`
	// Total is how many records were ever added (ring evictions mean
	// len(Records) can be smaller).
	Total   uint64         `json:"total"`
	Records []*QueryRecord `json:"records"`
}

// ByTrace returns the retained records carrying the given trace ID,
// newest first.
func (l *Log) ByTrace(traceID string) []*QueryRecord {
	if l == nil || traceID == "" {
		return nil
	}
	var out []*QueryRecord
	for _, r := range l.Recent(l.capacity()) {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}

func (l *Log) capacity() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// ExportHandler serves the process's recent audit records as a
// versioned Export. ?trace=<id> filters to one trace.
func (l *Log) ExportHandler(instance, role, shard string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		exp := Export{
			Version:  ExportVersion,
			Instance: instance,
			Role:     role,
			Shard:    shard,
			Total:    l.Len(),
		}
		if trace := req.URL.Query().Get("trace"); trace != "" {
			exp.Records = l.ByTrace(trace)
		} else {
			exp.Records = l.Recent(l.capacity())
		}
		if exp.Records == nil {
			exp.Records = []*QueryRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(exp)
	})
}
