package classify

import (
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/synth"
)

func testTree() *hierarchy.Tree {
	return hierarchy.MustNew(hierarchy.Spec{
		Name: "Root",
		Children: []hierarchy.Spec{
			{Name: "Health", Children: []hierarchy.Spec{
				{Name: "Heart"}, {Name: "Cancer"},
			}},
			{Name: "Sports", Children: []hierarchy.Spec{
				{Name: "Soccer"}, {Name: "Tennis"},
			}},
		},
	})
}

func testWorld(t testing.TB, seed int64) (*hierarchy.Tree, *synth.Generator) {
	t.Helper()
	tree := testTree()
	g, err := synth.NewGenerator(synth.Config{
		Tree:              tree,
		Seed:              seed,
		GlobalVocabSize:   600,
		CategoryVocabBase: 400,
		PrivateVocabSize:  60,
		DocLenMean:        60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree, g
}

// trainFromWorld generates labeled training documents for every leaf.
func trainFromWorld(t testing.TB, tree *hierarchy.Tree, g *synth.Generator, perLeaf int) *TrainingSet {
	t.Helper()
	ts := &TrainingSet{}
	rng := rand.New(rand.NewSource(1234))
	for _, leaf := range tree.Leaves() {
		src := g.NewDocSource(leaf, nil, rng)
		var buf []string
		for i := 0; i < perLeaf; i++ {
			buf = src.GenDoc(rng, buf)
			ts.Add(leaf, buf)
		}
	}
	return ts
}

// buildDB creates a database index under the given category.
func buildDB(t testing.TB, g *synth.Generator, cat hierarchy.NodeID, size int, seed int64) *index.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	priv, err := g.NewPrivateVocab("p_")
	if err != nil {
		t.Fatal(err)
	}
	src := g.NewDocSource(cat, priv, rng)
	b := index.NewBuilder(size)
	var buf []string
	for i := 0; i < size; i++ {
		buf = src.GenDoc(rng, buf)
		b.Add(buf)
	}
	return b.Build()
}

// indexProber adapts index.Index to Prober.
type indexProber struct{ ix *index.Index }

func (p indexProber) MatchCount(q []string) int { return p.ix.MatchCount(q) }

func TestTrainRequiresData(t *testing.T) {
	tree := testTree()
	if _, err := Train(tree, &TrainingSet{}, Options{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestTrainLearnsTopicalProbes(t *testing.T) {
	tree, g := testWorld(t, 7)
	ts := trainFromWorld(t, tree, g, 60)
	c, err := Train(tree, ts, Options{ProbesPerCategory: 8})
	if err != nil {
		t.Fatal(err)
	}
	heart, _ := tree.Lookup("Heart")
	probes := c.Probes(heart)
	if len(probes) != 8 {
		t.Fatalf("probes = %d, want 8", len(probes))
	}
	// Probe words for Heart should come from the Heart (or Health)
	// vocabularies, never the global or cross-topic ones.
	for _, p := range probes {
		if p[0] == 'g' {
			t.Errorf("global word %q chosen as Heart probe", p)
		}
		if len(p) >= 6 && (p[:6] == "soccer" || p[:6] == "tennis") {
			t.Errorf("cross-topic word %q chosen as Heart probe", p)
		}
	}
	if c.Probes(hierarchy.Root) != nil {
		t.Error("root should have no probes")
	}
}

func TestClassifyLeafDatabases(t *testing.T) {
	tree, g := testWorld(t, 8)
	ts := trainFromWorld(t, tree, g, 60)
	c, err := Train(tree, ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	leaves := tree.Leaves()
	for i, leaf := range leaves {
		db := buildDB(t, g, leaf, 250, int64(100+i))
		got := c.Classify(indexProber{db})
		if got == leaf {
			correct++
		} else if !tree.IsAncestorOrSelf(got, leaf) {
			// Misclassification into a sibling subtree would be bad;
			// stopping early at an ancestor is acceptable (QProber does
			// this for unfocused databases).
			t.Errorf("leaf %s classified into unrelated category %s",
				tree.Node(leaf).Name, tree.Node(got).Name)
		}
	}
	if correct < len(leaves)-1 {
		t.Errorf("only %d/%d leaf databases classified exactly", correct, len(leaves))
	}
}

func TestClassifyMidLevelDatabase(t *testing.T) {
	// A database generated at an internal category (mixed subtopics)
	// should be classified within that category's subtree.
	tree, g := testWorld(t, 9)
	ts := trainFromWorld(t, tree, g, 60)
	c, err := Train(tree, ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	health, _ := tree.Lookup("Health")
	db := buildDB(t, g, health, 250, 55)
	got := c.Classify(indexProber{db})
	if !tree.IsAncestorOrSelf(health, got) && got != hierarchy.Root {
		t.Errorf("Health-level database classified under %s", tree.Node(got).Name)
	}
}

func TestClassifyEmptyDatabaseStaysAtRoot(t *testing.T) {
	tree, g := testWorld(t, 10)
	ts := trainFromWorld(t, tree, g, 40)
	c, err := Train(tree, ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	empty := index.NewBuilder(0).Build()
	if got := c.Classify(indexProber{empty}); got != hierarchy.Root {
		t.Errorf("empty database classified under %v", got)
	}
}

func TestScoreChildrenSpecificitySumsToOne(t *testing.T) {
	tree, g := testWorld(t, 11)
	ts := trainFromWorld(t, tree, g, 40)
	c, err := Train(tree, ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heart, _ := tree.Lookup("Heart")
	db := buildDB(t, g, heart, 200, 77)
	scores := c.ScoreChildren(indexProber{db}, hierarchy.Root)
	if len(scores) != 2 {
		t.Fatalf("scores = %d, want 2 top-level children", len(scores))
	}
	var sum float64
	for _, s := range scores {
		sum += s.Specificity
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("specificities sum to %v", sum)
	}
	// Health must dominate for a Heart database.
	health, _ := tree.Lookup("Health")
	if scores[0].Category != health {
		t.Errorf("top child = %v, want Health", tree.Node(scores[0].Category).Name)
	}
	// Leaf node has no children to score.
	if s := c.ScoreChildren(indexProber{db}, heart); s != nil {
		t.Errorf("leaf ScoreChildren = %v", s)
	}
}

func TestTrainingSetAddCopies(t *testing.T) {
	ts := &TrainingSet{}
	doc := []string{"a", "b"}
	ts.Add(hierarchy.Root, doc)
	doc[0] = "MUTATED"
	if ts.docs[0][0] != "a" {
		t.Error("TrainingSet.Add must copy the document")
	}
}

func BenchmarkClassify(b *testing.B) {
	tree, g := testWorld(b, 12)
	ts := trainFromWorld(b, tree, g, 60)
	c, err := Train(tree, ts, Options{})
	if err != nil {
		b.Fatal(err)
	}
	heart, _ := tree.Lookup("Heart")
	db := buildDB(b, g, heart, 300, 3)
	p := indexProber{db}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(p)
	}
}

func TestTrainingSetTopWords(t *testing.T) {
	ts := &TrainingSet{}
	ts.Add(hierarchy.Root, []string{"common", "rare"})
	ts.Add(hierarchy.Root, []string{"common", "mid"})
	ts.Add(hierarchy.Root, []string{"common", "mid", "common"}) // dup within doc counts once
	top := ts.TopWords(2)
	if len(top) != 2 || top[0] != "common" || top[1] != "mid" {
		t.Errorf("TopWords = %v", top)
	}
	all := ts.TopWords(100)
	if len(all) != 3 {
		t.Errorf("TopWords(100) = %v", all)
	}
	if got := (&TrainingSet{}).TopWords(5); len(got) != 0 {
		t.Errorf("empty set TopWords = %v", got)
	}
}

func TestInternalCategoryProbesCoverSubtopics(t *testing.T) {
	// The Health category's probes must represent both Heart and Cancer,
	// not collapse onto whichever subtopic scores higher — otherwise a
	// Heart database would get zero Health coverage during descent.
	tree, g := testWorld(t, 30)
	ts := trainFromWorld(t, tree, g, 50)
	c, err := Train(tree, ts, Options{ProbesPerCategory: 10})
	if err != nil {
		t.Fatal(err)
	}
	health, _ := tree.Lookup("Health")
	var heartish, cancerish int
	for _, p := range c.Probes(health) {
		if len(p) >= 5 && p[:5] == "heart" {
			heartish++
		}
		if len(p) >= 6 && p[:6] == "cancer" {
			cancerish++
		}
	}
	if heartish == 0 || cancerish == 0 {
		t.Errorf("Health probes unbalanced: %d heart, %d cancer: %v",
			heartish, cancerish, c.Probes(health))
	}
}
