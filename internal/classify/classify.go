// Package classify implements probe-based hierarchical database
// classification in the style of QProber [Gravano, Ipeirotis & Sahami,
// ACM TOIS 2003], which the paper uses to classify the TREC databases
// into the topic hierarchy (Section 5.2) and which Focused Probing
// builds its query probes from.
//
// A Classifier is trained from labeled example documents: for every
// category it learns a small set of discriminative single-word probes.
// To classify a database, the classifier descends the hierarchy from
// the root; at each node it sends each child category's probes to the
// database — observing only the number of matches, never the documents
// — and computes the child's Coverage (total matches) and Specificity
// (its share of all children's matches). It descends into the best
// child that exceeds both thresholds, and stops when no child
// qualifies. Following the paper's adaptation of QProber, every
// database ends up in exactly one category.
package classify

import (
	"errors"
	"math"
	"sort"

	"repro/internal/hierarchy"
	"repro/internal/telemetry"
)

// Prober is the minimal query interface of an uncooperative database:
// it reports only how many documents match a conjunctive query.
type Prober interface {
	MatchCount(query []string) int
}

// Options tunes training and classification.
type Options struct {
	// ProbesPerCategory is the number of probe words learned per
	// category (default 10).
	ProbesPerCategory int
	// TauSpecificity is the minimum share of sibling coverage a child
	// must attain to be descended into (default 0.45, in the spirit of
	// QProber's tau_es).
	TauSpecificity float64
	// TauCoverage is the minimum absolute number of probe matches
	// (default 10, QProber's tau_ec).
	TauCoverage int
}

func (o Options) withDefaults() Options {
	if o.ProbesPerCategory == 0 {
		o.ProbesPerCategory = 10
	}
	if o.TauSpecificity == 0 {
		o.TauSpecificity = 0.45
	}
	if o.TauCoverage == 0 {
		o.TauCoverage = 10
	}
	return o
}

// TrainingSet holds labeled example documents. A document labeled with
// category C is a positive example for C and all of C's ancestors.
type TrainingSet struct {
	docs   [][]string
	labels []hierarchy.NodeID
}

// Add appends one labeled document (a slice of analyzed terms).
func (ts *TrainingSet) Add(label hierarchy.NodeID, doc []string) {
	owned := make([]string, len(doc))
	copy(owned, doc)
	ts.docs = append(ts.docs, owned)
	ts.labels = append(ts.labels, label)
}

// Len returns the number of training documents.
func (ts *TrainingSet) Len() int { return len(ts.docs) }

// TopWords returns the n most document-frequent words across the
// training set, ties broken alphabetically. Metasearchers use these to
// bootstrap query-based sampling: dictionary words that provably occur
// in on-topic text.
func (ts *TrainingSet) TopWords(n int) []string {
	df := make(map[string]int)
	seen := make(map[string]bool, 128)
	for _, doc := range ts.docs {
		for k := range seen {
			delete(seen, k)
		}
		for _, w := range doc {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	words := make([]string, 0, len(df))
	for w := range df {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if df[words[i]] != df[words[j]] {
			return df[words[i]] > df[words[j]]
		}
		return words[i] < words[j]
	})
	if n < len(words) {
		words = words[:n]
	}
	return words
}

// Classifier holds the learned probes. It is immutable after Train and
// safe for concurrent use.
type Classifier struct {
	tree   *hierarchy.Tree
	opts   Options
	probes map[hierarchy.NodeID][]string
}

// Train learns probe words for every non-root category of tree from the
// training set, using a Naive-Bayes-style odds score: words that are
// frequent in a category's documents and rare elsewhere become probes.
func Train(tree *hierarchy.Tree, ts *TrainingSet, opts Options) (*Classifier, error) {
	opts = opts.withDefaults()
	if ts.Len() == 0 {
		return nil, errors.New("classify: empty training set")
	}
	// Document frequency of each word within each category subtree.
	catDF := make(map[hierarchy.NodeID]map[string]int)
	catDocs := make(map[hierarchy.NodeID]int)
	for _, id := range tree.All() {
		catDF[id] = make(map[string]int)
	}
	total := ts.Len()
	for i, doc := range ts.docs {
		seen := make(map[string]bool, len(doc))
		for _, w := range doc {
			if seen[w] {
				continue
			}
			seen[w] = true
		}
		// Credit the document to its label and every ancestor.
		for _, anc := range tree.Path(ts.labels[i]) {
			catDocs[anc]++
			df := catDF[anc]
			for w := range seen {
				df[w]++
			}
		}
	}

	// First pass: an ordered discriminative-word list per category.
	ranked := make(map[hierarchy.NodeID][]string)
	for _, id := range tree.All() {
		if id == hierarchy.Root {
			continue
		}
		nIn := catDocs[id]
		if nIn == 0 {
			continue // no training data for this subtree
		}
		nOut := total - nIn
		type scored struct {
			w string
			s float64
		}
		var cands []scored
		for w, dfIn := range catDF[id] {
			dfOut := catDF[hierarchy.Root][w] - dfIn
			pIn := (float64(dfIn) + 0.5) / (float64(nIn) + 1)
			pOut := (float64(dfOut) + 0.5) / (float64(nOut) + 1)
			if pIn <= pOut {
				continue
			}
			cands = append(cands, scored{w, pIn * math.Log(pIn/pOut)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].s != cands[b].s {
				return cands[a].s > cands[b].s
			}
			return cands[a].w < cands[b].w
		})
		words := make([]string, len(cands))
		for i, cd := range cands {
			words[i] = cd.w
		}
		ranked[id] = words
	}

	// Second pass (postorder): a leaf's probes are its own top words; an
	// internal category's probes interleave its children's probes so
	// that every subtopic is represented — a category whose probe set
	// collapsed onto one subtopic would miss databases about its other
	// subtopics entirely.
	c := &Classifier{tree: tree, opts: opts, probes: make(map[hierarchy.NodeID][]string)}
	var build func(id hierarchy.NodeID) []string
	build = func(id hierarchy.NodeID) []string {
		var childProbes [][]string
		for _, ch := range tree.Children(id) {
			if p := build(ch); len(p) > 0 {
				childProbes = append(childProbes, p)
			}
		}
		if id == hierarchy.Root {
			return nil
		}
		n := opts.ProbesPerCategory
		seen := make(map[string]bool, n)
		probes := make([]string, 0, n)
		add := func(w string) {
			if !seen[w] && len(probes) < n {
				seen[w] = true
				probes = append(probes, w)
			}
		}
		// An internal category's own discriminative words (which its
		// whole subtree shares) get half the budget: a database about
		// the category broadly — rather than any one subtopic — matches
		// these, so probing doesn't come up empty on it.
		if len(childProbes) > 0 {
			own := (n + 1) / 2
			for _, w := range ranked[id] {
				if len(probes) >= own {
					break
				}
				add(w)
			}
		}
		// Round-robin over the children's probe lists.
		for i := 0; len(probes) < n; i++ {
			advanced := false
			for _, cp := range childProbes {
				if i < len(cp) {
					add(cp[i])
					advanced = true
				}
			}
			if !advanced {
				break
			}
		}
		// Fill any remainder with the category's own top words.
		for _, w := range ranked[id] {
			if len(probes) >= n {
				break
			}
			add(w)
		}
		if len(probes) > 0 {
			c.probes[id] = probes
		}
		return probes
	}
	build(hierarchy.Root)
	return c, nil
}

// Probes returns the learned probe words for a category (nil for the
// root or untrained categories). The slice must not be modified.
func (c *Classifier) Probes(id hierarchy.NodeID) []string { return c.probes[id] }

// Tree returns the hierarchy the classifier was trained over.
func (c *Classifier) Tree() *hierarchy.Tree { return c.tree }

// ChildScore reports one child category's probe statistics at a node.
type ChildScore struct {
	Category    hierarchy.NodeID
	Coverage    int     // total matches over the child's probes
	Specificity float64 // share of all siblings' coverage
}

// ScoreChildren probes the database with every child category's probes
// and returns their coverage/specificity, sorted by decreasing coverage.
// Focused Probing reuses these scores to decide which subtrees to probe
// further (Section 5.2).
func (c *Classifier) ScoreChildren(db Prober, node hierarchy.NodeID) []ChildScore {
	children := c.tree.Children(node)
	if len(children) == 0 {
		return nil
	}
	scores := make([]ChildScore, 0, len(children))
	var total int
	for _, ch := range children {
		var cov int
		for _, probe := range c.probes[ch] {
			cov += db.MatchCount([]string{probe})
		}
		total += cov
		scores = append(scores, ChildScore{Category: ch, Coverage: cov})
	}
	for i := range scores {
		if total > 0 {
			scores[i].Specificity = float64(scores[i].Coverage) / float64(total)
		}
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].Coverage != scores[b].Coverage {
			return scores[a].Coverage > scores[b].Coverage
		}
		return scores[a].Category < scores[b].Category
	})
	return scores
}

// Classify assigns the database to exactly one category: it starts at
// the root and repeatedly descends into the highest-coverage child that
// passes both thresholds, stopping when none qualifies.
func (c *Classifier) Classify(db Prober) hierarchy.NodeID {
	return c.ClassifyTraced(db, nil, nil)
}

// ClassifyTraced is Classify with telemetry: every hierarchy level
// probed emits a classify.descend event on span (the level's winner,
// its coverage and specificity) and every probe query sent counts
// toward classify_probes_total in reg. Both span and reg may be nil.
func (c *Classifier) ClassifyTraced(db Prober, span *telemetry.Span, reg *telemetry.Registry) hierarchy.NodeID {
	probes := reg.Counter("classify_probes_total")
	node := hierarchy.Root
	for {
		for _, ch := range c.tree.Children(node) {
			probes.Add(int64(len(c.probes[ch])))
		}
		scores := c.ScoreChildren(db, node)
		if len(scores) == 0 {
			return node
		}
		best := scores[0]
		span.Event("classify.descend",
			telemetry.String("at", c.tree.Node(node).Name),
			telemetry.String("best", c.tree.Node(best.Category).Name),
			telemetry.Int("coverage", best.Coverage),
			telemetry.Float("specificity", best.Specificity),
			telemetry.Bool("qualifies", best.Coverage >= c.opts.TauCoverage && best.Specificity >= c.opts.TauSpecificity))
		if best.Coverage < c.opts.TauCoverage || best.Specificity < c.opts.TauSpecificity {
			return node
		}
		node = best.Category
	}
}
