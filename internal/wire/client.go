package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// userAgent identifies this client in node access logs.
var userAgent = "metasearch-repro/" + buildinfo.Version()

// reqSeq numbers logical requests process-wide; the per-attempt request
// ID "r<seq>.<attempt>" lands in the X-Request-Id header and on the
// caller's trace, so a retried attempt is distinguishable from a fresh
// call in both processes' records.
var reqSeq atomic.Uint64

// sharedTransport is the default http.Transport all wire clients share,
// so a metasearcher talking to hundreds of nodes reuses a bounded pool
// of keep-alive connections instead of redialing per request.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
}

// ClientOptions configures a Client. The zero value is usable.
type ClientOptions struct {
	// Timeout bounds each attempt, dial to last body byte (default 5s).
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is retried on
	// transient errors — network failures, timeouts, 5xx, 429 —
	// before the call fails (default 3; negative disables retries).
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries: the k-th retry sleeps base·2^k jittered into
	// [d/2, d), capped at BackoffMax (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CacheSize is the capacity of the in-client LRU document cache
	// (default 1024; negative disables caching).
	CacheSize int
	// Transport overrides the shared keep-alive transport (tests).
	Transport http.RoundTripper
	// Budget, when non-nil, bounds this client's retry volume: each
	// retry must win a token from the budget or the logical request
	// fails with the last error instead of retrying. Successes are
	// reported back so the budget can refill. One budget is typically
	// shared by every client in the process — the bound is on total
	// retry amplification, not per-node.
	Budget RetryBudget
	// Metrics receives the wire client series: wire_requests_total,
	// wire_requests_{info,query,doc}_total, wire_client_attempts_total,
	// wire_request_errors_total, wire_client_retries_total,
	// wire_client_inflight, wire_request_latency (histogram),
	// wire_request_latency_window (p50/p95/p99 of recent requests), and
	// wire_doc_cache_{hits,misses}_total. May be nil.
	Metrics *telemetry.Registry
	// randFloat overrides the jitter source (tests).
	randFloat func() float64
}

// RetryBudget is the token-bucket contract the client uses to throttle
// retries (satisfied by *resilience.Budget, whose methods are safe on a
// nil receiver). It lives here as an interface so the wire layer does
// not depend on the resilience package above it.
type RetryBudget interface {
	// TrySpend takes one token, reporting whether the retry may launch.
	TrySpend() bool
	// RecordSuccess deposits the per-success fraction back.
	RecordSuccess()
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.Transport == nil {
		o.Transport = sharedTransport
	}
	return o
}

// Client speaks the wire protocol to one database node. It is safe for
// concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	opts  ClientOptions
	cache *docCache

	// metric pointers resolved once (all nil-safe no-ops without a
	// registry).
	requests    *telemetry.Counter
	reqInfo     *telemetry.Counter
	reqQuery    *telemetry.Counter
	reqDoc      *telemetry.Counter
	attempts    *telemetry.Counter
	reqErrors   *telemetry.Counter
	retries     *telemetry.Counter
	sheds       *telemetry.Counter
	healthReqs  *telemetry.Counter
	inflight    *telemetry.Gauge
	latency     *telemetry.Histogram
	latencyWin  *telemetry.Window

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// NewClient creates a client for the node at addr ("host:port" or a
// full http:// base URL). The client's metric series are registered
// immediately so an exposition endpoint shows them at zero.
func NewClient(addr string, opts ClientOptions) *Client {
	opts = opts.withDefaults()
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	reg := opts.Metrics
	c := &Client{
		base:  base,
		hc:    &http.Client{Transport: opts.Transport},
		opts:  opts,
		cache: newDocCache(opts.CacheSize, reg),

		requests:    reg.Counter("wire_requests_total"),
		reqInfo:     reg.Counter("wire_requests_info_total"),
		reqQuery:    reg.Counter("wire_requests_query_total"),
		reqDoc:      reg.Counter("wire_requests_doc_total"),
		attempts:    reg.Counter("wire_client_attempts_total"),
		reqErrors:   reg.Counter("wire_request_errors_total"),
		retries:     reg.Counter("wire_client_retries_total"),
		sheds:       reg.Counter("wire_client_sheds_total"),
		healthReqs:  reg.Counter("wire_health_probes_total"),
		inflight:    reg.Gauge("wire_client_inflight"),
		latency:     reg.Histogram("wire_request_latency", nil),
		latencyWin:  reg.Window("wire_request_latency_window", 0),
	}
	for _, d := range []struct{ name, help string }{
		{"wire_requests_total", "Wire-protocol calls issued by this client (all endpoints)."},
		{"wire_requests_info_total", "Wire /v1/info calls issued."},
		{"wire_requests_query_total", "Wire /v1/query calls issued."},
		{"wire_requests_doc_total", "Wire /v1/doc calls issued."},
		{"wire_client_attempts_total", "HTTP attempts including retries, across all wire calls."},
		{"wire_request_errors_total", "Wire calls that failed after exhausting retries."},
		{"wire_client_retries_total", "Retry attempts after transient wire failures."},
		{"wire_client_sheds_total", "Wire attempts the node shed with 429 (backpressure)."},
		{"wire_health_probes_total", "Wire /v1/health probes issued."},
		{"wire_client_inflight", "Wire calls currently in flight from this client."},
		{"wire_request_latency", "Per-call wire latency including retries, seconds."},
		{"wire_request_latency_window", "Sliding-window p50/p95/p99 of wire call latency, seconds."},
	} {
		reg.Describe(d.name, d.help)
	}
	if opts.randFloat == nil {
		c.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c
}

// BaseURL returns the node's base URL.
func (c *Client) BaseURL() string { return c.base }

// Close releases transport resources the client can release safely.
// A client on the shared process-wide transport leaves it alone (other
// clients' connection pools live there; idle timeouts reclaim this
// node's connections); a client with its own transport closes its idle
// connections immediately.
func (c *Client) Close() {
	if c.opts.Transport == http.RoundTripper(sharedTransport) {
		return
	}
	type idleCloser interface{ CloseIdleConnections() }
	if t, ok := c.opts.Transport.(idleCloser); ok {
		t.CloseIdleConnections()
	}
}

// Info fetches the node's description (GET /v1/info).
func (c *Client) Info(ctx context.Context) (InfoResponse, error) {
	var out InfoResponse
	err := c.do(ctx, http.MethodGet, PathInfo, nil, &out)
	return out, err
}

// Query evaluates a conjunctive query at the node (POST /v1/query).
func (c *Client) Query(ctx context.Context, terms []string, limit int) (int, []int, error) {
	var out QueryResponse
	err := c.do(ctx, http.MethodPost, PathQuery, QueryRequest{Terms: terms, Limit: limit}, &out)
	if err != nil {
		return 0, nil, err
	}
	return out.Matches, out.IDs, nil
}

// Doc fetches one document's terms (GET /v1/doc/{id}), serving repeat
// fetches from the in-client LRU. The returned slice is shared with the
// cache and must not be modified.
func (c *Client) Doc(ctx context.Context, id int) ([]string, error) {
	if terms, ok := c.cache.get(id); ok {
		return terms, nil
	}
	var out DocResponse
	if err := c.do(ctx, http.MethodGet, PathDocPrefix+strconv.Itoa(id), nil, &out); err != nil {
		return nil, err
	}
	c.cache.put(id, out.Terms)
	return out.Terms, nil
}

// CachedDocs reports how many documents the LRU currently holds.
func (c *Client) CachedDocs() int { return c.cache.len() }

// Health checks the node's /v1/health in a single attempt — no
// retries, because a probe exists to measure the node as it is right
// now, and no latency-window observation, because probe latency must
// not pollute the p95 that drives query hedging. A nil error means the
// node is up and accepting traffic (a draining node's 503 is an error).
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	c.healthReqs.Inc()
	var out HealthResponse
	span := telemetry.SpanFromContext(ctx)
	reqID := fmt.Sprintf("r%d.0", reqSeq.Add(1))
	err := c.once(ctx, http.MethodGet, PathHealth, nil, &out, span.Context(), reqID)
	return out, err
}

// endpointCounter resolves the per-endpoint request counter, so a
// /metrics reader can tell which protocol calls drive the volume.
func (c *Client) endpointCounter(path string) *telemetry.Counter {
	switch {
	case path == PathInfo:
		return c.reqInfo
	case path == PathQuery:
		return c.reqQuery
	case strings.HasPrefix(path, PathDocPrefix):
		return c.reqDoc
	}
	return nil
}

// do runs one logical request: attempt, and on transient failure retry
// with jittered exponential backoff until MaxRetries is exhausted or
// ctx is done. One logical request counts once in wire_requests_total
// (and its per-endpoint counter) and once in wire_request_latency
// regardless of attempts; each attempt counts in
// wire_client_attempts_total and each extra one in
// wire_client_retries_total; a logical request that ultimately fails
// counts in wire_request_errors_total.
//
// Trace context propagates from the span carried by ctx: every attempt
// sends X-Trace-Id/X-Parent-Span (so the node's handler span parents
// under the caller's span) plus a per-attempt X-Request-Id, and is
// noted as a wire.attempt event on the caller's span.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	t0 := time.Now()
	c.requests.Inc()
	c.endpointCounter(path).Inc()
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	defer c.latency.ObserveSince(t0)
	defer c.latencyWin.ObserveSince(t0)

	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			c.reqErrors.Inc()
			return fmt.Errorf("wire: encoding %s request: %w", path, err)
		}
	}
	span := telemetry.SpanFromContext(ctx)
	stats := statsFromContext(ctx)
	reqBase := reqSeq.Add(1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		c.attempts.Inc()
		if stats != nil {
			stats.attempts.Add(1)
		}
		reqID := fmt.Sprintf("r%d.%d", reqBase, attempt)
		span.Event("wire.attempt",
			telemetry.String("path", path),
			telemetry.Int("attempt", attempt),
			telemetry.String("request_id", reqID))
		lastErr = c.once(ctx, method, path, body, out, span.Context(), reqID)
		if lastErr == nil {
			if c.opts.Budget != nil {
				c.opts.Budget.RecordSuccess()
			}
			return nil
		}
		if IsShed(lastErr) {
			c.sheds.Inc()
			if stats != nil {
				stats.sheds.Add(1)
			}
		}
		if !transient(lastErr) || attempt >= c.opts.MaxRetries || ctx.Err() != nil {
			break
		}
		if c.opts.Budget != nil && !c.opts.Budget.TrySpend() {
			// Budget empty: retrying now would amplify whatever is
			// already failing. Surface the error; failover and breakers
			// take it from here.
			break
		}
		c.retries.Inc()
		if stats != nil {
			stats.retries.Add(1)
		}
		if err := sleepCtx(ctx, c.retryDelay(attempt, lastErr)); err != nil {
			lastErr = err
			break
		}
	}
	c.reqErrors.Inc()
	return lastErr
}

// once performs a single HTTP attempt under the per-attempt timeout.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out interface{}, sc telemetry.SpanContext, reqID string) error {
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("wire: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", userAgent)
	req.Header.Set(telemetry.HeaderRequestID, reqID)
	telemetry.Inject(sc, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	// Drain and close so the keep-alive connection returns to the pool.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return DecodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
		return fmt.Errorf("wire: decoding %s response: %w", path, err)
	}
	return nil
}

// retryDelay picks the sleep before the (attempt+1)-th retry: when the
// node shed the request and named its price in Retry-After, honor it
// (capped at BackoffMax — a peer cannot stall the client arbitrarily);
// otherwise fall back to jittered exponential backoff.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	var pe *ProtocolError
	if errors.As(lastErr, &pe) && pe.Shed() && pe.RetryAfter > 0 {
		if pe.RetryAfter > c.opts.BackoffMax {
			return c.opts.BackoffMax
		}
		return pe.RetryAfter
	}
	return c.backoff(attempt)
}

// backoff returns the jittered sleep before the (attempt+1)-th retry.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase
	for i := 0; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	// Jitter into [d/2, d) so a fleet of clients retrying against one
	// recovering node spreads out instead of thundering back in sync.
	var f float64
	if c.opts.randFloat != nil {
		f = c.opts.randFloat()
	} else {
		c.jitterMu.Lock()
		f = c.jitter.Float64()
		c.jitterMu.Unlock()
	}
	return d/2 + time.Duration(f*float64(d/2))
}

// transient reports whether err is worth retrying: every network-level
// failure is (the connection may land on a healthy path next time), as
// are 5xx and 429 protocol errors; other protocol errors (bad request,
// not found) are permanent.
func transient(err error) bool {
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return pe.Transient()
	}
	// Everything else reaching here is a transport-level failure
	// (dial refused, reset, attempt timeout) — retryable unless the
	// caller's own context ended.
	return !errors.Is(err, context.Canceled)
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
