package wire

import (
	"container/list"
	"sync"

	"repro/internal/telemetry"
)

// docCache is a fixed-capacity LRU of document id → analyzed terms.
// Sampling re-fetches the top-ranked documents of popular words across
// QBS rounds, so a small cache absorbs a large share of /v1/doc
// round trips. Cached slices are shared: callers must not modify them.
// The cache counts its own traffic: wire_doc_cache_hits_total,
// wire_doc_cache_misses_total, wire_doc_cache_evictions_total, and the
// wire_doc_cache_entries gauge.
type docCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byID map[int]*list.Element

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	entries   *telemetry.Gauge
}

type docEntry struct {
	id    int
	terms []string
}

// newDocCache returns a cache holding up to capacity documents, or nil
// (an always-missing cache) when capacity <= 0. The metric series are
// registered either way, so the exposition schema does not depend on
// configuration — but a disabled cache counts nothing: no cache, no
// misses.
func newDocCache(capacity int, reg *telemetry.Registry) *docCache {
	hits := reg.Counter("wire_doc_cache_hits_total")
	misses := reg.Counter("wire_doc_cache_misses_total")
	evictions := reg.Counter("wire_doc_cache_evictions_total")
	entries := reg.Gauge("wire_doc_cache_entries")
	for _, d := range []struct{ name, help string }{
		{"wire_doc_cache_hits_total", "Document fetches served from the client's LRU doc cache."},
		{"wire_doc_cache_misses_total", "Document fetches that went to the node."},
		{"wire_doc_cache_evictions_total", "Documents evicted from the client's LRU doc cache."},
		{"wire_doc_cache_entries", "Documents currently held in the client's LRU doc cache."},
	} {
		reg.Describe(d.name, d.help)
	}
	if capacity <= 0 {
		return nil
	}
	return &docCache{
		cap:  capacity,
		ll:   list.New(),
		byID: make(map[int]*list.Element),

		hits:      hits,
		misses:    misses,
		evictions: evictions,
		entries:   entries,
	}
}

// get returns the cached terms and whether they were present.
func (c *docCache) get(id int) ([]string, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*docEntry).terms, true
}

// put inserts (or refreshes) one document, evicting the least recently
// used entry when over capacity.
func (c *docCache) put(id int, terms []string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		el.Value.(*docEntry).terms = terms
		c.ll.MoveToFront(el)
		return
	}
	c.byID[id] = c.ll.PushFront(&docEntry{id: id, terms: terms})
	c.entries.Add(1)
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byID, oldest.Value.(*docEntry).id)
		c.evictions.Inc()
		c.entries.Add(-1)
	}
}

// len reports the number of cached documents.
func (c *docCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
