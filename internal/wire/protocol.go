// Package wire is the network protocol between a metasearcher and a
// remote text database node. The paper's setting is exactly this: the
// metasearcher may interact with an uncooperative database only through
// its search interface, over the network. The protocol mirrors the
// SearchableDatabase interface as a small versioned JSON/HTTP API:
//
//	GET  /v1/info      → InfoResponse   (name, protocol version, size)
//	POST /v1/query     → QueryResponse  (match count + ranked doc ids)
//	GET  /v1/doc/{id}  → DocResponse    (the document's analyzed terms)
//	GET  /v1/health    → HealthResponse (accepting traffic? 200 ok / 503 draining)
//
// Errors are returned as an ErrorEnvelope with a machine-readable code.
// An overloaded node sheds protocol requests with 429 + Retry-After
// (code "overloaded"); clients treat a shed as backpressure — back off
// for the advertised interval — not as node failure.
// The path prefix (/v1) is the protocol's major version: breaking
// changes bump it; additive changes extend the JSON objects (decoders
// ignore unknown fields on both sides). A client checks the version a
// node advertises in /v1/info before using it.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Version is the protocol version this package speaks, advertised by
// servers in InfoResponse and checked by clients at dial time.
const Version = 1

// Paths of the protocol endpoints.
const (
	PathInfo      = "/v1/info"
	PathQuery     = "/v1/query"
	PathDocPrefix = "/v1/doc/"
	PathHealth    = "/v1/health"
)

// maxBodyBytes bounds how much of any request or response body either
// side will read (a document's terms fit comfortably; a misbehaving
// peer cannot force unbounded allocation).
const maxBodyBytes = 8 << 20

// InfoResponse describes a database node (GET /v1/info).
type InfoResponse struct {
	// Name identifies the database served by this node.
	Name string `json:"name"`
	// Protocol is the wire protocol version the node speaks.
	Protocol int `json:"protocol"`
	// NumDocs is the database size |D|. Real hidden-web databases do
	// not reveal it (the metasearcher estimates it by sample–resample);
	// nodes advertise it for operability, not for selection.
	NumDocs int `json:"num_docs,omitempty"`
	// Category, when non-empty, is the node's self-declared topic
	// classification — the role a web-directory entry plays in the
	// paper. Empty means "classify me by probing".
	Category string `json:"category,omitempty"`
}

// QueryRequest is a conjunctive query (POST /v1/query).
type QueryRequest struct {
	// Terms are the (already analyzed) query words, ANDed.
	Terms []string `json:"terms"`
	// Limit caps how many ranked document ids are returned.
	Limit int `json:"limit"`
}

// QueryResponse answers a QueryRequest.
type QueryResponse struct {
	// Matches is the total number of matching documents (the match
	// count a search interface reports).
	Matches int `json:"matches"`
	// IDs are the top-ranked matching document ids, at most Limit.
	IDs []int `json:"ids"`
}

// DocResponse is one document's content (GET /v1/doc/{id}).
type DocResponse struct {
	ID int `json:"id"`
	// Terms are the document's analyzed terms, in order.
	Terms []string `json:"terms"`
}

// HealthResponse answers GET /v1/health. A node accepting traffic
// serves it with 200; a draining node (graceful shutdown in progress)
// serves it with 503 so probes and breakers route away before the
// listener closes.
type HealthResponse struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Draining mirrors Status == "draining" for programmatic checks.
	Draining bool `json:"draining,omitempty"`
	// Inflight is how many protocol requests the node is serving right
	// now; MaxInflight the admission cap (0 = unlimited).
	Inflight    int64 `json:"inflight"`
	MaxInflight int   `json:"max_inflight,omitempty"`
	// Version is the serving process's build version; ShardID names the
	// topology shard a clustered metasearcher serves ("" outside a
	// cluster). Both additive: older peers ignore them.
	Version string `json:"version,omitempty"`
	ShardID string `json:"shard_id,omitempty"`
	// Shards is the per-shard health summary a cluster router reports
	// (breaker state + last probe result per shard), so one health call
	// covers the fleet behind it. Additive: empty outside the router.
	Shards []ShardHealth `json:"shards,omitempty"`
	// Topology reports which topology generation this process is
	// serving and when it last swapped, so an operator can confirm a
	// reconfiguration landed fleet-wide from health checks alone.
	// Additive: absent when the process does not watch a topology file.
	Topology *TopologyStatus `json:"topology,omitempty"`
}

// TopologyStatus is the live-reconfiguration view in a health response.
type TopologyStatus struct {
	// Generation is the process-local count of accepted topology loads
	// (1 = the boot-time file, +1 per accepted reload).
	Generation int64 `json:"generation"`
	// LastSwapUnixMs is when the newest snapshot was loaded.
	LastSwapUnixMs int64 `json:"last_swap_unix_ms,omitempty"`
}

// ShardHealth is one shard's health as seen by the router in front of
// it.
type ShardHealth struct {
	// ID and Addr name the shard in the topology.
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Breaker is the router's circuit-breaker state for the shard:
	// "closed" (healthy), "half_open" (probing), "open" (routed around).
	Breaker string `json:"breaker"`
	// Healthy is the operator's one-bit answer: the breaker admits
	// traffic (closed or half-open).
	Healthy bool `json:"healthy"`
	// LastProbe reports the most recent background health probe:
	// "ok", or the error string. Probes only run against non-closed
	// breakers, so a shard that never failed has no probe result ("").
	LastProbe string `json:"last_probe,omitempty"`
	// LastProbeUnixMs is when that probe finished (0 = never probed).
	LastProbeUnixMs int64 `json:"last_probe_unix_ms,omitempty"`
}

// Error codes shared by server and client.
const (
	CodeBadRequest  = "bad_request"
	CodeNotFound    = "not_found"
	CodeInternal    = "internal"
	CodeUnavailable = "unavailable"
	// CodeOverloaded marks a request shed by the node's admission gate
	// (HTTP 429 + Retry-After): the node is healthy but at capacity.
	CodeOverloaded = "overloaded"
)

// ErrorBody is the payload of an ErrorEnvelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON shape of every non-200 response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ProtocolError is a non-200 response decoded by the client.
type ProtocolError struct {
	// Status is the HTTP status code.
	Status int
	// Code and Message come from the error envelope (Code may be empty
	// when the peer did not produce one, e.g. an intermediary 502).
	Code    string
	Message string
	// RetryAfter is the backoff the peer's Retry-After header asked for
	// (zero when absent). The client honors it between retries of a shed
	// request.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ProtocolError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("wire: %s (%d): %s", e.Code, e.Status, e.Message)
	}
	return fmt.Sprintf("wire: HTTP %d", e.Status)
}

// Transient reports whether the failure is worth retrying: the node was
// overloaded or momentarily broken, not the request malformed.
func (e *ProtocolError) Transient() bool {
	return e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// Shed reports whether the failure was the node's admission gate
// shedding load (429). Sheds are backpressure, not node failure: the
// node answered, promptly, saying "not now".
func (e *ProtocolError) Shed() bool {
	return e.Status == http.StatusTooManyRequests
}

// DecodeError turns a non-200 response into a ProtocolError, reading
// the error envelope and Retry-After header when present. Callers own
// draining and closing the body; DecodeError reads it (bounded) but
// does not close it.
func DecodeError(resp *http.Response) *ProtocolError {
	pe := &ProtocolError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			pe.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var env ErrorEnvelope
	if json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&env) == nil {
		pe.Code, pe.Message = env.Error.Code, env.Error.Message
	}
	return pe
}

// IsShed reports whether err is (or wraps) a shed response. The search
// fan-out uses it to keep 429s from counting against a node's circuit
// breaker.
func IsShed(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe) && pe.Shed()
}

// WriteError writes an ErrorEnvelope response.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: message}})
}
