package wire

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestHealthEndpointAndDraining(t *testing.T) {
	reg := telemetry.NewRegistry()
	node := NewNode(testDB(), ServerOptions{Metrics: reg})
	srv := httptest.NewServer(node)
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(reg))

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health on a live node: %v", err)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("health = %+v, want ok/not-draining", h)
	}

	node.SetDraining(true)
	if !node.Draining() {
		t.Fatal("Draining() did not reflect SetDraining(true)")
	}
	_, err = c.Health(context.Background())
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Status != 503 {
		t.Fatalf("Health on a draining node: err = %v, want 503 ProtocolError", err)
	}
	// Draining fails health but in-flight protocol traffic still works:
	// Shutdown drains those, not the handler.
	if _, _, err := c.Query(context.Background(), []string{"heart"}, 10); err != nil {
		t.Fatalf("Query on a draining node: %v (drain must not reject protocol requests)", err)
	}
	// Health probes do not observe the latency window (would pollute the
	// p95 hedging signal) but do count in their own series.
	if got := reg.Counter("wire_health_probes_total").Value(); got != 2 {
		t.Errorf("wire_health_probes_total = %v, want 2", got)
	}
}

func TestAdmissionGateShedsWithRetryAfter(t *testing.T) {
	reg := telemetry.NewRegistry()
	release := make(chan struct{})
	db := &slowDB{fakeDB: testDB(), gate: release}
	node := NewNode(db, ServerOptions{MaxInflight: 1, RetryAfter: 7, Metrics: reg})
	srv := httptest.NewServer(node)
	defer srv.Close()

	// Occupy the node's single slot with a hung query.
	blockedErr := make(chan error, 1)
	c1 := NewClient(srv.URL, ClientOptions{Timeout: 5 * time.Second, MaxRetries: -1, Metrics: reg})
	go func() {
		_, _, err := c1.Query(context.Background(), []string{"heart"}, 10)
		blockedErr <- err
	}()
	waitFor(t, func() bool { return node.Inflight() == 1 })

	// A second request must be shed, not queued — and the 429 must carry
	// the configured Retry-After through to the ProtocolError.
	c2 := NewClient(srv.URL, ClientOptions{Timeout: time.Second, MaxRetries: -1, Metrics: reg})
	_, _, err := c2.Query(context.Background(), []string{"heart"}, 10)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("shed query err = %v, want ProtocolError", err)
	}
	if !pe.Shed() || !IsShed(err) || pe.Code != CodeOverloaded {
		t.Fatalf("shed query err = %+v, want 429/overloaded", pe)
	}
	if pe.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", pe.RetryAfter)
	}
	if got := reg.Counter("wire_server_shed_total").Value(); got != 1 {
		t.Errorf("wire_server_shed_total = %v, want 1", got)
	}
	if got := reg.Counter("wire_client_sheds_total").Value(); got != 1 {
		t.Errorf("wire_client_sheds_total = %v, want 1", got)
	}

	// Health sees through the overload: it is exempt from the gate.
	if _, err := c2.Health(context.Background()); err != nil {
		t.Fatalf("Health on a saturated node: %v", err)
	}

	close(release)
	if err := <-blockedErr; err != nil {
		t.Fatalf("occupying query failed: %v", err)
	}
	waitFor(t, func() bool { return node.Inflight() == 0 })
}

func TestClientHonorsRetryAfterOnShedRetries(t *testing.T) {
	reg := telemetry.NewRegistry()
	release := make(chan struct{})
	db := &slowDB{fakeDB: testDB(), gate: release}
	node := NewNode(db, ServerOptions{MaxInflight: 1, RetryAfter: 1, Metrics: reg})
	srv := httptest.NewServer(node)
	defer srv.Close()

	blockedErr := make(chan error, 1)
	c1 := NewClient(srv.URL, ClientOptions{Timeout: 5 * time.Second, MaxRetries: -1, Metrics: reg})
	go func() {
		_, _, err := c1.Query(context.Background(), []string{"heart"}, 10)
		blockedErr <- err
	}()
	waitFor(t, func() bool { return node.Inflight() == 1 })

	// Retry-After (1s) exceeds BackoffMax (20ms): the cap must win, so
	// 2 retries complete in well under a second — a peer cannot stall
	// the client past its own backoff ceiling.
	c2 := NewClient(srv.URL, ClientOptions{
		Timeout: time.Second, MaxRetries: 2,
		BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		Metrics: reg,
	})
	ctx, stats := WithCallStats(context.Background())
	t0 := time.Now()
	_, _, err := c2.Query(ctx, []string{"heart"}, 10)
	if !IsShed(err) {
		t.Fatalf("err = %v, want shed after exhausting retries", err)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Fatalf("retries took %v; Retry-After must be capped at BackoffMax", elapsed)
	}
	if stats.Attempts() != 3 || stats.Retries() != 2 || stats.Sheds() != 3 {
		t.Fatalf("stats = attempts %d retries %d sheds %d, want 3/2/3",
			stats.Attempts(), stats.Retries(), stats.Sheds())
	}

	close(release)
	<-blockedErr
}

func TestContextWithCallStatsSharedAcrossCalls(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewServer(testDB(), ServerOptions{Metrics: reg}))
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(reg))

	s := &CallStats{}
	ctx := ContextWithCallStats(context.Background(), s)
	if _, _, err := c.Query(ctx, []string{"heart"}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Info(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2 (one per call, shared stats)", s.Attempts())
	}
}

// slowDB blocks Query until gate closes, so tests can hold a node's
// inflight slot open deterministically.
type slowDB struct {
	*fakeDB
	gate <-chan struct{}
}

func (s *slowDB) Query(terms []string, limit int) (int, []int) {
	<-s.gate
	return s.fakeDB.Query(terms, limit)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
