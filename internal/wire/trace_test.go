package wire

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// attrValue extracts one attribute from a trace event (nil if absent).
func attrValue(e telemetry.Event, key string) interface{} {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

func TestClientSendsIdentityAndTraceHeaders(t *testing.T) {
	var mu sync.Mutex
	var got []http.Header
	inner := NewServer(testDB(), ServerOptions{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, r.Header.Clone())
		mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cap := &telemetry.Capture{}
	tracer := telemetry.NewTracer(cap)
	span := tracer.Span("caller")
	ctx := telemetry.ContextWithSpan(context.Background(), span)

	c := NewClient(srv.URL, fastOpts(nil))
	if _, _, err := c.Query(ctx, []string{"heart"}, 1); err != nil {
		t.Fatal(err)
	}
	span.End()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("server saw %d requests, want 1", len(got))
	}
	h := got[0]
	if ua := h.Get("User-Agent"); !strings.HasPrefix(ua, "metasearch-repro/") {
		t.Errorf("User-Agent = %q, want metasearch-repro/<version>", ua)
	}
	if tr := h.Get(telemetry.HeaderTraceID); tr != span.Context().TraceID {
		t.Errorf("X-Trace-Id = %q, want %q", tr, span.Context().TraceID)
	}
	if ps := telemetry.ParseSpanID(h.Get(telemetry.HeaderParentSpan)); ps != span.Context().SpanID {
		t.Errorf("X-Parent-Span = %q, want span %d", h.Get(telemetry.HeaderParentSpan), span.Context().SpanID)
	}
	reqID := h.Get(telemetry.HeaderRequestID)
	if !strings.HasPrefix(reqID, "r") || !strings.HasSuffix(reqID, ".0") {
		t.Errorf("X-Request-Id = %q, want r<seq>.0", reqID)
	}
	// The caller's span carries a matching wire.attempt event.
	node := cap.Find("caller")
	if node == nil || len(node.Events) != 1 {
		t.Fatalf("caller span events = %+v", node)
	}
	if got := attrValue(node.Events[0], "request_id"); got != reqID {
		t.Errorf("wire.attempt request_id = %v, header said %q", got, reqID)
	}
}

func TestClientWithoutSpanSendsNoTraceHeaders(t *testing.T) {
	var mu sync.Mutex
	var h http.Header
	inner := NewServer(testDB(), ServerOptions{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h = r.Header.Clone()
		mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(nil))
	if _, err := c.Info(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if h.Get(telemetry.HeaderTraceID) != "" || h.Get(telemetry.HeaderParentSpan) != "" {
		t.Errorf("untraced call sent trace headers: %v / %v",
			h.Get(telemetry.HeaderTraceID), h.Get(telemetry.HeaderParentSpan))
	}
	if h.Get(telemetry.HeaderRequestID) == "" {
		t.Error("request id must be stamped even without a trace")
	}
}

func TestPerEndpointCountersAndInflight(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewServer(testDB(), ServerOptions{}))
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(reg))
	ctx := context.Background()

	if _, err := c.Info(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(ctx, []string{"heart"}, 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1} {
		if _, err := c.Doc(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range map[string]int64{
		"wire_requests_info_total":   1,
		"wire_requests_query_total":  1,
		"wire_requests_doc_total":    2,
		"wire_requests_total":        4,
		"wire_client_attempts_total": 4,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("wire_client_inflight").Value(); got != 0 {
		t.Errorf("inflight after quiesce = %v, want 0", got)
	}
	if got := reg.Window("wire_request_latency_window", 0).Count(); got != 4 {
		t.Errorf("latency window count = %d, want 4", got)
	}
}

func TestCallStatsAttributeRetriesPerCall(t *testing.T) {
	fail := FailOnce(NewServer(testDB(), ServerOptions{}))
	srv := httptest.NewServer(fail)
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(nil))

	ctx, stats := WithCallStats(context.Background())
	fail.Arm()
	if _, _, err := c.Query(ctx, []string{"heart"}, 1); err != nil {
		t.Fatal(err)
	}
	if stats.Attempts() != 2 || stats.Retries() != 1 {
		t.Errorf("stats = %d attempts / %d retries, want 2/1", stats.Attempts(), stats.Retries())
	}

	// A fresh stats context starts clean — per-call, not per-client.
	ctx2, stats2 := WithCallStats(context.Background())
	if _, _, err := c.Query(ctx2, []string{"heart"}, 1); err != nil {
		t.Fatal(err)
	}
	if stats2.Attempts() != 1 || stats2.Retries() != 0 {
		t.Errorf("stats2 = %d attempts / %d retries, want 1/0", stats2.Attempts(), stats2.Retries())
	}
	// Nil stats accessors are safe (no stats attached).
	var nilStats *CallStats
	if nilStats.Attempts() != 0 || nilStats.Retries() != 0 {
		t.Error("nil CallStats accessors must return 0")
	}
}

func TestRetryAttemptsShareSeqWithDistinctRequestIDs(t *testing.T) {
	fail := FailOnce(NewServer(testDB(), ServerOptions{}))
	srv := httptest.NewServer(fail)
	defer srv.Close()

	cap := &telemetry.Capture{}
	tracer := telemetry.NewTracer(cap)
	span := tracer.Span("caller")
	ctx := telemetry.ContextWithSpan(context.Background(), span)

	c := NewClient(srv.URL, fastOpts(nil))
	fail.Arm()
	if _, _, err := c.Query(ctx, []string{"heart"}, 1); err != nil {
		t.Fatal(err)
	}
	span.End()

	node := cap.Find("caller")
	if node == nil || len(node.Events) != 2 {
		t.Fatalf("want 2 wire.attempt events, got %+v", node)
	}
	id0, _ := attrValue(node.Events[0], "request_id").(string)
	id1, _ := attrValue(node.Events[1], "request_id").(string)
	base0 := strings.TrimSuffix(id0, ".0")
	base1 := strings.TrimSuffix(id1, ".1")
	if base0 == id0 || base1 == id1 || base0 != base1 {
		t.Errorf("attempt ids = %q, %q: want same r<seq> with .0/.1 suffixes", id0, id1)
	}
}

func TestServerSpanJoinsPropagatedTrace(t *testing.T) {
	serverCap := &telemetry.Capture{}
	srv := httptest.NewServer(NewServer(testDB(), ServerOptions{
		Tracer: telemetry.NewTracer(serverCap),
	}))
	defer srv.Close()

	clientCap := &telemetry.Capture{}
	tracer := telemetry.NewTracer(clientCap)
	span := tracer.Span("caller")
	ctx := telemetry.ContextWithSpan(context.Background(), span)

	c := NewClient(srv.URL, fastOpts(nil))
	if _, _, err := c.Query(ctx, []string{"heart"}, 1); err != nil {
		t.Fatal(err)
	}
	span.End()

	serve := serverCap.Find("wire.serve")
	if serve == nil {
		t.Fatal("server recorded no wire.serve span")
	}
	if serve.Start.Trace != span.Context().TraceID {
		t.Errorf("server trace = %q, client trace = %q", serve.Start.Trace, span.Context().TraceID)
	}
	if serve.Start.Parent != span.Context().SpanID {
		t.Errorf("server span parent = %d, client span = %d", serve.Start.Parent, span.Context().SpanID)
	}
	if got, _ := attrValue(serve.Start, "path").(string); got != PathQuery {
		t.Errorf("serve span path = %q", got)
	}
	if got, _ := attrValue(serve.End, "status").(int64); got != http.StatusOK {
		t.Errorf("serve span status = %v", attrValue(serve.End, "status"))
	}
	// Without propagated context the server starts its own root trace.
	serverCap.Reset()
	if _, err := c.Info(context.Background()); err != nil {
		t.Fatal(err)
	}
	serve = serverCap.Find("wire.serve")
	if serve == nil || serve.Start.Parent != 0 || serve.Start.Trace == "" {
		t.Errorf("untraced request should yield a fresh root span, got %+v", serve)
	}
	if serve.Start.Trace == span.Context().TraceID {
		t.Error("fresh root span reused the old trace id")
	}
}
