package wire

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// FlakyOptions configures fault injection.
type FlakyOptions struct {
	// FailureRate is the probability each request is answered with an
	// injected 503 instead of being served.
	FailureRate float64
	// Latency is added to every served request.
	Latency time.Duration
	// HangEvery makes every n-th request hang (no response bytes) for
	// HangFor or until the client gives up, whichever is first. 0 never
	// hangs.
	HangEvery int
	// HangFor bounds a hang (default 30s — longer than any sane client
	// attempt timeout).
	HangFor time.Duration
	// Seed drives the failure draw, making injected fault sequences
	// reproducible.
	Seed int64
}

// Flaky wraps a node handler with deterministic fault injection:
// transient 503s, added latency, and hangs. It is the test double for
// the unreliable networks and overloaded hidden-web servers the paper's
// setting implies, and it counts what it injects so tests can reconcile
// client retry telemetry against ground truth.
type Flaky struct {
	next http.Handler
	opts FlakyOptions

	mu  sync.Mutex
	rng *rand.Rand

	requests atomic.Int64
	injected atomic.Int64
	hangs    atomic.Int64
}

// NewFlaky wraps next with fault injection.
func NewFlaky(next http.Handler, opts FlakyOptions) *Flaky {
	if opts.HangFor == 0 {
		opts.HangFor = 30 * time.Second
	}
	return &Flaky{next: next, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// ServeHTTP implements http.Handler.
func (f *Flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.requests.Add(1)
	if f.opts.HangEvery > 0 && n%int64(f.opts.HangEvery) == 0 {
		f.hangs.Add(1)
		select {
		case <-r.Context().Done(): // client hung up
		case <-time.After(f.opts.HangFor):
		}
		return
	}
	if f.opts.Latency > 0 {
		time.Sleep(f.opts.Latency)
	}
	f.mu.Lock()
	fail := f.rng.Float64() < f.opts.FailureRate
	f.mu.Unlock()
	if fail {
		f.injected.Add(1)
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, "injected transient failure")
		return
	}
	f.next.ServeHTTP(w, r)
}

// FailOnceHandler fails exactly one request with an injected transient
// 503 each time it is armed, serving everything else untouched. Where
// Flaky injects a reproducible random fault sequence, FailOnceHandler
// places a single fault at a chosen moment — the tool for asserting
// exactly-one-retry behavior (request IDs r<seq>.0 then r<seq>.1, one
// extra attempt in CallStats) in tracing tests.
type FailOnceHandler struct {
	next  http.Handler
	armed atomic.Bool

	injected atomic.Int64
}

// FailOnce wraps next; call Arm to schedule the next request to fail.
func FailOnce(next http.Handler) *FailOnceHandler {
	return &FailOnceHandler{next: next}
}

// Arm makes the next request fail with a transient 503.
func (f *FailOnceHandler) Arm() { f.armed.Store(true) }

// Injected returns how many 503s were injected across all armings.
func (f *FailOnceHandler) Injected() int64 { return f.injected.Load() }

// ServeHTTP implements http.Handler.
func (f *FailOnceHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.armed.CompareAndSwap(true, false) {
		f.injected.Add(1)
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, "injected transient failure (armed)")
		return
	}
	f.next.ServeHTTP(w, r)
}

// Requests returns how many requests arrived (including failed ones).
func (f *Flaky) Requests() int64 { return f.requests.Load() }

// Injected returns how many injected 503s were served.
func (f *Flaky) Injected() int64 { return f.injected.Load() }

// Hangs returns how many requests were hung.
func (f *Flaky) Hangs() int64 { return f.hangs.Load() }
