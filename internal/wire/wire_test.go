package wire

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeDB is a minimal Backend: term → matching doc ids, ranked by id.
type fakeDB struct {
	name string
	docs [][]string
}

func (f *fakeDB) Name() string { return f.name }
func (f *fakeDB) NumDocs() int { return len(f.docs) }
func (f *fakeDB) Fetch(id int) []string {
	return f.docs[id]
}

func (f *fakeDB) Query(terms []string, limit int) (int, []int) {
	var ids []int
	for id, doc := range f.docs {
		match := true
		for _, t := range terms {
			found := false
			for _, w := range doc {
				if w == t {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			ids = append(ids, id)
		}
	}
	matches := len(ids)
	if limit < len(ids) {
		ids = ids[:limit]
	}
	return matches, ids
}

func testDB() *fakeDB {
	return &fakeDB{name: "unit", docs: [][]string{
		{"heart", "blood", "pressure"},
		{"heart", "attack"},
		{"soccer", "goal"},
	}}
}

func fastOpts(reg *telemetry.Registry) ClientOptions {
	return ClientOptions{
		Timeout:     2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Metrics:     reg,
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(NewServer(testDB(), ServerOptions{Category: "Health", Metrics: reg}))
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(reg))
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "unit" || info.Protocol != Version || info.NumDocs != 3 || info.Category != "Health" {
		t.Errorf("info = %+v", info)
	}

	matches, ids, err := c.Query(ctx, []string{"heart"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if matches != 2 || len(ids) != 1 || ids[0] != 0 {
		t.Errorf("query = %d matches, ids %v", matches, ids)
	}

	terms, err := c.Doc(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(terms, " ") != "soccer goal" {
		t.Errorf("doc 2 = %v", terms)
	}
	if reg.Counter("wire_server_requests_total").Value() != 3 {
		t.Errorf("server requests = %d", reg.Counter("wire_server_requests_total").Value())
	}
	if got := reg.Histogram("wire_request_latency", nil).Count(); got != 3 {
		t.Errorf("latency observations = %d", got)
	}
}

func TestServerErrorEnvelopes(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(), ServerOptions{}))
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(nil))
	ctx := context.Background()

	// Unknown document id → not_found, not retried.
	_, err := c.Doc(ctx, 99)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeNotFound || pe.Status != http.StatusNotFound {
		t.Fatalf("Doc(99) err = %v", err)
	}
	if pe.Transient() {
		t.Error("not_found classified transient")
	}

	// Empty query → bad_request.
	_, _, err = c.Query(ctx, nil, 5)
	if !errors.As(err, &pe) || pe.Code != CodeBadRequest {
		t.Fatalf("empty query err = %v", err)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	inner := NewServer(testDB(), ServerOptions{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, "warming up")
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	reg := telemetry.NewRegistry()
	c := NewClient(srv.URL, fastOpts(reg))
	matches, _, err := c.Query(context.Background(), []string{"heart"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if matches != 2 {
		t.Errorf("matches = %d", matches)
	}
	if got := reg.Counter("wire_client_retries_total").Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := reg.Counter("wire_request_errors_total").Value(); got != 0 {
		t.Errorf("request errors = %d, want 0", got)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, "down")
	}))
	defer srv.Close()
	reg := telemetry.NewRegistry()
	opts := fastOpts(reg)
	opts.MaxRetries = 2
	c := NewClient(srv.URL, opts)
	_, _, err := c.Query(context.Background(), []string{"x"}, 1)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter("wire_client_retries_total").Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := reg.Counter("wire_request_errors_total").Value(); got != 1 {
		t.Errorf("request errors = %d, want 1", got)
	}
}

func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "no")
	}))
	defer srv.Close()
	c := NewClient(srv.URL, fastOpts(nil))
	if _, _, err := c.Query(context.Background(), []string{"x"}, 1); err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on 400)", calls.Load())
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	// A node that is down entirely: dial fails, every attempt retried,
	// the call ultimately errors.
	reg := telemetry.NewRegistry()
	opts := fastOpts(reg)
	opts.MaxRetries = 1
	c := NewClient("127.0.0.1:1", opts) // reserved port: connection refused
	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("expected dial error")
	}
	if got := reg.Counter("wire_client_retries_total").Value(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

func TestClientCancellationStopsRetrying(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, "down")
	}))
	defer srv.Close()
	opts := fastOpts(nil)
	opts.MaxRetries = 1000
	opts.BackoffBase = 50 * time.Millisecond
	opts.BackoffMax = 50 * time.Millisecond
	c := NewClient(srv.URL, opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Query(ctx, []string{"x"}, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not stop the retry loop")
	}
}

func TestDocCacheLRU(t *testing.T) {
	reg := telemetry.NewRegistry()
	var fetches atomic.Int64
	inner := NewServer(testDB(), ServerOptions{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, PathDocPrefix) {
			fetches.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	opts := fastOpts(reg)
	opts.CacheSize = 2
	c := NewClient(srv.URL, opts)
	ctx := context.Background()

	for _, id := range []int{0, 1, 0, 1} { // 2 misses, then 2 hits
		if _, err := c.Doc(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if fetches.Load() != 2 {
		t.Errorf("server fetches = %d, want 2", fetches.Load())
	}
	if hits := reg.Counter("wire_doc_cache_hits_total").Value(); hits != 2 {
		t.Errorf("cache hits = %d, want 2", hits)
	}
	// Touch a third doc: capacity 2 evicts the LRU entry (doc 0 and 1
	// were both touched after doc 0's fetch, so doc 0 is evicted).
	if _, err := c.Doc(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if c.CachedDocs() != 2 {
		t.Errorf("cached docs = %d, want 2", c.CachedDocs())
	}
	if _, err := c.Doc(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != 4 {
		t.Errorf("server fetches = %d, want 4 (doc 0 evicted and refetched)", fetches.Load())
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	opts := ClientOptions{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond}
	opts.randFloat = func() float64 { return 0.999 }
	c := NewClient("127.0.0.1:1", opts)
	prev := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		d := c.backoff(attempt)
		if d < prev {
			t.Errorf("backoff(%d) = %v shrank below %v", attempt, d, prev)
		}
		if d >= opts.BackoffMax {
			t.Errorf("backoff(%d) = %v ≥ max %v", attempt, d, opts.BackoffMax)
		}
		prev = d
	}
	// Jitter floor: with randFloat = 0, the sleep is half the nominal.
	opts.randFloat = func() float64 { return 0 }
	c = NewClient("127.0.0.1:1", opts)
	if d := c.backoff(0); d != opts.BackoffBase/2 {
		t.Errorf("backoff floor = %v, want %v", d, opts.BackoffBase/2)
	}
}

func TestFlakyReconciliation(t *testing.T) {
	// Every injected failure must show up in client telemetry as either
	// a retry or a terminal request error: injected == retries + errors.
	reg := telemetry.NewRegistry()
	flaky := NewFlaky(NewServer(testDB(), ServerOptions{}), FlakyOptions{
		FailureRate: 0.4,
		Seed:        7,
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	opts := fastOpts(reg)
	opts.MaxRetries = 3
	c := NewClient(srv.URL, opts)
	ctx := context.Background()

	for i := 0; i < 60; i++ {
		c.Query(ctx, []string{"heart"}, 5) // errors allowed; telemetry must balance
		c.Doc(ctx, i%3)
	}
	retries := reg.Counter("wire_client_retries_total").Value()
	errs := reg.Counter("wire_request_errors_total").Value()
	if flaky.Injected() == 0 {
		t.Fatal("flaky injected nothing")
	}
	if retries+errs != flaky.Injected() {
		t.Errorf("retries(%d) + errors(%d) != injected(%d)", retries, errs, flaky.Injected())
	}
}

func TestFlakyHangTimesOutAndRecovers(t *testing.T) {
	flaky := NewFlaky(NewServer(testDB(), ServerOptions{}), FlakyOptions{
		HangEvery: 2,                      // every second request hangs
		HangFor:   300 * time.Millisecond, // outlives the client timeout, not the test
		Seed:      1,
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	reg := telemetry.NewRegistry()
	opts := fastOpts(reg)
	opts.Timeout = 100 * time.Millisecond
	c := NewClient(srv.URL, opts)

	// First request serves; second hangs, times out, and the retry (an
	// odd request) succeeds.
	for i := 0; i < 2; i++ {
		if _, _, err := c.Query(context.Background(), []string{"heart"}, 1); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if flaky.Hangs() == 0 {
		t.Error("no hang injected")
	}
	if reg.Counter("wire_client_retries_total").Value() == 0 {
		t.Error("hang did not produce a retry")
	}
}
